//! Multi-pattern scanning with one automaton.
//!
//! Intrusion-prevention systems (the §V related-work setting) match
//! *sets* of signatures. Instead of one SFA per signature, union the
//! signature DFAs into a single automaton (`sfa_automata::ops`), build
//! one SFA, and scan once. Also demonstrates occurrence counting with a
//! scanner automaton and round-tripping the SFA through the binary
//! serialization format.
//!
//! ```text
//! cargo run --release --example multi_pattern
//! ```

use sfa_automata::ops::union_all;
use sfa_automata::prelude::*;
use sfa_core::prelude::*;

fn main() {
    let alphabet = Alphabet::amino_acids();

    // --- 1. One automaton for a whole motif set. -------------------------
    let motifs = ["RGD", "KDEL", "NP.Y", "GKS"];
    let pipeline = Pipeline::search(alphabet.clone());
    let dfas: Vec<sfa_automata::Dfa> = motifs
        .iter()
        .map(|m| pipeline.compile_str(m).expect("motif compiles"))
        .collect();
    let union = union_all(&dfas).expect("same alphabet");
    let union = sfa_automata::minimize::minimize(&union);
    println!(
        "union of {} motifs: {} DFA states (individual: {:?})",
        motifs.len(),
        union.num_states(),
        dfas.iter().map(|d| d.num_states()).collect::<Vec<_>>()
    );

    // --- 2. One SFA, one parallel scan for the whole set. ----------------
    let result = Sfa::builder(&union)
        .options(&ParallelOptions::with_threads(4))
        .build()
        .expect("SFA construction");
    result.sfa.validate(&union).expect("valid SFA");
    println!(
        "union SFA: {} states in {:.1} ms",
        result.sfa.num_states(),
        result.stats.total_secs * 1e3
    );

    let text = sfa_workloads::protein_text_with_motif(1_000_000, 9, b"KDEL", &[500_000]);
    let hit = match_with_sfa(&result.sfa, &union, &text, 4);
    assert!(hit, "planted KDEL must trip the union automaton");
    println!("scan over 1M residues: motif set matched = {hit}");

    // --- 3. Count occurrences of one motif with a scanner automaton. -----
    let scanner = Pipeline::scanner(alphabet.clone())
        .compile_str("RGD")
        .expect("scanner compiles");
    let scan_sfa = Sfa::builder(&scanner)
        .options(&ParallelOptions::with_threads(4))
        .build()
        .expect("scanner SFA");
    let matcher =
        ParallelMatcher::new(&scan_sfa.sfa, &scanner).expect("SFA built from this scanner");
    let text2 =
        sfa_workloads::protein_text_with_motif(1_000_000, 10, b"RGD", &[1_000, 400_000, 999_000]);
    let count = matcher.count_matches(&text2, 4);
    let oracle = sfa_core::matcher::count_matches_sequential(&scanner, &text2);
    assert_eq!(count, oracle);
    println!("RGD occurrences in 1M residues: {count} (parallel == sequential ✓)");

    // --- 4. Persist and reload the SFA. ----------------------------------
    let bytes = sfa_core::io::to_bytes(&result.sfa);
    let reloaded = sfa_core::io::from_bytes(&bytes).expect("round trip");
    reloaded.validate(&union).expect("reloaded SFA valid");
    println!(
        "serialized union SFA: {} bytes on disk, reload validated ✓",
        bytes.len()
    );
}
