//! The three-phase compression scheme "rescuing" a construction that
//! would blow the memory budget (§III-C, Table II).
//!
//! Builds the same rN SFA three ways: uncompressed, with a watermark that
//! trips mid-construction (three-phase), and compressed from the start
//! (the ablation the paper argues against for tractable inputs), then
//! prints phase timings, memory and the compression ratio.
//!
//! ```text
//! cargo run --release --example compression_rescue
//! ```

use sfa_core::prelude::*;
use sfa_core::sfa::CodecChoice;

fn main() {
    let n = 250;
    let dfa = sfa_workloads::rn(n);
    println!(
        "r{n}: {} DFA states; uncompressed SFA state = {} bytes",
        dfa.num_states(),
        dfa.num_states() * 2
    );

    let threads = 4;
    let runs: Vec<(&str, ParallelOptions)> = vec![
        ("no compression", ParallelOptions::with_threads(threads)),
        (
            "three-phase (1 MiB watermark)",
            ParallelOptions::with_threads(threads)
                .compression(CompressionPolicy::WhenMemoryExceeds(1 << 20)),
        ),
        (
            "compress from start (deflate)",
            ParallelOptions::with_threads(threads).compression(CompressionPolicy::FromStart),
        ),
        (
            "compress from start (rle)",
            ParallelOptions::with_threads(threads)
                .compression(CompressionPolicy::FromStart)
                .codec(CodecChoice::Rle),
        ),
    ];

    println!(
        "{:<32} {:>9} {:>10} {:>10} {:>10} {:>12} {:>7}",
        "configuration", "states", "total s", "compr s", "phase3 s", "stored B", "ratio"
    );
    let mut reference_states = None;
    for (name, opts) in runs {
        let result = Sfa::builder(&dfa)
            .options(&opts)
            .build()
            .expect("construction");
        let s = &result.stats;
        // All configurations must build the identical automaton.
        match reference_states {
            None => reference_states = Some(result.sfa.num_states()),
            Some(r) => assert_eq!(r, result.sfa.num_states(), "{name} diverged"),
        }
        result.sfa.validate(&dfa).expect("valid SFA");
        println!(
            "{:<32} {:>9} {:>10.3} {:>10.3} {:>10.3} {:>12} {:>6.1}x",
            name,
            s.states,
            s.total_secs,
            s.compression_secs,
            s.phase3_secs,
            s.stored_bytes,
            s.compression_ratio()
        );
    }
    println!(
        "\nThe three-phase run pays the compression cost only after the watermark\n\
         trips; compress-from-start pays it for every state (the paper's Table II\n\
         shows the same trade-off: compression is only worth it when the raw\n\
         states would not fit in memory)."
    );
}
