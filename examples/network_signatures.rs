//! Byte-alphabet signature matching — the intrusion-prevention use case
//! the paper's related work targets (SPPM, virus signatures).
//!
//! Signatures are regexes over printable ASCII; payloads are synthetic
//! "network traffic". Demonstrates that the SFA machinery is not tied to
//! the amino-acid alphabet, and that parallel chunked matching gives the
//! same verdicts as the sequential scanner.
//!
//! ```text
//! cargo run --release --example network_signatures
//! ```

use sfa_automata::prelude::*;
use sfa_core::prelude::*;

const SIGNATURES: &[(&str, &str)] = &[
    // (name, regex over printable ASCII; matched anywhere in the payload)
    ("exec-cmd", r"cmd\.exe"),
    ("path-traversal", r"\.\./\.\./"),
    ("script-tag", r"<script>"),
    ("sql-union", r"UNION +SELECT"),
    ("shellcode-nopsled", r"AAAAAAAAAAAAAAAA"),
];

fn synth_payload(len: usize, seed: u64, inject: Option<&str>) -> Vec<u8> {
    // Printable-ASCII noise with an optional injected attack string.
    let mut out = Vec::with_capacity(len);
    let mut s = seed;
    for _ in 0..len {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.push(0x20 + ((s >> 33) % 95) as u8);
    }
    if let Some(attack) = inject {
        let pos = len / 2;
        out[pos..pos + attack.len()].copy_from_slice(attack.as_bytes());
    }
    out
}

fn main() {
    let alphabet = Alphabet::printable_ascii();
    let pipeline = Pipeline::search(alphabet.clone());

    println!(
        "{:<18} {:>6} {:>9} {:>10}  verdicts (clean / infected)",
        "signature", "DFA", "SFA", "build ms"
    );
    let clean = synth_payload(500_000, 7, None);
    for (name, regex) in SIGNATURES {
        let dfa = pipeline.compile_str(regex).expect("signature compiles");
        let t0 = std::time::Instant::now();
        let result = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(4))
            .build()
            .expect("SFA construction");
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        result.sfa.validate(&dfa).expect("valid SFA");

        let infected = synth_payload(500_000, 7, Some(&attack_for(regex)));
        let mut verdicts = Vec::new();
        for payload in [&clean, &infected] {
            let syms = alphabet.encode_bytes(payload).expect("printable payload");
            let par = match_with_sfa(&result.sfa, &dfa, &syms, 4);
            let seq = match_sequential(&dfa, &syms);
            assert_eq!(par, seq, "{name}: matchers disagree");
            verdicts.push(par);
        }
        println!(
            "{:<18} {:>6} {:>9} {:>10.2}  {} / {}",
            name,
            dfa.num_states(),
            result.sfa.num_states(),
            build_ms,
            verdicts[0],
            verdicts[1]
        );
        assert!(!verdicts[0], "{name}: false positive on clean traffic");
        assert!(verdicts[1], "{name}: missed injected attack");
    }
    println!("all signatures: clean traffic passes, injected attacks detected ✓");
}

/// A concrete string matching each signature (for injection).
fn attack_for(regex: &str) -> String {
    match regex {
        r"cmd\.exe" => "cmd.exe".into(),
        r"\.\./\.\./" => "../../".into(),
        r"<script>" => "<script>".into(),
        r"UNION +SELECT" => "UNION  SELECT".into(),
        r"AAAAAAAAAAAAAAAA" => "A".repeat(16),
        other => panic!("no attack string for {other}"),
    }
}
