//! Lazy vs. batch SFA matching — the break-even equation, revisited.
//!
//! The paper's §IV-D break-even analysis weighs full SFA construction
//! against the parallel matching speedup. The lazy SFA (this library's
//! extension) sidesteps it: states are constructed only when the input
//! first visits them, so the up-front cost shrinks from "the whole SFA"
//! to "the handful of states real text touches".
//!
//! ```text
//! cargo run --release --example lazy_scan
//! ```

use sfa_core::lazy::LazySfa;
use sfa_core::prelude::*;
use sfa_workloads::{protein_text, rn};
use std::time::Instant;

fn main() {
    let dfa = rn(500); // the paper's r500: 502 DFA states
    let threads = 4;

    // --- Batch path: full construction, then matching. -------------------
    let t0 = Instant::now();
    let batch = Sfa::builder(&dfa)
        .options(&ParallelOptions::with_threads(threads))
        .build()
        .expect("batch construction");
    let construct_secs = t0.elapsed().as_secs_f64();
    println!(
        "batch:  constructed all {} SFA states in {:.3} s",
        batch.sfa.num_states(),
        construct_secs
    );

    // --- Lazy path: nothing up front. -------------------------------------
    let lazy = LazySfa::new(&dfa, 1 << 20).expect("lazy SFA");
    println!("lazy:   constructed {} state up front", lazy.states_built());

    // --- Match a series of inputs with both. ------------------------------
    println!(
        "\n{:>10} {:>14} {:>14} {:>16}",
        "input", "batch match s", "lazy match s", "lazy states"
    );
    for (i, len) in [100_000usize, 1_000_000, 10_000_000].iter().enumerate() {
        let text = protein_text(*len, i as u64);

        let t1 = Instant::now();
        let batch_hit = match_with_sfa(&batch.sfa, &dfa, &text, threads);
        let batch_secs = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let lazy_hit = lazy.matches(&text, threads).expect("lazy match");
        let lazy_secs = t2.elapsed().as_secs_f64();

        assert_eq!(batch_hit, lazy_hit, "matchers must agree");
        assert_eq!(batch_hit, match_sequential(&dfa, &text));

        println!(
            "{:>10} {:>14.4} {:>14.4} {:>16}",
            len,
            batch_secs,
            lazy_secs,
            lazy.states_built()
        );
    }

    println!(
        "\nThe lazy SFA discovered {} of {} states across all inputs: the\n\
         {:.3} s construction cost of the batch path never has to be paid\n\
         for inputs like these.",
        lazy.states_built(),
        batch.sfa.num_states(),
        construct_secs
    );
}
