//! Protein-motif scanning — the paper's motivating PROSITE workload.
//!
//! Compile a handful of embedded PROSITE motifs, construct their SFAs in
//! parallel, and scan a generated protein-like sequence with planted
//! motif occurrences. Reports per-motif construction cost, match results
//! and the sequential/parallel matcher agreement.
//!
//! ```text
//! cargo run --release --example protein_scan
//! ```

use sfa_core::prelude::*;
use sfa_workloads::{prosite_workloads, protein_text_with_motif};

fn main() {
    // Compile the embedded PROSITE sample (bounded DFA size keeps this
    // example snappy; drop the bound to include the kinase-domain giants).
    let workloads = prosite_workloads(Some(2_000));
    println!(
        "compiled {} PROSITE motifs (DFA ≤ 2000 states)",
        workloads.len()
    );

    // A 2 Mb protein-like sequence with an RGD cell-attachment motif and a
    // P-loop planted at known positions.
    let text = protein_text_with_motif(2_000_000, 42, b"RGD", &[123_456, 1_500_000]);
    let text = {
        // Also plant a P-loop instance (A-x(4)-G-K-S shape).
        let mut t = text;
        let alpha = sfa_automata::Alphabet::amino_acids();
        let ploop = alpha.encode_bytes(b"ACDEFGKS").unwrap();
        t[700_000..700_000 + ploop.len()].copy_from_slice(&ploop);
        t
    };

    println!(
        "{:<10} {:>6} {:>9} {:>12} {:>12} {:>7}",
        "motif", "DFA", "SFA", "build ms", "match ms", "hit"
    );
    let threads = 4;
    for w in workloads.iter().take(12) {
        let t0 = std::time::Instant::now();
        let result = match Sfa::builder(&w.dfa)
            .options(&ParallelOptions::with_threads(threads))
            .build()
        {
            Ok(r) => r,
            Err(e) => {
                println!("{:<10} construction failed: {e}", w.name);
                continue;
            }
        };
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = std::time::Instant::now();
        let hit = match_with_sfa(&result.sfa, &w.dfa, &text, threads);
        let match_ms = t1.elapsed().as_secs_f64() * 1e3;

        // Cross-check against the sequential matcher.
        assert_eq!(hit, match_sequential(&w.dfa, &text), "{} disagrees", w.name);

        println!(
            "{:<10} {:>6} {:>9} {:>12.2} {:>12.2} {:>7}",
            w.name,
            w.dfa.num_states(),
            result.sfa.num_states(),
            build_ms,
            match_ms,
            hit
        );
    }

    // The planted motifs must be found.
    let find = |id: &str| workloads.iter().find(|w| w.name == id);
    if let Some(rgd) = find("PS00016") {
        assert!(match_sequential(&rgd.dfa, &text), "planted RGD not found");
        println!("planted RGD motif detected ✓");
    }
    if let Some(ploop) = find("PS00017") {
        assert!(
            match_sequential(&ploop.dfa, &text),
            "planted P-loop not found"
        );
        println!("planted P-loop motif detected ✓");
    }
}
