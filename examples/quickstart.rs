//! Quickstart: the paper's Fig. 1 / Fig. 2 walkthrough.
//!
//! Build the DFA for "contains RG" over the amino-acid alphabet, construct
//! its SFA sequentially and in parallel, inspect the state mappings, and
//! match a sequence in parallel chunks.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sfa_automata::prelude::*;
use sfa_core::prelude::*;

fn main() {
    // --- 1. Pattern → minimal DFA (Fig. 1). -----------------------------
    let alphabet = Alphabet::amino_acids();
    let dfa = Pipeline::search(alphabet.clone())
        .compile_str("RG")
        .expect("pattern compiles");
    println!(
        "DFA for Σ*·RG·Σ*: {} states over {} symbols (Fig. 1 has 3 states)",
        dfa.num_states(),
        dfa.num_symbols()
    );

    // --- 2. Sequential SFA construction (Algorithm 1 + optimizations). --
    let seq = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .expect("sequential construction");
    println!(
        "SFA: {} states (Fig. 2 shows f0..f5 — six states), built in {:.3} ms",
        seq.sfa.num_states(),
        seq.stats.total_secs * 1e3
    );

    // The start state is the identity mapping ⟨q0, q1, q2⟩.
    println!(
        "start mapping: {:?} (identity)",
        seq.sfa.mapping_of(seq.sfa.start())
    );

    // --- 3. Parallel construction agrees. --------------------------------
    let par = Sfa::builder(&dfa)
        .options(&ParallelOptions::with_threads(4))
        .build()
        .expect("parallel construction");
    assert_eq!(par.sfa.num_states(), seq.sfa.num_states());
    par.sfa.validate(&dfa).expect("SFA consistent with DFA");
    println!(
        "parallel construction agrees: {} states with {} threads ({} candidates, {} duplicates)",
        par.sfa.num_states(),
        par.stats.threads,
        par.stats.candidates,
        par.stats.duplicates
    );

    // --- 4. Parallel matching via mapping composition. -------------------
    let text = alphabet
        .encode_bytes(b"MKVLLSIRGDAAQWERTYHKNMPCF")
        .expect("valid residues");
    let hit = match_with_sfa(&par.sfa, &dfa, &text, 4);
    let seq_hit = match_sequential(&dfa, &text);
    assert_eq!(hit, seq_hit);
    println!("contains 'RG': {hit} (parallel and sequential matchers agree)");

    // Show the per-chunk mappings composing to the final state.
    let matcher = ParallelMatcher::new(&par.sfa, &dfa).expect("SFA built from this DFA");
    let final_state = matcher.final_state(&text, 4);
    println!(
        "final DFA state after the whole input: {final_state} (accepting: {})",
        dfa.is_accepting(final_state)
    );
}
