//! Element-width abstraction for SFA state vectors.
//!
//! The paper sizes table entries to the DFA: 16-bit ids for DFAs under
//! 64 Ki states (the entire PROSITE workload), 32-bit beyond, and ships
//! SIMD kernels for both widths (§III-A). [`Elem`] lets the construction
//! engines be generic over the width while dispatching to the right
//! transposition kernel.

use sfa_simd::{transpose_gather_u16, transpose_gather_u32};

/// A state-id element of an SFA mapping vector (u16 or u32).
pub trait Elem: Copy + Eq + Send + Sync + 'static {
    /// Width in bytes.
    const BYTES: usize;

    /// Widen to a u32 state id.
    fn to_u32(self) -> u32;

    /// Narrow from a u32 state id (caller guarantees fit).
    fn from_u32(v: u32) -> Self;

    /// Gather rows of `table` (row-major, `k` columns) selected by `rows`
    /// and transpose: `out[sym * rows.len() + i] = table[rows[i]*k + sym]`.
    /// Dispatches to the width's SIMD kernel.
    fn transpose_gather(table: &[Self], k: usize, rows: &[u32], out: &mut [Self]);

    /// View a slice of elements as raw **native-endian** bytes (for
    /// in-memory fingerprinting, comparison and compression — the byte
    /// view never leaves the process except inside compressed-store
    /// blobs, whose files are therefore native-endian; `sfa_core::io`
    /// writes *raw* stores explicitly little-endian).
    fn as_bytes(slice: &[Self]) -> &[u8] {
        // SAFETY: u16/u32 are plain-old-data with no padding or invalid
        // bit patterns; the byte length is exact.
        unsafe {
            std::slice::from_raw_parts(slice.as_ptr() as *const u8, slice.len() * Self::BYTES)
        }
    }

    /// Decode elements from raw bytes produced by [`Elem::as_bytes`]
    /// (native-endian round trip on every target).
    fn read_bytes(bytes: &[u8], out: &mut Vec<Self>);

    /// Wrap a flat mapping vector in the right
    /// [`MappingStore`](crate::sfa::MappingStore) variant.
    fn into_store(v: Vec<Self>) -> crate::sfa::MappingStore;
}

impl Elem for u16 {
    const BYTES: usize = 2;

    #[inline]
    fn to_u32(self) -> u32 {
        self as u32
    }

    #[inline]
    fn from_u32(v: u32) -> Self {
        debug_assert!(v <= u16::MAX as u32);
        v as u16
    }

    fn transpose_gather(table: &[Self], k: usize, rows: &[u32], out: &mut [Self]) {
        transpose_gather_u16(table, k, rows, out);
    }

    fn read_bytes(bytes: &[u8], out: &mut Vec<Self>) {
        debug_assert_eq!(bytes.len() % 2, 0);
        out.clear();
        out.extend(
            bytes
                .chunks_exact(2)
                .map(|c| u16::from_ne_bytes([c[0], c[1]])),
        );
    }

    fn into_store(v: Vec<Self>) -> crate::sfa::MappingStore {
        crate::sfa::MappingStore::U16(v)
    }
}

impl Elem for u32 {
    const BYTES: usize = 4;

    #[inline]
    fn to_u32(self) -> u32 {
        self
    }

    #[inline]
    fn from_u32(v: u32) -> Self {
        v
    }

    fn transpose_gather(table: &[Self], k: usize, rows: &[u32], out: &mut [Self]) {
        transpose_gather_u32(table, k, rows, out);
    }

    fn read_bytes(bytes: &[u8], out: &mut Vec<Self>) {
        debug_assert_eq!(bytes.len() % 4, 0);
        out.clear();
        out.extend(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_ne_bytes([c[0], c[1], c[2], c[3]])),
        );
    }

    fn into_store(v: Vec<Self>) -> crate::sfa::MappingStore {
        crate::sfa::MappingStore::U32(v)
    }
}

/// Should this DFA use 16-bit state vectors? (All PROSITE DFAs do.)
pub fn fits_u16(num_dfa_states: u32) -> bool {
    num_dfa_states <= u16::MAX as u32 + 1
}

/// Do `num_ids` distinct ids fit a single byte? (The [`crate::scan`]
/// tables use this to pack pre-scaled row offsets to u8.)
pub fn fits_u8(num_ids: u32) -> bool {
    num_ids <= u8::MAX as u32 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_views_round_trip() {
        let v16: Vec<u16> = vec![0, 1, 513, u16::MAX];
        let bytes = <u16 as Elem>::as_bytes(&v16);
        assert_eq!(bytes.len(), 8);
        let mut back = Vec::new();
        <u16 as Elem>::read_bytes(bytes, &mut back);
        assert_eq!(back, v16);

        let v32: Vec<u32> = vec![0, 70_000, u32::MAX];
        let bytes = <u32 as Elem>::as_bytes(&v32);
        assert_eq!(bytes.len(), 12);
        let mut back = Vec::new();
        <u32 as Elem>::read_bytes(bytes, &mut back);
        assert_eq!(back, v32);
    }

    #[test]
    #[cfg(target_endian = "little")]
    fn byte_layout_is_little_endian_on_le_targets() {
        let v: Vec<u16> = vec![0x0201];
        assert_eq!(<u16 as Elem>::as_bytes(&v), &[0x01, 0x02]);
        let v: Vec<u32> = vec![0x04030201];
        assert_eq!(<u32 as Elem>::as_bytes(&v), &[0x01, 0x02, 0x03, 0x04]);
    }

    #[test]
    fn transpose_dispatch_works_for_both_widths() {
        let table16: Vec<u16> = (0..60u16).collect(); // 6 rows × 10 cols
        let rows = vec![2u32, 0, 5];
        let mut out16 = vec![0u16; 30];
        <u16 as Elem>::transpose_gather(&table16, 10, &rows, &mut out16);
        assert_eq!(out16[0], 20); // row 2, sym 0
        assert_eq!(out16[1], 0); // row 0, sym 0
        assert_eq!(out16[2], 50); // row 5, sym 0
        assert_eq!(out16[3 * 9], 29); // sym 9, i=0 → row2 col9

        let table32: Vec<u32> = (0..60u32).collect();
        let mut out32 = vec![0u32; 30];
        <u32 as Elem>::transpose_gather(&table32, 10, &rows, &mut out32);
        assert_eq!(out32, out16.iter().map(|&x| x as u32).collect::<Vec<_>>());
    }

    #[test]
    fn width_selection() {
        assert!(fits_u16(1));
        assert!(fits_u16(65_536));
        assert!(!fits_u16(65_537));
    }
}
