//! Memory accounting — the paper's "memory manager" (§III-C).
//!
//! "Once our memory manager detects that the overall memory usage exceeds
//! a critical threshold, it flags the start of our algorithm's compression
//! phase." [`MemoryManager`] tracks the bytes charged for SFA state
//! payloads and raises a one-shot flag when a watermark is crossed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Byte accounting with a one-shot watermark trigger.
#[derive(Debug)]
pub struct MemoryManager {
    used: AtomicU64,
    peak: AtomicU64,
    limit: Option<u64>,
    tripped: AtomicBool,
}

impl MemoryManager {
    /// Manager with an optional watermark (`None` = never trips).
    pub fn new(limit_bytes: Option<usize>) -> Self {
        MemoryManager {
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            limit: limit_bytes.map(|b| b as u64),
            tripped: AtomicBool::new(false),
        }
    }

    /// Charge `bytes`; returns `true` exactly once — for the charge that
    /// first crosses the watermark (the caller then initiates the
    /// compression phase).
    pub fn charge(&self, bytes: usize) -> bool {
        let new = self.used.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
        self.peak.fetch_max(new, Ordering::Relaxed);
        match self.limit {
            Some(limit) if new > limit => !self.tripped.swap(true, Ordering::AcqRel),
            _ => false,
        }
    }

    /// Credit back `bytes` (e.g. after compression shrinks a state).
    pub fn credit(&self, bytes: usize) {
        self.used.fetch_sub(bytes as u64, Ordering::Relaxed);
    }

    /// Bytes currently accounted.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of accounted bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Has the watermark been crossed?
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }

    /// The configured watermark, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// Level-triggered companion to the one-shot [`charge`](Self::charge)
    /// edge: is current usage above the watermark *right now*? The tier
    /// ladder (`crate::store`) polls this to decide whether another round
    /// of demotion is needed — unlike `is_tripped`, it goes back to
    /// `false` once demotion has credited enough bytes.
    pub fn over_limit(&self) -> bool {
        match self.limit {
            Some(limit) => self.used() > limit,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_limit_never_trips() {
        let m = MemoryManager::new(None);
        assert!(!m.charge(usize::MAX / 2));
        assert!(!m.is_tripped());
    }

    #[test]
    fn trips_exactly_once() {
        let m = MemoryManager::new(Some(100));
        assert!(!m.charge(60));
        assert!(m.charge(60), "first crossing must report true");
        assert!(!m.charge(60), "subsequent charges must not re-trigger");
        assert!(m.is_tripped());
        assert_eq!(m.used(), 180);
    }

    #[test]
    fn credit_reduces_usage_but_keeps_trip_state() {
        let m = MemoryManager::new(Some(100));
        m.charge(150);
        assert!(m.is_tripped());
        m.credit(140);
        assert_eq!(m.used(), 10);
        assert_eq!(m.peak(), 150, "peak must survive credits");
        assert!(m.is_tripped(), "trip flag is one-shot by design");
    }

    #[test]
    fn over_limit_is_level_triggered() {
        let m = MemoryManager::new(Some(100));
        assert!(!m.over_limit());
        m.charge(150);
        assert!(m.over_limit());
        m.credit(100);
        assert!(!m.over_limit(), "dropping below the watermark clears it");
        assert!(m.is_tripped(), "...but the one-shot edge stays latched");
        assert_eq!(m.limit(), Some(100));
        assert_eq!(MemoryManager::new(None).limit(), None);
        assert!(!MemoryManager::new(None).over_limit());
    }

    #[test]
    fn concurrent_charges_trip_once() {
        let m = std::sync::Arc::new(MemoryManager::new(Some(1000)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                let mut fired = 0;
                for _ in 0..1000 {
                    if m.charge(10) {
                        fired += 1;
                    }
                }
                fired
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1, "exactly one thread observes the crossing");
    }
}
