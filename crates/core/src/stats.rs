//! Construction statistics.
//!
//! Everything the paper reports about a construction run: state counts,
//! comparison behaviour (fingerprint short-circuits vs exhaustive
//! compares — the §III-A argument), per-phase times (Table II's "with
//! compression" columns), memory, and queue-contention snapshots (the E4
//! HITM proxy).

use crate::sfa::Sfa;
use sfa_sync::counters::ContentionSnapshot;

/// Counters one construction run accumulates (workers keep thread-local
/// copies and merge at the end, so the hot path never touches shared
/// atomics for statistics).
/// `#[non_exhaustive]`: construct through [`ConstructionStats::with_threads`]
/// (or `Default`) so future counters can be added without breaking
/// downstream crates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[non_exhaustive]
pub struct ConstructionStats {
    /// SFA states in the result.
    pub states: u64,
    /// Candidate states generated (`|Qₛ| × |Σ|`).
    pub candidates: u64,
    /// Candidates that turned out to be duplicates of existing states.
    pub duplicates: u64,
    /// Pairs whose fingerprints matched and required the exhaustive,
    /// byte-by-byte comparison.
    pub exhaustive_compares: u64,
    /// Exhaustive comparisons that found the states *different* — true
    /// fingerprint collisions.
    pub fingerprint_collisions: u64,
    /// Worker threads used (1 for the sequential variants).
    pub threads: usize,
    /// Wall time of the whole construction in seconds.
    pub total_secs: f64,
    /// Wall time spent before the compression phase started.
    pub phase1_secs: f64,
    /// Wall time of the stop-the-world compression phase (0 when it never
    /// ran).
    pub compression_secs: f64,
    /// Wall time after compression resumed (0 when it never ran).
    pub phase3_secs: f64,
    /// Whether the compression phase ran.
    pub compressed: bool,
    /// Raw bytes all state vectors would occupy uncompressed.
    pub uncompressed_bytes: u64,
    /// Bytes the retained mapping store actually occupies.
    pub stored_bytes: u64,
    /// Peak bytes of state payloads held at any moment during
    /// construction (the probabilistic mode's headline saving).
    pub peak_bytes: u64,
    /// Payload bytes still charged to the memory manager when the build
    /// finished — for a build without compression or spill this equals
    /// [`stored_bytes`](Self::stored_bytes); a gap means accounting
    /// drifted (e.g. uncredited race losers).
    pub resident_bytes: u64,
    /// Total payload bytes written to the spill tier (`crate::store`)
    /// over the whole build (0 when no spill directory was configured or
    /// the cap was never exceeded).
    pub spilled_bytes: u64,
    /// State payloads demoted down the tier ladder (hot → compressed →
    /// disk; each batch/record demotion counts once).
    pub demotions: u64,
    /// Spilled payloads promoted back on access.
    pub promotions: u64,
    /// Merged queue/table contention counters.
    pub contention: ContentionSnapshot,
}

impl ConstructionStats {
    /// Fresh counters for a run on `threads` workers (every other field
    /// zeroed) — the constructor the engines use, and the only way for
    /// downstream code to build a value of this `#[non_exhaustive]`
    /// struct.
    pub fn with_threads(threads: usize) -> Self {
        ConstructionStats {
            threads,
            ..Default::default()
        }
    }

    /// Compression ratio achieved by the retained store.
    ///
    /// `1.0` when nothing was measured (both byte counts zero — e.g. a
    /// fresh/default stats value). When the retained store is empty but
    /// the uncompressed size is not (every mapping compressed away), the
    /// ratio is genuinely unbounded and this returns [`f64::INFINITY`]
    /// rather than silently claiming "no compression". Callers that
    /// serialize the value should treat non-finite ratios as "degenerate"
    /// (the JSON layer renders them as `null`).
    pub fn compression_ratio(&self) -> f64 {
        match (self.uncompressed_bytes, self.stored_bytes) {
            (0, 0) => 1.0,
            (_, 0) => f64::INFINITY,
            (u, s) => u as f64 / s as f64,
        }
    }

    /// Fraction of candidate states that were duplicates.
    pub fn duplicate_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.duplicates as f64 / self.candidates as f64
        }
    }

    /// Fraction of exhaustive comparisons that were *wasted* — i.e. run on
    /// states that turned out different (true fingerprint collisions).
    /// A duplicate candidate always costs exactly one exhaustive compare
    /// (to confirm equality); the fingerprint's job is to make this ratio
    /// ≈ 0 by filtering every *non*-matching chain neighbour (§III-A).
    pub fn wasted_compare_rate(&self) -> f64 {
        if self.exhaustive_compares == 0 {
            0.0
        } else {
            self.fingerprint_collisions as f64 / self.exhaustive_compares as f64
        }
    }
}

/// A constructed SFA together with its statistics.
#[derive(Debug)]
pub struct ConstructionResult {
    /// The automaton.
    pub sfa: Sfa,
    /// Run statistics.
    pub stats: ConstructionStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let stats = ConstructionStats {
            states: 10,
            candidates: 200,
            duplicates: 190,
            exhaustive_compares: 50,
            fingerprint_collisions: 2,
            uncompressed_bytes: 1000,
            stored_bytes: 50,
            ..Default::default()
        };
        assert!((stats.compression_ratio() - 20.0).abs() < 1e-12);
        assert!((stats.duplicate_rate() - 0.95).abs() < 1e-12);
        assert!((stats.wasted_compare_rate() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let stats = ConstructionStats::default();
        assert_eq!(stats.compression_ratio(), 1.0);
        assert_eq!(stats.duplicate_rate(), 0.0);
        assert_eq!(stats.wasted_compare_rate(), 0.0);
    }

    /// Regression: an empty retained store with a non-zero uncompressed
    /// size used to report `1.0` ("no compression") — the degenerate
    /// all-compressed-away case must be distinguishable from the
    /// nothing-measured case.
    #[test]
    fn compression_ratio_zero_field_combinations() {
        // Nothing measured at all: neutral 1.0.
        let nothing = ConstructionStats::default();
        assert_eq!(nothing.compression_ratio(), 1.0);

        // Empty retained store, non-empty uncompressed size: unbounded.
        let all_compressed = ConstructionStats {
            uncompressed_bytes: 4096,
            stored_bytes: 0,
            ..Default::default()
        };
        assert!(all_compressed.compression_ratio().is_infinite());
        assert!(all_compressed.compression_ratio() > 0.0);

        // Stored but nothing uncompressed (inflation-only corner): 0.0,
        // not a division panic.
        let inflated = ConstructionStats {
            uncompressed_bytes: 0,
            stored_bytes: 128,
            ..Default::default()
        };
        assert_eq!(inflated.compression_ratio(), 0.0);
    }
}
