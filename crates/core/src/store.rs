//! Tiered state storage — graceful degradation under memory pressure.
//!
//! The paper's memory manager (§III-C) has exactly two tiers: raw state
//! vectors, and — once the watermark trips — codec-compressed vectors.
//! Past that point a crossed payload budget was a hard
//! [`SfaError::BudgetExceeded`]. This module adds the third rung of the
//! ladder and turns the budget into a *demotion driver*:
//!
//! ```text
//! hot (raw arena)  →  compressed (in-memory, sfa_compress)  →  spilled
//!                                                              (mmap'd
//!                                                              file)
//! ```
//!
//! Demotion is cap-driven (`MemoryManager::over_limit`), promotion is
//! access-driven: touching a spilled payload fetches its bytes back
//! (and, in the parallel engine, re-installs them in the arena). Every
//! tier transition moves *byte-identical* payloads — the codecs are
//! lossless and the spill file stores the exact compressed blob that was
//! resident — so the constructed state graph, the canonical renumbering,
//! and therefore the final artifact are unchanged by any demotion
//! schedule. Spill files are scratch (checkpoints remain the durable
//! artifact): they are written through [`crate::io::atomic_write`], so a
//! crash mid-spill leaves at most a `.tmp` sibling, and a fresh
//! [`SpillStore`] sweeps stale segments on creation.
//!
//! Fault sites: `store/demote` (before a segment write), `store/promote`
//! (before a spilled fetch), `io/mmap` (inside [`crate::io::Mmap`]).
//! Transient faults are absorbed by the bounded-backoff
//! [`RetryPolicy`]; everything else surfaces typed.

use crate::elem::Elem;
use crate::io::{self, IoError, Mmap};
use crate::memory::MemoryManager;
use crate::runtime::RetryPolicy;
use crate::sfa::CodecChoice;
use crate::SfaError;
use sfa_compress::Codec;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

// Global-registry tier metrics (DESIGN.md §12). Gauges are set by the
// engines at demotion points; counters/histogram by the store itself.
static OBS_HOT_BYTES: crate::obs::LazyGauge = crate::obs::LazyGauge::new("sfa_store_hot_bytes");
static OBS_COMPRESSED_BYTES: crate::obs::LazyGauge =
    crate::obs::LazyGauge::new("sfa_store_compressed_bytes");
static OBS_SPILLED_BYTES: crate::obs::LazyGauge =
    crate::obs::LazyGauge::new("sfa_store_spilled_bytes");
static OBS_DEMOTIONS: crate::obs::LazyCounter =
    crate::obs::LazyCounter::new("sfa_store_demotions_total");
static OBS_PROMOTIONS: crate::obs::LazyCounter =
    crate::obs::LazyCounter::new("sfa_store_promotions_total");
static OBS_SPILL_WRITE_NANOS: crate::obs::LazyHistogram =
    crate::obs::LazyHistogram::new("sfa_store_spill_write_nanos");

/// Publish the per-tier byte gauges (engines call this whenever a tier
/// transition changes the split).
pub(crate) fn publish_tier_gauges(hot: u64, compressed: u64, spilled: u64) {
    OBS_HOT_BYTES.set(hot.min(i64::MAX as u64) as i64);
    OBS_COMPRESSED_BYTES.set(compressed.min(i64::MAX as u64) as i64);
    OBS_SPILLED_BYTES.set(spilled.min(i64::MAX as u64) as i64);
}

/// Configuration of the spill tier: where segments go and how many
/// resident payload bytes to allow before demoting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillConfig {
    /// Directory the spill segments are written to (created if missing;
    /// must be writable — probed up front, see
    /// [`SfaError::SpillDirUnavailable`](crate::SfaError)).
    pub dir: PathBuf,
    /// Resident payload-byte watermark that drives demotion.
    pub cap_bytes: u64,
    /// Codec for the compressed tier (sequential engine; the parallel
    /// engine uses its `ParallelOptions` codec).
    pub codec: CodecChoice,
    /// Bounded backoff absorbing transient spill I/O errors.
    pub retry: RetryPolicy,
}

impl SpillConfig {
    /// Spill to `dir`, demoting once resident payloads exceed
    /// `cap_bytes` (Deflate compressed tier, default retry policy).
    pub fn new(dir: impl Into<PathBuf>, cap_bytes: u64) -> SpillConfig {
        SpillConfig {
            dir: dir.into(),
            cap_bytes,
            codec: CodecChoice::Deflate,
            retry: RetryPolicy::default(),
        }
    }
}

/// Location of one spilled payload inside a [`SpillStore`] segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillRef {
    /// Segment index.
    pub seg: u32,
    /// Byte offset inside the segment.
    pub off: u32,
    /// Payload length in bytes.
    pub len: u32,
}

/// Retry `f` under `policy`, sleeping the exponential backoff between
/// transient failures (`Interrupted`/`WouldBlock`/`TimedOut`).
fn retry_io<T>(
    policy: &RetryPolicy,
    mut f: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let mut attempt = 1u32;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::Interrupted
                        | std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                ) && attempt < policy.max_attempts =>
            {
                std::thread::sleep(policy.backoff(attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

fn spill_io_error(e: std::io::Error) -> SfaError {
    SfaError::Artifact(IoError::Io(format!("spill tier: {e}")))
}

/// The disk tier: immutable append-only segments of compressed state
/// payloads, written atomically and read back through a memory map.
/// Thread-safe — the parallel engine's spill leader writes segments at
/// quiescence while any worker may fetch concurrently afterwards.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
    retry: RetryPolicy,
    segments: RwLock<Vec<Mmap>>,
    spilled_bytes: AtomicU64,
    demotions: AtomicU64,
    promotions: AtomicU64,
}

impl SpillStore {
    /// Open the spill directory: create it if missing, sweep stale
    /// `seg-*.spill` segments (and `.tmp` siblings) left by a killed
    /// predecessor, and probe writability — a read-only filesystem is
    /// rejected here, typed, before any construction work starts.
    pub fn create(dir: &Path, retry: RetryPolicy) -> Result<SpillStore, SfaError> {
        let unavailable = |reason: String| SfaError::SpillDirUnavailable {
            path: dir.to_path_buf(),
            reason,
        };
        std::fs::create_dir_all(dir).map_err(|e| unavailable(e.to_string()))?;
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.ends_with(".spill") || name.ends_with(".spill.tmp") {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        let probe = dir.join(".probe.spill");
        io::atomic_write(&probe, b"sfa-spill-probe").map_err(|e| unavailable(e.to_string()))?;
        std::fs::remove_file(&probe).map_err(|e| unavailable(e.to_string()))?;
        Ok(SpillStore {
            dir: dir.to_path_buf(),
            retry,
            segments: RwLock::new(Vec::new()),
            spilled_bytes: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
        })
    }

    /// Atomically write one segment holding `records` demoted payloads
    /// and map it back in; returns the segment index for [`SpillRef`]s.
    ///
    /// Fault sites: `store/demote` (before the write), `io/mmap` (inside
    /// the map-back). Transients are retried per the policy.
    pub fn write_segment(&self, bytes: &[u8], records: u64) -> Result<u32, SfaError> {
        // Poison-tolerant: a panic under this lock (e.g. an injected
        // crash inside the write) can only happen before the push, so
        // the segment list is still consistent for survivors and Drop.
        let mut segments = self
            .segments
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let seg = segments.len() as u32;
        let path = self.dir.join(format!("seg-{seg}.spill"));
        let watch = crate::obs::Stopwatch::start();
        retry_io(&self.retry, || {
            sfa_sync::fault_point!("store/demote")?;
            io::atomic_write(&path, bytes)
        })
        .map_err(spill_io_error)?;
        watch.record(&OBS_SPILL_WRITE_NANOS);
        let map = retry_io(&self.retry, || Mmap::open(&path)).map_err(spill_io_error)?;
        segments.push(map);
        self.spilled_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.demotions.fetch_add(records, Ordering::Relaxed);
        OBS_DEMOTIONS.add(records);
        Ok(seg)
    }

    /// Fetch the payload at `r` into `out` (cleared first). The bytes
    /// are exactly what was demoted — the promotion path's identity
    /// guarantee rests on this.
    ///
    /// Fault site: `store/promote` (before the read); transients retried.
    pub fn fetch(&self, r: SpillRef, out: &mut Vec<u8>) -> Result<(), SfaError> {
        retry_io(&self.retry, || {
            sfa_sync::fault_point!("store/promote")?;
            Ok(())
        })
        .map_err(spill_io_error)?;
        let segments = self
            .segments
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let seg = segments
            .get(r.seg as usize)
            .ok_or(SfaError::Artifact(IoError::Corrupt(
                "spill ref names a segment that was never written",
            )))?;
        let start = r.off as usize;
        let end = start + r.len as usize;
        let slice = seg
            .as_slice()
            .get(start..end)
            .ok_or(SfaError::Artifact(IoError::Corrupt(
                "spill ref exceeds its segment",
            )))?;
        out.clear();
        out.extend_from_slice(slice);
        self.promotions.fetch_add(1, Ordering::Relaxed);
        OBS_PROMOTIONS.inc();
        Ok(())
    }

    /// Total bytes written to the spill tier over the store's lifetime.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes.load(Ordering::Relaxed)
    }

    /// Payload demotions into this store.
    pub fn demotions(&self) -> u64 {
        self.demotions.load(Ordering::Relaxed)
    }

    /// Payload fetches out of this store.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        // Segments are scratch: unmap, then sweep the files. Tolerate a
        // poisoned lock — a crashed writer left the list consistent, and
        // panicking here during an unwind would abort the process.
        self.segments
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        for seg in 0.. {
            let path = self.dir.join(format!("seg-{seg}.spill"));
            if std::fs::remove_file(&path).is_err() {
                break;
            }
        }
    }
}

/// Decoded-batch cache entries the sequential tier keeps hot.
const CACHE_BATCHES: usize = 2;
/// Target frozen-batch payload size in bytes.
const BATCH_BYTES: usize = 32 * 1024;

/// One frozen (demoted) batch of rows.
enum Frozen {
    /// Compressed in memory (middle tier).
    Compressed(Box<[u8]>),
    /// On disk (bottom tier) — the blob in the segment is the exact
    /// compressed bytes that were resident.
    Spilled(SpillRef),
}

/// The sequential engine's mapping arena with the tier ladder attached.
///
/// Logically this is the flat `Vec<E>` of `SeqEngine` — rows addressed
/// by state id, appended at the end. Physically the oldest *complete*
/// batches (strictly below the engine's processed cursor, so the rows
/// are no longer the current source state) are demoted while the
/// resident-byte cap is exceeded: first codec-compressed in memory, then
/// spilled to disk. Reads of frozen rows go through a tiny
/// most-recently-used decoded-batch cache, which is what keeps the
/// duplicate-heavy compare traffic of sink-dominated DFAs from
/// thrashing the codec.
pub(crate) struct TieredRows<E: Elem> {
    n: usize,
    batch_rows: usize,
    /// Rows `[frozen_rows() ..)`, flat.
    hot: Vec<E>,
    frozen: Vec<Frozen>,
    codec: Option<Box<dyn Codec>>,
    spill: Option<SpillStore>,
    mem: MemoryManager,
    /// MRU-first decoded batches: `(batch index, rows)`.
    cache: Vec<(usize, Vec<E>)>,
    scratch: Vec<u8>,
    pub demotions: u64,
    pub promotions: u64,
}

impl<E: Elem> TieredRows<E> {
    /// Plain passthrough arena (no cap, no demotion) — byte-for-byte the
    /// behaviour the engine had before tiering existed.
    pub fn plain(n: usize) -> TieredRows<E> {
        TieredRows {
            n,
            batch_rows: 1,
            hot: Vec::with_capacity(n * 64),
            frozen: Vec::new(),
            codec: None,
            spill: None,
            mem: MemoryManager::new(None),
            cache: Vec::new(),
            scratch: Vec::new(),
            demotions: 0,
            promotions: 0,
        }
    }

    /// Arena with the full ladder enabled per `cfg`.
    pub fn spilling(n: usize, cfg: &SpillConfig) -> Result<TieredRows<E>, SfaError> {
        let store = SpillStore::create(&cfg.dir, cfg.retry.clone())?;
        let row_bytes = (n * E::BYTES).max(1);
        // A batch must be small relative to the cap, or demoting one can
        // never bring usage back under it (a 32 KiB batch is useless
        // under a 256-byte cap); a quarter of the cap keeps several
        // batches' worth of headroom hot.
        let batch_bytes = BATCH_BYTES.min(((cfg.cap_bytes / 4) as usize).max(row_bytes));
        Ok(TieredRows {
            n,
            batch_rows: (batch_bytes / row_bytes).max(1),
            hot: Vec::with_capacity(n * 64),
            frozen: Vec::new(),
            codec: Some(cfg.codec.codec()),
            spill: Some(store),
            mem: MemoryManager::new(Some(cfg.cap_bytes as usize)),
            cache: Vec::new(),
            scratch: Vec::new(),
            demotions: 0,
            promotions: 0,
        })
    }

    fn frozen_rows(&self) -> usize {
        self.frozen.len() * self.batch_rows
    }

    /// Total rows (all tiers).
    pub fn num_rows(&self) -> usize {
        self.frozen_rows() + self.hot.len() / self.n
    }

    /// Logical payload size in elements (as if nothing were demoted).
    pub fn total_elems(&self) -> usize {
        self.num_rows() * self.n
    }

    /// Bytes currently charged as resident (hot + compressed tiers).
    pub fn resident_bytes(&self) -> u64 {
        self.mem.used()
    }

    /// High-water mark of resident bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.mem.peak()
    }

    /// Total bytes ever written to the spill tier.
    pub fn spilled_bytes(&self) -> u64 {
        self.spill.as_ref().map_or(0, |s| s.spilled_bytes())
    }

    /// Append one row at the next id.
    pub fn push_row(&mut self, row: &[E]) {
        debug_assert_eq!(row.len(), self.n);
        self.hot.extend_from_slice(row);
        self.mem.charge(row.len() * E::BYTES);
    }

    /// The row for `id`. Hot rows are a direct slice; frozen rows are
    /// decoded through the batch cache (promoting from disk if spilled).
    pub fn row(&mut self, id: usize) -> Result<&[E], SfaError> {
        let fr = self.frozen_rows();
        if id >= fr {
            let off = (id - fr) * self.n;
            return Ok(&self.hot[off..off + self.n]);
        }
        let batch = id / self.batch_rows;
        let off = (id % self.batch_rows) * self.n;
        let pos = self.cache.iter().position(|(b, _)| *b == batch);
        let pos = match pos {
            Some(p) => p,
            None => {
                let rows = self.decode_batch(batch)?;
                self.cache.insert(0, (batch, rows));
                self.cache.truncate(CACHE_BATCHES);
                0
            }
        };
        if pos != 0 {
            let entry = self.cache.remove(pos);
            self.cache.insert(0, entry);
        }
        let rows = &self.cache[0].1;
        Ok(&rows[off..off + self.n])
    }

    fn decode_batch(&mut self, batch: usize) -> Result<Vec<E>, SfaError> {
        let codec = self
            .codec
            .as_ref()
            .expect("frozen batches only exist with a codec");
        let blob: &[u8] = match &self.frozen[batch] {
            Frozen::Compressed(b) => b,
            Frozen::Spilled(r) => {
                let store = self.spill.as_ref().expect("spilled batch without a store");
                store.fetch(*r, &mut self.scratch)?;
                self.promotions += 1;
                &self.scratch
            }
        };
        let plain = codec.decompress_to_vec(blob).map_err(|_| {
            SfaError::Artifact(IoError::Corrupt("demoted batch failed to decompress"))
        })?;
        let mut rows = Vec::with_capacity(plain.len() / E::BYTES);
        E::read_bytes(&plain, &mut rows);
        Ok(rows)
    }

    /// Demote while over the cap: freeze complete batches strictly below
    /// `completed_rows` (compressing them in memory), then push the
    /// oldest compressed batches to disk if compression alone is not
    /// enough. No-op in plain mode or while under the cap.
    pub fn maybe_demote(&mut self, completed_rows: usize) -> Result<(), SfaError> {
        if self.codec.is_none() || !self.mem.over_limit() {
            return Ok(());
        }
        // Stage 1: hot → compressed.
        while self.mem.over_limit() {
            let fr = self.frozen_rows();
            if fr + self.batch_rows > completed_rows || self.hot.len() < self.batch_rows * self.n {
                break;
            }
            let take = self.batch_rows * self.n;
            let raw: Vec<E> = self.hot.drain(..take).collect();
            let codec = self.codec.as_ref().expect("checked above");
            let blob = codec.compress_to_vec(E::as_bytes(&raw)).into_boxed_slice();
            self.mem.charge(blob.len());
            self.mem.credit(take * E::BYTES);
            self.frozen.push(Frozen::Compressed(blob));
            self.demotions += 1;
        }
        // Stage 2: compressed → disk, oldest first.
        while self.mem.over_limit() {
            let Some(idx) = self
                .frozen
                .iter()
                .position(|f| matches!(f, Frozen::Compressed(_)))
            else {
                break;
            };
            let Frozen::Compressed(blob) = std::mem::replace(
                &mut self.frozen[idx],
                Frozen::Spilled(SpillRef {
                    seg: 0,
                    off: 0,
                    len: 0,
                }),
            ) else {
                unreachable!()
            };
            let store = self.spill.as_ref().expect("ladder configured with a store");
            let seg = match store.write_segment(&blob, 1) {
                Ok(seg) => seg,
                Err(e) => {
                    // Restore the tier state before surfacing: the batch
                    // is still resident and compressed.
                    self.frozen[idx] = Frozen::Compressed(blob);
                    return Err(e);
                }
            };
            self.frozen[idx] = Frozen::Spilled(SpillRef {
                seg,
                off: 0,
                len: blob.len() as u32,
            });
            self.mem.credit(blob.len());
            self.demotions += 1;
        }
        let compressed: u64 = self
            .frozen
            .iter()
            .map(|f| match f {
                Frozen::Compressed(b) => b.len() as u64,
                Frozen::Spilled(_) => 0,
            })
            .sum();
        publish_tier_gauges(
            (self.hot.len() * E::BYTES) as u64,
            compressed,
            self.spilled_bytes(),
        );
        Ok(())
    }

    /// Decode every tier back into the flat plaintext arena — the shape
    /// checkpoints persist and `finish` hands to `MappingStore`. The
    /// result is byte-identical to a run that never demoted anything.
    pub fn materialize(&mut self) -> Result<Vec<E>, SfaError> {
        let mut out = Vec::with_capacity(self.total_elems());
        for batch in 0..self.frozen.len() {
            let rows = self.decode_batch(batch)?;
            debug_assert_eq!(rows.len(), self.batch_rows * self.n);
            out.extend_from_slice(&rows);
        }
        out.extend_from_slice(&self.hot);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sfa_store_{}_{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spill_store_round_trips_segments() {
        let dir = tmp_dir("roundtrip");
        let store = SpillStore::create(&dir, RetryPolicy::none()).unwrap();
        let seg = store.write_segment(b"hello spill tier", 2).unwrap();
        let mut out = Vec::new();
        store
            .fetch(
                SpillRef {
                    seg,
                    off: 6,
                    len: 5,
                },
                &mut out,
            )
            .unwrap();
        assert_eq!(&out, b"spill");
        assert_eq!(store.demotions(), 2);
        assert_eq!(store.promotions(), 1);
        assert_eq!(store.spilled_bytes(), 16);
        // Out-of-range refs are typed, not panics.
        assert!(store
            .fetch(
                SpillRef {
                    seg,
                    off: 10,
                    len: 100
                },
                &mut out
            )
            .is_err());
        assert!(store
            .fetch(
                SpillRef {
                    seg: 99,
                    off: 0,
                    len: 1
                },
                &mut out
            )
            .is_err());
        drop(store);
        assert!(
            !dir.join("seg-0.spill").exists(),
            "segments are swept on drop"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_sweeps_stale_segments() {
        let dir = tmp_dir("sweep");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("seg-7.spill"), b"stale").unwrap();
        std::fs::write(dir.join("seg-7.spill.tmp"), b"torn").unwrap();
        let _store = SpillStore::create(&dir, RetryPolicy::none()).unwrap();
        assert!(!dir.join("seg-7.spill").exists());
        assert!(!dir.join("seg-7.spill.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn read_only_dir_is_rejected_typed() {
        use std::os::unix::fs::PermissionsExt;
        let dir = tmp_dir("readonly");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o555)).unwrap();
        // Root ignores permission bits; the scenario cannot be staged.
        if std::fs::write(dir.join(".cap_probe"), b"x").is_ok() {
            let _ = std::fs::remove_dir_all(&dir);
            return;
        }
        let err = SpillStore::create(&dir, RetryPolicy::none()).unwrap_err();
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o755)).unwrap();
        match err {
            SfaError::SpillDirUnavailable { path, .. } => assert_eq!(path, dir),
            other => panic!("expected SpillDirUnavailable, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiered_rows_round_trip_through_all_tiers() {
        let dir = tmp_dir("tiers");
        let n = 8usize;
        // Cap small enough that most batches demote all the way to disk.
        let cfg = SpillConfig::new(&dir, 256);
        let mut rows = TieredRows::<u16>::spilling(n, &cfg).unwrap();
        let mut plain = TieredRows::<u16>::plain(n);
        let total = 500usize;
        for id in 0..total {
            let row: Vec<u16> = (0..n as u16)
                .map(|q| (id as u16).wrapping_mul(31) ^ q)
                .collect();
            rows.push_row(&row);
            plain.push_row(&row);
            // Everything below the freshly appended row is "completed".
            rows.maybe_demote(id).unwrap();
        }
        assert!(rows.demotions > 0, "cap must have forced demotions");
        assert!(
            rows.spilled_bytes() > 0,
            "cap must have reached the disk tier"
        );
        assert!(
            rows.resident_bytes() < (total * n * 2) as u64,
            "resident bytes must be below the logical size"
        );
        // Every row reads back identical regardless of tier...
        for id in 0..total {
            let got = rows.row(id).unwrap().to_vec();
            let want = plain.row(id).unwrap().to_vec();
            assert_eq!(got, want, "row {id}");
        }
        assert!(rows.promotions > 0, "reads touched the disk tier");
        // ...and the materialized arena is byte-identical to plain.
        assert_eq!(rows.materialize().unwrap(), plain.materialize().unwrap());
        drop(rows);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
