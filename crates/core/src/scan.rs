//! The latency-hiding scan engine: compact transition tables, K-way
//! software-pipelined chunk scanning, and reduction-tree composition.
//!
//! The paper removes the *cross-chunk* dependency of DFA matching, but
//! the per-chunk inner loop is still one dependent `delta[s*k + sym]`
//! load per symbol. On a modern core an L1 load-to-use is 4–5 cycles
//! and the add feeding it is 1 more, so a single dependency chain runs
//! at ~5–6 cycles/symbol while the load ports could retire 2–3 loads
//! per cycle — over 80% of the scan bandwidth is latency, not work.
//! [`ScanEngine`] attacks this on three fronts:
//!
//! 1. **Compact tables** ([`ScanTable`]). Next-state entries are packed
//!    to u8/u16 when the *pre-scaled* state count fits (reusing the
//!    width rule of [`crate::elem`]), rows are padded to a power-of-two
//!    stride that is a multiple of 64 bytes (so a row never straddles a
//!    cache line and scaling is a shift), and every entry stores
//!    `next_state << shift` — the row *offset* of the successor. The hot
//!    loop is then `s = table[s + sym]`: add + load, no multiply, and no
//!    per-step bounds check (entries and symbols are validated once at
//!    table build; see the safety argument on [`Entry::step`]).
//! 2. **K-way interleaving**. The input is oversubscribed into
//!    `threads × oversubscribe × interleave` chunks and each pool task
//!    scans `interleave` chunks in one software-pipelined loop. The K
//!    chains are independent, so K loads are in flight at once and the
//!    per-symbol cost drops toward the throughput limit instead of the
//!    latency limit. Oversubscription leaves more tasks than workers, so
//!    stragglers rebalance on the FIFO [`TaskPool`] with no new
//!    machinery.
//! 3. **Reduction-tree composition** ([`prefix_compose_on`]). Pass 2
//!    (exact entry states) composes whole chunk mappings with a
//!    Ladner–Fischer-style tree — `O(chunks)` vectorized compositions of
//!    depth `O(log chunks)` on the pool, each one a [`sfa_simd`] gather
//!    over the mapping vectors — instead of a sequential fold on the
//!    submitting thread.
//!
//! Verdicts, positions and counts are byte-identical to the sequential
//! oracle: the chunk geometry changes, but mapping composition is
//! associative and entry states are exact. Governance keeps the same
//! granularity — every worker polls its [`AbortControl`] at least once
//! per [`GOVERNOR_POLL_SYMBOLS`] symbols of its own progress.

use crate::budget::Governor;
use crate::elem::{fits_u16, fits_u8};
use crate::matcher::{panic_payload_message, AbortControl, GOVERNOR_POLL_SYMBOLS};
use crate::runtime::{ByteClassifier, Classified};
use crate::sfa::Sfa;
use crate::SfaError;
use sfa_automata::alphabet::SymbolId;
use sfa_automata::dfa::Dfa;
use sfa_simd::gather_u32;
use sfa_sync::pool::TaskPool;
use std::sync::atomic::{AtomicUsize, Ordering};

// Global-registry scan metrics (DESIGN.md §12); zero-sized no-ops unless
// the `obs` feature is enabled.
static OBS_CHUNKS: crate::obs::LazyCounter = crate::obs::LazyCounter::new("sfa_scan_chunks_total");
static OBS_SYMBOLS: crate::obs::LazyCounter =
    crate::obs::LazyCounter::new("sfa_scan_symbols_total");
static OBS_GATHER_CALLS: crate::obs::LazyCounter =
    crate::obs::LazyCounter::new("sfa_scan_gather_calls_total");

/// Knobs of the interleaved scan (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOptions {
    /// Chunks scanned interleaved per pool task (the K independent
    /// dependency chains). Must be 1, 2, 4 or 8.
    pub interleave: usize,
    /// Task groups per worker thread: the input splits into
    /// `threads × oversubscribe` groups of `interleave` chunks, so a
    /// straggling worker leaves whole groups for its siblings.
    pub oversubscribe: usize,
    /// Smallest chunk worth dispatching (symbols). Inputs below
    /// `min_chunk_symbols` scan as a single chunk — splitting them is
    /// all dispatch overhead. Tests set 1 to force multi-chunk
    /// geometry on tiny inputs.
    pub min_chunk_symbols: usize,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            interleave: 4,
            oversubscribe: 4,
            min_chunk_symbols: 4096,
        }
    }
}

impl ScanOptions {
    /// Validate the knob ranges.
    pub fn validate(&self) -> Result<(), SfaError> {
        if !matches!(self.interleave, 1 | 2 | 4 | 8) {
            return Err(SfaError::InvalidOptions("interleave must be 1, 2, 4 or 8"));
        }
        if self.oversubscribe == 0 {
            return Err(SfaError::InvalidOptions("oversubscribe must be >= 1"));
        }
        if self.min_chunk_symbols == 0 {
            return Err(SfaError::InvalidOptions("min_chunk_symbols must be >= 1"));
        }
        Ok(())
    }
}

/// A 64-byte-aligned allocation for table rows: base address and row
/// stride are both cache-line multiples, so a row is never split
/// across lines.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct CacheLine([u8; 64]);

struct AlignedBuf {
    lines: Box<[CacheLine]>,
}

impl AlignedBuf {
    fn zeroed(bytes: usize) -> AlignedBuf {
        AlignedBuf {
            lines: vec![CacheLine([0u8; 64]); bytes.div_ceil(64)].into_boxed_slice(),
        }
    }

    fn as_slice<T: Entry>(&self, len: usize) -> &[T] {
        assert!(len * T::BYTES <= self.lines.len() * 64);
        // SAFETY: u8/u16/u32 are plain-old-data; the base pointer is
        // 64-byte aligned (≥ align_of::<T>()) and the length is checked
        // against the allocation above.
        unsafe { std::slice::from_raw_parts(self.lines.as_ptr() as *const T, len) }
    }

    fn as_mut_slice<T: Entry>(&mut self, len: usize) -> &mut [T] {
        assert!(len * T::BYTES <= self.lines.len() * 64);
        // SAFETY: as in `as_slice`, plus exclusive access via `&mut`.
        unsafe { std::slice::from_raw_parts_mut(self.lines.as_mut_ptr() as *mut T, len) }
    }
}

/// Entry width of a [`ScanTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Packed {
    U8,
    U16,
    U32,
}

/// A packed table entry: a pre-scaled row offset (`next_state << shift`).
trait Entry: Copy + Send + Sync + 'static {
    const BYTES: usize;
    fn pack(v: u32) -> Self;
    fn unpack(self) -> u32;

    /// One transition: `s` is the current row offset, `sym` the input
    /// symbol. Returns the successor's row offset.
    ///
    /// # Safety argument (why `get_unchecked` is sound)
    ///
    /// Build-time validation guarantees every stored entry — including
    /// the padding columns, which hold state 0's offset — is
    /// `next << shift` with `next < num_states`, and the scaled start
    /// satisfies the same bound. So `s ≤ (num_states-1) << shift` at
    /// every step by induction. The symbol is masked to `< stride`,
    /// hence `s + (sym & mask) < num_states << shift = tbl.len()`.
    /// Out-of-alphabet symbols (`sym ≥ k`) thus read a padding entry
    /// and continue on a valid (if meaningless) state instead of
    /// faulting — the same "garbage in, defined garbage out" contract
    /// as `Sfa::step`'s checked indexing, without the per-step branch.
    #[inline(always)]
    fn step(tbl: &[Self], mask: u32, s: u32, sym: u8) -> u32 {
        let idx = (s + (sym as u32 & mask)) as usize;
        debug_assert!(idx < tbl.len());
        // SAFETY: see above — idx < num_states << shift == tbl.len().
        unsafe { tbl.get_unchecked(idx) }.unpack()
    }
}

impl Entry for u8 {
    const BYTES: usize = 1;
    #[inline(always)]
    fn pack(v: u32) -> u8 {
        debug_assert!(v <= u8::MAX as u32);
        v as u8
    }
    #[inline(always)]
    fn unpack(self) -> u32 {
        self as u32
    }
}

impl Entry for u16 {
    const BYTES: usize = 2;
    #[inline(always)]
    fn pack(v: u32) -> u16 {
        debug_assert!(v <= u16::MAX as u32);
        v as u16
    }
    #[inline(always)]
    fn unpack(self) -> u32 {
        self as u32
    }
}

impl Entry for u32 {
    const BYTES: usize = 4;
    #[inline(always)]
    fn pack(v: u32) -> u32 {
        v
    }
    #[inline(always)]
    fn unpack(self) -> u32 {
        self
    }
}

/// A compact, cache-aware, pre-scaled transition table (module docs,
/// point 1).
pub struct ScanTable {
    buf: AlignedBuf,
    packed: Packed,
    /// Entries = `num_states << shift`.
    len: usize,
    num_states: usize,
    k: usize,
    /// Row stride in entries: a power of two, ≥ k, row bytes a multiple
    /// of 64.
    stride: usize,
    shift: u32,
    mask: u32,
    /// The automaton's start state, pre-scaled.
    start: u32,
}

impl std::fmt::Debug for ScanTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanTable")
            .field("entry_bytes", &self.entry_bytes())
            .field("num_states", &self.num_states)
            .field("k", &self.k)
            .field("stride", &self.stride)
            .finish()
    }
}

impl ScanTable {
    /// Build from a row-major `num_states × k` table of successor state
    /// ids. Validates every entry once — the hot loop never re-checks.
    /// Returns `Err` (not a panic) for a malformed table, so a poisoned
    /// automaton surfaces as [`SfaError::WorkerPanic`] at match time,
    /// exactly like the checked indexing it replaces.
    pub fn build(
        table: &[u32],
        num_states: usize,
        k: usize,
        start: u32,
    ) -> Result<ScanTable, String> {
        if num_states == 0 || k == 0 || table.len() != num_states * k {
            return Err(format!(
                "malformed transition table: {num_states} states x {k} symbols, {} entries",
                table.len()
            ));
        }
        if (start as usize) >= num_states {
            return Err(format!(
                "start state {start} out of bounds ({num_states} states)"
            ));
        }
        if let Some(&bad) = table.iter().find(|&&t| t as usize >= num_states) {
            return Err(format!(
                "state id {bad} out of bounds ({num_states} states)"
            ));
        }
        let (packed, stride) = Self::choose_layout(num_states, k)?;
        let shift = stride.trailing_zeros();
        let len = num_states * stride;
        let mut this = ScanTable {
            buf: AlignedBuf::zeroed(len * entry_bytes(packed)),
            packed,
            len,
            num_states,
            k,
            stride,
            shift,
            mask: (stride - 1) as u32,
            start: start << shift,
        };
        match packed {
            Packed::U8 => this.fill::<u8>(table),
            Packed::U16 => this.fill::<u16>(table),
            Packed::U32 => this.fill::<u32>(table),
        }
        Ok(this)
    }

    /// Smallest entry width whose pre-scaled offsets fit, with the
    /// width's stride (rows must cover ≥ 64 bytes *and* ≥ k entries).
    fn choose_layout(num_states: usize, k: usize) -> Result<(Packed, usize), String> {
        for packed in [Packed::U8, Packed::U16, Packed::U32] {
            let bytes = entry_bytes(packed);
            let stride = k.next_power_of_two().max(64 / bytes);
            // Ids 0 ..= (num_states-1) << shift must fit the entry, i.e.
            // the id *count* `num_states << shift` minus the final
            // stride-1 padding positions; reuse the elem width rules.
            let scaled_ids = (num_states as u64 - 1) * stride as u64 + 1;
            let fits = match packed {
                Packed::U8 => scaled_ids <= u32::MAX as u64 && fits_u8(scaled_ids as u32),
                Packed::U16 => scaled_ids <= u32::MAX as u64 && fits_u16(scaled_ids as u32),
                Packed::U32 => (num_states as u64) * stride as u64 <= u32::MAX as u64,
            };
            if fits {
                return Ok((packed, stride));
            }
        }
        Err(format!(
            "scan table of {num_states} states x {k} symbols exceeds 32-bit row offsets"
        ))
    }

    fn fill<T: Entry>(&mut self, table: &[u32]) {
        let (k, stride, shift) = (self.k, self.stride, self.shift);
        let dst = self.buf.as_mut_slice::<T>(self.len);
        for (s, row) in dst.chunks_mut(stride).enumerate() {
            let src = &table[s * k..(s + 1) * k];
            for (sym, slot) in row.iter_mut().enumerate() {
                // Padding columns (sym ≥ k) keep state 0's offset so a
                // masked out-of-alphabet symbol still lands in bounds.
                let next = if sym < k { src[sym] } else { 0 };
                *slot = T::pack(next << shift);
            }
        }
    }

    fn entries<T: Entry>(&self) -> &[T] {
        debug_assert_eq!(T::BYTES, self.entry_bytes());
        self.buf.as_slice::<T>(self.len)
    }

    /// Bytes per packed entry (1, 2 or 4).
    pub fn entry_bytes(&self) -> usize {
        entry_bytes(self.packed)
    }

    /// Entries per row (power of two; row bytes are a multiple of 64).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Total table size in bytes (before line rounding).
    pub fn table_bytes(&self) -> usize {
        self.len * self.entry_bytes()
    }

    /// The pre-scale shift: `offset = state << shift`.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// The start state's row offset.
    pub(crate) fn start_offset(&self) -> u32 {
        self.start
    }

    /// Scale a state id to its row offset.
    #[inline]
    pub(crate) fn scale(&self, state: u32) -> u32 {
        debug_assert!((state as usize) < self.num_states);
        state << self.shift
    }

    /// Scan a group of ≤ K chunks interleaved from `start`; writes each
    /// chunk's final *scaled* state to `out`. Returns `false` if the
    /// scan was aborted via `ctl`.
    fn scan_group(
        &self,
        group: &[&[SymbolId]],
        out: &mut [u32],
        ctl: &AbortControl,
        k_way: usize,
    ) -> bool {
        match self.packed {
            Packed::U8 => scan_group_width::<u8>(
                self.entries(),
                self.mask,
                self.start,
                group,
                out,
                ctl,
                k_way,
            ),
            Packed::U16 => scan_group_width::<u16>(
                self.entries(),
                self.mask,
                self.start,
                group,
                out,
                ctl,
                k_way,
            ),
            Packed::U32 => scan_group_width::<u32>(
                self.entries(),
                self.mask,
                self.start,
                group,
                out,
                ctl,
                k_way,
            ),
        }
    }

    /// Byte-classifying variant of [`Self::scan_group`]: `offsets[j]` is
    /// chunk j's absolute byte offset for [`SfaError::InvalidByte`].
    #[allow(clippy::too_many_arguments)]
    fn scan_group_bytes(
        &self,
        classifier: &ByteClassifier,
        group: &[&[u8]],
        offsets: &[u64],
        out: &mut [u32],
        ctl: &AbortControl,
        k_way: usize,
    ) -> bool {
        match self.packed {
            Packed::U8 => scan_group_bytes_width::<u8>(
                self.entries(),
                self.mask,
                self.start,
                classifier,
                group,
                offsets,
                out,
                ctl,
                k_way,
            ),
            Packed::U16 => scan_group_bytes_width::<u16>(
                self.entries(),
                self.mask,
                self.start,
                classifier,
                group,
                offsets,
                out,
                ctl,
                k_way,
            ),
            Packed::U32 => scan_group_bytes_width::<u32>(
                self.entries(),
                self.mask,
                self.start,
                classifier,
                group,
                offsets,
                out,
                ctl,
                k_way,
            ),
        }
    }

    /// Count accepting positions over a group of ≤ K chunks interleaved,
    /// each lane starting from its own (scaled) entry state.
    fn count_group(
        &self,
        accepting: &[bool],
        group: &[&[SymbolId]],
        entries_scaled: &[u32],
        out: &mut [u64],
        ctl: &AbortControl,
        k_way: usize,
    ) -> bool {
        match self.packed {
            Packed::U8 => count_group_width::<u8>(
                self.entries(),
                self.mask,
                self.shift,
                accepting,
                group,
                entries_scaled,
                out,
                ctl,
                k_way,
            ),
            Packed::U16 => count_group_width::<u16>(
                self.entries(),
                self.mask,
                self.shift,
                accepting,
                group,
                entries_scaled,
                out,
                ctl,
                k_way,
            ),
            Packed::U32 => count_group_width::<u32>(
                self.entries(),
                self.mask,
                self.shift,
                accepting,
                group,
                entries_scaled,
                out,
                ctl,
                k_way,
            ),
        }
    }

    /// Single-chain scan of one whole input from `from` (scaled);
    /// `None` if aborted.
    pub(crate) fn scan_lane(
        &self,
        input: &[SymbolId],
        from: u32,
        ctl: &AbortControl,
    ) -> Option<u32> {
        match self.packed {
            Packed::U8 => scan_lane_width::<u8>(self.entries(), self.mask, from, input, ctl),
            Packed::U16 => scan_lane_width::<u16>(self.entries(), self.mask, from, input, ctl),
            Packed::U32 => scan_lane_width::<u32>(self.entries(), self.mask, from, input, ctl),
        }
    }

    /// Scan one chunk from a (scaled) entry state until the first
    /// accepting position; `Ok(None)` = no match, `Err(())` = aborted.
    /// The position is 1-based (symbols consumed), matching
    /// `Dfa::first_match_end`.
    fn find_first_lane(
        &self,
        accepting: &[bool],
        input: &[SymbolId],
        from: u32,
        ctl: &AbortControl,
        stop: impl Fn() -> bool,
    ) -> Result<Option<usize>, ()> {
        match self.packed {
            Packed::U8 => find_first_width::<u8>(
                self.entries(),
                self.mask,
                self.shift,
                accepting,
                input,
                from,
                ctl,
                stop,
            ),
            Packed::U16 => find_first_width::<u16>(
                self.entries(),
                self.mask,
                self.shift,
                accepting,
                input,
                from,
                ctl,
                stop,
            ),
            Packed::U32 => find_first_width::<u32>(
                self.entries(),
                self.mask,
                self.shift,
                accepting,
                input,
                from,
                ctl,
                stop,
            ),
        }
    }
}

fn entry_bytes(packed: Packed) -> usize {
    match packed {
        Packed::U8 => 1,
        Packed::U16 => 2,
        Packed::U32 => 4,
    }
}

// ----------------------------------------------------------------------
// Interleaved scan loops (monomorphized per width × K)
// ----------------------------------------------------------------------

fn scan_group_width<T: Entry>(
    tbl: &[T],
    mask: u32,
    start: u32,
    group: &[&[SymbolId]],
    out: &mut [u32],
    ctl: &AbortControl,
    k_way: usize,
) -> bool {
    match k_way {
        1 => scan_group_k::<T, 1>(tbl, mask, start, group, out, ctl),
        2 => scan_group_k::<T, 2>(tbl, mask, start, group, out, ctl),
        4 => scan_group_k::<T, 4>(tbl, mask, start, group, out, ctl),
        _ => scan_group_k::<T, 8>(tbl, mask, start, group, out, ctl),
    }
}

/// The software-pipelined kernel: K independent chains step in lockstep,
/// so K loads are in flight per iteration instead of one.
fn scan_group_k<T: Entry, const K: usize>(
    tbl: &[T],
    mask: u32,
    start: u32,
    group: &[&[SymbolId]],
    out: &mut [u32],
    ctl: &AbortControl,
) -> bool {
    debug_assert!(group.len() <= K && group.len() == out.len());
    let mut lanes: [&[SymbolId]; K] = [&[]; K];
    lanes[..group.len()].copy_from_slice(group);
    let mut s = [start; K];
    // Shorter lanes (a partial final group, or the division remainder)
    // bound the interleaved phase; tails finish single-chain below.
    let common = lanes.iter().map(|l| l.len()).min().unwrap_or(0);
    // Poll cadence: K symbols retire per pipelined step.
    let poll = (GOVERNOR_POLL_SYMBOLS / K).max(1);
    let mut pos = 0;
    while pos < common {
        if ctl.should_stop() {
            return false;
        }
        let end = (pos + poll).min(common);
        for i in pos..end {
            for j in 0..K {
                // SAFETY: i < common ≤ lanes[j].len().
                let sym = unsafe { *lanes[j].get_unchecked(i) };
                s[j] = T::step(tbl, mask, s[j], sym);
            }
        }
        pos = end;
    }
    for (j, slot) in out.iter_mut().enumerate() {
        let mut q = s[j];
        for block in lanes[j][common..].chunks(GOVERNOR_POLL_SYMBOLS) {
            if ctl.should_stop() {
                return false;
            }
            for &sym in block {
                q = T::step(tbl, mask, q, sym);
            }
        }
        *slot = q;
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn scan_group_bytes_width<T: Entry>(
    tbl: &[T],
    mask: u32,
    start: u32,
    classifier: &ByteClassifier,
    group: &[&[u8]],
    offsets: &[u64],
    out: &mut [u32],
    ctl: &AbortControl,
    k_way: usize,
) -> bool {
    match k_way {
        1 => scan_group_bytes_k::<T, 1>(tbl, mask, start, classifier, group, offsets, out, ctl),
        2 => scan_group_bytes_k::<T, 2>(tbl, mask, start, classifier, group, offsets, out, ctl),
        4 => scan_group_bytes_k::<T, 4>(tbl, mask, start, classifier, group, offsets, out, ctl),
        _ => scan_group_bytes_k::<T, 8>(tbl, mask, start, classifier, group, offsets, out, ctl),
    }
}

/// Interleaved scan with fused byte classification. Skips are per-lane;
/// an invalid byte records [`SfaError::InvalidByte`] with its absolute
/// offset and aborts the pass.
#[allow(clippy::too_many_arguments)]
fn scan_group_bytes_k<T: Entry, const K: usize>(
    tbl: &[T],
    mask: u32,
    start: u32,
    classifier: &ByteClassifier,
    group: &[&[u8]],
    offsets: &[u64],
    out: &mut [u32],
    ctl: &AbortControl,
) -> bool {
    debug_assert!(group.len() <= K && group.len() == out.len());
    let mut lanes: [&[u8]; K] = [&[]; K];
    lanes[..group.len()].copy_from_slice(group);
    let mut s = [start; K];
    let common = lanes.iter().map(|l| l.len()).min().unwrap_or(0);
    let poll = (GOVERNOR_POLL_SYMBOLS / K).max(1);
    let mut pos = 0;
    while pos < common {
        if ctl.should_stop() {
            return false;
        }
        let end = (pos + poll).min(common);
        for i in pos..end {
            for j in 0..K {
                // SAFETY: i < common ≤ lanes[j].len().
                let b = unsafe { *lanes[j].get_unchecked(i) };
                match classifier.classify(b) {
                    Classified::Symbol(sym) => s[j] = T::step(tbl, mask, s[j], sym),
                    Classified::Skip => {}
                    Classified::Invalid => {
                        ctl.fail(SfaError::InvalidByte {
                            byte: b,
                            offset: offsets[j] + i as u64,
                        });
                        return false;
                    }
                }
            }
        }
        pos = end;
    }
    for (j, slot) in out.iter_mut().enumerate() {
        let mut q = s[j];
        for (block_no, block) in lanes[j][common..].chunks(GOVERNOR_POLL_SYMBOLS).enumerate() {
            if ctl.should_stop() {
                return false;
            }
            for (i, &b) in block.iter().enumerate() {
                match classifier.classify(b) {
                    Classified::Symbol(sym) => q = T::step(tbl, mask, q, sym),
                    Classified::Skip => {}
                    Classified::Invalid => {
                        ctl.fail(SfaError::InvalidByte {
                            byte: b,
                            offset: offsets[j]
                                + (common + block_no * GOVERNOR_POLL_SYMBOLS + i) as u64,
                        });
                        return false;
                    }
                }
            }
        }
        *slot = q;
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn count_group_width<T: Entry>(
    tbl: &[T],
    mask: u32,
    shift: u32,
    accepting: &[bool],
    group: &[&[SymbolId]],
    entries_scaled: &[u32],
    out: &mut [u64],
    ctl: &AbortControl,
    k_way: usize,
) -> bool {
    match k_way {
        1 => count_group_k::<T, 1>(tbl, mask, shift, accepting, group, entries_scaled, out, ctl),
        2 => count_group_k::<T, 2>(tbl, mask, shift, accepting, group, entries_scaled, out, ctl),
        4 => count_group_k::<T, 4>(tbl, mask, shift, accepting, group, entries_scaled, out, ctl),
        _ => count_group_k::<T, 8>(tbl, mask, shift, accepting, group, entries_scaled, out, ctl),
    }
}

#[allow(clippy::too_many_arguments)]
fn count_group_k<T: Entry, const K: usize>(
    tbl: &[T],
    mask: u32,
    shift: u32,
    accepting: &[bool],
    group: &[&[SymbolId]],
    entries_scaled: &[u32],
    out: &mut [u64],
    ctl: &AbortControl,
) -> bool {
    debug_assert!(group.len() <= K && group.len() == out.len());
    let mut lanes: [&[SymbolId]; K] = [&[]; K];
    lanes[..group.len()].copy_from_slice(group);
    let mut s = [0u32; K];
    s[..group.len()].copy_from_slice(entries_scaled);
    let mut counts = [0u64; K];
    let common = lanes.iter().map(|l| l.len()).min().unwrap_or(0);
    let poll = (GOVERNOR_POLL_SYMBOLS / K).max(1);
    let mut pos = 0;
    while pos < common {
        if ctl.should_stop() {
            return false;
        }
        let end = (pos + poll).min(common);
        for i in pos..end {
            for j in 0..K {
                // SAFETY: i < common ≤ lanes[j].len().
                let sym = unsafe { *lanes[j].get_unchecked(i) };
                s[j] = T::step(tbl, mask, s[j], sym);
                // SAFETY: every scaled offset unshifts to < num_states
                // (the `Entry::step` invariant), and `accepting` has
                // num_states entries.
                counts[j] +=
                    u64::from(unsafe { *accepting.get_unchecked((s[j] >> shift) as usize) });
            }
        }
        pos = end;
    }
    for (j, slot) in out.iter_mut().enumerate() {
        let mut q = s[j];
        let mut count = counts[j];
        for block in lanes[j][common..].chunks(GOVERNOR_POLL_SYMBOLS) {
            if ctl.should_stop() {
                return false;
            }
            for &sym in block {
                q = T::step(tbl, mask, q, sym);
                count += u64::from(accepting[(q >> shift) as usize]);
            }
        }
        *slot = count;
    }
    true
}

fn scan_lane_width<T: Entry>(
    tbl: &[T],
    mask: u32,
    from: u32,
    input: &[SymbolId],
    ctl: &AbortControl,
) -> Option<u32> {
    let mut s = from;
    for block in input.chunks(GOVERNOR_POLL_SYMBOLS) {
        if ctl.should_stop() {
            return None;
        }
        for &sym in block {
            s = T::step(tbl, mask, s, sym);
        }
    }
    Some(s)
}

#[allow(clippy::too_many_arguments)]
fn find_first_width<T: Entry>(
    tbl: &[T],
    mask: u32,
    shift: u32,
    accepting: &[bool],
    input: &[SymbolId],
    from: u32,
    ctl: &AbortControl,
    stop: impl Fn() -> bool,
) -> Result<Option<usize>, ()> {
    let mut s = from;
    for (block_no, block) in input.chunks(GOVERNOR_POLL_SYMBOLS).enumerate() {
        if ctl.should_stop() || stop() {
            return Err(());
        }
        for (j, &sym) in block.iter().enumerate() {
            s = T::step(tbl, mask, s, sym);
            if accepting[(s >> shift) as usize] {
                return Ok(Some(block_no * GOVERNOR_POLL_SYMBOLS + j + 1));
            }
        }
    }
    Ok(None)
}

// ----------------------------------------------------------------------
// Reduction-tree composition (pass 2)
// ----------------------------------------------------------------------

/// Inclusive prefix composition of chunk mappings, Ladner–Fischer
/// style: pair-combine, recurse on the halved sequence, then expand —
/// `O(maps)` total compositions in `O(log maps)` levels, each level's
/// compositions running in parallel on `pool` and each composition a
/// vectorized [`sfa_simd::gather_u32`] (`out[q] = g[f[q]]`).
///
/// `result[i]` equals `maps[0] ∘ … ∘ maps[i]` (left-to-right
/// application order, as in [`Sfa::compose`]).
pub fn prefix_compose_on(pool: &TaskPool, maps: Vec<Vec<u32>>) -> Result<Vec<Vec<u32>>, SfaError> {
    let c = maps.len();
    if c <= 1 {
        return Ok(maps);
    }
    // Up-sweep: combine adjacent pairs.
    let pairs = c / 2;
    let mut combined: Vec<Vec<u32>> = vec![Vec::new(); pairs];
    run_composes(pool, |scope| {
        for (i, slot) in combined.iter_mut().enumerate() {
            let f = &maps[2 * i];
            let g = &maps[2 * i + 1];
            scope.execute(move || *slot = compose_vec(f, g));
        }
    })?;
    // Recurse: prefixes over the pair-combined sequence.
    let pair_prefix = prefix_compose_on(pool, combined)?;
    // Down-sweep: expand pair prefixes back to element prefixes.
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); c];
    run_composes(pool, |scope| {
        let mut slots = out.iter_mut();
        for (i, slot) in slots.by_ref().enumerate().take(c) {
            let maps = &maps;
            let pair_prefix = &pair_prefix;
            scope.execute(move || {
                *slot = if i == 0 {
                    maps[0].clone()
                } else if i % 2 == 1 {
                    pair_prefix[i / 2].clone()
                } else {
                    compose_vec(&pair_prefix[i / 2 - 1], &maps[i])
                };
            });
        }
    })?;
    Ok(out)
}

/// `out[q] = g[f[q]]` — f applied first, then g.
fn compose_vec(f: &[u32], g: &[u32]) -> Vec<u32> {
    OBS_GATHER_CALLS.inc();
    let mut out = vec![0u32; f.len()];
    gather_u32(g, f, &mut out);
    out
}

fn run_composes<'pool, 'scope, F>(pool: &'pool TaskPool, f: F) -> Result<(), SfaError>
where
    F: FnOnce(&sfa_sync::pool::Scope<'pool, 'scope>) + 'scope,
{
    pool.scoped(f).map_err(|panic| SfaError::WorkerPanic {
        message: panic.message,
    })
}

// ----------------------------------------------------------------------
// The engine
// ----------------------------------------------------------------------

/// Pass-1 result: the SFA state of every chunk plus the chunk geometry
/// that produced it (pass 3 must re-split identically).
pub(crate) struct ChunkPlan {
    pub states: Vec<u32>,
    pub chunk: usize,
}

/// Precomputed scan state for one SFA/DFA pair — build once, match many
/// inputs. Owns no borrows: engines cache it in an `Arc` across queries.
pub struct ScanEngine {
    /// Compact SFA table, or the defect message of a malformed SFA
    /// (surfaced as [`SfaError::WorkerPanic`] at match time).
    sfa_tbl: Result<ScanTable, String>,
    dfa_tbl: Result<ScanTable, String>,
    /// Per-DFA-state accept flags, indexed by (unscaled) state id.
    accepting: Vec<bool>,
    opts: ScanOptions,
}

impl std::fmt::Debug for ScanEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanEngine")
            .field("sfa_tbl", &self.sfa_tbl)
            .field("dfa_tbl", &self.dfa_tbl)
            .field("opts", &self.opts)
            .finish()
    }
}

impl ScanEngine {
    /// Build with default [`ScanOptions`].
    pub fn new(sfa: &Sfa, dfa: &Dfa) -> ScanEngine {
        ScanEngine::with_options(sfa, dfa, ScanOptions::default())
            .expect("default scan options are valid")
    }

    /// Build with explicit options (fails only on invalid options — a
    /// malformed automaton is deferred to match time, see `sfa_tbl`).
    pub fn with_options(sfa: &Sfa, dfa: &Dfa, opts: ScanOptions) -> Result<ScanEngine, SfaError> {
        opts.validate()?;
        let sfa_tbl = ScanTable::build(
            sfa.delta(),
            sfa.num_states() as usize,
            sfa.num_symbols(),
            sfa.start(),
        );
        let dfa_tbl = ScanTable::build(
            dfa.table(),
            dfa.num_states() as usize,
            dfa.num_symbols(),
            dfa.start(),
        );
        let accepting = (0..dfa.num_states()).map(|q| dfa.is_accepting(q)).collect();
        Ok(ScanEngine {
            sfa_tbl,
            dfa_tbl,
            accepting,
            opts,
        })
    }

    /// The configured knobs.
    pub fn options(&self) -> ScanOptions {
        self.opts
    }

    /// The compact SFA table (`Err` for a malformed SFA).
    pub fn sfa_table(&self) -> Result<&ScanTable, SfaError> {
        self.sfa_tbl.as_ref().map_err(|msg| SfaError::WorkerPanic {
            message: msg.clone(),
        })
    }

    /// The compact DFA table (`Err` for a malformed DFA).
    pub fn dfa_table(&self) -> Result<&ScanTable, SfaError> {
        self.dfa_tbl.as_ref().map_err(|msg| SfaError::WorkerPanic {
            message: msg.clone(),
        })
    }

    /// Chunk length for an input of `len` symbols at `threads` workers:
    /// oversubscribed to `threads × oversubscribe × interleave` chunks,
    /// floored at `min_chunk_symbols`.
    pub fn chunk_len(&self, len: usize, threads: usize) -> usize {
        let want = threads.max(1) * self.opts.oversubscribe * self.opts.interleave;
        len.div_ceil(want)
            .max(self.opts.min_chunk_symbols.min(len))
            .max(1)
    }

    /// How many chunks an input of `len` symbols splits into.
    pub fn chunk_count(&self, len: usize, threads: usize) -> usize {
        if len == 0 {
            1
        } else {
            len.div_ceil(self.chunk_len(len, threads))
        }
    }

    /// Pass 1: the SFA state of every chunk, scanned K-way interleaved
    /// on the pool. `input` must be non-empty.
    pub(crate) fn chunk_states(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        input: &[SymbolId],
        threads: usize,
    ) -> Result<ChunkPlan, SfaError> {
        governor.check(0, 0)?;
        debug_assert!(!input.is_empty());
        let _span = crate::obs::span!("scan/chunk_pass");
        let tbl = self.sfa_table()?;
        let chunk = self.chunk_len(input.len(), threads);
        let chunks: Vec<&[SymbolId]> = input.chunks(chunk).collect();
        OBS_CHUNKS.add(chunks.len() as u64);
        OBS_SYMBOLS.add(input.len() as u64);
        let k_way = self.opts.interleave;
        let mut scaled: Vec<u32> = vec![0; chunks.len()];
        let ctl = AbortControl::new(governor);

        if chunks.len() == 1 && governor.is_unlimited() {
            // Single chunk, nothing to govern: run inline but still
            // contain a panic (a poisoned classifier path or table must
            // not kill the caller).
            let scan = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut out = [0u32; 1];
                tbl.scan_group(&chunks, &mut out, &ctl, 1);
                out[0]
            }));
            match scan {
                Ok(s) => scaled[0] = s,
                Err(payload) => {
                    return Err(SfaError::WorkerPanic {
                        message: panic_payload_message(payload),
                    })
                }
            }
        } else {
            let scoped = {
                let ctl = &ctl;
                pool.scoped(|scope| {
                    for (group, out) in chunks.chunks(k_way).zip(scaled.chunks_mut(k_way)) {
                        scope.execute(move || {
                            tbl.scan_group(group, out, ctl, k_way);
                        });
                    }
                })
            };
            ctl.finish(scoped)?;
        }
        let shift = tbl.shift();
        Ok(ChunkPlan {
            states: scaled.iter().map(|&s| s >> shift).collect(),
            chunk,
        })
    }

    /// Pass 1 over raw bytes with fused classification (the streaming
    /// block path). `block` must be non-empty.
    pub(crate) fn chunk_states_bytes(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        classifier: &ByteClassifier,
        block: &[u8],
        block_offset: u64,
        threads: usize,
    ) -> Result<ChunkPlan, SfaError> {
        governor.check(0, 0)?;
        debug_assert!(!block.is_empty());
        let _span = crate::obs::span!("scan/chunk_pass");
        let tbl = self.sfa_table()?;
        let chunk = self.chunk_len(block.len(), threads);
        let chunks: Vec<&[u8]> = block.chunks(chunk).collect();
        OBS_CHUNKS.add(chunks.len() as u64);
        OBS_SYMBOLS.add(block.len() as u64);
        let offsets: Vec<u64> = (0..chunks.len())
            .map(|i| block_offset + (i * chunk) as u64)
            .collect();
        let k_way = self.opts.interleave;
        let mut scaled: Vec<u32> = vec![0; chunks.len()];
        let ctl = AbortControl::new(governor);
        let scoped = {
            let ctl = &ctl;
            pool.scoped(|scope| {
                for ((group, offs), out) in chunks
                    .chunks(k_way)
                    .zip(offsets.chunks(k_way))
                    .zip(scaled.chunks_mut(k_way))
                {
                    scope.execute(move || {
                        tbl.scan_group_bytes(classifier, group, offs, out, ctl, k_way);
                    });
                }
            })
        };
        ctl.finish(scoped)?;
        let shift = tbl.shift();
        Ok(ChunkPlan {
            states: scaled.iter().map(|&s| s >> shift).collect(),
            chunk,
        })
    }

    /// Pass 2: every chunk's exact entry DFA state, and the final state
    /// after the whole input, from `q0` — computed with the
    /// reduction tree ([`prefix_compose_on`]). Chunk mappings are
    /// materialized in parallel first (each may decompress a vector).
    pub(crate) fn entry_states(
        &self,
        pool: &TaskPool,
        sfa: &Sfa,
        states: &[u32],
        q0: u32,
    ) -> Result<(Vec<u32>, u32), SfaError> {
        let c = states.len();
        if c == 1 {
            // One chunk: no composition at all, just apply.
            return Ok((vec![q0], sfa.apply(states[0], q0)));
        }
        let mut maps: Vec<Vec<u32>> = vec![Vec::new(); c];
        run_composes(pool, |scope| {
            for (slot, &s) in maps.iter_mut().zip(states) {
                scope.execute(move || *slot = sfa.mapping_of(s));
            }
        })?;
        let prefix = prefix_compose_on(pool, maps)?;
        let mut entries = Vec::with_capacity(c);
        entries.push(q0);
        for p in &prefix[..c - 1] {
            entries.push(p[q0 as usize]);
        }
        Ok((entries, prefix[c - 1][q0 as usize]))
    }

    /// Passes 1+2 fused: the DFA state after `input`, starting at `q0`.
    pub(crate) fn final_state(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        sfa: &Sfa,
        input: &[SymbolId],
        q0: u32,
        threads: usize,
    ) -> Result<u32, SfaError> {
        let plan = self.chunk_states(pool, governor, input, threads)?;
        Ok(self.entry_states(pool, sfa, &plan.states, q0)?.1)
    }

    /// Pass 3 for first-match search: per-chunk DFA scans from the exact
    /// entry states, with a best-so-far chunk index published in an
    /// `AtomicUsize` so chunks that can no longer win abort at block
    /// granularity instead of finishing their scan.
    ///
    /// Why `Relaxed` is enough for `best` (audited; pinned by the
    /// `prop_find_first_two_winner_abort` seam proptest):
    ///
    /// * `best` is a pure *hint*. The answer is reduced after the join
    ///   from `firsts`, never from `best`, and chunk index order equals
    ///   position order, so the earliest `Some` slot wins regardless of
    ///   which sibling published first.
    /// * A chunk aborts only when `best < i` — a *strictly earlier*
    ///   chunk has already found a match, so chunk `i`'s own result
    ///   cannot improve the answer. `fetch_min` only ever stores indices
    ///   of chunks that really matched, so a stale/relaxed read can at
    ///   worst delay an abort (wasted work), never discard a winner.
    /// * Each `slot` write is ordered before the post-join read by the
    ///   pool's scope join (happens-before via the scope barrier), so no
    ///   chunk's match is lost even when two chunks match concurrently.
    pub(crate) fn find_first(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        sfa: &Sfa,
        input: &[SymbolId],
        q0: u32,
        threads: usize,
    ) -> Result<Option<usize>, SfaError> {
        let plan = self.chunk_states(pool, governor, input, threads)?;
        let (entries, _) = self.entry_states(pool, sfa, &plan.states, q0)?;
        let dtbl = self.dfa_table()?;
        let accepting = self.accepting.as_slice();
        let chunks: Vec<&[SymbolId]> = input.chunks(plan.chunk).collect();
        let mut firsts: Vec<Option<usize>> = vec![None; chunks.len()];
        let best = AtomicUsize::new(usize::MAX);
        let ctl = AbortControl::new(governor);
        let scoped = {
            let (ctl, best) = (&ctl, &best);
            pool.scoped(|scope| {
                for ((i, &c), slot) in chunks.iter().enumerate().zip(firsts.iter_mut()) {
                    let entry = dtbl.scale(entries[i]);
                    scope.execute(move || {
                        // A sibling with a smaller chunk index already
                        // matched: this chunk cannot improve the answer.
                        let found = dtbl.find_first_lane(accepting, c, entry, ctl, || {
                            best.load(Ordering::Relaxed) < i
                        });
                        if let Ok(Some(local)) = found {
                            *slot = Some(local);
                            best.fetch_min(i, Ordering::Relaxed);
                        }
                    });
                }
            })
        };
        ctl.finish(scoped)?;
        Ok(firsts
            .iter()
            .enumerate()
            .find_map(|(i, &local)| local.map(|j| i * plan.chunk + j)))
    }

    /// Pass 3 for occurrence counting: K-way interleaved DFA counting
    /// scans from the exact entry states. Returns the total over all
    /// chunks (the accepting-start position 0 is the caller's).
    pub(crate) fn count_matches(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        sfa: &Sfa,
        input: &[SymbolId],
        q0: u32,
        threads: usize,
    ) -> Result<u64, SfaError> {
        let plan = self.chunk_states(pool, governor, input, threads)?;
        let (entries, _) = self.entry_states(pool, sfa, &plan.states, q0)?;
        let dtbl = self.dfa_table()?;
        let accepting = self.accepting.as_slice();
        let entries_scaled: Vec<u32> = entries.iter().map(|&q| dtbl.scale(q)).collect();
        let chunks: Vec<&[SymbolId]> = input.chunks(plan.chunk).collect();
        let k_way = self.opts.interleave;
        let mut counts: Vec<u64> = vec![0; chunks.len()];
        let ctl = AbortControl::new(governor);
        let scoped = {
            let ctl = &ctl;
            pool.scoped(|scope| {
                for ((group, entry_group), out) in chunks
                    .chunks(k_way)
                    .zip(entries_scaled.chunks(k_way))
                    .zip(counts.chunks_mut(k_way))
                {
                    scope.execute(move || {
                        dtbl.count_group(accepting, group, entry_group, out, ctl, k_way);
                    });
                }
            })
        };
        ctl.finish(scoped)?;
        Ok(counts.iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialVariant;
    use sfa_automata::alphabet::Alphabet;
    use sfa_automata::pipeline::Pipeline;

    fn setup(pattern: &str) -> (Dfa, Sfa) {
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str(pattern)
            .unwrap();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        (dfa, sfa)
    }

    #[test]
    fn table_layout_is_compact_and_padded() {
        let (dfa, sfa) = setup("RG");
        let engine = ScanEngine::new(&sfa, &dfa);
        let dtbl = engine.dfa_table().unwrap();
        // Amino-acid alphabet: k = 20 → stride rounds to a power of two
        // covering at least one cache line.
        assert!(dtbl.stride().is_power_of_two());
        assert!(dtbl.stride() >= 20);
        assert_eq!(dtbl.stride() * dtbl.entry_bytes() % 64, 0);
        // Tiny automata pack below u32.
        assert!(dtbl.entry_bytes() < 4, "small DFA should pack: {dtbl:?}");
        let stbl = engine.sfa_table().unwrap();
        assert!(stbl.stride().is_power_of_two());
    }

    #[test]
    fn scan_table_agrees_with_step() {
        let (dfa, sfa) = setup("R[GA]N");
        let engine = ScanEngine::new(&sfa, &dfa);
        let tbl = engine.sfa_table().unwrap();
        let governor = Governor::unlimited();
        let ctl = AbortControl::new(&governor);
        let input: Vec<u8> = (0..257u32).map(|i| (i % 20) as u8).collect();
        let scaled = tbl.scan_lane(&input, tbl.start_offset(), &ctl).unwrap();
        assert_eq!(scaled >> tbl.shift(), sfa.run(&input));
    }

    #[test]
    fn malformed_table_is_deferred_not_fatal() {
        let (dfa, _) = setup("R");
        let poisoned = Sfa::from_parts(
            2,
            20,
            0,
            vec![99; 2 * 20],
            crate::sfa::MappingStore::U16(vec![0, 1, 1, 0]),
        );
        let engine = ScanEngine::new(&poisoned, &dfa);
        match engine.sfa_table() {
            Err(SfaError::WorkerPanic { message }) => {
                assert!(message.contains("out of bounds"), "{message}");
            }
            other => panic!("expected deferred WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn prefix_compose_matches_sequential_fold() {
        let (_, sfa) = setup("R[GA]N");
        let pool = TaskPool::new(3);
        // A handful of mappings from real runs, odd count on purpose.
        let inputs: Vec<Vec<u8>> = (0..7)
            .map(|i| (0..50 + i * 13).map(|j| ((i + j) % 20) as u8).collect())
            .collect();
        let maps: Vec<Vec<u32>> = inputs.iter().map(|w| sfa.mapping_of(sfa.run(w))).collect();
        let tree = prefix_compose_on(&pool, maps.clone()).unwrap();
        let mut fold = maps[0].clone();
        assert_eq!(tree[0], fold);
        for (i, m) in maps.iter().enumerate().skip(1) {
            fold = Sfa::compose(&fold, m);
            assert_eq!(tree[i], fold, "prefix {i}");
        }
    }

    #[test]
    fn invalid_options_are_rejected() {
        let (dfa, sfa) = setup("RG");
        for bad in [0usize, 3, 5, 16] {
            let opts = ScanOptions {
                interleave: bad,
                ..ScanOptions::default()
            };
            assert!(matches!(
                ScanEngine::with_options(&sfa, &dfa, opts),
                Err(SfaError::InvalidOptions(_))
            ));
        }
        let opts = ScanOptions {
            oversubscribe: 0,
            ..ScanOptions::default()
        };
        assert!(ScanEngine::with_options(&sfa, &dfa, opts).is_err());
    }

    #[test]
    fn out_of_alphabet_symbols_stay_in_bounds() {
        // The masked-padding contract: garbage symbols may produce a
        // garbage state but never fault or leave the table.
        let (dfa, sfa) = setup("RG");
        let engine = ScanEngine::new(&sfa, &dfa);
        let tbl = engine.sfa_table().unwrap();
        let governor = Governor::unlimited();
        let ctl = AbortControl::new(&governor);
        let junk: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let scaled = tbl.scan_lane(&junk, tbl.start_offset(), &ctl).unwrap();
        assert!(((scaled >> tbl.shift()) as usize) < sfa.num_states() as usize);
    }
}
