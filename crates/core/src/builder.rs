//! The unified construction entry point: [`Sfa::builder`].
//!
//! Historically each algorithm family had its own free function
//! (`construct_sequential`, `construct_sequential_budgeted`,
//! `construct_parallel`), none of which could express resource limits or
//! cancellation. The builder subsumes all of them behind one chain:
//!
//! ```
//! use sfa_automata::prelude::*;
//! use sfa_core::prelude::*;
//! use std::time::Duration;
//!
//! let dfa = Pipeline::search(Alphabet::amino_acids())
//!     .compile_str("RG")
//!     .unwrap();
//!
//! let token = CancelToken::new();
//! let result = Sfa::builder(&dfa)
//!     .threads(4)
//!     .scheduler(Scheduler::WorkStealing)
//!     .budget(
//!         Budget::unlimited()
//!             .with_deadline(Duration::from_secs(5))
//!             .with_max_states(1 << 20),
//!     )
//!     .cancel(token.clone())
//!     .build()
//!     .unwrap();
//! assert_eq!(result.sfa.num_states(), 6);
//! ```
//!
//! The old free functions remain as `#[deprecated]` thin wrappers over
//! the same governed engines.

use crate::artifact::{self, CheckpointConfig};
use crate::budget::{Budget, Governor};
use crate::parallel::{
    construct_parallel_governed, CompressionPolicy, FingerprintAlgo, ParallelOptions, Scheduler,
};
use crate::sequential::{construct_sequential_resumable, SequentialVariant};
use crate::sfa::{CodecChoice, Sfa};
use crate::stats::ConstructionResult;
use crate::SfaError;
use sfa_automata::dfa::Dfa;
use sfa_sync::CancelToken;
use std::path::{Path, PathBuf};

impl Sfa {
    /// Start configuring a construction run for `dfa`. Defaults to the
    /// parallel engine with [`ParallelOptions::default`] and no resource
    /// limits.
    pub fn builder(dfa: &Dfa) -> SfaBuilder<'_> {
        SfaBuilder {
            dfa,
            opts: ParallelOptions::default(),
            variant: None,
            budget: Budget::unlimited(),
            cancel: None,
            checkpoint: None,
            resume_from: None,
        }
    }
}

/// Builder for one SFA construction run — see [`Sfa::builder`].
#[derive(Debug, Clone)]
pub struct SfaBuilder<'d> {
    dfa: &'d Dfa,
    opts: ParallelOptions,
    /// `Some` switches from the parallel engine to a sequential variant.
    variant: Option<SequentialVariant>,
    budget: Budget,
    cancel: Option<CancelToken>,
    checkpoint: Option<CheckpointConfig>,
    resume_from: Option<PathBuf>,
}

impl<'d> SfaBuilder<'d> {
    /// Use the parallel engine with `threads` workers (the default
    /// engine; this clears any sequential variant selected earlier).
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self.variant = None;
        self
    }

    /// Use the single-threaded engine with the given algorithm variant.
    pub fn sequential(mut self, variant: SequentialVariant) -> Self {
        self.variant = Some(variant);
        self
    }

    /// Replace the whole parallel-option block (for callers that already
    /// carry a [`ParallelOptions`], e.g. benchmark sweeps).
    pub fn options(mut self, opts: &ParallelOptions) -> Self {
        self.opts = opts.clone();
        self
    }

    /// Work-distribution strategy of the parallel engine.
    pub fn scheduler(mut self, s: Scheduler) -> Self {
        self.opts.scheduler = s;
        self
    }

    /// Compression policy of the parallel engine.
    pub fn compression(mut self, c: CompressionPolicy) -> Self {
        self.opts.compression = c;
        self
    }

    /// Codec used by the compression phase.
    pub fn codec(mut self, c: CodecChoice) -> Self {
        self.opts.codec = c;
        self
    }

    /// Arena capacity (maximum SFA states; applies to the sequential
    /// engine too).
    pub fn state_budget(mut self, states: usize) -> Self {
        self.opts.state_budget = states;
        self
    }

    /// Work granularity (symbol blocks per state) of the parallel engine.
    pub fn symbol_blocks(mut self, blocks: usize) -> Self {
        self.opts.symbol_blocks = blocks;
        self
    }

    /// Probabilistic (fingerprint-only) parallel mode.
    pub fn probabilistic(mut self, algo: FingerprintAlgo) -> Self {
        self.opts.probabilistic = true;
        self.opts.fingerprint = algo;
        self
    }

    /// Resource limits enforced during the build.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attach a cancellation token; cancelling any clone of it stops the
    /// build at the next work-item checkpoint.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The configured [`ParallelOptions`] (inspection / reuse).
    pub fn parallel_options(&self) -> &ParallelOptions {
        &self.opts
    }

    /// Periodically snapshot construction state to `path` (atomic write,
    /// CRC-checked artifact) every `every_states` processed SFA states,
    /// so an interrupted build can be continued with [`resume_from`]
    /// (producing a byte-identical SFA). Requires a sequential engine —
    /// the parallel engine assigns state ids nondeterministically.
    ///
    /// [`resume_from`]: SfaBuilder::resume_from
    pub fn checkpoint(mut self, path: impl Into<PathBuf>, every_states: u64) -> Self {
        self.checkpoint = Some(CheckpointConfig::new(path, every_states));
        self
    }

    /// Continue an interrupted build from the checkpoint artifact at
    /// `path`. The checkpoint must have been written for the same DFA
    /// (a fingerprint binds them); the finished SFA is byte-identical to
    /// an uninterrupted run. Requires a sequential engine.
    pub fn resume_from(mut self, path: impl AsRef<Path>) -> Self {
        self.resume_from = Some(path.as_ref().to_path_buf());
        self
    }

    /// Run the configured construction. The budget clock starts here.
    pub fn build(self) -> Result<ConstructionResult, SfaError> {
        let governor = Governor::new(&self.budget, self.cancel);
        match self.variant {
            Some(variant) => {
                let resume = match &self.resume_from {
                    Some(path) => Some(artifact::read_checkpoint(path)?),
                    None => None,
                };
                construct_sequential_resumable(
                    self.dfa,
                    variant,
                    self.opts.state_budget,
                    &governor,
                    self.checkpoint.as_ref(),
                    resume.as_ref(),
                )
            }
            None => {
                if self.checkpoint.is_some() || self.resume_from.is_some() {
                    return Err(SfaError::InvalidOptions(
                        "checkpointed construction requires a sequential engine variant \
                         (the parallel engine assigns state ids nondeterministically)",
                    ));
                }
                construct_parallel_governed(self.dfa, &self.opts, &governor)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_automata::alphabet::Alphabet;
    use sfa_automata::pipeline::Pipeline;

    fn rg_dfa() -> Dfa {
        Pipeline::search(Alphabet::amino_acids())
            .compile_str("RG")
            .unwrap()
    }

    #[test]
    fn builder_matches_both_engines() {
        let dfa = rg_dfa();
        let par = Sfa::builder(&dfa).threads(2).build().unwrap();
        let seq = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap();
        assert_eq!(par.sfa.num_states(), 6);
        assert_eq!(seq.sfa.num_states(), 6);
        par.sfa.validate(&dfa).unwrap();
        assert_eq!(par.stats.threads, 2);
        assert_eq!(seq.stats.threads, 1);
    }

    #[test]
    fn builder_wraps_deprecated_entry_points() {
        // The wrappers must stay behaviourally identical to the builder.
        let dfa = rg_dfa();
        #[allow(deprecated)]
        let old =
            crate::parallel::construct_parallel(&dfa, &ParallelOptions::with_threads(2)).unwrap();
        let new = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(2))
            .build()
            .unwrap();
        assert_eq!(old.sfa.num_states(), new.sfa.num_states());
    }

    #[test]
    fn state_budget_applies_to_both_engines() {
        let dfa = rg_dfa();
        for b in [
            Sfa::builder(&dfa).threads(2).state_budget(3),
            Sfa::builder(&dfa)
                .sequential(SequentialVariant::Hashing)
                .state_budget(3),
        ] {
            assert_eq!(
                b.build().unwrap_err(),
                SfaError::StateBudgetExceeded { budget: 3 }
            );
        }
    }

    #[test]
    fn checkpointing_requires_a_sequential_engine() {
        let dfa = rg_dfa();
        let dir = std::env::temp_dir().join("sfa_builder_test");
        std::fs::create_dir_all(&dir).unwrap();
        for b in [
            Sfa::builder(&dfa).checkpoint(dir.join("c.ckpt"), 8),
            Sfa::builder(&dfa).resume_from(dir.join("c.ckpt")),
        ] {
            assert!(matches!(
                b.build().unwrap_err(),
                SfaError::InvalidOptions(_)
            ));
        }
    }

    #[test]
    fn checkpoint_then_resume_is_byte_identical() {
        let dfa = rg_dfa();
        let dir = std::env::temp_dir().join("sfa_builder_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume_unit.ckpt");
        let _ = std::fs::remove_file(&path);

        // Interrupt via a tight state budget, checkpointing every state.
        // (The RG SFA has 6 states; a budget of 5 lets several states be
        // processed — and checkpointed — before the arena overflows.)
        let err = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .checkpoint(&path, 1)
            .state_budget(5)
            .build()
            .unwrap_err();
        assert_eq!(err, SfaError::StateBudgetExceeded { budget: 5 });

        let resumed = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .resume_from(&path)
            .build()
            .unwrap();
        let fresh = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap();
        assert_eq!(
            crate::io::to_bytes(&resumed.sfa),
            crate::io::to_bytes(&fresh.sfa)
        );
        resumed.sfa.validate(&dfa).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_from_missing_file_is_an_artifact_error() {
        let dfa = rg_dfa();
        let err = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .resume_from("/nonexistent/sfa-resume.ckpt")
            .build()
            .unwrap_err();
        assert!(matches!(err, SfaError::Artifact(_)));
    }

    #[test]
    fn threads_clears_sequential_selection() {
        let dfa = rg_dfa();
        let r = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Baseline)
            .threads(3)
            .build()
            .unwrap();
        assert_eq!(r.stats.threads, 3);
    }
}
