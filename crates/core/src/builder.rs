//! The unified construction entry point: [`Sfa::builder`].
//!
//! Historically each algorithm family had its own free function
//! (`construct_sequential`, `construct_sequential_budgeted`,
//! `construct_parallel`), none of which could express resource limits or
//! cancellation. The builder subsumes all of them behind one chain:
//!
//! ```
//! use sfa_automata::prelude::*;
//! use sfa_core::prelude::*;
//! use std::time::Duration;
//!
//! let dfa = Pipeline::search(Alphabet::amino_acids())
//!     .compile_str("RG")
//!     .unwrap();
//!
//! let token = CancelToken::new();
//! let result = Sfa::builder(&dfa)
//!     .threads(4)
//!     .scheduler(Scheduler::WorkStealing)
//!     .budget(
//!         Budget::unlimited()
//!             .with_deadline(Duration::from_secs(5))
//!             .with_max_states(1 << 20),
//!     )
//!     .cancel(token.clone())
//!     .build()
//!     .unwrap();
//! assert_eq!(result.sfa.num_states(), 6);
//! ```
//!
//! The old free functions remain as `#[deprecated]` thin wrappers over
//! the same governed engines.

use crate::artifact::{self, CheckpointConfig};
use crate::budget::{Budget, Governor};
use crate::obs::{MetricsRegistry, Subscriber};
use crate::parallel::{
    construct_parallel_resumable, CompressionPolicy, FingerprintAlgo, ParallelOptions, Scheduler,
};
use crate::sequential::{construct_sequential_spillable, SequentialVariant};
use crate::sfa::{CodecChoice, Sfa};
use crate::stats::ConstructionResult;
use crate::store::SpillConfig;
use crate::SfaError;
use sfa_automata::dfa::Dfa;
use sfa_sync::CancelToken;
use std::path::{Path, PathBuf};
use std::sync::Arc;

impl Sfa {
    /// Start configuring a construction run for `dfa`. Defaults to the
    /// parallel engine with [`ParallelOptions::default`] and no resource
    /// limits.
    pub fn builder(dfa: &Dfa) -> SfaBuilder<'_> {
        SfaBuilder {
            dfa,
            opts: ParallelOptions::default(),
            variant: None,
            budget: Budget::unlimited(),
            cancel: None,
            checkpoint: None,
            resume_from: None,
            subscriber: None,
            metrics: None,
        }
    }
}

/// Builder for one SFA construction run — see [`Sfa::builder`].
#[derive(Clone)]
pub struct SfaBuilder<'d> {
    dfa: &'d Dfa,
    opts: ParallelOptions,
    /// `Some` switches from the parallel engine to a sequential variant.
    variant: Option<SequentialVariant>,
    budget: Budget,
    cancel: Option<CancelToken>,
    checkpoint: Option<CheckpointConfig>,
    resume_from: Option<PathBuf>,
    subscriber: Option<Arc<dyn Subscriber>>,
    metrics: Option<MetricsRegistry>,
}

impl std::fmt::Debug for SfaBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SfaBuilder")
            .field("dfa", &self.dfa)
            .field("opts", &self.opts)
            .field("variant", &self.variant)
            .field("budget", &self.budget)
            .field("cancel", &self.cancel)
            .field("checkpoint", &self.checkpoint)
            .field("resume_from", &self.resume_from)
            .field("subscriber", &self.subscriber.as_ref().map(|_| ".."))
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

impl<'d> SfaBuilder<'d> {
    /// Use the parallel engine with `threads` workers (the default
    /// engine; this clears any sequential variant selected earlier).
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self.variant = None;
        self
    }

    /// Use the single-threaded engine with the given algorithm variant.
    pub fn sequential(mut self, variant: SequentialVariant) -> Self {
        self.variant = Some(variant);
        self
    }

    /// Replace the whole parallel-option block (for callers that already
    /// carry a [`ParallelOptions`], e.g. benchmark sweeps).
    pub fn options(mut self, opts: &ParallelOptions) -> Self {
        self.opts = opts.clone();
        self
    }

    /// Work-distribution strategy of the parallel engine.
    pub fn scheduler(mut self, s: Scheduler) -> Self {
        self.opts.scheduler = s;
        self
    }

    /// Compression policy of the parallel engine.
    pub fn compression(mut self, c: CompressionPolicy) -> Self {
        self.opts.compression = c;
        self
    }

    /// Codec used by the compression phase.
    pub fn codec(mut self, c: CodecChoice) -> Self {
        self.opts.codec = c;
        self
    }

    /// Arena capacity (maximum SFA states; applies to the sequential
    /// engine too).
    pub fn state_budget(mut self, states: usize) -> Self {
        self.opts.state_budget = states;
        self
    }

    /// Work granularity (symbol blocks per state) of the parallel engine.
    pub fn symbol_blocks(mut self, blocks: usize) -> Self {
        self.opts.symbol_blocks = blocks;
        self
    }

    /// Probabilistic (fingerprint-only) parallel mode.
    pub fn probabilistic(mut self, algo: FingerprintAlgo) -> Self {
        self.opts.probabilistic = true;
        self.opts.fingerprint = algo;
        self
    }

    /// Enable the spill tier (`crate::store`) for both engines: once
    /// resident state payloads exceed `cap_bytes`, cold payloads are
    /// demoted — compressed in memory first, then to mmap'd segments
    /// under `dir` — instead of the build failing on memory pressure,
    /// and promoted back on access. The finished artifact is
    /// byte-identical to an uncapped build. When the [`budget`] also
    /// carries a `max_payload_bytes` axis, the smaller of the two values
    /// becomes the cap and the axis stops being a hard error — graceful
    /// degradation replaces [`SfaError::BudgetExceeded`] for bytes.
    ///
    /// [`budget`]: SfaBuilder::budget
    pub fn spill(mut self, dir: impl Into<PathBuf>, cap_bytes: u64) -> Self {
        self.opts.spill = Some(SpillConfig::new(dir, cap_bytes));
        self
    }

    /// Enable the spill tier from a full [`SpillConfig`] (custom codec or
    /// retry policy); see [`spill`](SfaBuilder::spill).
    pub fn spill_config(mut self, cfg: SpillConfig) -> Self {
        self.opts.spill = Some(cfg);
        self
    }

    /// Resource limits enforced during the build.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attach a cancellation token; cancelling any clone of it stops the
    /// build at the next work-item checkpoint.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The configured [`ParallelOptions`] (inspection / reuse).
    pub fn parallel_options(&self) -> &ParallelOptions {
        &self.opts
    }

    /// Deliver per-phase construction spans to `sub` when the build
    /// finishes (see the span taxonomy in DESIGN.md §12). Only this run's
    /// spans go to `sub`; the process-global subscriber installed via
    /// [`crate::obs::subscribe`] is unaffected. No-op when the `obs`
    /// feature is compiled out.
    pub fn with_subscriber(mut self, sub: Arc<dyn Subscriber>) -> Self {
        self.subscriber = Some(sub);
        self
    }

    /// Record this run's [`crate::stats::ConstructionStats`] into `reg`
    /// (counters, gauges, and phase histograms under `sfa_construct_*`)
    /// when the build finishes. The process-global registry is always fed
    /// regardless; this hook gives library callers a private registry.
    /// No-op when the `obs` feature is compiled out.
    pub fn metrics(mut self, reg: &MetricsRegistry) -> Self {
        self.metrics = Some(reg.clone());
        self
    }

    /// Periodically snapshot construction state to `path` (atomic write,
    /// CRC-checked artifact), so an interrupted build can be continued
    /// with [`resume_from`] (producing a byte-identical SFA). Works with
    /// both engines: the sequential engine snapshots every
    /// `every_states` processed states, the parallel engine every
    /// `every_states` discovered states (all workers quiesce at a
    /// barrier and one of them snapshots the canonical-order prefix —
    /// the state numbering both engines share, so either engine can
    /// resume the other's checkpoint). The parallel engine only rejects
    /// the combination with schedule-dependent options (probabilistic
    /// mode, `CompressionPolicy::WhenMemoryExceeds`).
    ///
    /// [`resume_from`]: SfaBuilder::resume_from
    pub fn checkpoint(mut self, path: impl Into<PathBuf>, every_states: u64) -> Self {
        self.checkpoint = Some(CheckpointConfig::new(path, every_states));
        self
    }

    /// Continue an interrupted build from the checkpoint artifact at
    /// `path`. The checkpoint must have been written for the same DFA
    /// (a fingerprint binds them); the finished SFA is byte-identical to
    /// an uninterrupted run, whichever engine wrote the checkpoint and
    /// whichever engine resumes it.
    pub fn resume_from(mut self, path: impl AsRef<Path>) -> Self {
        self.resume_from = Some(path.as_ref().to_path_buf());
        self
    }

    /// Run the configured construction. The budget clock starts here.
    pub fn build(self) -> Result<ConstructionResult, SfaError> {
        let mut opts = self.opts;
        let mut budget = self.budget;
        if let Some(cfg) = &mut opts.spill {
            // With a spill tier, the payload-byte axis stops being a hard
            // error: fold it into the demotion cap (tighter value wins)
            // and strip it from the governor — crossing it now demotes
            // instead of failing the build.
            if let Some(max) = budget.max_payload_bytes.take() {
                cfg.cap_bytes = cfg.cap_bytes.min(max);
            }
        }
        let governor = Governor::new(&budget, self.cancel);
        let resume = match &self.resume_from {
            Some(path) => Some(artifact::read_checkpoint(path)?),
            None => None,
        };
        let result = match self.variant {
            Some(variant) => construct_sequential_spillable(
                self.dfa,
                variant,
                opts.state_budget,
                &governor,
                self.checkpoint.as_ref(),
                resume.as_ref(),
                opts.spill.as_ref(),
            )?,
            None => construct_parallel_resumable(
                self.dfa,
                &opts,
                &governor,
                self.checkpoint.as_ref(),
                resume.as_ref(),
            )?,
        };
        if let Some(reg) = &self.metrics {
            crate::obs::record_construction(reg, &result.stats);
        }
        if let Some(sub) = &self.subscriber {
            crate::obs::emit_phase_spans_to(sub.as_ref(), &result.stats);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_automata::alphabet::Alphabet;
    use sfa_automata::pipeline::Pipeline;

    fn rg_dfa() -> Dfa {
        Pipeline::search(Alphabet::amino_acids())
            .compile_str("RG")
            .unwrap()
    }

    #[test]
    fn builder_matches_both_engines() {
        let dfa = rg_dfa();
        let par = Sfa::builder(&dfa).threads(2).build().unwrap();
        let seq = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap();
        assert_eq!(par.sfa.num_states(), 6);
        assert_eq!(seq.sfa.num_states(), 6);
        par.sfa.validate(&dfa).unwrap();
        assert_eq!(par.stats.threads, 2);
        assert_eq!(seq.stats.threads, 1);
    }

    #[test]
    fn builder_wraps_deprecated_entry_points() {
        // The wrappers must stay behaviourally identical to the builder.
        let dfa = rg_dfa();
        #[allow(deprecated)]
        let old =
            crate::parallel::construct_parallel(&dfa, &ParallelOptions::with_threads(2)).unwrap();
        let new = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(2))
            .build()
            .unwrap();
        assert_eq!(old.sfa.num_states(), new.sfa.num_states());
    }

    #[test]
    fn state_budget_applies_to_both_engines() {
        let dfa = rg_dfa();
        for b in [
            Sfa::builder(&dfa).threads(2).state_budget(3),
            Sfa::builder(&dfa)
                .sequential(SequentialVariant::Hashing)
                .state_budget(3),
        ] {
            assert_eq!(
                b.build().unwrap_err(),
                SfaError::StateBudgetExceeded { budget: 3 }
            );
        }
    }

    #[test]
    fn parallel_checkpointing_rejects_schedule_dependent_options() {
        // Parallel + checkpoint is supported now; only options whose
        // outcome depends on worker scheduling stay rejected (their
        // resumed artifacts could not be byte-identical).
        let dfa = rg_dfa();
        let dir = std::env::temp_dir().join("sfa_builder_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut probabilistic = ParallelOptions::with_threads(2);
        probabilistic.probabilistic = true;
        let mut watermark = ParallelOptions::with_threads(2);
        watermark.compression = CompressionPolicy::WhenMemoryExceeds(1);
        for opts in [probabilistic, watermark] {
            let b = Sfa::builder(&dfa)
                .options(&opts)
                .checkpoint(dir.join("reject.ckpt"), 8);
            assert!(matches!(
                b.build().unwrap_err(),
                SfaError::InvalidOptions(_)
            ));
        }
    }

    #[test]
    fn parallel_checkpoint_then_resume_is_byte_identical() {
        let dfa = rg_dfa();
        let dir = std::env::temp_dir().join("sfa_builder_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume_par_unit.ckpt");
        let _ = std::fs::remove_file(&path);

        // Interrupt via a tight state budget, snapshotting at every
        // discovered state. Medium granularity (one symbol per work
        // item) makes discovery gradual enough that checkpoints land
        // before the arena overflows — with one state per item the
        // whole budget can blow inside the first item.
        let mut opts = ParallelOptions::with_threads(2);
        opts.symbol_blocks = dfa.num_symbols();
        opts.state_budget = 5;
        let err = Sfa::builder(&dfa)
            .options(&opts)
            .checkpoint(&path, 1)
            .build()
            .unwrap_err();
        assert_eq!(err, SfaError::StateBudgetExceeded { budget: 5 });

        // Resume with *different* parallel options (default coarse
        // granularity): canonical numbering makes the result identical
        // to both an uninterrupted parallel build and a sequential one.
        let resumed = Sfa::builder(&dfa).resume_from(&path).build().unwrap();
        let fresh_par = Sfa::builder(&dfa).threads(2).build().unwrap();
        let fresh_seq = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap();
        let bytes = crate::io::to_bytes(&resumed.sfa);
        assert_eq!(bytes, crate::io::to_bytes(&fresh_par.sfa));
        assert_eq!(bytes, crate::io::to_bytes(&fresh_seq.sfa));
        resumed.sfa.validate(&dfa).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoints_are_interchangeable_between_engines() {
        // A sequential snapshot resumed by the parallel engine (and vice
        // versa) finishes to the same bytes as any uninterrupted build —
        // both engines number states in canonical (BFS) order.
        let dfa = rg_dfa();
        let dir = std::env::temp_dir().join("sfa_builder_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume_cross_unit.ckpt");
        let _ = std::fs::remove_file(&path);

        let err = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .checkpoint(&path, 1)
            .state_budget(5)
            .build()
            .unwrap_err();
        assert_eq!(err, SfaError::StateBudgetExceeded { budget: 5 });

        let par_resumed = Sfa::builder(&dfa)
            .threads(4)
            .resume_from(&path)
            .build()
            .unwrap();
        let fresh_seq = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap();
        assert_eq!(
            crate::io::to_bytes(&par_resumed.sfa),
            crate::io::to_bytes(&fresh_seq.sfa)
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_then_resume_is_byte_identical() {
        let dfa = rg_dfa();
        let dir = std::env::temp_dir().join("sfa_builder_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume_unit.ckpt");
        let _ = std::fs::remove_file(&path);

        // Interrupt via a tight state budget, checkpointing every state.
        // (The RG SFA has 6 states; a budget of 5 lets several states be
        // processed — and checkpointed — before the arena overflows.)
        let err = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .checkpoint(&path, 1)
            .state_budget(5)
            .build()
            .unwrap_err();
        assert_eq!(err, SfaError::StateBudgetExceeded { budget: 5 });

        let resumed = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .resume_from(&path)
            .build()
            .unwrap();
        let fresh = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap();
        assert_eq!(
            crate::io::to_bytes(&resumed.sfa),
            crate::io::to_bytes(&fresh.sfa)
        );
        resumed.sfa.validate(&dfa).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn spill_turns_payload_budget_errors_into_demotion() {
        use crate::budget::{Budget, BudgetResource};
        let dfa = sfa_automata::random::rn(80);
        let budget = Budget::unlimited().with_max_payload_bytes(4096);

        // Without a spill tier the byte axis is a hard error.
        let err = Sfa::builder(&dfa)
            .threads(2)
            .budget(budget.clone())
            .build()
            .unwrap_err();
        assert!(
            matches!(
                err,
                SfaError::BudgetExceeded {
                    resource: BudgetResource::PayloadBytes,
                    ..
                }
            ),
            "expected a payload-bytes budget failure, got {err:?}"
        );

        // With one, the same budget becomes the demotion cap and the
        // build completes byte-identical to an unrestricted run.
        let dir = std::env::temp_dir().join(format!("sfa-builder-spill-{}", std::process::id()));
        let capped = Sfa::builder(&dfa)
            .threads(2)
            .budget(budget)
            .spill(&dir, u64::MAX)
            .build()
            .unwrap();
        let free = Sfa::builder(&dfa).threads(2).build().unwrap();
        assert_eq!(
            crate::io::to_bytes(&capped.sfa),
            crate::io::to_bytes(&free.sfa),
            "spilled build must be byte-identical to the unrestricted one"
        );
        assert!(
            capped.stats.demotions > 0,
            "a 4 KiB cap on an rn(80) build must engage the spill tier"
        );
        capped.sfa.validate(&dfa).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequential_builder_spill_is_byte_identical() {
        let dfa = sfa_automata::random::rn(60);
        let dir = std::env::temp_dir().join(format!("sfa-builder-sspill-{}", std::process::id()));
        let capped = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .spill(&dir, 2048)
            .build()
            .unwrap();
        let free = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap();
        assert_eq!(
            crate::io::to_bytes(&capped.sfa),
            crate::io::to_bytes(&free.sfa)
        );
        assert!(capped.stats.spilled_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_missing_file_is_an_artifact_error() {
        let dfa = rg_dfa();
        let err = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .resume_from("/nonexistent/sfa-resume.ckpt")
            .build()
            .unwrap_err();
        assert!(matches!(err, SfaError::Artifact(_)));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn builder_observability_hooks_deliver() {
        use crate::obs::{MetricsRegistry, RingSubscriber};
        let dfa = rg_dfa();
        let reg = MetricsRegistry::new();
        let sub = Arc::new(RingSubscriber::new(64));
        let result = Sfa::builder(&dfa)
            .threads(2)
            .metrics(&reg)
            .with_subscriber(sub.clone())
            .build()
            .unwrap();
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("sfa_construct_runs_total"),
            Some(1),
            "metrics hook must feed the private registry"
        );
        assert_eq!(
            snap.counter("sfa_construct_states_total"),
            Some(result.stats.states),
        );
        let spans = sub.spans();
        assert!(
            spans.iter().any(|s| s.name == "construct/total"),
            "subscriber hook must receive the per-phase spans, got {spans:?}"
        );
    }

    #[test]
    fn threads_clears_sequential_selection() {
        let dfa = rg_dfa();
        let r = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Baseline)
            .threads(3)
            .build()
            .unwrap();
        assert_eq!(r.stats.threads, 3);
    }
}
