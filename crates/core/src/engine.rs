//! The self-degrading match engine.
//!
//! [`MatchEngine`] answers "does this input match?" under a resource
//! budget by climbing down a four-rung ladder instead of failing:
//!
//! 1. **Full SFA** — batch-construct the complete SFA under the budget;
//!    matching then runs in parallel chunks with no construction cost
//!    per input (the paper's intended operating point).
//! 2. **Lazy SFA** — if batch construction exhausts the budget or is
//!    cancelled, fall back to [`LazySfa`]: states are built on demand
//!    while matching, bounded by the budget's *space* axes (the deadline
//!    was spent on the failed batch attempt, so it is dropped —
//!    [`Budget::without_deadline`]).
//! 3. **Speculative** — if even lazy discovery exhausts the space
//!    budget, keep data-parallelism *without* any SFA: chunks run over
//!    the raw DFA from predicted (or feasible-set-pruned) entry states
//!    with seam verification — see [`crate::speculative`]. Narrow
//!    feasible sets answer on the exact pruned-enumerative mode
//!    ([`MatchTier::PrunedSfa`]); wide ones speculate
//!    ([`MatchTier::Speculative`]).
//! 4. **Sequential** — if a speculative worker panics, fall back to
//!    plain sequential DFA matching, which needs no construction and
//!    always answers.
//!
//! Every tier returns the *same verdict* — the SFA simulates the DFA
//! from every start state, and the speculative tier re-runs every
//! mispredicted seam, so degradation trades throughput, never
//! correctness. The engine records which tier served each query in
//! [`EngineStats`].

use crate::budget::{Budget, Governor};
use crate::lazy::LazySfa;
use crate::matcher::{match_sequential, ParallelMatcher};
use crate::obs::{MetricsRegistry, SpanRecord, Subscriber};
use crate::parallel::{construct_parallel_governed, ParallelOptions};
use crate::request::{ClassifierMode, InputSource, MatchOutcome, MatchRequest, TierPolicy};
use crate::runtime::{ByteClassifier, Classified, MatchRuntime, MatchStats};
use crate::scan::{ScanEngine, ScanOptions};
use crate::sfa::Sfa;
use crate::speculative::SpeculativeMatcher;
use crate::stats::ConstructionStats;
use crate::SfaError;
use sfa_automata::alphabet::SymbolId;
use sfa_automata::dfa::Dfa;
use sfa_sync::CancelToken;
use std::io::Read;
use std::sync::Arc;
use std::time::Instant;

/// Which rung of the degradation ladder is serving queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchTier {
    /// Complete batch-constructed SFA; parallel chunk matching.
    FullSfa,
    /// On-demand SFA construction during matching.
    LazySfa,
    /// Exact enumerative chunk matching over the raw DFA: every chunk
    /// runs from each of its PaREM feasible entry states — a pruned
    /// partial mapping instead of a full SFA row (see
    /// [`crate::speculative`]).
    PrunedSfa,
    /// Speculative chunk matching over the raw DFA: predicted entry
    /// states, seam verification, mispredicted suffixes re-run (see
    /// [`crate::speculative`]).
    Speculative,
    /// Plain sequential DFA simulation (no construction).
    Sequential,
}

impl std::fmt::Display for MatchTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MatchTier::FullSfa => "full",
            MatchTier::LazySfa => "lazy",
            MatchTier::PrunedSfa => "pruned",
            MatchTier::Speculative => "speculative",
            MatchTier::Sequential => "sequential",
        })
    }
}

/// What the engine did and why.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct EngineStats {
    /// Times the engine stepped down a tier (0–3).
    pub degradations: u64,
    /// Queries served by the full-SFA tier.
    pub full_matches: u64,
    /// Queries served by the lazy tier.
    pub lazy_matches: u64,
    /// Queries served by the speculative backend's exact
    /// pruned-enumerative mode.
    pub pruned_matches: u64,
    /// Queries served by the speculative backend's predict/verify mode.
    pub speculative_matches: u64,
    /// Queries served by the sequential tier.
    pub sequential_matches: u64,
    /// Statistics of the successful batch construction (full tier only).
    pub construction: Option<ConstructionStats>,
    /// The governance error behind the most recent degradation.
    pub last_error: Option<SfaError>,
    /// Telemetry of the most recent match (tier, chunks, throughput,
    /// pool backlog).
    pub last_match: Option<MatchStats>,
}

enum Backend<'d> {
    /// Complete SFA plus its precomputed [`ScanEngine`] — the compact
    /// tables are built once here, not per query.
    Full {
        sfa: Box<Sfa>,
        scan: Arc<ScanEngine>,
    },
    Lazy(Box<LazySfa<'d>>),
    /// Chunk-parallel matching over the raw DFA (pruned or speculative
    /// per query — see [`crate::speculative`]); reported as
    /// [`MatchTier::PrunedSfa`] or [`MatchTier::Speculative`].
    Speculative(SpeculativeMatcher<'d>),
    Sequential,
}

/// A matcher that builds the best automaton the budget allows and
/// degrades gracefully instead of failing — see the module docs.
pub struct MatchEngine<'d> {
    dfa: &'d Dfa,
    threads: usize,
    backend: Backend<'d>,
    stats: EngineStats,
    runtime: MatchRuntime,
    /// Matching polls the same token construction did, so a server can
    /// abort an in-flight query with the handle it already holds.
    cancel: Option<CancelToken>,
    /// Per-engine span sink: every answered query emits a `match/query`
    /// span here (in addition to any process-global subscriber).
    subscriber: Option<Arc<dyn Subscriber>>,
    /// Per-engine metrics sink: every answered query is recorded here
    /// under `sfa_match_*` (the global registry is fed independently by
    /// the runtime).
    metrics: Option<MetricsRegistry>,
}

impl<'d> MatchEngine<'d> {
    /// Build with default parallel options and no limits (always lands
    /// on the full tier unless the DFA itself is degenerate).
    pub fn new(dfa: &'d Dfa, threads: usize) -> Self {
        let opts = ParallelOptions::with_threads(threads.max(1));
        MatchEngine::with_budget(dfa, &opts, &Budget::unlimited(), None)
    }

    /// Build under `budget` / `cancel`. Never fails: construction errors
    /// degrade the tier (recorded in [`EngineStats`]) rather than
    /// propagate.
    pub fn with_budget(
        dfa: &'d Dfa,
        opts: &ParallelOptions,
        budget: &Budget,
        cancel: Option<CancelToken>,
    ) -> Self {
        let mut stats = EngineStats::default();
        let governor = Governor::new(budget, cancel.clone());
        let backend = match construct_parallel_governed(dfa, opts, &governor) {
            Ok(result) => {
                stats.construction = Some(result.stats);
                let scan = Arc::new(ScanEngine::new(&result.sfa, dfa));
                Backend::Full {
                    sfa: Box::new(result.sfa),
                    scan,
                }
            }
            Err(err) => {
                stats.degradations += 1;
                stats.last_error = Some(err);
                // The deadline was consumed by the batch attempt; the
                // space axes still bound lazy discovery.
                let lazy_budget = budget.clone().without_deadline();
                match LazySfa::with_budget(dfa, opts.state_budget, &lazy_budget, cancel.clone()) {
                    Ok(lazy) => Backend::Lazy(Box::new(lazy)),
                    Err(err) => {
                        stats.degradations += 1;
                        stats.last_error = Some(err);
                        // No SFA at all fits the budget: keep the pool
                        // busy anyway with the speculative tier (raw-DFA
                        // chunks, predicted entries). Construction never
                        // lands on Sequential — only a speculative
                        // worker panic degrades that far.
                        match SpeculativeMatcher::new(dfa) {
                            Ok(spec) => Backend::Speculative(spec),
                            Err(_) => Backend::Sequential,
                        }
                    }
                }
            }
        };
        MatchEngine {
            dfa,
            threads: opts.threads.max(1),
            backend,
            stats,
            runtime: MatchRuntime::shared(),
            cancel,
            subscriber: None,
            metrics: None,
        }
    }

    /// Replace the match runtime (pool / streaming block size). The
    /// default is the process-shared pool with the default block size.
    pub fn set_runtime(&mut self, runtime: MatchRuntime) {
        self.runtime = runtime;
    }

    /// Deliver a `match/query` span to `sub` for every answered query,
    /// whatever tier served it. No-op when the `obs` feature is compiled
    /// out.
    pub fn with_subscriber(mut self, sub: Arc<dyn Subscriber>) -> Self {
        self.subscriber = Some(sub);
        self
    }

    /// Record every answered query's [`MatchStats`] into `reg`
    /// (`sfa_match_*` counters, gauges, and latency histogram). No-op
    /// when the `obs` feature is compiled out.
    pub fn metrics(mut self, reg: &MetricsRegistry) -> Self {
        self.metrics = Some(reg.clone());
        self
    }

    /// Per-engine observability delivery for one answered query. An
    /// associated fn over the two sinks (not `&self`) so call sites can
    /// run it while `self.backend` is still borrowed.
    fn deliver_match(
        metrics: &Option<MetricsRegistry>,
        subscriber: &Option<Arc<dyn Subscriber>>,
        stats: &MatchStats,
    ) {
        if let Some(reg) = metrics {
            crate::obs::record_match(reg, stats);
        }
        if let Some(sub) = subscriber {
            sub.on_span(&SpanRecord {
                name: "match/query",
                nanos: stats.elapsed.as_nanos().min(u64::MAX as u128) as u64,
            });
        }
    }

    /// Reconfigure the full tier's scan knobs (interleave width,
    /// oversubscription). Rebuilds the compact tables once; a no-op on
    /// the other tiers. Fails only on invalid options.
    pub fn set_scan_options(&mut self, opts: ScanOptions) -> Result<(), SfaError> {
        opts.validate()?;
        match &mut self.backend {
            Backend::Full { sfa, scan } => {
                *scan = Arc::new(ScanEngine::with_options(sfa, self.dfa, opts)?);
            }
            Backend::Speculative(spec) => {
                // Same chunk-geometry knobs; the predictor carries over.
                *spec = SpeculativeMatcher::with_options(self.dfa, opts)?;
            }
            _ => {}
        }
        Ok(())
    }

    /// The full tier's scan knobs (`None` on degraded tiers).
    pub fn scan_options(&self) -> Option<ScanOptions> {
        match &self.backend {
            Backend::Full { scan, .. } => Some(scan.options()),
            _ => None,
        }
    }

    /// The match runtime serving this engine.
    pub fn runtime(&self) -> &MatchRuntime {
        &self.runtime
    }

    /// The underlying DFA.
    pub fn dfa(&self) -> &Dfa {
        self.dfa
    }

    /// The tier currently serving queries. A speculative backend
    /// reports [`MatchTier::Speculative`]; whether a given query lands
    /// on the exact pruned mode instead is per-input (check the
    /// outcome's `tier`).
    pub fn tier(&self) -> MatchTier {
        match self.backend {
            Backend::Full { .. } => MatchTier::FullSfa,
            Backend::Lazy(_) => MatchTier::LazySfa,
            Backend::Speculative(_) => MatchTier::Speculative,
            Backend::Sequential => MatchTier::Sequential,
        }
    }

    /// Engine statistics (tier counters, degradation causes,
    /// construction stats of the full tier).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Does `input` match? Same verdict on every tier; a lazy tier that
    /// exhausts its space budget mid-query — or a full tier whose worker
    /// panics — steps down the ladder and still answers. A query
    /// cancelled mid-match is also answered sequentially (the caller
    /// asked for a verdict); use [`Self::run`] to receive cancellation
    /// as a typed error instead.
    pub fn matches(&mut self, input: &[SymbolId]) -> bool {
        let governor = self.match_governor();
        match self.run_symbols(input, &governor) {
            Ok((verdict, _)) => verdict,
            // Answer sequentially with the full bookkeeping — this
            // fallback used to bump the tier counter but skip the
            // telemetry sinks and `last_match`, so observability
            // silently lost exactly the queries that hit trouble.
            Err(_) => self.match_sequentially(input).0,
        }
    }

    /// Serve one [`MatchRequest`] — the unified entry point the CLI and
    /// the `sfa serve` daemon share. The request's budget is enforced by
    /// a fresh [`Governor`] carrying the engine's cancel token, so a
    /// server can still abort in-flight queries.
    ///
    /// Tier policy:
    /// * [`TierPolicy::Auto`] — the ordinary degradation ladder: the
    ///   current tier answers, and governance failures step the engine
    ///   down rather than propagate (see [`Self::matches`]).
    /// * [`TierPolicy::Sequential`] — the plain-DFA oracle, whatever
    ///   tier the engine is on. Used for verdict cross-checks.
    /// * [`TierPolicy::Speculative`] — the speculative raw-DFA tier
    ///   ([`crate::speculative`]), whatever tier the engine is on; the
    ///   outcome reports [`MatchTier::PrunedSfa`] when the exact pruned
    ///   mode answered.
    /// * [`TierPolicy::RequireFull`] — answer on the full tier or fail
    ///   with [`SfaError::InvalidOptions`]; never degrade silently.
    ///
    /// The outcome carries the verdict, the tier that *actually
    /// answered* (never the requested one), the query's [`MatchStats`],
    /// and — when an [`TierPolicy::Auto`] request was answered below
    /// the full tier by a degraded engine — the governance error that
    /// caused the most recent step-down. Explicitly requested
    /// sequential/speculative service is not a degradation and carries
    /// no `degraded` marker.
    pub fn run(&mut self, request: &MatchRequest) -> Result<MatchOutcome, SfaError> {
        if request.tier == TierPolicy::RequireFull && !matches!(self.backend, Backend::Full { .. })
        {
            return Err(SfaError::InvalidOptions(
                "tier policy requires the full SFA tier, but the engine has degraded",
            ));
        }
        let governor = Governor::new(&request.budget, self.cancel.clone());
        let outcome = if request.tier == TierPolicy::Sequential {
            self.serve_sequential(request, &governor)?
        } else if request.tier == TierPolicy::Speculative {
            self.serve_speculative(request, &governor)?
        } else {
            match &request.input {
                InputSource::Symbols(symbols) => {
                    let (verdict, stats) = self.run_symbols(symbols, &governor)?;
                    MatchOutcome::new(verdict, stats)
                }
                _ => self.run_unencoded(request, &governor)?,
            }
        };
        if request.trace {
            crate::obs::report_span(
                "match/request",
                outcome.stats.elapsed.as_nanos().min(u64::MAX as u128) as u64,
            );
        }
        if request.tier == TierPolicy::RequireFull && outcome.tier != MatchTier::FullSfa {
            return Err(SfaError::InvalidOptions(
                "tier policy requires the full SFA tier, but the engine degraded mid-query",
            ));
        }
        // `degraded` means "this Auto request was answered below the
        // full tier because of <error>". An explicitly requested
        // sequential or speculative answer is service as ordered, not a
        // degradation — attaching the marker there mislabelled every
        // oracle cross-check run against a degraded engine.
        if request.tier == TierPolicy::Auto && outcome.tier != MatchTier::FullSfa {
            if let Some(err) = &self.stats.last_error {
                return Ok(outcome.with_degraded(err.to_string()));
            }
        }
        Ok(outcome)
    }

    /// Fallible, telemetry-carrying match. The engine's cancel token is
    /// polled during the match; mid-match cancellation returns
    /// [`SfaError::Cancelled`]. A worker panic on the full tier degrades
    /// the engine to sequential (permanently, recorded in
    /// [`EngineStats`]) and still answers.
    #[deprecated(
        since = "0.1.0",
        note = "construct a MatchRequest and use MatchEngine::run"
    )]
    pub fn try_matches(&mut self, input: &[SymbolId]) -> Result<(bool, MatchStats), SfaError> {
        let governor = self.match_governor();
        self.run_symbols(input, &governor)
    }

    /// The symbol-slice ladder shared by [`Self::matches`],
    /// [`Self::run`], and the deprecated [`Self::try_matches`] shim.
    fn run_symbols(
        &mut self,
        input: &[SymbolId],
        governor: &Governor,
    ) -> Result<(bool, MatchStats), SfaError> {
        let degrade_err = match &self.backend {
            Backend::Full { sfa, scan } => {
                let matcher = ParallelMatcher::with_scan(sfa, self.dfa, Arc::clone(scan));
                match self.runtime.matches_symbols(&matcher, input, governor) {
                    Ok((verdict, stats)) => {
                        self.stats.full_matches += 1;
                        Self::deliver_match(&self.metrics, &self.subscriber, &stats);
                        self.stats.last_match = Some(stats.clone());
                        return Ok((verdict, stats));
                    }
                    // A poisoned automaton: contain it, stop trusting the
                    // full tier, serve sequentially from now on.
                    Err(err @ SfaError::WorkerPanic { .. }) => err,
                    // Governance (cancellation): the tier is fine, the
                    // caller said stop.
                    Err(other) => return Err(other),
                }
            }
            Backend::Lazy(lazy) => match lazy.matches(input, self.threads) {
                Ok(verdict) => {
                    self.stats.lazy_matches += 1;
                    let stats = MatchStats {
                        tier: MatchTier::LazySfa,
                        blocks: 1,
                        chunks: self.threads as u64,
                        bytes: input.len() as u64,
                        ..MatchStats::default()
                    };
                    Self::deliver_match(&self.metrics, &self.subscriber, &stats);
                    self.stats.last_match = Some(stats.clone());
                    return Ok((verdict, stats));
                }
                // The lazy tier ran out of budget mid-query: degrade
                // for good and serve this (and every later) query on
                // the next rung down.
                Err(err) => err,
            },
            Backend::Speculative(spec) => {
                match self.runtime.speculative_symbols(spec, input, governor) {
                    Ok((verdict, stats)) => {
                        if stats.tier == MatchTier::PrunedSfa {
                            self.stats.pruned_matches += 1;
                        } else {
                            self.stats.speculative_matches += 1;
                        }
                        Self::deliver_match(&self.metrics, &self.subscriber, &stats);
                        self.stats.last_match = Some(stats.clone());
                        return Ok((verdict, stats));
                    }
                    // A speculative worker panicked: the last parallel
                    // rung is gone, serve sequentially from now on.
                    Err(err @ SfaError::WorkerPanic { .. }) => err,
                    Err(other) => return Err(other),
                }
            }
            Backend::Sequential => return Ok(self.match_sequentially(input)),
        };
        self.stats.degradations += 1;
        self.stats.last_error = Some(degrade_err);
        self.backend = self.next_backend();
        // Re-enter the ladder one rung down; terminates because the
        // ladder is finite and Sequential always answers.
        self.run_symbols(input, governor)
    }

    /// The rung below the current backend: full-SFA and lazy failures
    /// fall to the speculative tier (chunk-parallel over the raw DFA —
    /// a full-tier worker panic poisons the SFA tables, not the DFA);
    /// a speculative failure falls to sequential, which always answers.
    fn next_backend(&self) -> Backend<'d> {
        match &self.backend {
            Backend::Full { .. } | Backend::Lazy(_) => match SpeculativeMatcher::new(self.dfa) {
                Ok(spec) => Backend::Speculative(spec),
                Err(_) => Backend::Sequential,
            },
            _ => Backend::Sequential,
        }
    }

    /// Stream an input through the engine in fixed-size blocks (see
    /// [`MatchRuntime::matches_stream`]): the full tier chunk-matches
    /// each block in parallel on the pool; other tiers scan the stream
    /// sequentially through the DFA. Same verdict either way, and peak
    /// memory stays at one block.
    pub fn match_stream<R: Read>(
        &mut self,
        classifier: &ByteClassifier,
        reader: R,
    ) -> Result<(bool, MatchStats), SfaError> {
        let governor = self.match_governor();
        match &self.backend {
            Backend::Full { sfa, scan } => {
                let matcher = ParallelMatcher::with_scan(sfa, self.dfa, Arc::clone(scan));
                match self
                    .runtime
                    .matches_stream(&matcher, classifier, reader, &governor)
                {
                    Ok((verdict, stats)) => {
                        self.stats.full_matches += 1;
                        Self::deliver_match(&self.metrics, &self.subscriber, &stats);
                        self.stats.last_match = Some(stats.clone());
                        Ok((verdict, stats))
                    }
                    Err(err @ SfaError::WorkerPanic { .. }) => {
                        // The stream is partially consumed, so this query
                        // cannot be replayed — surface the error, but stop
                        // trusting the full tier for later queries.
                        self.stats.degradations += 1;
                        self.stats.last_error = Some(err.clone());
                        self.backend = self.next_backend();
                        Err(err)
                    }
                    Err(other) => Err(other),
                }
            }
            _ => self.stream_sequentially(classifier, reader, &governor),
        }
    }

    /// Batch matching: the full tier dispatches one pool task per input
    /// ([`MatchRuntime::match_many`]); other tiers answer input by
    /// input. One verdict per input, in order.
    pub fn match_many(&mut self, inputs: &[&[SymbolId]]) -> Result<Vec<bool>, SfaError> {
        if !matches!(self.backend, Backend::Full { .. }) {
            return Ok(inputs.iter().map(|input| self.matches(input)).collect());
        }
        let governor = self.match_governor();
        let err = match &self.backend {
            Backend::Full { sfa, scan } => {
                let matcher = ParallelMatcher::with_scan(sfa, self.dfa, Arc::clone(scan));
                match self.runtime.match_many(&matcher, inputs, &governor) {
                    Ok(verdicts) => {
                        self.stats.full_matches += inputs.len() as u64;
                        return Ok(verdicts);
                    }
                    Err(err @ SfaError::WorkerPanic { .. }) => err,
                    Err(other) => return Err(other),
                }
            }
            _ => unreachable!("checked above"),
        };
        self.stats.degradations += 1;
        self.stats.last_error = Some(err);
        self.backend = self.next_backend();
        Ok(inputs.iter().map(|input| self.matches(input)).collect())
    }

    /// The governor every match polls: the construction budget's axes
    /// were spent on construction, but the cancel token stays live so a
    /// server can abort in-flight queries.
    fn match_governor(&self) -> Governor {
        Governor::new(&Budget::unlimited(), self.cancel.clone())
    }

    /// The byte classifier a request asked for, over this engine's
    /// alphabet.
    fn classifier_for(&self, request: &MatchRequest) -> ByteClassifier {
        match request.classifier {
            ClassifierMode::Strict => ByteClassifier::strict(self.dfa.alphabet()),
            ClassifierMode::SkipWhitespace => {
                ByteClassifier::skipping_ascii_whitespace(self.dfa.alphabet())
            }
        }
    }

    /// One request through the plain-DFA oracle, with the engine's
    /// bookkeeping (tier counter, telemetry sinks) applied.
    fn serve_sequential(
        &mut self,
        request: &MatchRequest,
        governor: &Governor,
    ) -> Result<MatchOutcome, SfaError> {
        let classifier = self.classifier_for(request);
        let outcome = self
            .runtime
            .run_sequential(self.dfa, request, governor, &classifier)?;
        self.stats.sequential_matches += 1;
        Self::deliver_match(&self.metrics, &self.subscriber, &outcome.stats);
        self.stats.last_match = Some(outcome.stats.clone());
        Ok(outcome)
    }

    /// One request through the speculative raw-DFA tier (pruned or
    /// predict/verify per input — see [`crate::speculative`]), with the
    /// engine's bookkeeping applied.
    fn serve_speculative(
        &mut self,
        request: &MatchRequest,
        governor: &Governor,
    ) -> Result<MatchOutcome, SfaError> {
        let classifier = self.classifier_for(request);
        let outcome = self
            .runtime
            .run_speculative(self.dfa, request, governor, &classifier)?;
        if outcome.tier == MatchTier::PrunedSfa {
            self.stats.pruned_matches += 1;
        } else {
            self.stats.speculative_matches += 1;
        }
        Self::deliver_match(&self.metrics, &self.subscriber, &outcome.stats);
        self.stats.last_match = Some(outcome.stats.clone());
        Ok(outcome)
    }

    /// Byte and file requests under [`TierPolicy::Auto`]: the full tier
    /// fuses classification into its chunk scans; the lazy and
    /// speculative tiers encode up front and take the symbol ladder;
    /// the sequential tier runs the oracle. Both byte buffers and paths
    /// are replayable, so a worker panic degrades the engine and still
    /// answers this query.
    fn run_unencoded(
        &mut self,
        request: &MatchRequest,
        governor: &Governor,
    ) -> Result<MatchOutcome, SfaError> {
        let classifier = self.classifier_for(request);
        let degrade_err = match &self.backend {
            Backend::Full { sfa, scan } => {
                let matcher = ParallelMatcher::with_scan(sfa, self.dfa, Arc::clone(scan));
                let served = match &request.input {
                    InputSource::Bytes(bytes) => {
                        self.runtime
                            .matches_bytes(&matcher, &classifier, bytes, governor)
                    }
                    InputSource::File(path) => match std::fs::File::open(path) {
                        Ok(file) => {
                            self.runtime
                                .matches_stream(&matcher, &classifier, file, governor)
                        }
                        Err(e) => Err(SfaError::Io(format!("open {}: {e}", path.display()))),
                    },
                    InputSource::Symbols(_) => {
                        unreachable!("symbol inputs take the run_symbols path")
                    }
                };
                match served {
                    Ok((verdict, stats)) => {
                        self.stats.full_matches += 1;
                        Self::deliver_match(&self.metrics, &self.subscriber, &stats);
                        self.stats.last_match = Some(stats.clone());
                        return Ok(MatchOutcome::new(verdict, stats));
                    }
                    Err(err @ SfaError::WorkerPanic { .. }) => err,
                    Err(other) => return Err(other),
                }
            }
            Backend::Lazy(_) | Backend::Speculative(_) => {
                // These tiers need encoded symbols; classify up front
                // (the whole input is in memory either way) and take
                // the symbol ladder, which already handles their
                // degradation.
                let symbols = self.encode_input(&request.input, &classifier)?;
                let (verdict, stats) = self.run_symbols(&symbols, governor)?;
                return Ok(MatchOutcome::new(verdict, stats));
            }
            Backend::Sequential => return self.serve_sequential(request, governor),
        };
        self.stats.degradations += 1;
        self.stats.last_error = Some(degrade_err);
        self.backend = self.next_backend();
        self.run_unencoded(request, governor)
    }

    /// Classify an unencoded input source into a symbol vector.
    fn encode_input(
        &self,
        input: &InputSource,
        classifier: &ByteClassifier,
    ) -> Result<Vec<SymbolId>, SfaError> {
        let classify_all = |bytes: &[u8]| -> Result<Vec<SymbolId>, SfaError> {
            let mut out = Vec::with_capacity(bytes.len());
            for (offset, &b) in bytes.iter().enumerate() {
                match classifier.classify(b) {
                    Classified::Symbol(sym) => out.push(sym),
                    Classified::Skip => {}
                    Classified::Invalid => {
                        return Err(SfaError::InvalidByte {
                            byte: b,
                            offset: offset as u64,
                        })
                    }
                }
            }
            Ok(out)
        };
        match input {
            InputSource::Symbols(symbols) => Ok(symbols.clone()),
            InputSource::Bytes(bytes) => classify_all(bytes),
            InputSource::File(path) => {
                let bytes = std::fs::read(path)
                    .map_err(|e| SfaError::Io(format!("read {}: {e}", path.display())))?;
                classify_all(&bytes)
            }
        }
    }

    fn match_sequentially(&mut self, input: &[SymbolId]) -> (bool, MatchStats) {
        let start = Instant::now();
        self.stats.sequential_matches += 1;
        let verdict = match_sequential(self.dfa, input);
        let stats = MatchStats {
            tier: MatchTier::Sequential,
            blocks: 1,
            chunks: 1,
            bytes: input.len() as u64,
            elapsed: start.elapsed(),
            ..MatchStats::default()
        };
        Self::deliver_match(&self.metrics, &self.subscriber, &stats);
        self.stats.last_match = Some(stats.clone());
        (verdict, stats)
    }

    /// Sequential streaming scan used by the non-full tiers: classify
    /// and step block by block, polling the governor between blocks.
    fn stream_sequentially<R: Read>(
        &mut self,
        classifier: &ByteClassifier,
        mut reader: R,
        governor: &Governor,
    ) -> Result<(bool, MatchStats), SfaError> {
        let start = Instant::now();
        let mut stats = MatchStats {
            tier: MatchTier::Sequential,
            chunks: 1,
            ..MatchStats::default()
        };
        let mut buf = vec![0u8; self.runtime.block_bytes()];
        let mut q = self.dfa.start();
        let mut offset = 0u64;
        loop {
            governor.check(0, 0)?;
            // Same bounded-retry read as the parallel streaming path.
            let filled = self.runtime.read_block(&mut reader, &mut buf, &mut stats)?;
            if filled == 0 {
                break;
            }
            for (j, &b) in buf[..filled].iter().enumerate() {
                match classifier.classify(b) {
                    Classified::Symbol(sym) => q = self.dfa.next(q, sym),
                    Classified::Skip => {}
                    Classified::Invalid => {
                        return Err(SfaError::InvalidByte {
                            byte: b,
                            offset: offset + j as u64,
                        })
                    }
                }
            }
            offset += filled as u64;
            stats.blocks += 1;
            if filled < buf.len() {
                break;
            }
        }
        self.stats.sequential_matches += 1;
        stats.bytes = offset;
        stats.elapsed = start.elapsed();
        Self::deliver_match(&self.metrics, &self.subscriber, &stats);
        self.stats.last_match = Some(stats.clone());
        Ok((self.dfa.is_accepting(q), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::BudgetResource;
    use sfa_automata::alphabet::Alphabet;
    use sfa_automata::pipeline::Pipeline;
    use sfa_workloads::protein_text;
    use std::time::Duration;

    fn rg_dfa() -> Dfa {
        Pipeline::search(Alphabet::amino_acids())
            .compile_str("RG")
            .unwrap()
    }

    #[test]
    fn unlimited_engine_uses_full_tier() {
        let dfa = rg_dfa();
        let mut engine = MatchEngine::new(&dfa, 2);
        assert_eq!(engine.tier(), MatchTier::FullSfa);
        assert!(engine.stats().construction.is_some());
        let text = protein_text(5_000, 7);
        assert_eq!(engine.matches(&text), match_sequential(&dfa, &text));
        assert_eq!(engine.stats().full_matches, 1);
        assert_eq!(engine.stats().degradations, 0);
    }

    #[test]
    fn zero_deadline_degrades_to_lazy_with_same_verdict() {
        let dfa = rg_dfa();
        let budget = Budget::unlimited().with_deadline(Duration::ZERO);
        let mut engine =
            MatchEngine::with_budget(&dfa, &ParallelOptions::with_threads(2), &budget, None);
        assert_eq!(engine.tier(), MatchTier::LazySfa);
        assert!(matches!(
            engine.stats().last_error,
            Some(SfaError::BudgetExceeded {
                resource: BudgetResource::Deadline,
                ..
            })
        ));
        for seed in 0..4 {
            let text = protein_text(8_000, seed);
            assert_eq!(engine.matches(&text), match_sequential(&dfa, &text));
        }
        assert_eq!(engine.stats().lazy_matches, 4);
    }

    #[test]
    fn lazy_space_exhaustion_degrades_to_speculative_mid_query() {
        // max_states=1 admits the identity state only; the first lazy
        // discovery trips the budget and the query falls through to the
        // speculative backend — with the right verdict. The search DFA
        // is narrow, so the query itself lands on the exact pruned mode.
        let dfa = rg_dfa();
        let budget = Budget::unlimited()
            .with_deadline(Duration::ZERO)
            .with_max_states(1);
        let mut engine =
            MatchEngine::with_budget(&dfa, &ParallelOptions::with_threads(2), &budget, None);
        assert_eq!(engine.tier(), MatchTier::LazySfa);
        let text = protein_text(5_000, 3);
        assert_eq!(engine.matches(&text), match_sequential(&dfa, &text));
        assert_eq!(engine.tier(), MatchTier::Speculative);
        assert_eq!(engine.stats().degradations, 2);
        assert_eq!(engine.stats().pruned_matches, 1);
        assert_eq!(engine.stats().sequential_matches, 0);
        // Further queries stay on the speculative backend.
        let text2 = protein_text(1_000, 4);
        assert_eq!(engine.matches(&text2), match_sequential(&dfa, &text2));
        assert_eq!(
            engine.stats().pruned_matches + engine.stats().speculative_matches,
            2
        );
        let last = engine.stats().last_match.clone().unwrap();
        assert!(matches!(
            last.tier,
            MatchTier::PrunedSfa | MatchTier::Speculative
        ));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn engine_observability_hooks_deliver_on_every_tier() {
        use crate::obs::RingSubscriber;
        let dfa = rg_dfa();
        let reg = MetricsRegistry::new();
        let sub = Arc::new(RingSubscriber::new(64));
        let mut engine = MatchEngine::new(&dfa, 2)
            .metrics(&reg)
            .with_subscriber(sub.clone());
        let text = protein_text(5_000, 7);
        engine.matches(&text); // full tier
                               // Force the sequential path too.
        let (_, seq_stats) = engine.match_sequentially(&text);
        assert_eq!(seq_stats.tier, MatchTier::Sequential);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sfa_match_queries_total"), Some(2));
        assert_eq!(
            snap.counter("sfa_match_bytes_total"),
            Some(2 * text.len() as u64)
        );
        assert_eq!(snap.histogram("sfa_match_elapsed_nanos").unwrap().count, 2);
        let spans = sub.spans();
        assert_eq!(
            spans.iter().filter(|s| s.name == "match/query").count(),
            2,
            "one span per answered query, got {spans:?}"
        );
    }

    #[test]
    fn cancelled_before_start_still_answers() {
        let dfa = rg_dfa();
        let token = sfa_sync::CancelToken::new();
        token.cancel();
        let mut engine = MatchEngine::with_budget(
            &dfa,
            &ParallelOptions::with_threads(2),
            &Budget::unlimited(),
            Some(token),
        );
        // Batch construction refuses immediately; lazy discovery is also
        // cancelled, so the first query degrades to sequential.
        assert!(matches!(
            engine.stats().last_error,
            Some(SfaError::Cancelled { .. })
        ));
        let text = protein_text(2_000, 11);
        assert_eq!(engine.matches(&text), match_sequential(&dfa, &text));
    }
}
