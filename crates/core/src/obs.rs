//! Observability for the SFA stack — `sfa_obs` re-exported, plus
//! bridges from core's own telemetry structs into it.
//!
//! See `sfa_obs` for the substrate (spans, metrics registry, exporters)
//! and DESIGN.md §12 for the span taxonomy, the
//! `sfa_<subsystem>_<name>_<unit>` naming scheme, and the overhead
//! budget. This module adds the core-type bridges:
//!
//! * [`record_construction`] — a [`ConstructionStats`] into a registry
//!   (`sfa_construct_*` counters/histograms + the contention bridge).
//! * [`record_match`] — a [`MatchStats`] into a registry
//!   (`sfa_match_*`).
//! * [`phase_spans`]/[`emit_phase_spans_to`] — the per-phase
//!   construction spans (`construct/phase1`, `construct/compression`,
//!   `construct/phase3`), derived from the same durations stored in the
//!   stats so span sums always equal `total_secs`.
//!
//! Construction engines call [`observe_construction`] on every
//! successful run, so the [`global()`] registry and any installed
//! global subscriber see every build with no per-run wiring.

pub use sfa_obs::*;

use crate::runtime::MatchStats;
use crate::stats::ConstructionStats;

/// `seconds: f64` (how stats store phase times) → whole nanoseconds.
fn secs_to_nanos(secs: f64) -> u64 {
    (secs.max(0.0) * 1e9).round() as u64
}

/// The per-phase construction spans for one finished run. Durations are
/// taken verbatim from the stats fields, so
/// `sum(phase spans) == total_secs` up to per-span rounding (< 1 ns
/// each). Uncompressed runs have a single `construct/phase1` span
/// covering the whole construction.
pub fn phase_spans(stats: &ConstructionStats) -> Vec<SpanRecord> {
    let mut spans = vec![SpanRecord {
        name: "construct/phase1",
        nanos: secs_to_nanos(stats.phase1_secs),
    }];
    if stats.compressed {
        spans.push(SpanRecord {
            name: "construct/compression",
            nanos: secs_to_nanos(stats.compression_secs),
        });
        spans.push(SpanRecord {
            name: "construct/phase3",
            nanos: secs_to_nanos(stats.phase3_secs),
        });
    }
    spans
}

/// Deliver one run's phase spans plus a `construct/total` summary span
/// to `sub` — the builder-hook delivery path
/// ([`SfaBuilder::with_subscriber`](crate::SfaBuilder::with_subscriber)).
pub fn emit_phase_spans_to(sub: &dyn Subscriber, stats: &ConstructionStats) {
    for span in phase_spans(stats) {
        sub.on_span(&span);
    }
    sub.on_span(&SpanRecord {
        name: "construct/total",
        nanos: secs_to_nanos(stats.total_secs),
    });
}

/// Record one construction run into `reg` under `sfa_construct_*`.
pub fn record_construction(reg: &MetricsRegistry, stats: &ConstructionStats) {
    reg.counter("sfa_construct_runs_total").inc();
    reg.counter("sfa_construct_states_total").add(stats.states);
    reg.counter("sfa_construct_candidates_total")
        .add(stats.candidates);
    reg.counter("sfa_construct_duplicates_total")
        .add(stats.duplicates);
    reg.counter("sfa_construct_exhaustive_compares_total")
        .add(stats.exhaustive_compares);
    reg.counter("sfa_construct_fingerprint_collisions_total")
        .add(stats.fingerprint_collisions);
    reg.counter("sfa_construct_stored_bytes_total")
        .add(stats.stored_bytes);
    reg.counter("sfa_construct_uncompressed_bytes_total")
        .add(stats.uncompressed_bytes);
    reg.gauge("sfa_construct_threads").set(stats.threads as i64);
    reg.gauge("sfa_construct_peak_bytes")
        .set(stats.peak_bytes as i64);
    reg.histogram("sfa_construct_phase1_nanos")
        .observe(secs_to_nanos(stats.phase1_secs));
    reg.histogram("sfa_construct_total_nanos")
        .observe(secs_to_nanos(stats.total_secs));
    if stats.compressed {
        reg.counter("sfa_construct_compressed_runs_total").inc();
        reg.histogram("sfa_construct_compression_nanos")
            .observe(secs_to_nanos(stats.compression_secs));
        reg.histogram("sfa_construct_phase3_nanos")
            .observe(secs_to_nanos(stats.phase3_secs));
    }
    bridge::record_contention(reg, "construct", &stats.contention);
}

/// Record one finished match into `reg` under `sfa_match_*`.
pub fn record_match(reg: &MetricsRegistry, stats: &MatchStats) {
    reg.counter("sfa_match_queries_total").inc();
    reg.counter("sfa_match_blocks_total").add(stats.blocks);
    reg.counter("sfa_match_chunks_total").add(stats.chunks);
    reg.counter("sfa_match_bytes_total").add(stats.bytes);
    reg.counter("sfa_match_retries_total").add(stats.retries);
    reg.counter("sfa_match_mispredicts_total")
        .add(stats.mispredicts);
    reg.counter("sfa_match_reruns_total").add(stats.reruns);
    reg.counter("sfa_match_state_visits_total")
        .add(stats.state_visits);
    reg.gauge("sfa_match_queue_depth")
        .set(stats.queue_depth as i64);
    reg.gauge("sfa_match_last_untimed")
        .set(stats.untimed() as i64);
    reg.histogram("sfa_match_elapsed_nanos")
        .observe(stats.elapsed.as_nanos().min(u64::MAX as u128) as u64);
}

/// Record the shared match pool's load gauges into `reg` (`sfa_pool_*`)
/// — what the CLI `--metrics-out` scrape calls before writing.
pub fn record_shared_pool(reg: &MetricsRegistry) {
    bridge::record_pool(reg, sfa_sync::TaskPool::shared());
}

/// Every-run hook called by the construction engines on success: feeds
/// the [`global()`] registry and, when a global subscriber is armed,
/// emits the per-phase spans.
pub(crate) fn observe_construction(stats: &ConstructionStats) {
    record_construction(global(), stats);
    if subscriber_installed() {
        for span in phase_spans(stats) {
            report_span(span.name, span.nanos);
        }
        report_span("construct/total", secs_to_nanos(stats.total_secs));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_spans_cover_total() {
        let mut stats = ConstructionStats::with_threads(4);
        stats.total_secs = 1.0;
        stats.phase1_secs = 0.6;
        stats.compression_secs = 0.3;
        stats.phase3_secs = 0.1;
        stats.compressed = true;
        let spans = phase_spans(&stats);
        assert_eq!(spans.len(), 3);
        let sum: u64 = spans.iter().map(|s| s.nanos).sum();
        assert!((sum as i64 - 1_000_000_000i64).abs() <= 3);

        stats.compressed = false;
        stats.phase1_secs = stats.total_secs;
        let spans = phase_spans(&stats);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].nanos, 1_000_000_000);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn record_construction_registers_expected_names() {
        let reg = MetricsRegistry::new();
        let mut stats = ConstructionStats::with_threads(2);
        stats.states = 100;
        stats.compressed = true;
        record_construction(&reg, &stats);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sfa_construct_runs_total"), Some(1));
        assert_eq!(snap.counter("sfa_construct_states_total"), Some(100));
        assert_eq!(snap.gauge("sfa_construct_threads"), Some(2));
        assert!(snap.histogram("sfa_construct_phase1_nanos").is_some());
        assert!(snap.histogram("sfa_construct_compression_nanos").is_some());
        assert_eq!(snap.counter("sfa_construct_cas_failures_total"), Some(0));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn record_match_registers_expected_names() {
        let reg = MetricsRegistry::new();
        let stats = MatchStats {
            blocks: 2,
            chunks: 8,
            bytes: 4096,
            elapsed: std::time::Duration::from_millis(1),
            queue_depth: 1,
            mispredicts: 3,
            reruns: 2,
            state_visits: 7,
            ..MatchStats::default()
        };
        record_match(&reg, &stats);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sfa_match_queries_total"), Some(1));
        assert_eq!(snap.counter("sfa_match_bytes_total"), Some(4096));
        assert_eq!(snap.counter("sfa_match_mispredicts_total"), Some(3));
        assert_eq!(snap.counter("sfa_match_reruns_total"), Some(2));
        assert_eq!(snap.counter("sfa_match_state_visits_total"), Some(7));
        assert_eq!(snap.gauge("sfa_match_last_untimed"), Some(0));
        assert_eq!(snap.histogram("sfa_match_elapsed_nanos").unwrap().count, 1);
    }
}
