//! DFA and SFA matching (§IV-D).
//!
//! * [`match_sequential`] — the classic one-state-at-a-time DFA membership
//!   test (Fig. 1c), whose running time is linear in the input and *not*
//!   parallelizable because every transition depends on the previous one.
//! * [`match_with_sfa`] / [`ParallelMatcher`] — the SFA alternative: split
//!   the input into chunks, run the SFA over each chunk independently
//!   (each run yields the chunk's state *mapping*), compose the mappings
//!   left-to-right (composition is associative), and apply the DFA start
//!   state at the very end. The per-chunk runs are embarrassingly
//!   parallel, which is the paper's break-even argument: construction
//!   cost + parallel matching beats sequential matching beyond ~20 MB of
//!   input on their 88-thread machine.

use crate::sfa::Sfa;
use sfa_automata::alphabet::SymbolId;
use sfa_automata::dfa::Dfa;

/// Sequential DFA membership test over dense symbols (Fig. 1c).
pub fn match_sequential(dfa: &Dfa, input: &[SymbolId]) -> bool {
    dfa.is_accepting(dfa.run(input))
}

/// Match `input` with the SFA in `threads` parallel chunks; returns the
/// DFA's accept decision for the whole input.
pub fn match_with_sfa(sfa: &Sfa, dfa: &Dfa, input: &[SymbolId], threads: usize) -> bool {
    ParallelMatcher::new(sfa, dfa).matches(input, threads)
}

/// Reusable parallel matcher (construct once, match many inputs).
pub struct ParallelMatcher<'a> {
    sfa: &'a Sfa,
    dfa: &'a Dfa,
}

impl<'a> ParallelMatcher<'a> {
    /// Pair an SFA with its source DFA.
    pub fn new(sfa: &'a Sfa, dfa: &'a Dfa) -> Self {
        debug_assert_eq!(sfa.dfa_states(), dfa.num_states() as usize);
        debug_assert_eq!(sfa.num_symbols(), dfa.num_symbols());
        ParallelMatcher { sfa, dfa }
    }

    /// The final DFA state after `input`, computed with parallel chunks.
    pub fn final_state(&self, input: &[SymbolId], threads: usize) -> u32 {
        let threads = threads.max(1);
        if input.is_empty() {
            return self.dfa.start();
        }
        let chunk = input.len().div_ceil(threads);
        let chunks: Vec<&[SymbolId]> = input.chunks(chunk).collect();

        // Run the SFA over each chunk in parallel. Each run starts from
        // the SFA start state (the identity mapping), so its result is
        // the chunk's full transition mapping.
        let sfa = self.sfa;
        let mut chunk_states: Vec<u32> = vec![0; chunks.len()];
        if chunks.len() == 1 {
            chunk_states[0] = sfa.run(chunks[0]);
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(chunks.len());
                for &c in &chunks {
                    handles.push(scope.spawn(move || sfa.run(c)));
                }
                for (slot, h) in chunk_states.iter_mut().zip(handles) {
                    *slot = h.join().expect("matcher thread panicked");
                }
            });
        }

        // Reduce. Full mapping composition ([`Sfa::compose`]) is the
        // paper's general reduction; for a single accept decision only
        // q0's image is needed, so chaining `apply` is equivalent and
        // O(threads) instead of O(threads·n) — and avoids decompressing
        // whole vectors for compressed stores.
        let mut q = self.dfa.start();
        for &s in &chunk_states {
            q = sfa.apply(s, q);
        }
        q
    }

    /// Accept decision for `input`.
    pub fn matches(&self, input: &[SymbolId], threads: usize) -> bool {
        self.dfa.is_accepting(self.final_state(input, threads))
    }

    /// Position after which the first match ends (number of symbols
    /// consumed; `Some(0)` when the start state itself accepts), or
    /// `None` when no prefix of `input` is accepted.
    ///
    /// Two-pass parallel algorithm: (1) compute each chunk's SFA mapping
    /// in parallel; (2) prefix-compose the mappings (cheap, `O(threads·n)`)
    /// to learn every chunk's true *entry* DFA state; (3) re-scan chunks in
    /// parallel with the DFA from their entry states, reporting the
    /// earliest accepting position. Unlike the speculative approaches the
    /// paper surveys (§V), no re-matching is ever needed — entry states
    /// are exact.
    pub fn find_first_match(&self, input: &[SymbolId], threads: usize) -> Option<usize> {
        let dfa = self.dfa;
        if dfa.is_accepting(dfa.start()) {
            return Some(0);
        }
        if input.is_empty() {
            return None;
        }
        let threads = threads.max(1);
        let chunk = input.len().div_ceil(threads);
        let chunks: Vec<&[SymbolId]> = input.chunks(chunk).collect();

        // Pass 1: per-chunk SFA mappings (parallel).
        let sfa = self.sfa;
        let mut chunk_states: Vec<u32> = vec![0; chunks.len()];
        if chunks.len() == 1 {
            chunk_states[0] = sfa.run(chunks[0]);
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(chunks.len());
                for &c in &chunks {
                    handles.push(scope.spawn(move || sfa.run(c)));
                }
                for (slot, h) in chunk_states.iter_mut().zip(handles) {
                    *slot = h.join().expect("matcher thread panicked");
                }
            });
        }

        // Pass 2: entry DFA state of every chunk via prefix composition.
        let mut entry_states = Vec::with_capacity(chunks.len());
        let mut q = dfa.start();
        for (i, &s) in chunk_states.iter().enumerate() {
            entry_states.push(q);
            if i + 1 < chunks.len() {
                q = sfa.apply(s, q);
            }
        }

        // Pass 3: parallel DFA scans from the exact entry states.
        let mut firsts: Vec<Option<usize>> = vec![None; chunks.len()];
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(chunks.len());
            for (i, &c) in chunks.iter().enumerate() {
                let entry = entry_states[i];
                handles.push(scope.spawn(move || {
                    let mut q = entry;
                    for (j, &sym) in c.iter().enumerate() {
                        q = dfa.next(q, sym);
                        if dfa.is_accepting(q) {
                            return Some(j + 1);
                        }
                    }
                    None
                }));
            }
            for (slot, h) in firsts.iter_mut().zip(handles) {
                *slot = h.join().expect("matcher thread panicked");
            }
        });
        firsts
            .iter()
            .enumerate()
            .find_map(|(i, &local)| local.map(|j| i * chunk + j))
    }
}

/// Sequential first-match search (the oracle for
/// [`ParallelMatcher::find_first_match`]); returns the number of symbols
/// consumed when the DFA first enters an accepting state.
pub fn find_first_match_sequential(dfa: &Dfa, input: &[SymbolId]) -> Option<usize> {
    dfa.first_match_end(input)
}

/// Sequential occurrence counting: the number of positions (including 0)
/// at which the DFA is in an accepting state. With a *scanner* DFA
/// (`Pipeline::scanner`: `Σ*·r`), this is the number of positions where a
/// match of `r` ends.
pub fn count_matches_sequential(dfa: &Dfa, input: &[SymbolId]) -> u64 {
    let mut q = dfa.start();
    let mut count = u64::from(dfa.is_accepting(q));
    for &sym in input {
        q = dfa.next(q, sym);
        count += u64::from(dfa.is_accepting(q));
    }
    count
}

impl<'a> ParallelMatcher<'a> {
    /// Parallel occurrence counting (same two-pass scheme as
    /// [`Self::find_first_match`]): chunk mappings give every chunk its
    /// exact entry state; chunks then count accepting positions
    /// independently and the counts sum.
    pub fn count_matches(&self, input: &[SymbolId], threads: usize) -> u64 {
        let dfa = self.dfa;
        let base = u64::from(dfa.is_accepting(dfa.start()));
        if input.is_empty() {
            return base;
        }
        let threads = threads.max(1);
        let chunk = input.len().div_ceil(threads);
        let chunks: Vec<&[SymbolId]> = input.chunks(chunk).collect();

        // Pass 1: per-chunk SFA mappings (parallel).
        let sfa = self.sfa;
        let mut chunk_states: Vec<u32> = vec![0; chunks.len()];
        if chunks.len() == 1 {
            chunk_states[0] = sfa.run(chunks[0]);
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(chunks.len());
                for &c in &chunks {
                    handles.push(scope.spawn(move || sfa.run(c)));
                }
                for (slot, h) in chunk_states.iter_mut().zip(handles) {
                    *slot = h.join().expect("matcher thread panicked");
                }
            });
        }

        // Pass 2: exact entry states by prefix composition.
        let mut entry_states = Vec::with_capacity(chunks.len());
        let mut q = dfa.start();
        for (i, &s) in chunk_states.iter().enumerate() {
            entry_states.push(q);
            if i + 1 < chunks.len() {
                q = sfa.apply(s, q);
            }
        }

        // Pass 3: parallel counting scans.
        let mut counts: Vec<u64> = vec![0; chunks.len()];
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(chunks.len());
            for (i, &c) in chunks.iter().enumerate() {
                let entry = entry_states[i];
                handles.push(scope.spawn(move || {
                    let mut q = entry;
                    let mut count = 0u64;
                    for &sym in c {
                        q = dfa.next(q, sym);
                        count += u64::from(dfa.is_accepting(q));
                    }
                    count
                }));
            }
            for (slot, h) in counts.iter_mut().zip(handles) {
                *slot = h.join().expect("matcher thread panicked");
            }
        });
        base + counts.iter().sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::find_first_match_sequential;
    use super::*;
    use crate::sequential::SequentialVariant;
    use rand::rngs::StdRng;
    use sfa_automata::alphabet::Alphabet;
    use sfa_automata::pipeline::Pipeline;

    fn setup(pattern: &str) -> (Dfa, Sfa) {
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str(pattern)
            .unwrap();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        (dfa, sfa)
    }

    #[test]
    fn agrees_with_sequential_on_examples() {
        let (dfa, sfa) = setup("RG");
        let alpha = dfa.alphabet().clone();
        for text in [
            &b""[..],
            b"RG",
            b"AAARGAAA",
            b"GGGGRRRR",
            b"RRRGGG",
            b"R",
            b"G",
        ] {
            let syms = alpha.encode_bytes(text).unwrap();
            for threads in [1, 2, 3, 7] {
                assert_eq!(
                    match_with_sfa(&sfa, &dfa, &syms, threads),
                    match_sequential(&dfa, &syms),
                    "text {:?} threads {threads}",
                    std::str::from_utf8(text).unwrap()
                );
            }
        }
    }

    #[test]
    fn random_agreement_fuzz() {
        let (dfa, sfa) = setup("R[GA]N");
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..50 {
            let len = rng.random_range(0..500);
            let syms: Vec<u8> = (0..len).map(|_| rng.random_range(0..20) as u8).collect();
            let expected = match_sequential(&dfa, &syms);
            for threads in [1, 4, 9] {
                assert_eq!(
                    match_with_sfa(&sfa, &dfa, &syms, threads),
                    expected,
                    "round {round} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn final_state_matches_dfa_run() {
        let (dfa, sfa) = setup("RG");
        let matcher = ParallelMatcher::new(&sfa, &dfa);
        let alpha = dfa.alphabet().clone();
        let syms = alpha.encode_bytes(b"MKVARGAARG").unwrap();
        assert_eq!(matcher.final_state(&syms, 3), dfa.run(&syms));
    }

    #[test]
    fn more_threads_than_symbols() {
        let (dfa, sfa) = setup("RG");
        let alpha = dfa.alphabet().clone();
        let syms = alpha.encode_bytes(b"RG").unwrap();
        assert!(match_with_sfa(&sfa, &dfa, &syms, 64));
    }

    #[test]
    fn find_first_match_agrees_with_sequential() {
        let (dfa, sfa) = setup("RG");
        let matcher = ParallelMatcher::new(&sfa, &dfa);
        let alpha = dfa.alphabet().clone();
        for text in [
            &b""[..],
            b"RG",
            b"AARG",
            b"AARGRG",
            b"GGGG",
            b"RRRRG",
            b"AAAAAAAAAAAAAAAAAAAAARG",
        ] {
            let syms = alpha.encode_bytes(text).unwrap();
            let expected = find_first_match_sequential(&dfa, &syms);
            for threads in [1usize, 2, 3, 8] {
                assert_eq!(
                    matcher.find_first_match(&syms, threads),
                    expected,
                    "text {:?} threads {threads}",
                    std::str::from_utf8(text).unwrap()
                );
            }
        }
    }

    #[test]
    fn find_first_match_fuzz() {
        let (dfa, sfa) = setup("R[GA]N");
        let matcher = ParallelMatcher::new(&sfa, &dfa);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..60 {
            let len = rng.random_range(0..400);
            let syms: Vec<u8> = (0..len).map(|_| rng.random_range(0..20) as u8).collect();
            let expected = find_first_match_sequential(&dfa, &syms);
            for threads in [1usize, 4, 6] {
                assert_eq!(matcher.find_first_match(&syms, threads), expected);
            }
        }
    }

    #[test]
    fn count_matches_agrees_with_sequential() {
        // Scanner DFA: accepts exactly at match-end positions of "RGD".
        let dfa = Pipeline::scanner(Alphabet::amino_acids())
            .compile_str("RGD")
            .unwrap();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        let matcher = ParallelMatcher::new(&sfa, &dfa);
        let alpha = dfa.alphabet().clone();
        for (text, expected) in [
            (&b""[..], 0u64),
            (b"RGD", 1),
            (b"RGDRGD", 2),
            (b"ARGDARGDA", 2),
            (b"RGRGRG", 0),
            (b"RGDGD", 1),
        ] {
            let syms = alpha.encode_bytes(text).unwrap();
            assert_eq!(count_matches_sequential(&dfa, &syms), expected);
            for threads in [1usize, 2, 3, 8] {
                assert_eq!(
                    matcher.count_matches(&syms, threads),
                    expected,
                    "text {:?} threads {threads}",
                    std::str::from_utf8(text).unwrap()
                );
            }
        }
    }

    #[test]
    fn count_matches_fuzz() {
        let dfa = Pipeline::scanner(Alphabet::amino_acids())
            .compile_str("R[GA]")
            .unwrap();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        let matcher = ParallelMatcher::new(&sfa, &dfa);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let len = rng.random_range(0..500);
            let syms: Vec<u8> = (0..len).map(|_| rng.random_range(0..20) as u8).collect();
            let expected = count_matches_sequential(&dfa, &syms);
            for threads in [1usize, 4, 7] {
                assert_eq!(matcher.count_matches(&syms, threads), expected);
            }
        }
    }

    #[test]
    fn count_matches_planted_motifs() {
        let dfa = Pipeline::scanner(Alphabet::amino_acids())
            .compile_str("WWWWW")
            .unwrap();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        let matcher = ParallelMatcher::new(&sfa, &dfa);
        // Plant 3 non-overlapping runs of 5 W's; W runs longer than 5
        // produce extra end positions, so use exactly-5 runs spaced apart.
        let text =
            sfa_workloads::protein_text_with_motif(50_000, 2, b"WWWWW", &[1_000, 25_000, 49_000]);
        let expected = count_matches_sequential(&dfa, &text);
        assert!(expected >= 3, "planted motifs must be counted");
        assert_eq!(matcher.count_matches(&text, 6), expected);
    }

    #[test]
    fn find_first_match_nullable_pattern() {
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str("R*")
            .unwrap();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        let matcher = ParallelMatcher::new(&sfa, &dfa);
        // Nullable pattern: start state accepts -> match at position 0.
        assert_eq!(matcher.find_first_match(&[5, 5, 5], 4), Some(0));
        assert_eq!(matcher.find_first_match(&[], 4), Some(0));
    }

    #[test]
    fn empty_input() {
        let (dfa, sfa) = setup("RG");
        assert!(!match_with_sfa(&sfa, &dfa, &[], 4));
        // A nullable pattern accepts the empty input.
        let dfa2 = Pipeline::search(Alphabet::amino_acids())
            .compile_str("R*")
            .unwrap();
        let sfa2 = Sfa::builder(&dfa2)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        assert!(match_with_sfa(&sfa2, &dfa2, &[], 4));
    }
}
