//! DFA and SFA matching (§IV-D).
//!
//! * [`match_sequential`] — the classic one-state-at-a-time DFA membership
//!   test (Fig. 1c), whose running time is linear in the input and *not*
//!   parallelizable because every transition depends on the previous one.
//! * [`match_with_sfa`] / [`ParallelMatcher`] — the SFA alternative: split
//!   the input into chunks, run the SFA over each chunk independently
//!   (each run yields the chunk's state *mapping*), compose the mappings
//!   left-to-right (composition is associative), and apply the DFA start
//!   state at the very end. The per-chunk runs are embarrassingly
//!   parallel, which is the paper's break-even argument: construction
//!   cost + parallel matching beats sequential matching beyond ~20 MB of
//!   input on their 88-thread machine.
//!
//! Chunk scans run on a persistent [`TaskPool`] (the process-shared pool
//! by default) rather than on per-call `std::thread::scope` threads: a
//! serving process answers many queries, and spawning OS threads per
//! query would bury the break-even argument under `clone(2)` noise.
//! Every governed path polls a [`Governor`] every
//! [`GOVERNOR_POLL_SYMBOLS`] symbols, so deadlines and cancellation
//! apply to *matching* just as PR 1 applied them to construction, and
//! worker panics surface as [`SfaError::WorkerPanic`] instead of
//! aborting the process.
//!
//! The fallible entry points of this module (`try_*`, `*_on(pool,
//! governor, …)`) are deprecated in favour of the unified
//! request/response API: construct a
//! [`MatchRequest`](crate::MatchRequest) and call
//! [`MatchRuntime::run`](crate::MatchRuntime::run) (one automaton, an
//! explicit pool) or [`MatchEngine::run`](crate::MatchEngine::run) (the
//! degradation ladder). The panicking conveniences on
//! [`ParallelMatcher`] remain for tests and examples.

use crate::budget::Governor;
use crate::scan::{ScanEngine, ScanOptions};
use crate::sfa::Sfa;
use crate::SfaError;
use sfa_automata::alphabet::SymbolId;
use sfa_automata::dfa::Dfa;
use sfa_sync::pool::TaskPool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// How many symbols a chunk scan processes between governor polls (and
/// abort-flag checks). Large enough that the poll is invisible next to
/// the table lookups, small enough that cancellation latency stays in
/// the tens of microseconds.
pub const GOVERNOR_POLL_SYMBOLS: usize = 64 * 1024;

/// Sequential DFA membership test over dense symbols (Fig. 1c).
pub fn match_sequential(dfa: &Dfa, input: &[SymbolId]) -> bool {
    dfa.is_accepting(dfa.run(input))
}

/// Match `input` with the SFA in `threads` parallel chunks; returns the
/// DFA's accept decision for the whole input.
///
/// # Panics
///
/// On an SFA/DFA mismatch or a worker panic. For typed errors — and for
/// budgets, tier policies and telemetry — construct a
/// [`MatchRequest`](crate::MatchRequest) and use
/// [`MatchRuntime::run`](crate::MatchRuntime::run) or
/// [`MatchEngine::run`](crate::MatchEngine::run) instead.
pub fn match_with_sfa(sfa: &Sfa, dfa: &Dfa, input: &[SymbolId], threads: usize) -> bool {
    let matcher = ParallelMatcher::new(sfa, dfa).expect("match_with_sfa failed");
    matcher
        .matches_governed(TaskPool::shared(), &Governor::unlimited(), input, threads)
        .expect("match_with_sfa failed")
}

/// Fallible variant of [`match_with_sfa`]: a mismatched SFA/DFA pair
/// returns [`SfaError::Mismatch`], a worker panic returns
/// [`SfaError::WorkerPanic`].
#[deprecated(
    since = "0.1.0",
    note = "construct a MatchRequest and use MatchRuntime::run or MatchEngine::run"
)]
pub fn try_match_with_sfa(
    sfa: &Sfa,
    dfa: &Dfa,
    input: &[SymbolId],
    threads: usize,
) -> Result<bool, SfaError> {
    ParallelMatcher::new(sfa, dfa)?.matches_governed(
        TaskPool::shared(),
        &Governor::unlimited(),
        input,
        threads,
    )
}

/// Reusable parallel matcher (construct once, match many inputs).
///
/// Construction precomputes a [`ScanEngine`] — compact pre-scaled
/// transition tables for both automata (see [`crate::scan`]) — so every
/// hot loop below is an add+load with no multiply and no per-step
/// bounds check. Callers that match many inputs against one automaton
/// pair can share the engine across matchers via [`Self::with_scan`].
pub struct ParallelMatcher<'a> {
    pub(crate) sfa: &'a Sfa,
    pub(crate) dfa: &'a Dfa,
    pub(crate) scan: Arc<ScanEngine>,
}

impl std::fmt::Debug for ParallelMatcher<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelMatcher")
            .field("dfa_states", &self.sfa.dfa_states())
            .field("num_symbols", &self.sfa.num_symbols())
            .field("scan", &self.scan)
            .finish()
    }
}

impl<'a> ParallelMatcher<'a> {
    /// Pair an SFA with its source DFA, verifying that the SFA was
    /// actually built from this DFA (state and symbol counts agree).
    /// A mismatched pair would silently return wrong verdicts or index
    /// out of bounds, so the check runs in **every** build profile —
    /// the `debug_assert_eq!` this replaces let release builds through.
    pub fn new(sfa: &'a Sfa, dfa: &'a Dfa) -> Result<Self, SfaError> {
        check_compatible(sfa, dfa)?;
        Ok(ParallelMatcher {
            sfa,
            dfa,
            scan: Arc::new(ScanEngine::new(sfa, dfa)),
        })
    }

    /// Pair without the compatibility check, for internal callers that
    /// just built the SFA from this very DFA and hold both by construction.
    pub fn new_unchecked(sfa: &'a Sfa, dfa: &'a Dfa) -> Self {
        debug_assert!(check_compatible(sfa, dfa).is_ok());
        ParallelMatcher {
            sfa,
            dfa,
            scan: Arc::new(ScanEngine::new(sfa, dfa)),
        }
    }

    /// [`Self::new`] with explicit [`ScanOptions`] (interleave width,
    /// oversubscription factor, minimum chunk size).
    pub fn with_options(sfa: &'a Sfa, dfa: &'a Dfa, opts: ScanOptions) -> Result<Self, SfaError> {
        check_compatible(sfa, dfa)?;
        Ok(ParallelMatcher {
            sfa,
            dfa,
            scan: Arc::new(ScanEngine::with_options(sfa, dfa, opts)?),
        })
    }

    /// Pair with a prebuilt, shared [`ScanEngine`] — avoids rebuilding
    /// the compact tables when many matchers (or repeated queries) use
    /// the same automaton pair.
    pub fn with_scan(sfa: &'a Sfa, dfa: &'a Dfa, scan: Arc<ScanEngine>) -> Self {
        debug_assert!(check_compatible(sfa, dfa).is_ok());
        ParallelMatcher { sfa, dfa, scan }
    }

    /// The precomputed scan engine.
    pub fn scan(&self) -> &Arc<ScanEngine> {
        &self.scan
    }

    /// The final DFA state after `input`, computed with parallel chunks.
    ///
    /// # Panics
    ///
    /// If a worker panics; for typed errors use
    /// [`MatchRuntime::run`](crate::MatchRuntime::run) with a
    /// [`MatchRequest`](crate::MatchRequest).
    pub fn final_state(&self, input: &[SymbolId], threads: usize) -> u32 {
        self.final_state_governed(TaskPool::shared(), &Governor::unlimited(), input, threads)
            .expect("parallel final_state failed")
    }

    /// Accept decision for `input`.
    ///
    /// # Panics
    ///
    /// If a worker panics; for typed errors use
    /// [`MatchRuntime::run`](crate::MatchRuntime::run) with a
    /// [`MatchRequest`](crate::MatchRequest).
    pub fn matches(&self, input: &[SymbolId], threads: usize) -> bool {
        self.matches_governed(TaskPool::shared(), &Governor::unlimited(), input, threads)
            .expect("parallel matches failed")
    }

    /// Position after which the first match ends (number of symbols
    /// consumed; `Some(0)` when the start state itself accepts), or
    /// `None` when no prefix of `input` is accepted.
    ///
    /// # Panics
    ///
    /// If a worker panics.
    pub fn find_first_match(&self, input: &[SymbolId], threads: usize) -> Option<usize> {
        self.find_first_governed(TaskPool::shared(), &Governor::unlimited(), input, threads)
            .expect("parallel find_first_match failed")
    }

    /// Parallel occurrence counting (same two-pass scheme as
    /// [`Self::find_first_match`]): chunk mappings give every chunk its
    /// exact entry state; chunks then count accepting positions
    /// independently and the counts sum.
    ///
    /// # Panics
    ///
    /// If a worker panics.
    pub fn count_matches(&self, input: &[SymbolId], threads: usize) -> u64 {
        self.count_governed(TaskPool::shared(), &Governor::unlimited(), input, threads)
            .expect("parallel count_matches failed")
    }

    /// Fallible [`Self::final_state`] on the shared pool, ungoverned.
    #[deprecated(
        since = "0.1.0",
        note = "construct a MatchRequest and use MatchRuntime::run or MatchEngine::run"
    )]
    pub fn try_final_state(&self, input: &[SymbolId], threads: usize) -> Result<u32, SfaError> {
        self.final_state_governed(TaskPool::shared(), &Governor::unlimited(), input, threads)
    }

    /// Fallible [`Self::matches`] on the shared pool, ungoverned.
    #[deprecated(
        since = "0.1.0",
        note = "construct a MatchRequest and use MatchRuntime::run or MatchEngine::run"
    )]
    pub fn try_matches(&self, input: &[SymbolId], threads: usize) -> Result<bool, SfaError> {
        self.matches_governed(TaskPool::shared(), &Governor::unlimited(), input, threads)
    }

    /// Fallible [`Self::find_first_match`] on the shared pool, ungoverned.
    #[deprecated(
        since = "0.1.0",
        note = "construct a MatchRequest and use MatchRuntime::run or MatchEngine::run"
    )]
    pub fn try_find_first_match(
        &self,
        input: &[SymbolId],
        threads: usize,
    ) -> Result<Option<usize>, SfaError> {
        self.find_first_governed(TaskPool::shared(), &Governor::unlimited(), input, threads)
    }

    /// Fallible [`Self::count_matches`] on the shared pool, ungoverned.
    #[deprecated(
        since = "0.1.0",
        note = "construct a MatchRequest and use MatchRuntime::run or MatchEngine::run"
    )]
    pub fn try_count_matches(&self, input: &[SymbolId], threads: usize) -> Result<u64, SfaError> {
        self.count_governed(TaskPool::shared(), &Governor::unlimited(), input, threads)
    }

    /// [`Self::final_state`] on an explicit pool under a [`Governor`].
    #[deprecated(
        since = "0.1.0",
        note = "construct a MatchRequest and use MatchRuntime::run or MatchEngine::run"
    )]
    pub fn final_state_on(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        input: &[SymbolId],
        threads: usize,
    ) -> Result<u32, SfaError> {
        self.final_state_governed(pool, governor, input, threads)
    }

    /// [`Self::matches`] on an explicit pool under a [`Governor`].
    #[deprecated(
        since = "0.1.0",
        note = "construct a MatchRequest and use MatchRuntime::run or MatchEngine::run"
    )]
    pub fn matches_on(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        input: &[SymbolId],
        threads: usize,
    ) -> Result<bool, SfaError> {
        self.matches_governed(pool, governor, input, threads)
    }

    /// [`Self::find_first_match`] on an explicit pool under a
    /// [`Governor`].
    #[deprecated(
        since = "0.1.0",
        note = "construct a MatchRequest and use MatchRuntime::run or MatchEngine::run"
    )]
    pub fn find_first_match_on(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        input: &[SymbolId],
        threads: usize,
    ) -> Result<Option<usize>, SfaError> {
        self.find_first_governed(pool, governor, input, threads)
    }

    /// [`Self::count_matches`] on an explicit pool under a [`Governor`].
    #[deprecated(
        since = "0.1.0",
        note = "construct a MatchRequest and use MatchRuntime::run or MatchEngine::run"
    )]
    pub fn count_matches_on(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        input: &[SymbolId],
        threads: usize,
    ) -> Result<u64, SfaError> {
        self.count_governed(pool, governor, input, threads)
    }

    /// Governed final-state scan — the single implementation behind
    /// every public entry point. Workers poll the governor every
    /// [`GOVERNOR_POLL_SYMBOLS`] symbols; the first failure
    /// (cancellation, deadline, worker panic) aborts the remaining scans
    /// and is returned.
    pub(crate) fn final_state_governed(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        input: &[SymbolId],
        threads: usize,
    ) -> Result<u32, SfaError> {
        if input.is_empty() {
            governor.check(0, 0)?;
            return Ok(self.dfa.start());
        }
        // Pass 1 scans chunks K-way interleaved on the compact table;
        // pass 2 reduces the chunk mappings with the Ladner–Fischer
        // tree (see [`crate::scan`]).
        self.scan
            .final_state(pool, governor, self.sfa, input, self.dfa.start(), threads)
    }

    /// Governed accept decision.
    pub(crate) fn matches_governed(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        input: &[SymbolId],
        threads: usize,
    ) -> Result<bool, SfaError> {
        Ok(self
            .dfa
            .is_accepting(self.final_state_governed(pool, governor, input, threads)?))
    }

    /// Governed first-match search.
    ///
    /// Two-pass parallel algorithm: (1) compute each chunk's SFA mapping
    /// in parallel; (2) prefix-compose the mappings (cheap, `O(threads·n)`)
    /// to learn every chunk's true *entry* DFA state; (3) re-scan chunks in
    /// parallel with the DFA from their entry states, reporting the
    /// earliest accepting position. Unlike the speculative approaches the
    /// paper surveys (§V), no re-matching is ever needed — entry states
    /// are exact.
    pub(crate) fn find_first_governed(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        input: &[SymbolId],
        threads: usize,
    ) -> Result<Option<usize>, SfaError> {
        let dfa = self.dfa;
        governor.check(0, 0)?;
        // `Dfa::first_match_end` (the oracle) reports `Some(0)` for an
        // accepting start state even on empty input: zero symbols consume
        // an accepted (empty) prefix. Keep that order here.
        if dfa.is_accepting(dfa.start()) {
            return Ok(Some(0));
        }
        if input.is_empty() {
            return Ok(None);
        }
        // Passes 1–3 on the scan engine. Pass 3 publishes the
        // best-so-far chunk index, so chunks that can no longer improve
        // the answer abort at block granularity instead of scanning on.
        self.scan
            .find_first(pool, governor, self.sfa, input, dfa.start(), threads)
    }

    /// Governed occurrence counting.
    pub(crate) fn count_governed(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        input: &[SymbolId],
        threads: usize,
    ) -> Result<u64, SfaError> {
        let dfa = self.dfa;
        governor.check(0, 0)?;
        let base = u64::from(dfa.is_accepting(dfa.start()));
        if input.is_empty() {
            return Ok(base);
        }
        // Passes 1–3 on the scan engine; pass 3 counts K-way
        // interleaved from the exact entry states.
        let counted =
            self.scan
                .count_matches(pool, governor, self.sfa, input, dfa.start(), threads)?;
        Ok(base + counted)
    }
}

/// Shared stop-signal for one parallel pass: every worker calls
/// [`AbortControl::should_stop`] at block granularity, which both
/// observes failures raised elsewhere and polls the governor itself —
/// so a deadline expiring or a token cancelled *mid-scan* stops all
/// chunks within [`GOVERNOR_POLL_SYMBOLS`] symbols, and the first
/// failure wins.
pub(crate) struct AbortControl<'g> {
    governor: &'g Governor,
    governed: bool,
    flag: AtomicBool,
    failure: Mutex<Option<SfaError>>,
}

impl<'g> AbortControl<'g> {
    pub(crate) fn new(governor: &'g Governor) -> Self {
        AbortControl {
            governor,
            governed: !governor.is_unlimited(),
            flag: AtomicBool::new(false),
            failure: Mutex::new(None),
        }
    }

    /// `true` → abandon the scan now (another chunk failed, or this
    /// poll of the governor fired).
    pub(crate) fn should_stop(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if self.governed {
            if let Err(err) = self.governor.check(0, 0) {
                self.fail(err);
                return true;
            }
        }
        false
    }

    pub(crate) fn fail(&self, err: SfaError) {
        let mut slot = self.failure.lock().unwrap();
        if slot.is_none() {
            *slot = Some(err);
        }
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Fold the scoped-execution outcome and any recorded failure into
    /// one result (worker panics take precedence — they mean the data
    /// raced with a poisoned automaton, not a mere budget stop).
    pub(crate) fn finish(
        &self,
        scoped: Result<(), sfa_sync::pool::JobPanic>,
    ) -> Result<(), SfaError> {
        if let Err(panic) = scoped {
            return Err(SfaError::WorkerPanic {
                message: panic.message,
            });
        }
        match self.failure.lock().unwrap().take() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

pub(crate) fn panic_payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// `Ok` iff the SFA's mapping dimensions match the DFA.
fn check_compatible(sfa: &Sfa, dfa: &Dfa) -> Result<(), SfaError> {
    if sfa.dfa_states() != dfa.num_states() as usize || sfa.num_symbols() != dfa.num_symbols() {
        return Err(SfaError::Mismatch {
            sfa_dfa_states: sfa.dfa_states(),
            dfa_states: dfa.num_states() as usize,
            sfa_symbols: sfa.num_symbols(),
            dfa_symbols: dfa.num_symbols(),
        });
    }
    Ok(())
}

/// Sequential first-match search (the oracle for
/// [`ParallelMatcher::find_first_match`]); returns the number of symbols
/// consumed when the DFA first enters an accepting state.
pub fn find_first_match_sequential(dfa: &Dfa, input: &[SymbolId]) -> Option<usize> {
    dfa.first_match_end(input)
}

/// Sequential occurrence counting: the number of positions (including 0)
/// at which the DFA is in an accepting state. With a *scanner* DFA
/// (`Pipeline::scanner`: `Σ*·r`), this is the number of positions where a
/// match of `r` ends.
pub fn count_matches_sequential(dfa: &Dfa, input: &[SymbolId]) -> u64 {
    let mut q = dfa.start();
    let mut count = u64::from(dfa.is_accepting(q));
    for &sym in input {
        q = dfa.next(q, sym);
        count += u64::from(dfa.is_accepting(q));
    }
    count
}

#[cfg(test)]
mod tests {
    use super::find_first_match_sequential;
    use super::*;
    use crate::sequential::SequentialVariant;
    use rand::rngs::StdRng;
    use sfa_automata::alphabet::Alphabet;
    use sfa_automata::pipeline::Pipeline;

    fn setup(pattern: &str) -> (Dfa, Sfa) {
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str(pattern)
            .unwrap();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        (dfa, sfa)
    }

    #[test]
    fn agrees_with_sequential_on_examples() {
        let (dfa, sfa) = setup("RG");
        let alpha = dfa.alphabet().clone();
        for text in [
            &b""[..],
            b"RG",
            b"AAARGAAA",
            b"GGGGRRRR",
            b"RRRGGG",
            b"R",
            b"G",
        ] {
            let syms = alpha.encode_bytes(text).unwrap();
            for threads in [1, 2, 3, 7] {
                assert_eq!(
                    match_with_sfa(&sfa, &dfa, &syms, threads),
                    match_sequential(&dfa, &syms),
                    "text {:?} threads {threads}",
                    std::str::from_utf8(text).unwrap()
                );
            }
        }
    }

    #[test]
    fn random_agreement_fuzz() {
        let (dfa, sfa) = setup("R[GA]N");
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..50 {
            let len = rng.random_range(0..500);
            let syms: Vec<u8> = (0..len).map(|_| rng.random_range(0..20) as u8).collect();
            let expected = match_sequential(&dfa, &syms);
            for threads in [1, 4, 9] {
                assert_eq!(
                    match_with_sfa(&sfa, &dfa, &syms, threads),
                    expected,
                    "round {round} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn final_state_matches_dfa_run() {
        let (dfa, sfa) = setup("RG");
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        let alpha = dfa.alphabet().clone();
        let syms = alpha.encode_bytes(b"MKVARGAARG").unwrap();
        assert_eq!(matcher.final_state(&syms, 3), dfa.run(&syms));
    }

    #[test]
    fn more_threads_than_symbols() {
        let (dfa, sfa) = setup("RG");
        let alpha = dfa.alphabet().clone();
        let syms = alpha.encode_bytes(b"RG").unwrap();
        assert!(match_with_sfa(&sfa, &dfa, &syms, 64));
    }

    #[test]
    fn mismatched_pair_is_rejected_in_every_profile() {
        let (dfa_rg, sfa_rg) = setup("RG");
        // A DFA with a different state count over the same alphabet.
        let dfa_other = Pipeline::search(Alphabet::amino_acids())
            .compile_str("RGDW")
            .unwrap();
        assert_ne!(dfa_rg.num_states(), dfa_other.num_states());
        let err = ParallelMatcher::new(&sfa_rg, &dfa_other).unwrap_err();
        match err {
            SfaError::Mismatch {
                sfa_dfa_states,
                dfa_states,
                ..
            } => {
                assert_eq!(sfa_dfa_states, dfa_rg.num_states() as usize);
                assert_eq!(dfa_states, dfa_other.num_states() as usize);
            }
            other => panic!("expected Mismatch, got {other:?}"),
        }
        // The deprecated shim still answers with the same typed error.
        #[allow(deprecated)]
        {
            assert!(try_match_with_sfa(&sfa_rg, &dfa_other, &[0, 1], 2).is_err());
        }
    }

    #[test]
    fn find_first_match_agrees_with_sequential() {
        let (dfa, sfa) = setup("RG");
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        let alpha = dfa.alphabet().clone();
        for text in [
            &b""[..],
            b"RG",
            b"AARG",
            b"AARGRG",
            b"GGGG",
            b"RRRRG",
            b"AAAAAAAAAAAAAAAAAAAAARG",
        ] {
            let syms = alpha.encode_bytes(text).unwrap();
            let expected = find_first_match_sequential(&dfa, &syms);
            for threads in [1usize, 2, 3, 8] {
                assert_eq!(
                    matcher.find_first_match(&syms, threads),
                    expected,
                    "text {:?} threads {threads}",
                    std::str::from_utf8(text).unwrap()
                );
            }
        }
    }

    #[test]
    fn find_first_match_fuzz() {
        let (dfa, sfa) = setup("R[GA]N");
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..60 {
            let len = rng.random_range(0..400);
            let syms: Vec<u8> = (0..len).map(|_| rng.random_range(0..20) as u8).collect();
            let expected = find_first_match_sequential(&dfa, &syms);
            for threads in [1usize, 4, 6] {
                assert_eq!(matcher.find_first_match(&syms, threads), expected);
            }
        }
    }

    #[test]
    fn count_matches_agrees_with_sequential() {
        // Scanner DFA: accepts exactly at match-end positions of "RGD".
        let dfa = Pipeline::scanner(Alphabet::amino_acids())
            .compile_str("RGD")
            .unwrap();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        let alpha = dfa.alphabet().clone();
        for (text, expected) in [
            (&b""[..], 0u64),
            (b"RGD", 1),
            (b"RGDRGD", 2),
            (b"ARGDARGDA", 2),
            (b"RGRGRG", 0),
            (b"RGDGD", 1),
        ] {
            let syms = alpha.encode_bytes(text).unwrap();
            assert_eq!(count_matches_sequential(&dfa, &syms), expected);
            for threads in [1usize, 2, 3, 8] {
                assert_eq!(
                    matcher.count_matches(&syms, threads),
                    expected,
                    "text {:?} threads {threads}",
                    std::str::from_utf8(text).unwrap()
                );
            }
        }
    }

    #[test]
    fn count_matches_fuzz() {
        let dfa = Pipeline::scanner(Alphabet::amino_acids())
            .compile_str("R[GA]")
            .unwrap();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let len = rng.random_range(0..500);
            let syms: Vec<u8> = (0..len).map(|_| rng.random_range(0..20) as u8).collect();
            let expected = count_matches_sequential(&dfa, &syms);
            for threads in [1usize, 4, 7] {
                assert_eq!(matcher.count_matches(&syms, threads), expected);
            }
        }
    }

    #[test]
    fn count_matches_planted_motifs() {
        let dfa = Pipeline::scanner(Alphabet::amino_acids())
            .compile_str("WWWWW")
            .unwrap();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        // Plant 3 non-overlapping runs of 5 W's; W runs longer than 5
        // produce extra end positions, so use exactly-5 runs spaced apart.
        let text =
            sfa_workloads::protein_text_with_motif(50_000, 2, b"WWWWW", &[1_000, 25_000, 49_000]);
        let expected = count_matches_sequential(&dfa, &text);
        assert!(expected >= 3, "planted motifs must be counted");
        assert_eq!(matcher.count_matches(&text, 6), expected);
    }

    #[test]
    fn find_first_match_nullable_pattern() {
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str("R*")
            .unwrap();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        // Nullable pattern: start state accepts -> match at position 0.
        assert_eq!(matcher.find_first_match(&[5, 5, 5], 4), Some(0));
        assert_eq!(matcher.find_first_match(&[], 4), Some(0));
    }

    #[test]
    fn empty_input() {
        let (dfa, sfa) = setup("RG");
        assert!(!match_with_sfa(&sfa, &dfa, &[], 4));
        // A nullable pattern accepts the empty input.
        let dfa2 = Pipeline::search(Alphabet::amino_acids())
            .compile_str("R*")
            .unwrap();
        let sfa2 = Sfa::builder(&dfa2)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        assert!(match_with_sfa(&sfa2, &dfa2, &[], 4));
    }

    #[test]
    fn edge_cases_agree_with_oracles() {
        // Satellite audit: empty input, threads > len, single chunk, and
        // thread counts around the input length — for final_state,
        // find_first_match and count_matches, vs the sequential oracles.
        for pattern in ["RG", "R*", "R[GA]D", "W"] {
            let (dfa, sfa) = setup(pattern);
            let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
            let alpha = dfa.alphabet().clone();
            for text in [&b""[..], b"R", b"RG", b"ARG", b"MKVARGAAGRGDWWY"] {
                let syms = alpha.encode_bytes(text).unwrap();
                for threads in [1usize, syms.len().max(1), syms.len() + 5, 64] {
                    assert_eq!(
                        matcher.final_state(&syms, threads),
                        dfa.run(&syms),
                        "final_state {pattern:?} {text:?} threads {threads}"
                    );
                    assert_eq!(
                        matcher.find_first_match(&syms, threads),
                        find_first_match_sequential(&dfa, &syms),
                        "find_first_match {pattern:?} {text:?} threads {threads}"
                    );
                    assert_eq!(
                        matcher.count_matches(&syms, threads),
                        count_matches_sequential(&dfa, &syms),
                        "count_matches {pattern:?} {text:?} threads {threads}"
                    );
                }
            }
        }
    }
}
