//! Resource budgets for SFA construction.
//!
//! SFA construction is worst-case exponential in the DFA size (§II of the
//! paper), so a caller that feeds it arbitrary patterns needs a way to
//! bound the damage. A [`Budget`] limits construction along three axes —
//! wall-clock deadline, peak mapping-payload bytes, and SFA state count —
//! and a [`sfa_sync::CancelToken`] lets another thread stop a build that
//! is already running. Every construction path (sequential, parallel,
//! lazy) polls the same [`Governor`] at work-item granularity, so an
//! exhausted budget surfaces as a typed
//! [`SfaError::BudgetExceeded`](crate::SfaError::BudgetExceeded) carrying
//! the progress made — never a panic, never an unbounded run.
//!
//! Budgets compose with the engine-level capacity limit
//! (`ParallelOptions::state_budget`, the arena size): the arena limit is
//! a hard structural cap reported as
//! [`SfaError::StateBudgetExceeded`](crate::SfaError::StateBudgetExceeded),
//! while [`Budget::max_states`] is a caller-facing policy knob that can
//! be tightened per build without resizing the arena.

use crate::SfaError;
use sfa_sync::CancelToken;
use std::time::{Duration, Instant};

/// Declarative resource limits for one construction run.
///
/// The default budget is unlimited on every axis. Marked
/// `#[non_exhaustive]` so future axes (e.g. a candidate-count cap) can be
/// added without a breaking change — construct budgets through
/// [`Budget::unlimited`] and the `with_*` methods.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct Budget {
    /// Wall-clock limit measured from the start of the build.
    pub deadline: Option<Duration>,
    /// Peak bytes of stored mapping payloads.
    pub max_payload_bytes: Option<u64>,
    /// Maximum SFA states constructed.
    pub max_states: Option<u64>,
}

impl Budget {
    /// No limits (identical to `Budget::default()`).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Limit wall-clock construction time.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Limit peak stored mapping-payload bytes.
    pub fn with_max_payload_bytes(mut self, bytes: u64) -> Self {
        self.max_payload_bytes = Some(bytes);
        self
    }

    /// Limit the number of SFA states constructed.
    pub fn with_max_states(mut self, states: u64) -> Self {
        self.max_states = Some(states);
        self
    }

    /// `true` when no axis is limited.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_payload_bytes.is_none() && self.max_states.is_none()
    }

    /// This budget without its deadline — the degradation ladder uses it
    /// when falling from batch construction to lazy construction, where
    /// the deadline has already been spent but the space limits still
    /// apply.
    pub fn without_deadline(mut self) -> Self {
        self.deadline = None;
        self
    }
}

/// Which budget axis was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetResource {
    /// [`Budget::max_states`].
    States,
    /// [`Budget::max_payload_bytes`].
    PayloadBytes,
    /// [`Budget::deadline`].
    Deadline,
}

impl std::fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BudgetResource::States => "state count",
            BudgetResource::PayloadBytes => "payload bytes",
            BudgetResource::Deadline => "deadline",
        })
    }
}

/// Construction progress at the moment a budget check fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct BudgetProgress {
    /// SFA states constructed so far.
    pub states: u64,
    /// Mapping-payload bytes currently stored.
    pub payload_bytes: u64,
    /// Wall time elapsed since the build started.
    pub elapsed: Duration,
}

/// The runtime enforcer of a [`Budget`] plus an optional
/// [`CancelToken`], shared by every worker of a build.
///
/// `check` is designed for per-work-item call frequency: when the budget
/// is unlimited and no token is attached it is two `None` tests, and the
/// `Instant::now()` for the deadline is only taken when a deadline
/// exists.
#[derive(Debug, Clone)]
pub struct Governor {
    start: Instant,
    deadline: Option<Instant>,
    max_payload_bytes: Option<u64>,
    max_states: Option<u64>,
    cancel: Option<CancelToken>,
}

impl Governor {
    /// Start enforcing `budget` (clock starts now).
    pub fn new(budget: &Budget, cancel: Option<CancelToken>) -> Self {
        let start = Instant::now();
        Governor {
            start,
            deadline: budget.deadline.map(|d| start + d),
            max_payload_bytes: budget.max_payload_bytes,
            max_states: budget.max_states,
            cancel,
        }
    }

    /// A governor that never fires.
    pub fn unlimited() -> Self {
        Governor::new(&Budget::unlimited(), None)
    }

    /// `true` when `check` can never fail (no limits, no token) — lets
    /// hot loops hoist the whole check out.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_payload_bytes.is_none()
            && self.max_states.is_none()
            && self.cancel.is_none()
    }

    /// Snapshot progress for error reporting.
    pub fn progress(&self, states: u64, payload_bytes: u64) -> BudgetProgress {
        BudgetProgress {
            states,
            payload_bytes,
            elapsed: self.start.elapsed(),
        }
    }

    /// The budget checkpoint: `Err` when the token was cancelled or any
    /// axis is exhausted at the given progress. Checked cancellation
    /// first (it is the cheapest and the most urgent), then states, then
    /// bytes, then the deadline (the only axis that reads the clock).
    pub fn check(&self, states: u64, payload_bytes: u64) -> Result<(), SfaError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(SfaError::Cancelled {
                    progress: self.progress(states, payload_bytes),
                });
            }
        }
        if let Some(max) = self.max_states {
            if states > max {
                return Err(SfaError::BudgetExceeded {
                    resource: BudgetResource::States,
                    progress: self.progress(states, payload_bytes),
                });
            }
        }
        if let Some(max) = self.max_payload_bytes {
            if payload_bytes > max {
                return Err(SfaError::BudgetExceeded {
                    resource: BudgetResource::PayloadBytes,
                    progress: self.progress(states, payload_bytes),
                });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(SfaError::BudgetExceeded {
                    resource: BudgetResource::Deadline,
                    progress: self.progress(states, payload_bytes),
                });
            }
        }
        Ok(())
    }
}

impl Default for Governor {
    fn default() -> Self {
        Governor::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_fires() {
        let g = Governor::unlimited();
        assert!(g.is_unlimited());
        g.check(u64::MAX, u64::MAX).unwrap();
    }

    #[test]
    fn state_axis_fires_strictly_above_limit() {
        let g = Governor::new(&Budget::unlimited().with_max_states(5), None);
        g.check(5, 0).unwrap();
        let err = g.check(6, 0).unwrap_err();
        match err {
            SfaError::BudgetExceeded { resource, progress } => {
                assert_eq!(resource, BudgetResource::States);
                assert_eq!(progress.states, 6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn byte_axis_fires() {
        let g = Governor::new(&Budget::unlimited().with_max_payload_bytes(100), None);
        g.check(0, 100).unwrap();
        assert!(matches!(
            g.check(0, 101),
            Err(SfaError::BudgetExceeded {
                resource: BudgetResource::PayloadBytes,
                ..
            })
        ));
    }

    #[test]
    fn zero_deadline_fires_immediately() {
        let g = Governor::new(&Budget::unlimited().with_deadline(Duration::ZERO), None);
        assert!(matches!(
            g.check(0, 0),
            Err(SfaError::BudgetExceeded {
                resource: BudgetResource::Deadline,
                ..
            })
        ));
    }

    #[test]
    fn cancellation_wins_over_exhausted_axes() {
        let token = CancelToken::new();
        let g = Governor::new(
            &Budget::unlimited()
                .with_max_states(0)
                .with_deadline(Duration::ZERO),
            Some(token.clone()),
        );
        token.cancel();
        assert!(matches!(g.check(10, 10), Err(SfaError::Cancelled { .. })));
    }

    #[test]
    fn without_deadline_keeps_space_limits() {
        let b = Budget::unlimited()
            .with_deadline(Duration::from_millis(1))
            .with_max_states(9)
            .without_deadline();
        assert_eq!(b.deadline, None);
        assert_eq!(b.max_states, Some(9));
        assert!(!b.is_unlimited());
        assert!(Budget::unlimited().is_unlimited());
    }
}
