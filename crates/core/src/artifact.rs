//! Crash-safe, checksummed on-disk artifacts: serialized SFAs and
//! construction checkpoints.
//!
//! [`crate::io`] defines the *payload* encoding of an SFA; this module
//! wraps payloads in a versioned container that makes persistence safe
//! against the two failure shapes that actually destroy minutes of
//! construction work: torn writes (process killed mid-write) and silent
//! corruption (flipped bits on disk). The container is:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "SFAR"
//!      4     2  format version (u16 LE, currently 1)
//!      6     1  kind: 0 = serialized SFA, 1 = construction checkpoint
//!      7     1  section count
//!      8     8  body CRC-64/XZ (u64 LE, over bytes 24..EOF)
//!     16     8  header CRC-64/XZ (u64 LE, over bytes 0..16)
//!     24     …  sections: tag u8 | len u64 LE | crc64 u64 LE | payload
//! ```
//!
//! Every byte of the file is covered by a checksum: the header by the
//! header CRC, everything after it by the body CRC, and each section
//! payload additionally by its own CRC for precise diagnostics. A
//! flipped bit anywhere outside the 4 magic bytes is therefore rejected
//! as [`IoError::Corrupt`] (a corrupted magic reads as "not an artifact
//! at all": [`IoError::BadMagic`]). All writes go through
//! [`crate::io::atomic_write`] — temp file, fsync, atomic rename — so a
//! crash leaves the previous artifact intact, never a torn mix.
//!
//! Checkpoints persist the sequential engine's full resumable state
//! (processed-cursor, δₛ rows, mapping arena) plus a fingerprint of the
//! source DFA so a checkpoint can never silently resume against the
//! wrong automaton; see [`crate::sequential`] for the resume logic and
//! `SfaBuilder::resume_from` for the entry point.

use crate::elem::Elem;
use crate::io::{self, IoError};
use crate::sfa::Sfa;
use sfa_automata::Dfa;
use sfa_compress::varint;
use sfa_hash::crc64::{crc64, Crc64};
use std::path::{Path, PathBuf};

/// Current on-disk container version.
pub const FORMAT_VERSION: u16 = 1;

const MAGIC: &[u8; 4] = b"SFAR";
const HEADER_BYTES: usize = 24;

const TAG_SFA: u8 = 1;
const TAG_CKPT_META: u8 = 2;
const TAG_CKPT_DELTA: u8 = 3;
const TAG_CKPT_MAPPINGS: u8 = 4;

/// What an artifact file contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A fully constructed, serialized SFA.
    Sfa,
    /// A mid-construction checkpoint (resumable engine state).
    Checkpoint,
}

impl ArtifactKind {
    fn to_byte(self) -> u8 {
        match self {
            ArtifactKind::Sfa => 0,
            ArtifactKind::Checkpoint => 1,
        }
    }

    fn from_byte(b: u8) -> Result<ArtifactKind, IoError> {
        match b {
            0 => Ok(ArtifactKind::Sfa),
            1 => Ok(ArtifactKind::Checkpoint),
            _ => Err(IoError::Corrupt("unknown artifact kind")),
        }
    }
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactKind::Sfa => write!(f, "sfa"),
            ArtifactKind::Checkpoint => write!(f, "checkpoint"),
        }
    }
}

/// One section of a verified artifact (for reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section tag byte.
    pub tag: u8,
    /// Payload length in bytes.
    pub len: u64,
}

/// Result of [`verify`]: the artifact parsed, every checksum matched,
/// and the payload decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactInfo {
    /// What the file contains.
    pub kind: ArtifactKind,
    /// Container format version.
    pub version: u16,
    /// Total file size in bytes.
    pub total_bytes: u64,
    /// The sections present, in file order.
    pub sections: Vec<SectionInfo>,
}

/// Checkpoint cadence for a governed sequential build: snapshot the
/// engine to `path` every `every_states` processed states (piggybacked
/// on the same per-state cadence the [`crate::budget::Governor`] is
/// polled at).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Artifact path the checkpoint is (atomically) written to.
    pub path: PathBuf,
    /// Snapshot after this many additional processed states (min 1).
    pub every_states: u64,
}

impl CheckpointConfig {
    /// Checkpoint to `path` every `every_states` processed states.
    pub fn new(path: impl Into<PathBuf>, every_states: u64) -> CheckpointConfig {
        CheckpointConfig {
            path: path.into(),
            every_states: every_states.max(1),
        }
    }
}

/// A deserialized construction checkpoint: everything the sequential
/// engine needs to continue an interrupted build to a byte-identical
/// SFA (see DESIGN.md §11 — the sequential worklist is a FIFO over
/// monotonically assigned ids, so a processed-cursor plus the arrays
/// fully determines the remaining work; the hash/tree state-set is
/// rebuilt by re-interning the persisted rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// DFA state count `n` (mapping vector length).
    pub dfa_states: u32,
    /// Symbol count `k`.
    pub symbols: u32,
    /// Mapping element width in bytes (2 or 4).
    pub elem_bytes: u8,
    /// SFA states whose δₛ rows are complete (the worklist cursor).
    pub processed: u64,
    /// SFA states discovered so far (arena length).
    pub num_states: u64,
    /// [`dfa_fingerprint`] of the DFA this build belongs to.
    pub dfa_crc: u64,
    /// δₛ, row-major `num_states × k`; `u32::MAX` marks a not-yet-filled
    /// entry of an unprocessed row.
    pub delta: Vec<u32>,
    /// Mapping arena, `num_states × dfa_states` elements, little-endian.
    pub mappings_le: Vec<u8>,
}

impl Checkpoint {
    /// Decode the mapping arena at width `E` (little-endian), or `None`
    /// when `E` does not match [`Checkpoint::elem_bytes`].
    pub fn mappings<E: Elem>(&self) -> Option<Vec<E>> {
        if E::BYTES != self.elem_bytes as usize {
            return None;
        }
        let mut out = Vec::with_capacity(self.mappings_le.len() / E::BYTES);
        for chunk in self.mappings_le.chunks_exact(E::BYTES) {
            let mut v = 0u32;
            for (i, &b) in chunk.iter().enumerate() {
                v |= (b as u32) << (8 * i);
            }
            out.push(E::from_u32(v));
        }
        Some(out)
    }

    /// Validate this checkpoint against `dfa` at element width `E` and
    /// decode its mapping arena. Shared by the sequential and parallel
    /// engines' resume paths so both reject the same mismatches with the
    /// same diagnostics.
    pub fn validate_for<E: Elem>(&self, dfa: &Dfa) -> Result<Vec<E>, IoError> {
        let n = dfa.num_states() as usize;
        let k = dfa.num_symbols();
        if self.dfa_crc != dfa_fingerprint(dfa) {
            return Err(IoError::Corrupt(
                "checkpoint was built from a different DFA",
            ));
        }
        if self.dfa_states as usize != n || self.symbols as usize != k {
            return Err(IoError::Corrupt(
                "checkpoint dimensions disagree with the DFA",
            ));
        }
        let Some(mappings) = self.mappings::<E>() else {
            return Err(IoError::Corrupt(
                "checkpoint element width disagrees with the DFA",
            ));
        };
        if (mappings.len() / n) as u64 != self.num_states {
            return Err(IoError::Corrupt("checkpoint arena size mismatch"));
        }
        Ok(mappings)
    }

    /// Serialize into an artifact byte vector (checksummed container).
    pub fn to_artifact_bytes(&self) -> Vec<u8> {
        let mut meta = Vec::with_capacity(48);
        varint::write_u64(&mut meta, self.dfa_states as u64);
        varint::write_u64(&mut meta, self.symbols as u64);
        varint::write_u64(&mut meta, self.elem_bytes as u64);
        varint::write_u64(&mut meta, self.processed);
        varint::write_u64(&mut meta, self.num_states);
        meta.extend_from_slice(&self.dfa_crc.to_le_bytes());
        let mut delta = Vec::with_capacity(self.delta.len() * 4);
        for &d in &self.delta {
            delta.extend_from_slice(&d.to_le_bytes());
        }
        assemble(
            ArtifactKind::Checkpoint,
            &[
                (TAG_CKPT_META, &meta),
                (TAG_CKPT_DELTA, &delta),
                (TAG_CKPT_MAPPINGS, &self.mappings_le),
            ],
        )
    }

    /// Decode and validate an artifact byte vector.
    pub fn from_artifact_bytes(bytes: &[u8]) -> Result<Checkpoint, IoError> {
        let (kind, sections) = parse(bytes)?;
        if kind != ArtifactKind::Checkpoint {
            return Err(IoError::Corrupt("artifact is not a checkpoint"));
        }
        let meta = section(&sections, TAG_CKPT_META)?;
        let delta_raw = section(&sections, TAG_CKPT_DELTA)?;
        let mappings_le = section(&sections, TAG_CKPT_MAPPINGS)?;

        let mut pos = 0usize;
        let mut rd = || -> Result<u64, IoError> {
            varint::read_u64(meta, &mut pos).map_err(|_| IoError::Truncated)
        };
        let dfa_states = rd()?;
        let symbols = rd()?;
        let elem_bytes = rd()?;
        let processed = rd()?;
        let num_states = rd()?;
        let crc_at = pos;
        let crc_end = crc_at.checked_add(8).ok_or(IoError::Truncated)?;
        let dfa_crc = u64::from_le_bytes(
            meta.get(crc_at..crc_end)
                .ok_or(IoError::Truncated)?
                .try_into()
                .unwrap(),
        );
        if crc_end != meta.len() {
            return Err(IoError::Corrupt("trailing bytes in checkpoint meta"));
        }
        if dfa_states == 0 || symbols == 0 || num_states == 0 {
            return Err(IoError::Corrupt("zero dimension in checkpoint"));
        }
        if dfa_states > u32::MAX as u64 || symbols > u32::MAX as u64 {
            return Err(IoError::Corrupt("dimension overflow"));
        }
        if !(elem_bytes == 2 || elem_bytes == 4) {
            return Err(IoError::Corrupt("bad mapping element width"));
        }
        if processed > num_states {
            return Err(IoError::Corrupt("checkpoint cursor beyond arena"));
        }
        let n = to_len(dfa_states)?;
        let k = to_len(symbols)?;
        let states = to_len(num_states)?;
        let delta_len = states
            .checked_mul(k)
            .and_then(|x| x.checked_mul(4))
            .ok_or(IoError::Corrupt("dimension overflow"))?;
        if delta_raw.len() != delta_len {
            return Err(IoError::Corrupt("delta section size mismatch"));
        }
        let mapping_len = states
            .checked_mul(n)
            .and_then(|x| x.checked_mul(elem_bytes as usize))
            .ok_or(IoError::Corrupt("dimension overflow"))?;
        if mappings_le.len() != mapping_len {
            return Err(IoError::Corrupt("mapping section size mismatch"));
        }
        let delta: Vec<u32> = delta_raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        for (i, &d) in delta.iter().enumerate() {
            let row = i / k;
            if (row as u64) < processed {
                if d as u64 >= num_states {
                    return Err(IoError::Corrupt("processed transition out of range"));
                }
            } else if d != u32::MAX && d as u64 >= num_states {
                return Err(IoError::Corrupt("frontier transition out of range"));
            }
        }
        // Every persisted mapping element must be a valid DFA state.
        let width = elem_bytes as usize;
        for chunk in mappings_le.chunks_exact(width) {
            let mut v = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                v |= (b as u64) << (8 * i);
            }
            if v >= dfa_states {
                return Err(IoError::Corrupt("mapping element out of range"));
            }
        }
        Ok(Checkpoint {
            dfa_states: dfa_states as u32,
            symbols: symbols as u32,
            elem_bytes: elem_bytes as u8,
            processed,
            num_states,
            dfa_crc,
            delta,
            mappings_le: mappings_le.to_vec(),
        })
    }
}

fn to_len(v: u64) -> Result<usize, IoError> {
    usize::try_from(v).map_err(|_| IoError::Corrupt("dimension overflow"))
}

/// Content hash of artifact bytes (CRC-64/XZ). The serve registry
/// stores `.sfar` files under this hash: deterministic construction
/// makes equal automata byte-equal regardless of thread count or
/// scheduler, so identical patterns — across restarts and tenants —
/// share one artifact file.
pub fn content_hash(bytes: &[u8]) -> u64 {
    crc64(bytes)
}

/// Fingerprint of a DFA (CRC-64/XZ over dimensions, start state,
/// transition table and accepting set). Persisted in checkpoints so a
/// resume against a different automaton is rejected instead of silently
/// producing a wrong SFA.
pub fn dfa_fingerprint(dfa: &Dfa) -> u64 {
    let mut c = Crc64::new();
    c.update(&dfa.num_states().to_le_bytes());
    c.update(&(dfa.num_symbols() as u32).to_le_bytes());
    c.update(&dfa.start().to_le_bytes());
    for &t in dfa.table() {
        c.update(&t.to_le_bytes());
    }
    for q in 0..dfa.num_states() {
        c.update(&[u8::from(dfa.is_accepting(q))]);
    }
    c.finish()
}

/// Serialize `sfa` into an artifact byte vector (checksummed container
/// around [`io::to_bytes`]).
pub fn sfa_to_bytes(sfa: &Sfa) -> Vec<u8> {
    let payload = io::to_bytes(sfa);
    assemble(ArtifactKind::Sfa, &[(TAG_SFA, &payload)])
}

/// Decode an SFA from artifact bytes, verifying every checksum.
pub fn sfa_from_bytes(bytes: &[u8]) -> Result<Sfa, IoError> {
    let (kind, sections) = parse(bytes)?;
    if kind != ArtifactKind::Sfa {
        return Err(IoError::Corrupt("artifact is not a serialized SFA"));
    }
    io::from_bytes(section(&sections, TAG_SFA)?)
}

/// Atomically write `sfa` as a checksummed artifact at `path`.
pub fn write_sfa(path: &Path, sfa: &Sfa) -> Result<(), IoError> {
    io::atomic_write(path, &sfa_to_bytes(sfa)).map_err(IoError::from)
}

/// Load an SFA artifact, verifying every checksum.
pub fn read_sfa(path: &Path) -> Result<Sfa, IoError> {
    sfa_from_bytes(&read_artifact(path)?)
}

/// Atomically write a construction checkpoint at `path`.
pub fn write_checkpoint(path: &Path, ckpt: &Checkpoint) -> Result<(), IoError> {
    static OBS_CHECKPOINT_BYTES: crate::obs::LazyCounter =
        crate::obs::LazyCounter::new("sfa_artifact_checkpoint_bytes_total");
    static OBS_CHECKPOINTS: crate::obs::LazyCounter =
        crate::obs::LazyCounter::new("sfa_artifact_checkpoints_total");
    let bytes = ckpt.to_artifact_bytes();
    OBS_CHECKPOINT_BYTES.add(bytes.len() as u64);
    OBS_CHECKPOINTS.inc();
    io::atomic_write(path, &bytes).map_err(IoError::from)
}

/// Load and validate a construction checkpoint.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, IoError> {
    Checkpoint::from_artifact_bytes(&read_artifact(path)?)
}

/// Verify an artifact end to end: container structure, header/body and
/// per-section checksums, and a full decode of the payload. Returns a
/// report of what the file contains.
pub fn verify(path: &Path) -> Result<ArtifactInfo, IoError> {
    let bytes = read_artifact(path)?;
    let (kind, sections) = parse(&bytes)?;
    match kind {
        ArtifactKind::Sfa => {
            io::from_bytes(section(&sections, TAG_SFA)?)?;
        }
        ArtifactKind::Checkpoint => {
            Checkpoint::from_artifact_bytes(&bytes)?;
        }
    }
    Ok(ArtifactInfo {
        kind,
        version: FORMAT_VERSION,
        total_bytes: bytes.len() as u64,
        sections: sections
            .iter()
            .map(|(tag, payload)| SectionInfo {
                tag: *tag,
                len: payload.len() as u64,
            })
            .collect(),
    })
}

fn read_artifact(path: &Path) -> Result<Vec<u8>, IoError> {
    sfa_sync::fault_point!("io/read").map_err(|e| IoError::Io(e.to_string()))?;
    std::fs::read(path).map_err(IoError::from)
}

/// Build the checksummed container around `sections`.
fn assemble(kind: ArtifactKind, sections: &[(u8, &[u8])]) -> Vec<u8> {
    debug_assert!(sections.len() <= u8::MAX as usize);
    let body_len: usize = sections.iter().map(|(_, p)| 17 + p.len()).sum();
    let mut out = Vec::with_capacity(HEADER_BYTES + body_len);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind.to_byte());
    out.push(sections.len() as u8);
    out.extend_from_slice(&[0u8; 16]); // body + header CRC placeholders
    for (tag, payload) in sections {
        out.push(*tag);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc64(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }
    let body_crc = crc64(&out[HEADER_BYTES..]);
    out[8..16].copy_from_slice(&body_crc.to_le_bytes());
    let header_crc = crc64(&out[..16]);
    out[16..24].copy_from_slice(&header_crc.to_le_bytes());
    out
}

/// A parsed section: `(tag, payload)` borrowed from the container.
type Sections<'a> = Vec<(u8, &'a [u8])>;

/// Parse and checksum-verify the container; returns the sections as
/// `(tag, payload)` borrows.
fn parse(bytes: &[u8]) -> Result<(ArtifactKind, Sections<'_>), IoError> {
    if bytes.len() < HEADER_BYTES {
        if bytes.len() >= 4 && &bytes[..4] != MAGIC {
            return Err(IoError::BadMagic);
        }
        return Err(IoError::Truncated);
    }
    if &bytes[..4] != MAGIC {
        return Err(IoError::BadMagic);
    }
    let stored_header_crc = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    if crc64(&bytes[..16]) != stored_header_crc {
        return Err(IoError::Corrupt("header checksum mismatch"));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(IoError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let kind = ArtifactKind::from_byte(bytes[6])?;
    let nsections = bytes[7] as usize;
    let stored_body_crc = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if crc64(&bytes[HEADER_BYTES..]) != stored_body_crc {
        // Covers truncation too: a shorter body hashes differently.
        return Err(IoError::Corrupt("body checksum mismatch"));
    }
    let mut sections = Vec::with_capacity(nsections.min(16));
    let mut pos = HEADER_BYTES;
    for _ in 0..nsections {
        let header_end = pos.checked_add(17).ok_or(IoError::Truncated)?;
        let header = bytes.get(pos..header_end).ok_or(IoError::Truncated)?;
        let tag = header[0];
        let len = u64::from_le_bytes(header[1..9].try_into().unwrap());
        let section_crc = u64::from_le_bytes(header[9..17].try_into().unwrap());
        let len = to_len(len)?;
        let payload_end = header_end.checked_add(len).ok_or(IoError::Truncated)?;
        let payload = bytes
            .get(header_end..payload_end)
            .ok_or(IoError::Truncated)?;
        if crc64(payload) != section_crc {
            return Err(IoError::Corrupt("section checksum mismatch"));
        }
        sections.push((tag, payload));
        pos = payload_end;
    }
    if pos != bytes.len() {
        return Err(IoError::Corrupt("trailing bytes after sections"));
    }
    Ok((kind, sections))
}

fn section<'a>(sections: &[(u8, &'a [u8])], tag: u8) -> Result<&'a [u8], IoError> {
    sections
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, p)| *p)
        .ok_or(IoError::Corrupt("missing artifact section"))
}

/// Encode a mapping arena slice as little-endian bytes for a
/// [`Checkpoint`].
pub(crate) fn mappings_to_le<E: Elem>(mappings: &[E]) -> Vec<u8> {
    let mut out = Vec::with_capacity(mappings.len() * E::BYTES);
    for &m in mappings {
        let v = m.to_u32();
        out.extend_from_slice(&v.to_le_bytes()[..E::BYTES]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialVariant;
    use sfa_automata::pipeline::Pipeline;
    use sfa_automata::Alphabet;

    fn rg_sfa() -> (Dfa, Sfa) {
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str("R[GA]N")
            .unwrap();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        (dfa, sfa)
    }

    #[test]
    fn sfa_artifact_round_trip() {
        let (dfa, sfa) = rg_sfa();
        let bytes = sfa_to_bytes(&sfa);
        let back = sfa_from_bytes(&bytes).unwrap();
        back.validate(&dfa).unwrap();
        assert_eq!(io::to_bytes(&back), io::to_bytes(&sfa));
    }

    #[test]
    fn every_bit_flip_outside_magic_is_corrupt() {
        let (_, sfa) = rg_sfa();
        let bytes = sfa_to_bytes(&sfa);
        // Exhaustive over the header + section header, sampled over the
        // payload (the payload is fully covered by body + section CRCs).
        let probe: Vec<usize> = (4..48)
            .chain((48..bytes.len()).step_by(7))
            .chain([bytes.len() - 1])
            .collect();
        for i in probe {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[i] ^= 1 << bit;
                let err = sfa_from_bytes(&m).expect_err("undetected flip");
                assert!(
                    matches!(
                        err,
                        IoError::Corrupt(_) | IoError::VersionMismatch { .. } | IoError::Truncated
                    ),
                    "flip at {i}:{bit} gave {err:?}"
                );
            }
        }
    }

    #[test]
    fn bit_flip_in_magic_is_bad_magic() {
        let (_, sfa) = rg_sfa();
        let mut bytes = sfa_to_bytes(&sfa);
        bytes[0] ^= 0x20;
        assert_eq!(sfa_from_bytes(&bytes).unwrap_err(), IoError::BadMagic);
    }

    #[test]
    fn version_bump_is_detected() {
        let (_, sfa) = rg_sfa();
        let mut bytes = sfa_to_bytes(&sfa);
        // Patch the version *and* fix up the header CRC so the version
        // check itself (not the checksum) fires — this is the shape of a
        // well-formed file from a future release.
        bytes[4..6].copy_from_slice(&2u16.to_le_bytes());
        let header_crc = crc64(&bytes[..16]);
        bytes[16..24].copy_from_slice(&header_crc.to_le_bytes());
        assert_eq!(
            sfa_from_bytes(&bytes).unwrap_err(),
            IoError::VersionMismatch {
                found: 2,
                expected: 1
            }
        );
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let (_, sfa) = rg_sfa();
        let bytes = sfa_to_bytes(&sfa);
        for cut in 0..bytes.len() {
            assert!(sfa_from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn file_round_trip_and_verify() {
        let (dfa, sfa) = rg_sfa();
        let dir = std::env::temp_dir().join("sfa_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rg.sfar");
        write_sfa(&path, &sfa).unwrap();
        let info = verify(&path).unwrap();
        assert_eq!(info.kind, ArtifactKind::Sfa);
        assert_eq!(info.version, FORMAT_VERSION);
        assert_eq!(info.sections.len(), 1);
        let back = read_sfa(&path).unwrap();
        back.validate(&dfa).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dfa_fingerprint_distinguishes_automata() {
        let a = Pipeline::search(Alphabet::amino_acids())
            .compile_str("RG")
            .unwrap();
        let b = Pipeline::search(Alphabet::amino_acids())
            .compile_str("RGD")
            .unwrap();
        assert_ne!(dfa_fingerprint(&a), dfa_fingerprint(&b));
        assert_eq!(dfa_fingerprint(&a), dfa_fingerprint(&a));
    }

    #[test]
    fn checkpoint_round_trip() {
        let ck = Checkpoint {
            dfa_states: 3,
            symbols: 2,
            elem_bytes: 2,
            processed: 1,
            num_states: 2,
            dfa_crc: 0xDEAD_BEEF,
            delta: vec![1, 0, u32::MAX, u32::MAX],
            mappings_le: mappings_to_le::<u16>(&[0, 1, 2, 1, 2, 0]),
        };
        let bytes = ck.to_artifact_bytes();
        let back = Checkpoint::from_artifact_bytes(&bytes).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.mappings::<u16>().unwrap(), vec![0, 1, 2, 1, 2, 0]);
        assert!(back.mappings::<u32>().is_none());
    }

    #[test]
    fn checkpoint_validation_rejects_inconsistencies() {
        let good = Checkpoint {
            dfa_states: 3,
            symbols: 2,
            elem_bytes: 2,
            processed: 1,
            num_states: 2,
            dfa_crc: 1,
            delta: vec![1, 0, u32::MAX, u32::MAX],
            mappings_le: mappings_to_le::<u16>(&[0, 1, 2, 1, 2, 0]),
        };
        // A processed row may not contain unfilled (MAX) entries.
        let mut hole = good.clone();
        hole.delta[0] = u32::MAX;
        assert!(Checkpoint::from_artifact_bytes(&hole.to_artifact_bytes()).is_err());
        // Cursor beyond the arena.
        let mut cursor = good.clone();
        cursor.processed = 3;
        assert!(Checkpoint::from_artifact_bytes(&cursor.to_artifact_bytes()).is_err());
        // Mapping element outside the DFA.
        let mut elem = good.clone();
        elem.mappings_le = mappings_to_le::<u16>(&[0, 1, 9, 1, 2, 0]);
        assert!(Checkpoint::from_artifact_bytes(&elem.to_artifact_bytes()).is_err());
        // A wrong-kind read is typed, not misparsed.
        let (_, sfa) = rg_sfa();
        assert!(Checkpoint::from_artifact_bytes(&sfa_to_bytes(&sfa)).is_err());
        assert!(sfa_from_bytes(&good.to_artifact_bytes()).is_err());
    }
}
