//! Lazy (on-the-fly) SFA construction during matching.
//!
//! Full SFA construction is the paper's bottleneck: matching only pays
//! off once construction cost amortizes (§IV-D's break-even). This module
//! implements the natural extension — construct SFA states **on demand
//! while matching**, in the style of lazy-DFA regex engines: a chunk
//! worker that needs `δₛ(s, σ)` and finds the successor slot empty
//! computes the candidate mapping, interns it through the same lock-free
//! fingerprint table the batch engine uses, caches the edge, and keeps
//! matching. Only states actually *visited by the input* are ever built,
//! and the structure is shared and reused across inputs and threads.
//!
//! For the r500 automaton the full SFA has 124 543 states; matching a
//! protein-like text touches a tiny fraction of them, so the lazy matcher
//! removes almost the entire construction cost from the §IV-D break-even
//! equation.
//!
//! Internals deliberately reuse the batch engine's substrate:
//! [`StateStore`] (lock-free arena records with fingerprint, chain link
//! and successor slots) and [`ChainedTable`] (find-or-insert keyed by
//! fingerprint). Mappings are stored as raw little-endian `u32` ids —
//! lazy matching visits few states, so the 2× width versus `u16` does
//! not matter and keeps the code monomorphic.

use crate::budget::{Budget, Governor};
use crate::elem::Elem;
use crate::state::StateStore;
use crate::SfaError;
use sfa_automata::alphabet::SymbolId;
use sfa_automata::dfa::Dfa;
use sfa_hash::{CityFingerprinter, Fingerprinter};
use sfa_sync::CancelToken;
use sfa_sync::{ChainedTable, FindOrInsert, Links, NIL};

/// A thread-safe, incrementally constructed SFA.
pub struct LazySfa<'d> {
    dfa: &'d Dfa,
    n: usize,
    start: u32,
    state_budget: usize,
    store: StateStore,
    table: ChainedTable,
    fingerprinter: CityFingerprinter,
    governor: Governor,
}

impl<'d> LazySfa<'d> {
    /// Create a lazy SFA over `dfa` able to hold up to `state_budget`
    /// discovered states.
    pub fn new(dfa: &'d Dfa, state_budget: usize) -> Result<Self, SfaError> {
        LazySfa::with_budget(dfa, state_budget, &Budget::unlimited(), None)
    }

    /// Like [`LazySfa::new`], additionally governed by `budget` and an
    /// optional cancellation token. Limits are enforced on the *state
    /// discovery* path: cached transitions keep matching at full speed,
    /// but a step that would have to construct a new SFA state first
    /// passes the budget checkpoint. The deadline axis measures from
    /// this constructor, which suits the lazy tier's "construction
    /// amortized into matching" lifecycle.
    pub fn with_budget(
        dfa: &'d Dfa,
        state_budget: usize,
        budget: &Budget,
        cancel: Option<CancelToken>,
    ) -> Result<Self, SfaError> {
        if dfa.num_states() == 0 {
            return Err(SfaError::EmptyDfa);
        }
        let governor = Governor::new(budget, cancel);
        // Fail fast on a budget that is already exhausted (cancelled
        // token, zero space budget) before allocating the arena.
        governor.check(0, 0)?;
        let n = dfa.num_states() as usize;
        let store = StateStore::new(state_budget, n, 4, dfa.num_symbols());
        let table = ChainedTable::new((state_budget / 64).clamp(1 << 10, 1 << 22));
        let fingerprinter = CityFingerprinter;
        let identity: Vec<u32> = (0..n as u32).collect();
        let bytes = <u32 as Elem>::as_bytes(&identity);
        let fp = fingerprinter.fingerprint(bytes);
        let start = store
            .alloc(fp, bytes.to_vec().into_boxed_slice(), false)
            .ok_or(SfaError::StateBudgetExceeded {
                budget: state_budget,
            })?;
        table.insert_unchecked(fp, start, &store);
        Ok(LazySfa {
            dfa,
            n,
            start,
            state_budget,
            store,
            table,
            fingerprinter,
            governor,
        })
    }

    /// The underlying DFA.
    pub fn dfa(&self) -> &Dfa {
        self.dfa
    }

    /// The start state (identity mapping).
    pub fn start(&self) -> u32 {
        self.start
    }

    /// SFA states discovered so far.
    pub fn states_built(&self) -> u32 {
        self.store.len() as u32
    }

    /// The mapping vector of a discovered state.
    pub fn mapping_of(&self, s: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.n);
        <u32 as Elem>::read_bytes(&self.store.mapping(s).data, &mut out);
        out
    }

    /// Apply state `s`'s mapping to DFA state `q`.
    pub fn apply(&self, s: u32, q: u32) -> u32 {
        let buf = &self.store.mapping(s).data;
        let base = q as usize * 4;
        u32::from_ne_bytes(buf[base..base + 4].try_into().unwrap())
    }

    /// `δₛ(s, σ)`, constructing the successor state if it has not been
    /// discovered yet. Thread-safe: concurrent callers deduplicate
    /// through the lock-free table; the cached edge makes repeats `O(1)`.
    pub fn step(&self, s: u32, sym: SymbolId) -> Result<u32, SfaError> {
        let cached = self.store.succ(s, sym as usize);
        if cached != NIL {
            return Ok(cached);
        }
        if !self.governor.is_unlimited() {
            // Discovery-path checkpoint: about to construct a state.
            let states = self.store.len() as u64;
            self.governor.check(states, states * self.n as u64 * 4)?;
        }
        // Compute the candidate mapping: one δ column over s's mapping.
        let src = &self.store.mapping(s).data;
        let mut cand: Vec<u32> = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let q = u32::from_ne_bytes(src[i * 4..i * 4 + 4].try_into().unwrap());
            cand.push(self.dfa.next(q, sym));
        }
        let bytes = <u32 as Elem>::as_bytes(&cand);
        let fp = self.fingerprinter.fingerprint(bytes);
        let eq = |other: u32| {
            self.store.fingerprint(other) == fp && self.store.mapping_equals(other, bytes)
        };
        let succ = if let Some(found) = self.table.find(fp, &self.store, eq) {
            found
        } else {
            let id = self
                .store
                .alloc(fp, bytes.to_vec().into_boxed_slice(), false)
                .ok_or(SfaError::StateBudgetExceeded {
                    budget: self.state_budget,
                })?;
            match self.table.find_or_insert(fp, id, &self.store, eq) {
                FindOrInsert::Inserted => id,
                FindOrInsert::Found(existing) => {
                    // Lost the race; tombstone our record (it is arena
                    // garbage but must never alias a live chain entry).
                    self.store
                        .link(id)
                        .store(u32::MAX - 1, std::sync::atomic::Ordering::SeqCst);
                    existing
                }
            }
        };
        self.store.set_succ(s, sym as usize, succ);
        Ok(succ)
    }

    /// Run the lazy SFA over `input` from the start state, constructing
    /// missing states along the way.
    pub fn run(&self, input: &[SymbolId]) -> Result<u32, SfaError> {
        let mut s = self.start;
        for &sym in input {
            s = self.step(s, sym)?;
        }
        Ok(s)
    }

    /// Parallel membership test: chunk the input, run the lazy SFA over
    /// each chunk concurrently (states discovered by one worker are
    /// immediately visible to the others), compose the mappings, apply
    /// the DFA start state.
    pub fn matches(&self, input: &[SymbolId], threads: usize) -> Result<bool, SfaError> {
        let threads = threads.max(1);
        if input.is_empty() {
            return Ok(self.dfa.is_accepting(self.dfa.start()));
        }
        let chunk = input.len().div_ceil(threads);
        let chunks: Vec<&[SymbolId]> = input.chunks(chunk).collect();
        let mut results: Vec<Result<u32, SfaError>> = Vec::with_capacity(chunks.len());
        if chunks.len() == 1 {
            results.push(self.run(chunks[0]));
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(chunks.len());
                for &c in &chunks {
                    handles.push(scope.spawn(move || self.run(c)));
                }
                for h in handles {
                    results.push(h.join().expect("lazy matcher thread panicked"));
                }
            });
        }
        let mut q = self.dfa.start();
        for r in results {
            let s = r?;
            q = self.apply(s, q);
        }
        Ok(self.dfa.is_accepting(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::match_sequential;
    use crate::parallel::ParallelOptions;
    use crate::sfa::Sfa;
    use sfa_automata::pipeline::Pipeline;
    use sfa_automata::Alphabet;
    use sfa_workloads::protein_text;

    fn rg_dfa() -> Dfa {
        Pipeline::search(Alphabet::amino_acids())
            .compile_str("RG")
            .unwrap()
    }

    #[test]
    fn lazy_matching_agrees_with_sequential() {
        let dfa = rg_dfa();
        let lazy = LazySfa::new(&dfa, 1 << 16).unwrap();
        for seed in 0..5 {
            let text = protein_text(10_000, seed);
            assert_eq!(
                lazy.matches(&text, 4).unwrap(),
                match_sequential(&dfa, &text),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn lazy_builds_at_most_the_full_sfa() {
        let dfa = rg_dfa();
        let full = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(2))
            .build()
            .unwrap()
            .sfa;
        let lazy = LazySfa::new(&dfa, 1 << 16).unwrap();
        for seed in 0..10 {
            let text = protein_text(5_000, seed);
            lazy.matches(&text, 3).unwrap();
        }
        assert!(lazy.states_built() <= full.num_states());
        assert!(lazy.states_built() >= 1);
    }

    #[test]
    fn lazy_visits_a_fraction_on_large_automata() {
        // The headline benefit: r200's full SFA has ~20k states; matching
        // real text discovers only a few hundred.
        let dfa = sfa_automata::random::rn(200);
        let full_states = 19_883u32; // measured by the batch engine (E5)
        let lazy = LazySfa::new(&dfa, 1 << 20).unwrap();
        let text = protein_text(100_000, 3);
        let hit = lazy.matches(&text, 4).unwrap();
        assert_eq!(hit, match_sequential(&dfa, &text));
        assert!(
            lazy.states_built() * 10 < full_states,
            "lazy built {} of {} states",
            lazy.states_built(),
            full_states
        );
    }

    #[test]
    fn states_are_reused_across_inputs() {
        let dfa = rg_dfa();
        let lazy = LazySfa::new(&dfa, 1 << 16).unwrap();
        let text = protein_text(5_000, 1);
        lazy.matches(&text, 2).unwrap();
        let after_first = lazy.states_built();
        // Same text again: no new states.
        lazy.matches(&text, 2).unwrap();
        assert_eq!(lazy.states_built(), after_first);
    }

    #[test]
    fn concurrent_discovery_is_consistent() {
        // Many threads matching different texts concurrently must agree
        // with the oracle and never duplicate states.
        let dfa = rg_dfa();
        let lazy = LazySfa::new(&dfa, 1 << 16).unwrap();
        std::thread::scope(|scope| {
            for seed in 0..8u64 {
                let lazy = &lazy;
                let dfa = &dfa;
                scope.spawn(move || {
                    let text = protein_text(20_000, seed);
                    assert_eq!(
                        lazy.matches(&text, 1).unwrap(),
                        match_sequential(dfa, &text)
                    );
                });
            }
        });
        // The full RG SFA has 6 states; lazy must not exceed it even
        // under concurrent discovery (losers are tombstoned, not listed).
        let full = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(2))
            .build()
            .unwrap()
            .sfa;
        // Count only table-reachable states.
        let text = protein_text(1_000, 99);
        lazy.matches(&text, 4).unwrap();
        assert!(lazy.states_built() >= 1);
        // states_built counts arena records incl. race losers; the
        // discovered distinct states can never exceed the full SFA + losers.
        assert!(lazy.states_built() <= full.num_states() + 8);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // The RG search SFA needs 6 distinct states on generic text; a
        // 2-state budget must fail once the second new state appears.
        let dfa = rg_dfa();
        let lazy = LazySfa::new(&dfa, 2).unwrap();
        let text = protein_text(10_000, 0);
        match lazy.matches(&text, 2) {
            Err(SfaError::StateBudgetExceeded { .. }) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn mapping_of_start_is_identity() {
        let dfa = rg_dfa();
        let lazy = LazySfa::new(&dfa, 64).unwrap();
        assert_eq!(lazy.mapping_of(lazy.start()), vec![0, 1, 2]);
        assert_eq!(lazy.apply(lazy.start(), 2), 2);
    }
}
