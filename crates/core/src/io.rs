//! Binary serialization for constructed SFAs.
//!
//! Construction can take minutes for large automata while the SFA itself
//! is reusable across runs (and across machines — everything is stored
//! little-endian). The format keeps compressed mapping stores compressed,
//! so a Table-II-class SFA persists at its compressed size.
//!
//! ```text
//! magic   "SFA\x01"
//! u8      store kind: 0 = raw u16, 1 = raw u32, 2+codec = compressed
//! varint  n (DFA states), k (symbols), num_states, start
//! u32×(num_states·k)   δₛ, row-major, little-endian
//! payload raw: n·num_states elements LE
//!         compressed: per state varint(len) + blob
//! ```

use crate::sfa::{CodecChoice, MappingStore, Sfa};
use sfa_compress::varint;

// Global-registry artifact-path metrics (DESIGN.md §12); zero-sized
// no-ops unless the `obs` feature is enabled.
static OBS_WRITE_BYTES: crate::obs::LazyCounter =
    crate::obs::LazyCounter::new("sfa_artifact_write_bytes_total");
static OBS_FSYNC_NANOS: crate::obs::LazyHistogram =
    crate::obs::LazyHistogram::new("sfa_artifact_fsync_nanos");

/// Errors produced while decoding a serialized SFA or artifact.
///
/// `#[non_exhaustive]`: future artifact versions may add failure shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IoError {
    /// Missing/incorrect magic bytes.
    BadMagic,
    /// Input ended prematurely.
    Truncated,
    /// Structurally invalid content (includes checksum mismatches).
    Corrupt(&'static str),
    /// The artifact was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u16,
        /// Version this build reads and writes.
        expected: u16,
    },
    /// The underlying file I/O failed (open/read/write/fsync/rename).
    Io(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::BadMagic => write!(f, "not an SFA file (bad magic)"),
            IoError::Truncated => write!(f, "SFA file is truncated"),
            IoError::Corrupt(m) => write!(f, "SFA file is corrupt: {m}"),
            IoError::VersionMismatch { found, expected } => write!(
                f,
                "artifact format version {found} is not supported (expected {expected})"
            ),
            IoError::Io(m) => write!(f, "artifact I/O failed: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> IoError {
        IoError::Io(e.to_string())
    }
}

const MAGIC: &[u8; 4] = b"SFA\x01";

const KIND_U16: u8 = 0;
const KIND_U32: u8 = 1;
const KIND_COMPRESSED_BASE: u8 = 2;

fn codec_tag(c: CodecChoice) -> u8 {
    match c {
        CodecChoice::Deflate => 0,
        CodecChoice::Lz77 => 1,
        CodecChoice::Rle => 2,
        CodecChoice::Store => 3,
        CodecChoice::Hybrid => 4,
    }
}

fn codec_from_tag(t: u8) -> Result<CodecChoice, IoError> {
    Ok(match t {
        0 => CodecChoice::Deflate,
        1 => CodecChoice::Lz77,
        2 => CodecChoice::Rle,
        3 => CodecChoice::Store,
        4 => CodecChoice::Hybrid,
        _ => return Err(IoError::Corrupt("unknown codec tag")),
    })
}

/// Serialize `sfa` into a byte vector.
pub fn to_bytes(sfa: &Sfa) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + sfa.mapping_bytes() + sfa.num_states() as usize * 4);
    out.extend_from_slice(MAGIC);
    let (kind, codec) = match sfa.mappings() {
        MappingStore::U16(_) => (KIND_U16, None),
        MappingStore::U32(_) => (KIND_U32, None),
        MappingStore::Compressed {
            elem_bytes, codec, ..
        } => (
            KIND_COMPRESSED_BASE + codec_tag(*codec) * 2 + u8::from(*elem_bytes == 4),
            Some(*codec),
        ),
    };
    let _ = codec;
    out.push(kind);
    varint::write_u64(&mut out, sfa.dfa_states() as u64);
    varint::write_u64(&mut out, sfa.num_symbols() as u64);
    varint::write_u64(&mut out, sfa.num_states() as u64);
    varint::write_u64(&mut out, sfa.start() as u64);
    for s in 0..sfa.num_states() {
        for sym in 0..sfa.num_symbols() {
            out.extend_from_slice(&sfa.step(s, sym as u8).to_le_bytes());
        }
    }
    match sfa.mappings() {
        MappingStore::U16(v) => {
            for &x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        MappingStore::U32(v) => {
            for &x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        MappingStore::Compressed { blobs, .. } => {
            for b in blobs {
                varint::write_u64(&mut out, b.len() as u64);
                out.extend_from_slice(b);
            }
        }
    }
    out
}

/// Bounds-checked sub-slice: `bytes[pos .. pos + len]`, with the offset
/// addition itself checked so adversarial lengths can neither panic in
/// debug builds nor wrap in release builds.
fn take(bytes: &[u8], pos: usize, len: usize) -> Result<&[u8], IoError> {
    let end = pos.checked_add(len).ok_or(IoError::Truncated)?;
    bytes.get(pos..end).ok_or(IoError::Truncated)
}

/// `u64` (from a varint) → `usize`, erroring instead of truncating on
/// 32-bit targets.
fn to_usize(v: u64) -> Result<usize, IoError> {
    usize::try_from(v).map_err(|_| IoError::Corrupt("dimension overflow"))
}

/// Deserialize an SFA from bytes produced by [`to_bytes`].
///
/// Every length and offset read from the input is bounds-checked before
/// use, and no allocation larger than the input itself is made before
/// the bytes backing it have been verified to exist — malformed or
/// adversarial input yields a typed [`IoError`], never a panic or an
/// unbounded allocation.
pub fn from_bytes(bytes: &[u8]) -> Result<Sfa, IoError> {
    if bytes.len() < 5 || &bytes[..4] != MAGIC {
        return Err(IoError::BadMagic);
    }
    let kind = bytes[4];
    let mut pos = 5usize;
    let rd = |pos: &mut usize| -> Result<u64, IoError> {
        varint::read_u64(bytes, pos).map_err(|_| IoError::Truncated)
    };
    let n = to_usize(rd(&mut pos)?)?;
    let k = to_usize(rd(&mut pos)?)?;
    let num_states = to_usize(rd(&mut pos)?)?;
    let start = rd(&mut pos)?;
    if n == 0 || k == 0 || num_states == 0 {
        return Err(IoError::Corrupt("zero dimension"));
    }
    if start >= num_states as u64 {
        return Err(IoError::Corrupt("start state out of range"));
    }
    let start = start as u32;
    let delta_bytes = num_states
        .checked_mul(k)
        .and_then(|x| x.checked_mul(4))
        .ok_or(IoError::Corrupt("dimension overflow"))?;
    let delta_raw = take(bytes, pos, delta_bytes)?;
    let delta: Vec<u32> = delta_raw
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    if delta.iter().any(|&s| s as usize >= num_states) {
        return Err(IoError::Corrupt("transition out of range"));
    }
    pos += delta_bytes;

    let payload_len = |bytes_per: usize| {
        num_states
            .checked_mul(n)
            .and_then(|x| x.checked_mul(bytes_per))
            .ok_or(IoError::Corrupt("dimension overflow"))
    };
    let mappings = match kind {
        KIND_U16 => {
            let want = payload_len(2)?;
            let raw = take(bytes, pos, want)?;
            pos += want;
            MappingStore::U16(
                raw.chunks_exact(2)
                    .map(|c| u16::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            )
        }
        KIND_U32 => {
            let want = payload_len(4)?;
            let raw = take(bytes, pos, want)?;
            pos += want;
            MappingStore::U32(
                raw.chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            )
        }
        t if t >= KIND_COMPRESSED_BASE => {
            let rel = t - KIND_COMPRESSED_BASE;
            let codec = codec_from_tag(rel / 2)?;
            let elem_bytes = if rel % 2 == 1 { 4 } else { 2 };
            // Each blob needs at least its 1-byte length varint, so a
            // claimed state count beyond the remaining input is provably
            // truncated — reject it *before* sizing any allocation by it.
            if num_states > bytes.len() - pos {
                return Err(IoError::Truncated);
            }
            // Each mapping row must decompress to exactly n elements.
            // Matching trusts this (`Sfa::mapping_of` expects success),
            // so a blob that fails here must be rejected at load time —
            // it used to be accepted and abort the process on first use.
            let want_raw = n
                .checked_mul(elem_bytes)
                .ok_or(IoError::Corrupt("dimension overflow"))?;
            let decoder = codec.codec();
            let mut blobs = Vec::with_capacity(num_states);
            for _ in 0..num_states {
                let len = to_usize(rd(&mut pos)?)?;
                let blob = take(bytes, pos, len)?;
                match decoder.decompress_to_vec(blob) {
                    Ok(raw) if raw.len() == want_raw => {}
                    Ok(_) => return Err(IoError::Corrupt("mapping row has wrong length")),
                    Err(_) => return Err(IoError::Corrupt("mapping row failed to decompress")),
                }
                blobs.push(blob.to_vec().into_boxed_slice());
                pos += len;
            }
            MappingStore::Compressed {
                elem_bytes,
                blobs,
                codec,
            }
        }
        _ => return Err(IoError::Corrupt("unknown store kind")),
    };
    if pos != bytes.len() {
        return Err(IoError::Corrupt("trailing bytes after payload"));
    }
    Ok(Sfa::from_parts(n, k, start, delta, mappings))
}

/// Durably write `bytes` to `path`: write a sibling `<name>.tmp`, fsync
/// it, atomically rename it over `path`, then best-effort fsync the
/// containing directory. A crash at any point leaves either the old
/// file or the complete new one on disk — never a torn mix.
///
/// Fault sites: `io/write` (before the temp file is created),
/// `io/fsync` (before `sync_all`), `io/rename` (between the durable
/// temp write and the rename — a `Panic`-kind fault here simulates the
/// process dying with only the temp file on disk).
pub fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    sfa_sync::fault_point!("io/write")?;
    OBS_WRITE_BYTES.add(bytes.len() as u64);
    let tmp = tmp_sibling(path);
    let written = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        sfa_sync::fault_point!("io/fsync")?;
        let watch = crate::obs::Stopwatch::start();
        let synced = f.sync_all();
        watch.record(&OBS_FSYNC_NANOS);
        synced
    })();
    if let Err(e) = written {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = sfa_sync::fault_point!("io/rename") {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    // Renames become durable once the directory entry is synced; failure
    // here only widens the crash window, it cannot tear the file.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Read-only memory map of a file — the spill tier's read path
/// (`crate::store`). On unix targets this is a real `mmap(2)` so spilled
/// state payloads are demand-paged rather than resident; elsewhere it
/// degrades to reading the file into an anonymous buffer (same API,
/// no paging benefit).
///
/// Fault site: `io/mmap` (before the file is opened).
#[derive(Debug)]
pub struct Mmap {
    repr: MmapRepr,
}

#[derive(Debug)]
enum MmapRepr {
    /// Zero-length files: mapping zero bytes is EINVAL, so hold nothing.
    Empty,
    #[cfg(unix)]
    Mapped {
        ptr: *mut std::ffi::c_void,
        len: usize,
    },
    #[allow(dead_code)]
    Buffered(Box<[u8]>),
}

// SAFETY: the mapping is immutable (PROT_READ, MAP_PRIVATE) for its whole
// lifetime; sharing the base pointer across threads is plain shared-read.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl Mmap {
    /// Map `path` read-only.
    pub fn open(path: &std::path::Path) -> std::io::Result<Mmap> {
        sfa_sync::fault_point!("io/mmap")?;
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(Mmap {
                repr: MmapRepr::Empty,
            });
        }
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "spill file exceeds usize")
        })?;
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is valid for the duration of the call; length is
            // the file's current size; we never write through the mapping.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Mmap {
                repr: MmapRepr::Mapped { ptr, len },
            })
        }
        #[cfg(not(unix))]
        {
            let bytes = std::fs::read(path)?;
            Ok(Mmap {
                repr: MmapRepr::Buffered(bytes.into_boxed_slice()),
            })
        }
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            MmapRepr::Empty => &[],
            #[cfg(unix)]
            MmapRepr::Mapped { ptr, len } => {
                // SAFETY: the mapping stays valid until Drop; PROT_READ
                // private mappings of an unmodified file are plain bytes.
                unsafe { std::slice::from_raw_parts(*ptr as *const u8, *len) }
            }
            MmapRepr::Buffered(b) => b,
        }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when zero bytes are mapped.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let MmapRepr::Mapped { ptr, len } = self.repr {
            // SAFETY: exactly the region mmap returned, unmapped once.
            unsafe { sys::munmap(ptr, len) };
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

fn tmp_sibling(path: &std::path::Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("artifact"));
    name.push(".tmp");
    path.with_file_name(name)
}

/// Write `sfa` to a file (atomically — see [`atomic_write`]).
pub fn write_file(sfa: &Sfa, path: &std::path::Path) -> std::io::Result<()> {
    atomic_write(path, &to_bytes(sfa))
}

/// Read an SFA from a file.
pub fn read_file(path: &std::path::Path) -> std::io::Result<Sfa> {
    sfa_sync::fault_point!("io/read")?;
    let bytes = std::fs::read(path)?;
    from_bytes(&bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{CompressionPolicy, ParallelOptions};
    use crate::sequential::SequentialVariant;
    use sfa_automata::pipeline::Pipeline;
    use sfa_automata::Alphabet;

    fn rg_sfa() -> (sfa_automata::Dfa, Sfa) {
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str("R[GA]N")
            .unwrap();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        (dfa, sfa)
    }

    #[test]
    fn raw_u16_round_trip() {
        let (dfa, sfa) = rg_sfa();
        let bytes = to_bytes(&sfa);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.num_states(), sfa.num_states());
        assert_eq!(back.start(), sfa.start());
        back.validate(&dfa).unwrap();
        for s in 0..sfa.num_states() {
            assert_eq!(back.mapping_of(s), sfa.mapping_of(s));
        }
    }

    #[test]
    fn compressed_round_trip_stays_compressed() {
        let dfa = sfa_workloads::rn(50);
        let sfa = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(2).compression(CompressionPolicy::FromStart))
            .build()
            .unwrap()
            .sfa;
        assert!(sfa.is_compressed());
        let bytes = to_bytes(&sfa);
        // Compressed payload dominates the file: far smaller than raw.
        assert!(bytes.len() < sfa.num_states() as usize * dfa.num_states() as usize * 2);
        let back = from_bytes(&bytes).unwrap();
        assert!(back.is_compressed());
        back.validate(&dfa).unwrap();
    }

    #[test]
    fn file_round_trip() {
        let (dfa, sfa) = rg_sfa();
        let dir = std::env::temp_dir().join("sfa_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.sfa");
        write_file(&sfa, &path).unwrap();
        let back = read_file(&path).unwrap();
        back.validate(&dfa).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert_eq!(from_bytes(b"not an sfa").unwrap_err(), IoError::BadMagic);
        let (_, sfa) = rg_sfa();
        let bytes = to_bytes(&sfa);
        for cut in [5usize, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Corrupt a delta entry to point out of range.
        let mut bad = bytes.clone();
        // delta starts right after header; find it: magic(4)+kind(1)+4 varints
        // (all small here, 1 byte each) = 9.
        bad[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(from_bytes(&bad), Err(IoError::Corrupt(_))));
    }

    /// A corpus of crafted malformed inputs: each used to panic, abort
    /// on allocation, or mis-round in an earlier `from_bytes`. All must
    /// return a typed error quickly, without unbounded allocation.
    #[test]
    fn adversarial_bytes_return_typed_errors() {
        let mut huge_dims = MAGIC.to_vec();
        huge_dims.push(KIND_U16);
        // n, k, num_states all u64::MAX: dimension math must not wrap.
        for _ in 0..3 {
            varint::write_u64(&mut huge_dims, u64::MAX);
        }
        varint::write_u64(&mut huge_dims, 0);

        let mut start_truncation = MAGIC.to_vec();
        start_truncation.push(KIND_U16);
        varint::write_u64(&mut start_truncation, 2); // n
        varint::write_u64(&mut start_truncation, 2); // k
        varint::write_u64(&mut start_truncation, 3); // num_states
                                                     // start = 2^32 + 1: `as u32` truncation would make this a valid 1.
        varint::write_u64(&mut start_truncation, (1u64 << 32) + 1);

        let mut blob_count_bomb = MAGIC.to_vec();
        blob_count_bomb.push(KIND_COMPRESSED_BASE); // deflate, u16 elems
        varint::write_u64(&mut blob_count_bomb, 4); // n
        varint::write_u64(&mut blob_count_bomb, 2); // k
        varint::write_u64(&mut blob_count_bomb, 1 << 40); // num_states
        varint::write_u64(&mut blob_count_bomb, 0);

        let mut bad_codec = MAGIC.to_vec();
        bad_codec.push(KIND_COMPRESSED_BASE + 5 * 2); // codec tag 5: unknown
        varint::write_u64(&mut bad_codec, 1);
        varint::write_u64(&mut bad_codec, 1);
        varint::write_u64(&mut bad_codec, 1);
        varint::write_u64(&mut bad_codec, 0);
        bad_codec.extend_from_slice(&0u32.to_le_bytes());

        let mut blob_len_overflow = MAGIC.to_vec();
        blob_len_overflow.push(KIND_COMPRESSED_BASE);
        varint::write_u64(&mut blob_len_overflow, 1);
        varint::write_u64(&mut blob_len_overflow, 1);
        varint::write_u64(&mut blob_len_overflow, 1);
        varint::write_u64(&mut blob_len_overflow, 0);
        blob_len_overflow.extend_from_slice(&0u32.to_le_bytes()); // delta row
        varint::write_u64(&mut blob_len_overflow, u64::MAX); // blob length

        let (_, sfa) = rg_sfa();
        let mut trailing = to_bytes(&sfa);
        trailing.extend_from_slice(b"junk");

        let corpus: Vec<(&str, Vec<u8>)> = vec![
            ("huge dimensions", huge_dims),
            ("start > u32::MAX", start_truncation),
            ("blob count beyond input", blob_count_bomb),
            ("unknown codec tag", bad_codec),
            ("blob length overflow", blob_len_overflow),
            ("trailing bytes", trailing),
            ("empty", Vec::new()),
            ("magic only", MAGIC.to_vec()),
        ];
        for (name, bytes) in corpus {
            let err = from_bytes(&bytes).expect_err(name);
            // Any typed error is fine; reaching here proves no panic and
            // no attempt to allocate by the claimed (bogus) sizes.
            let _ = err.to_string();
        }
    }

    /// Flipping any single byte of the legacy header region must never
    /// produce an out-of-bounds access (detection is the artifact
    /// store's job; the legacy format only has to stay memory-safe).
    #[test]
    fn single_byte_mutations_never_panic() {
        let (_, sfa) = rg_sfa();
        let bytes = to_bytes(&sfa);
        for i in 0..bytes.len().min(64) {
            for bit in [0x01u8, 0x80] {
                let mut m = bytes.clone();
                m[i] ^= bit;
                let _ = from_bytes(&m); // must return, Ok or Err — not panic
            }
        }
    }

    /// A compressed mapping blob that is undecodable — or decodes to the
    /// wrong row length — must be a load-time [`IoError::Corrupt`], not
    /// a deferred `expect` abort on first use (`Sfa::mapping_of` trusts
    /// stored rows).
    #[test]
    fn corrupt_compressed_blob_is_rejected_at_load() {
        let dfa = sfa_workloads::rn(50);
        let sfa = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(2).compression(CompressionPolicy::FromStart))
            .build()
            .unwrap()
            .sfa;
        assert!(sfa.is_compressed());
        let good = to_bytes(&sfa);
        // Scribble over the tail of the compressed payload: the last
        // mapping blob becomes undecodable or wrong-length.
        let mut bad = good.clone();
        let n = bad.len();
        for byte in &mut bad[n - 8..] {
            *byte ^= 0xA5;
        }
        match from_bytes(&bad) {
            Err(IoError::Corrupt(_)) | Err(IoError::Truncated) => {}
            Ok(_) => panic!("corrupted compressed payload decoded as Ok"),
            Err(other) => panic!("expected Corrupt/Truncated, got {other:?}"),
        }
        // The pristine bytes still load and validate.
        from_bytes(&good).unwrap().validate(&dfa).unwrap();
    }

    #[test]
    fn atomic_write_leaves_no_tmp_behind() {
        let (_, sfa) = rg_sfa();
        let dir = std::env::temp_dir().join("sfa_io_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.sfa");
        write_file(&sfa, &path).unwrap();
        assert!(path.exists());
        assert!(!dir.join("out.sfa.tmp").exists());
        // Overwrite in place: the old file is replaced whole.
        write_file(&sfa, &path).unwrap();
        read_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serialized_sfa_matches_like_the_original() {
        let (dfa, sfa) = rg_sfa();
        let back = from_bytes(&to_bytes(&sfa)).unwrap();
        let text = sfa_workloads::protein_text(10_000, 3);
        assert_eq!(
            crate::matcher::match_with_sfa(&sfa, &dfa, &text, 4),
            crate::matcher::match_with_sfa(&back, &dfa, &text, 4),
        );
    }
}
