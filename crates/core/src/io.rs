//! Binary serialization for constructed SFAs.
//!
//! Construction can take minutes for large automata while the SFA itself
//! is reusable across runs (and across machines — everything is stored
//! little-endian). The format keeps compressed mapping stores compressed,
//! so a Table-II-class SFA persists at its compressed size.
//!
//! ```text
//! magic   "SFA\x01"
//! u8      store kind: 0 = raw u16, 1 = raw u32, 2+codec = compressed
//! varint  n (DFA states), k (symbols), num_states, start
//! u32×(num_states·k)   δₛ, row-major, little-endian
//! payload raw: n·num_states elements LE
//!         compressed: per state varint(len) + blob
//! ```

use crate::sfa::{CodecChoice, MappingStore, Sfa};
use sfa_compress::varint;

/// Errors produced while decoding a serialized SFA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// Missing/incorrect magic bytes.
    BadMagic,
    /// Input ended prematurely.
    Truncated,
    /// Structurally invalid content.
    Corrupt(&'static str),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::BadMagic => write!(f, "not an SFA file (bad magic)"),
            IoError::Truncated => write!(f, "SFA file is truncated"),
            IoError::Corrupt(m) => write!(f, "SFA file is corrupt: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

const MAGIC: &[u8; 4] = b"SFA\x01";

const KIND_U16: u8 = 0;
const KIND_U32: u8 = 1;
const KIND_COMPRESSED_BASE: u8 = 2;

fn codec_tag(c: CodecChoice) -> u8 {
    match c {
        CodecChoice::Deflate => 0,
        CodecChoice::Lz77 => 1,
        CodecChoice::Rle => 2,
        CodecChoice::Store => 3,
        CodecChoice::Hybrid => 4,
    }
}

fn codec_from_tag(t: u8) -> Result<CodecChoice, IoError> {
    Ok(match t {
        0 => CodecChoice::Deflate,
        1 => CodecChoice::Lz77,
        2 => CodecChoice::Rle,
        3 => CodecChoice::Store,
        4 => CodecChoice::Hybrid,
        _ => return Err(IoError::Corrupt("unknown codec tag")),
    })
}

/// Serialize `sfa` into a byte vector.
pub fn to_bytes(sfa: &Sfa) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + sfa.mapping_bytes() + sfa.num_states() as usize * 4);
    out.extend_from_slice(MAGIC);
    let (kind, codec) = match sfa.mappings() {
        MappingStore::U16(_) => (KIND_U16, None),
        MappingStore::U32(_) => (KIND_U32, None),
        MappingStore::Compressed {
            elem_bytes, codec, ..
        } => (
            KIND_COMPRESSED_BASE + codec_tag(*codec) * 2 + u8::from(*elem_bytes == 4),
            Some(*codec),
        ),
    };
    let _ = codec;
    out.push(kind);
    varint::write_u64(&mut out, sfa.dfa_states() as u64);
    varint::write_u64(&mut out, sfa.num_symbols() as u64);
    varint::write_u64(&mut out, sfa.num_states() as u64);
    varint::write_u64(&mut out, sfa.start() as u64);
    for s in 0..sfa.num_states() {
        for sym in 0..sfa.num_symbols() {
            out.extend_from_slice(&sfa.step(s, sym as u8).to_le_bytes());
        }
    }
    match sfa.mappings() {
        MappingStore::U16(v) => {
            for &x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        MappingStore::U32(v) => {
            for &x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        MappingStore::Compressed { blobs, .. } => {
            for b in blobs {
                varint::write_u64(&mut out, b.len() as u64);
                out.extend_from_slice(b);
            }
        }
    }
    out
}

/// Deserialize an SFA from bytes produced by [`to_bytes`].
pub fn from_bytes(bytes: &[u8]) -> Result<Sfa, IoError> {
    if bytes.len() < 5 || &bytes[..4] != MAGIC {
        return Err(IoError::BadMagic);
    }
    let kind = bytes[4];
    let mut pos = 5usize;
    let rd = |pos: &mut usize| -> Result<u64, IoError> {
        varint::read_u64(bytes, pos).map_err(|_| IoError::Truncated)
    };
    let n = rd(&mut pos)? as usize;
    let k = rd(&mut pos)? as usize;
    let num_states = rd(&mut pos)? as usize;
    let start = rd(&mut pos)? as u32;
    if n == 0 || k == 0 || num_states == 0 {
        return Err(IoError::Corrupt("zero dimension"));
    }
    if start as usize >= num_states {
        return Err(IoError::Corrupt("start state out of range"));
    }
    let delta_bytes = num_states
        .checked_mul(k)
        .and_then(|x| x.checked_mul(4))
        .ok_or(IoError::Corrupt("dimension overflow"))?;
    let delta_raw = bytes
        .get(pos..pos + delta_bytes)
        .ok_or(IoError::Truncated)?;
    let delta: Vec<u32> = delta_raw
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    if let Some(&bad) = delta.iter().find(|&&s| s as usize >= num_states) {
        let _ = bad;
        return Err(IoError::Corrupt("transition out of range"));
    }
    pos += delta_bytes;

    let payload_len = |bytes_per: usize| {
        num_states
            .checked_mul(n)
            .and_then(|x| x.checked_mul(bytes_per))
            .ok_or(IoError::Corrupt("dimension overflow"))
    };
    let mappings = match kind {
        KIND_U16 => {
            let want = payload_len(2)?;
            let raw = bytes.get(pos..pos + want).ok_or(IoError::Truncated)?;
            MappingStore::U16(
                raw.chunks_exact(2)
                    .map(|c| u16::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            )
        }
        KIND_U32 => {
            let want = payload_len(4)?;
            let raw = bytes.get(pos..pos + want).ok_or(IoError::Truncated)?;
            MappingStore::U32(
                raw.chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            )
        }
        t if t >= KIND_COMPRESSED_BASE => {
            let rel = t - KIND_COMPRESSED_BASE;
            let codec = codec_from_tag(rel / 2)?;
            let elem_bytes = if rel % 2 == 1 { 4 } else { 2 };
            let mut blobs = Vec::with_capacity(num_states);
            for _ in 0..num_states {
                let len = rd(&mut pos)? as usize;
                let blob = bytes.get(pos..pos + len).ok_or(IoError::Truncated)?;
                blobs.push(blob.to_vec().into_boxed_slice());
                pos += len;
            }
            MappingStore::Compressed {
                elem_bytes,
                blobs,
                codec,
            }
        }
        _ => return Err(IoError::Corrupt("unknown store kind")),
    };
    Ok(Sfa::from_parts(n, k, start, delta, mappings))
}

/// Write `sfa` to a file.
pub fn write_file(sfa: &Sfa, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_bytes(sfa))
}

/// Read an SFA from a file.
pub fn read_file(path: &std::path::Path) -> std::io::Result<Sfa> {
    let bytes = std::fs::read(path)?;
    from_bytes(&bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{CompressionPolicy, ParallelOptions};
    use crate::sequential::SequentialVariant;
    use sfa_automata::pipeline::Pipeline;
    use sfa_automata::Alphabet;

    fn rg_sfa() -> (sfa_automata::Dfa, Sfa) {
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str("R[GA]N")
            .unwrap();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        (dfa, sfa)
    }

    #[test]
    fn raw_u16_round_trip() {
        let (dfa, sfa) = rg_sfa();
        let bytes = to_bytes(&sfa);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.num_states(), sfa.num_states());
        assert_eq!(back.start(), sfa.start());
        back.validate(&dfa).unwrap();
        for s in 0..sfa.num_states() {
            assert_eq!(back.mapping_of(s), sfa.mapping_of(s));
        }
    }

    #[test]
    fn compressed_round_trip_stays_compressed() {
        let dfa = sfa_workloads::rn(50);
        let sfa = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(2).compression(CompressionPolicy::FromStart))
            .build()
            .unwrap()
            .sfa;
        assert!(sfa.is_compressed());
        let bytes = to_bytes(&sfa);
        // Compressed payload dominates the file: far smaller than raw.
        assert!(bytes.len() < sfa.num_states() as usize * dfa.num_states() as usize * 2);
        let back = from_bytes(&bytes).unwrap();
        assert!(back.is_compressed());
        back.validate(&dfa).unwrap();
    }

    #[test]
    fn file_round_trip() {
        let (dfa, sfa) = rg_sfa();
        let dir = std::env::temp_dir().join("sfa_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.sfa");
        write_file(&sfa, &path).unwrap();
        let back = read_file(&path).unwrap();
        back.validate(&dfa).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert_eq!(from_bytes(b"not an sfa").unwrap_err(), IoError::BadMagic);
        let (_, sfa) = rg_sfa();
        let bytes = to_bytes(&sfa);
        for cut in [5usize, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Corrupt a delta entry to point out of range.
        let mut bad = bytes.clone();
        // delta starts right after header; find it: magic(4)+kind(1)+4 varints
        // (all small here, 1 byte each) = 9.
        bad[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(from_bytes(&bad), Err(IoError::Corrupt(_))));
    }

    #[test]
    fn serialized_sfa_matches_like_the_original() {
        let (dfa, sfa) = rg_sfa();
        let back = from_bytes(&to_bytes(&sfa)).unwrap();
        let text = sfa_workloads::protein_text(10_000, 3);
        assert_eq!(
            crate::matcher::match_with_sfa(&sfa, &dfa, &text, 4),
            crate::matcher::match_with_sfa(&back, &dfa, &text, 4),
        );
    }
}
