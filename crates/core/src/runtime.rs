//! The persistent match runtime: pooled, streaming, batched.
//!
//! [`MatchRuntime`] is the serving-side counterpart of the construction
//! engine. It owns (or shares) a [`TaskPool`] and drives three input
//! shapes through the SFA chunk-matching scheme of [`crate::matcher`]:
//!
//! * **Byte slices** ([`MatchRuntime::matches_bytes`]) — classification
//!   from raw bytes to dense [`SymbolId`]s is *fused* into the per-chunk
//!   SFA scan, so no intermediate `Vec<SymbolId>` is ever allocated.
//! * **Streams** ([`MatchRuntime::matches_stream`]) — any `impl Read`,
//!   consumed in fixed-size blocks ([`MatchRuntime::block_bytes`]).
//!   Each block is chunk-matched in parallel and folded into a running
//!   DFA state; memory stays at one block regardless of input size, so
//!   multi-GB inputs stream through without materializing anything.
//! * **Batches** ([`MatchRuntime::match_many`]) — many small inputs,
//!   one pool task each: the pool dispatch cost is amortized across the
//!   batch instead of splitting each tiny input into even tinier chunks.
//!
//! Every path polls a [`Governor`] at block/chunk granularity (deadline,
//! cancellation), contains worker panics as
//! [`SfaError::WorkerPanic`], and fills a [`MatchStats`] with what
//! happened — chunks scanned, bytes consumed, throughput, pool backlog.
//!
//! Streamed reads are wrapped in a bounded-backoff [`RetryPolicy`]:
//! transient errors (`Interrupted`, `WouldBlock`, `TimedOut`) are
//! retried up to [`RetryPolicy::max_attempts`] times with exponential
//! backoff before surfacing as [`SfaError::Io`], so a flaky pipe neither
//! kills a long match on the first hiccup nor hangs it forever. The
//! backoff sleep is injectable ([`MatchRuntime::with_sleeper`]) so tests
//! can assert the schedule without real delays.

use crate::budget::Governor;
use crate::engine::MatchTier;
use crate::matcher::{AbortControl, ParallelMatcher};
use crate::obs::{LazyCounter, LazyGauge, LazyHistogram, Stopwatch};
use crate::SfaError;
use sfa_automata::alphabet::{Alphabet, SymbolId};
use sfa_sync::pool::TaskPool;
use std::io::Read;
use std::sync::Arc;
use std::time::{Duration, Instant};

// Global-registry runtime metrics (see DESIGN.md §12). `Lazy*` handles
// are zero-sized no-ops unless the `obs` feature is enabled.
static OBS_BLOCK_NANOS: LazyHistogram = LazyHistogram::new("sfa_runtime_block_nanos");
static OBS_BLOCKS_TOTAL: LazyCounter = LazyCounter::new("sfa_runtime_blocks_total");
static OBS_BYTES_TOTAL: LazyCounter = LazyCounter::new("sfa_runtime_bytes_total");
static OBS_RETRIES_TOTAL: LazyCounter = LazyCounter::new("sfa_runtime_retries_total");
static OBS_QUEUE_DEPTH: LazyGauge = LazyGauge::new("sfa_runtime_queue_depth");

/// Default streaming block: 8 MiB. Large enough that each of ~10 worker
/// chunks still covers several hundred KiB (chunk scans stay scan-bound,
/// not dispatch-bound), small enough that peak memory and cancellation
/// latency stay modest. Override with [`MatchRuntime::with_block_bytes`].
pub const DEFAULT_BLOCK_BYTES: usize = 8 * 1024 * 1024;

/// What one byte of raw input means to the matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classified {
    /// A dense symbol in the alphabet.
    Symbol(SymbolId),
    /// Ignore this byte (e.g. whitespace in FASTA-ish text).
    Skip,
    /// Outside the alphabet and not skippable: the stream is malformed.
    Invalid,
}

const CLASS_INVALID: u16 = u16::MAX;
const CLASS_SKIP: u16 = u16::MAX - 1;

/// Bounded retry of transient streamed-read errors — see the module
/// docs. Attempt `i` (1-based) sleeps `base_backoff · 2^(i-1)`, capped
/// at `max_backoff`, before re-reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per read position (first try + retries). `1`
    /// means a single transient error already fails the match.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Backoff ceiling (the exponential doubling saturates here).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// 4 attempts, 5 ms base, 250 ms cap — rides out scheduler-induced
    /// `Interrupted`/`WouldBlock` blips while keeping the worst-case
    /// added latency per read under a second.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(250),
        }
    }
}

impl RetryPolicy {
    /// No retries: the first transient error fails the read.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Backoff before retry number `retry` (1-based).
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(20);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// `true` for [`std::io::ErrorKind`]s worth retrying: the OS or remote
/// end may succeed on the next call. Everything else is permanent.
fn is_transient(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

/// A byte→symbol classifier fused into streaming scans: one 256-entry
/// table lookup per input byte, no intermediate symbol buffer.
#[derive(Debug, Clone)]
pub struct ByteClassifier {
    table: [u16; 256],
}

impl ByteClassifier {
    /// Every byte must belong to `alpha`; anything else is
    /// [`Classified::Invalid`] and fails the match with
    /// [`SfaError::InvalidByte`].
    pub fn strict(alpha: &Alphabet) -> Self {
        let mut table = [CLASS_INVALID; 256];
        for (b, slot) in table.iter_mut().enumerate() {
            if let Some(sym) = alpha.encode(b as u8) {
                *slot = sym as u16;
            }
        }
        ByteClassifier { table }
    }

    /// Like [`Self::strict`], but ASCII whitespace (space, `\t`, `\n`,
    /// `\r`, `\x0b`, `\x0c`) is skipped — the natural mode for streaming
    /// line-wrapped text files.
    pub fn skipping_ascii_whitespace(alpha: &Alphabet) -> Self {
        let mut this = ByteClassifier::strict(alpha);
        for b in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
            if this.table[b as usize] == CLASS_INVALID {
                this.table[b as usize] = CLASS_SKIP;
            }
        }
        this
    }

    /// Classify one byte.
    #[inline]
    pub fn classify(&self, byte: u8) -> Classified {
        match self.table[byte as usize] {
            CLASS_INVALID => Classified::Invalid,
            CLASS_SKIP => Classified::Skip,
            sym => Classified::Symbol(sym as SymbolId),
        }
    }
}

/// Per-match telemetry, filled by every runtime path and threaded
/// through [`crate::engine::MatchEngine`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct MatchStats {
    /// Which degradation-ladder tier served the match.
    pub tier: MatchTier,
    /// Streaming blocks consumed (1 for slice/batch paths).
    pub blocks: u64,
    /// Parallel chunk scans dispatched to the pool.
    pub chunks: u64,
    /// Input bytes (or symbols, for pre-encoded slices) consumed.
    pub bytes: u64,
    /// Wall time of the match.
    pub elapsed: Duration,
    /// Pool backlog (queued + running tasks) sampled when the match
    /// finished — a load signal for servers sharing one pool.
    pub queue_depth: usize,
    /// Transient stream-read errors that were retried (see
    /// [`RetryPolicy`]); 0 on non-streaming paths.
    pub retries: u64,
    /// Speculative-tier seams where the predicted entry state was wrong
    /// (see [`crate::speculative`]); 0 on every other tier.
    pub mispredicts: u64,
    /// Speculative-tier chunk re-scans triggered by mispredicts (a
    /// convergence checkpoint may cut a re-scan short, but it still
    /// counts); 0 on every other tier.
    pub reruns: u64,
    /// True chunk-entry states recorded into the speculation predictor
    /// during this match; 0 on every other tier.
    pub state_visits: u64,
}

impl Default for MatchStats {
    fn default() -> Self {
        MatchStats {
            tier: MatchTier::Sequential,
            blocks: 0,
            chunks: 0,
            bytes: 0,
            elapsed: Duration::ZERO,
            queue_depth: 0,
            retries: 0,
            mispredicts: 0,
            reruns: 0,
            state_visits: 0,
        }
    }
}

/// Smallest elapsed time a match is credited with when computing
/// throughput. `Instant` on common platforms bottoms out around
/// microsecond-scale effective resolution; a match that finishes inside
/// one tick reports `elapsed == 0`, which used to turn into a fake
/// `0.0 bytes/sec` row in CLI output and bench records. Sub-tick matches
/// are clamped to this floor and flagged by [`MatchStats::untimed`].
pub const MIN_TIMED_ELAPSED: Duration = Duration::from_micros(1);

impl MatchStats {
    /// Input throughput. Never a fake zero: empty input reports `0.0`
    /// honestly, and sub-timer-resolution matches are clamped to
    /// [`MIN_TIMED_ELAPSED`] (check [`Self::untimed`] before trusting the
    /// figure).
    pub fn bytes_per_sec(&self) -> f64 {
        if self.bytes == 0 {
            return 0.0;
        }
        self.bytes as f64 / self.elapsed.max(MIN_TIMED_ELAPSED).as_secs_f64()
    }

    /// True when the match finished inside one timer tick, i.e.
    /// [`Self::bytes_per_sec`] used the clamped floor rather than a real
    /// measurement. Reports/exports should mark the value instead of
    /// recording it as a genuine observation.
    pub fn untimed(&self) -> bool {
        self.bytes > 0 && self.elapsed < MIN_TIMED_ELAPSED
    }
}

/// Backoff sleep implementation — swappable for tests.
type Sleeper = Arc<dyn Fn(Duration) + Send + Sync>;

/// The pooled, streaming match runtime — see the module docs.
#[derive(Clone)]
pub struct MatchRuntime {
    pool: Arc<TaskPool>,
    block_bytes: usize,
    retry: RetryPolicy,
    sleeper: Sleeper,
}

impl MatchRuntime {
    fn with_defaults(pool: Arc<TaskPool>) -> Self {
        MatchRuntime {
            pool,
            block_bytes: DEFAULT_BLOCK_BYTES,
            retry: RetryPolicy::default(),
            sleeper: Arc::new(std::thread::sleep),
        }
    }

    /// A runtime on the process-shared pool (one worker per CPU,
    /// constructed once for the whole process). This is the default
    /// everywhere; prefer it unless you need an isolated pool.
    pub fn shared() -> Self {
        Self::with_defaults(TaskPool::shared().clone())
    }

    /// A runtime with its own private pool of `threads` workers.
    pub fn new(threads: usize) -> Self {
        Self::with_defaults(Arc::new(TaskPool::new(threads)))
    }

    /// A runtime over an existing pool.
    pub fn with_pool(pool: Arc<TaskPool>) -> Self {
        Self::with_defaults(pool)
    }

    /// Set the streaming block size (min 1; see [`DEFAULT_BLOCK_BYTES`]
    /// for the trade-off). Tiny blocks are valid — tests use them to
    /// exercise block-boundary straddling.
    pub fn with_block_bytes(mut self, block_bytes: usize) -> Self {
        self.block_bytes = block_bytes.max(1);
        self
    }

    /// Set the transient-read [`RetryPolicy`] for streaming paths.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replace the backoff sleep (an injectable clock): tests pass a
    /// recording closure to assert the retry schedule without real
    /// delays. Production code never needs this.
    pub fn with_sleeper(mut self, sleeper: impl Fn(Duration) + Send + Sync + 'static) -> Self {
        self.sleeper = Arc::new(sleeper);
        self
    }

    /// The configured transient-read retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The streaming block size.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<TaskPool> {
        &self.pool
    }

    /// Worker count of the underlying pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Serve one [`MatchRequest`] on this runtime (always the full SFA
    /// tier — the degradation ladder lives in
    /// [`MatchEngine::run`](crate::MatchEngine::run)). The request's
    /// budget is enforced by a fresh [`Governor`]; use
    /// [`Self::run_cancelable`] to attach a cancel token as well.
    ///
    /// Dispatches on the input source: symbol slices chunk-match
    /// directly, byte inputs fuse classification into the chunk scans,
    /// and file inputs stream in [`Self::block_bytes`]-sized blocks.
    /// A [`TierPolicy::Sequential`](crate::TierPolicy::Sequential)
    /// request runs the plain DFA instead (the oracle mode).
    pub fn run(
        &self,
        matcher: &ParallelMatcher<'_>,
        request: &crate::MatchRequest,
    ) -> Result<crate::MatchOutcome, SfaError> {
        self.run_cancelable(matcher, request, None)
    }

    /// [`Self::run`] with a cancel token attached to the request budget
    /// — a server aborts in-flight queries with the handle it holds.
    pub fn run_cancelable(
        &self,
        matcher: &ParallelMatcher<'_>,
        request: &crate::MatchRequest,
        cancel: Option<sfa_sync::CancelToken>,
    ) -> Result<crate::MatchOutcome, SfaError> {
        use crate::request::{ClassifierMode, InputSource, TierPolicy};
        let governor = Governor::new(&request.budget, cancel);
        let classifier = || match request.classifier {
            ClassifierMode::Strict => ByteClassifier::strict(matcher.dfa.alphabet()),
            ClassifierMode::SkipWhitespace => {
                ByteClassifier::skipping_ascii_whitespace(matcher.dfa.alphabet())
            }
        };
        if request.tier == TierPolicy::Sequential {
            return self.run_sequential(matcher.dfa, request, &governor, &classifier());
        }
        if request.tier == TierPolicy::Speculative {
            return self.run_speculative(matcher.dfa, request, &governor, &classifier());
        }
        let (verdict, stats) = match &request.input {
            InputSource::Symbols(symbols) => self.matches_symbols(matcher, symbols, &governor)?,
            InputSource::Bytes(bytes) => {
                self.matches_bytes(matcher, &classifier(), bytes, &governor)?
            }
            InputSource::File(path) => {
                let file = std::fs::File::open(path)
                    .map_err(|e| SfaError::Io(format!("open {}: {e}", path.display())))?;
                self.matches_stream(matcher, &classifier(), file, &governor)?
            }
        };
        if request.trace {
            crate::obs::report_span(
                "match/request",
                stats.elapsed.as_nanos().min(u64::MAX as u128) as u64,
            );
        }
        Ok(crate::MatchOutcome::new(verdict, stats))
    }

    /// Serve a request with the raw DFA only — the public entry for
    /// callers that hold no SFA at all (e.g. a server pattern whose
    /// construction exceeded its budget). A
    /// [`TierPolicy::Speculative`](crate::TierPolicy::Speculative)
    /// request runs the chunk-parallel speculative tier
    /// ([`crate::speculative`]); everything else runs the sequential
    /// oracle. Same verdict as every other path by construction.
    pub fn run_dfa(
        &self,
        dfa: &sfa_automata::dfa::Dfa,
        request: &crate::MatchRequest,
        cancel: Option<sfa_sync::CancelToken>,
    ) -> Result<crate::MatchOutcome, SfaError> {
        use crate::request::{ClassifierMode, TierPolicy};
        let governor = Governor::new(&request.budget, cancel);
        let classifier = match request.classifier {
            ClassifierMode::Strict => ByteClassifier::strict(dfa.alphabet()),
            ClassifierMode::SkipWhitespace => {
                ByteClassifier::skipping_ascii_whitespace(dfa.alphabet())
            }
        };
        if request.tier == TierPolicy::Speculative {
            return self.run_speculative(dfa, request, &governor, &classifier);
        }
        self.run_sequential(dfa, request, &governor, &classifier)
    }

    /// Serve a request on the speculative tier: chunk-parallel over the
    /// raw DFA with predicted entry states and seam verification (or the
    /// exact pruned-enumerative mode when the feasible entry sets are
    /// narrow — see [`crate::speculative`]). Byte and file inputs are
    /// classified up front into a symbol buffer; fused classification is
    /// a full-SFA-tier luxury the speculative scan does not have.
    pub(crate) fn run_speculative(
        &self,
        dfa: &sfa_automata::dfa::Dfa,
        request: &crate::MatchRequest,
        governor: &Governor,
        classifier: &ByteClassifier,
    ) -> Result<crate::MatchOutcome, SfaError> {
        use crate::request::InputSource;
        let start = Instant::now();
        governor.check(0, 0)?;
        let matcher = crate::speculative::SpeculativeMatcher::new(dfa)?;
        let (verdict, mut stats) = match &request.input {
            InputSource::Symbols(symbols) => self.speculative_symbols(&matcher, symbols, governor),
            InputSource::Bytes(bytes) => {
                let symbols = encode_classified(classifier, bytes, governor)?;
                self.speculative_symbols(&matcher, &symbols, governor)
                    .map(|(v, mut s)| {
                        s.bytes = bytes.len() as u64;
                        (v, s)
                    })
            }
            InputSource::File(path) => {
                let bytes = std::fs::read(path)
                    .map_err(|e| SfaError::Io(format!("read {}: {e}", path.display())))?;
                let symbols = encode_classified(classifier, &bytes, governor)?;
                self.speculative_symbols(&matcher, &symbols, governor)
                    .map(|(v, mut s)| {
                        s.bytes = bytes.len() as u64;
                        (v, s)
                    })
            }
        }?;
        stats.elapsed = start.elapsed();
        if request.trace {
            crate::obs::report_span(
                "match/request",
                stats.elapsed.as_nanos().min(u64::MAX as u128) as u64,
            );
        }
        Ok(crate::MatchOutcome::new(verdict, stats))
    }

    /// One speculative pass over pre-encoded symbols, with the
    /// [`SpecStats`](crate::speculative::SpecStats) folded into a
    /// [`MatchStats`]. The caller stamps `elapsed` (and `bytes`, when
    /// the input started as raw bytes).
    pub(crate) fn speculative_symbols(
        &self,
        matcher: &crate::speculative::SpeculativeMatcher<'_>,
        input: &[SymbolId],
        governor: &Governor,
    ) -> Result<(bool, MatchStats), SfaError> {
        let start = Instant::now();
        let threads = self.pool.threads();
        let (verdict, spec) = matcher.matches(&self.pool, governor, input, threads)?;
        let stats = MatchStats {
            tier: if spec.pruned {
                MatchTier::PrunedSfa
            } else {
                MatchTier::Speculative
            },
            blocks: 1,
            chunks: spec.chunks,
            bytes: input.len() as u64,
            elapsed: start.elapsed(),
            queue_depth: self.pool.queue_depth(),
            mispredicts: spec.mispredicts,
            reruns: spec.reruns,
            state_visits: spec.state_visits,
            ..MatchStats::default()
        };
        note_match(&stats);
        Ok((verdict, stats))
    }

    /// The sequential oracle behind
    /// [`TierPolicy::Sequential`](crate::TierPolicy::Sequential) requests
    /// (and the engine's degraded tier): one DFA pass, no pool, same
    /// verdict by construction.
    pub(crate) fn run_sequential(
        &self,
        dfa: &sfa_automata::dfa::Dfa,
        request: &crate::MatchRequest,
        governor: &Governor,
        classifier: &ByteClassifier,
    ) -> Result<crate::MatchOutcome, SfaError> {
        use crate::request::InputSource;
        let start = Instant::now();
        governor.check(0, 0)?;
        let mut stats = MatchStats {
            tier: MatchTier::Sequential,
            blocks: 1,
            chunks: 1,
            ..MatchStats::default()
        };
        let step_bytes = |bytes: &[u8], stats: &mut MatchStats| -> Result<u32, SfaError> {
            let mut q = dfa.start();
            for (offset, &b) in bytes.iter().enumerate() {
                match classifier.classify(b) {
                    Classified::Symbol(sym) => q = dfa.next(q, sym),
                    Classified::Skip => {}
                    Classified::Invalid => {
                        return Err(SfaError::InvalidByte {
                            byte: b,
                            offset: offset as u64,
                        })
                    }
                }
                if (offset + 1) % crate::matcher::GOVERNOR_POLL_SYMBOLS == 0 {
                    governor.check(0, 0)?;
                }
            }
            stats.bytes = bytes.len() as u64;
            Ok(q)
        };
        let q = match &request.input {
            InputSource::Symbols(symbols) => {
                stats.bytes = symbols.len() as u64;
                dfa.run(symbols)
            }
            InputSource::Bytes(bytes) => step_bytes(bytes, &mut stats)?,
            InputSource::File(path) => {
                let bytes = std::fs::read(path)
                    .map_err(|e| SfaError::Io(format!("read {}: {e}", path.display())))?;
                step_bytes(&bytes, &mut stats)?
            }
        };
        stats.elapsed = start.elapsed();
        note_match(&stats);
        Ok(crate::MatchOutcome::new(dfa.is_accepting(q), stats))
    }

    /// Accept decision for a pre-encoded symbol slice, matched in
    /// parallel chunks on the pool.
    pub fn matches_symbols(
        &self,
        matcher: &ParallelMatcher<'_>,
        input: &[SymbolId],
        governor: &Governor,
    ) -> Result<(bool, MatchStats), SfaError> {
        let start = Instant::now();
        let threads = self.pool.threads();
        let verdict = matcher.matches_governed(&self.pool, governor, input, threads)?;
        let stats = MatchStats {
            tier: MatchTier::FullSfa,
            blocks: 1,
            chunks: matcher.scan.chunk_count(input.len(), threads) as u64,
            bytes: input.len() as u64,
            elapsed: start.elapsed(),
            queue_depth: self.pool.queue_depth(),
            ..MatchStats::default()
        };
        note_match(&stats);
        Ok((verdict, stats))
    }

    /// Accept decision for raw bytes: classification is fused into the
    /// parallel chunk scans (no symbol buffer). Invalid bytes fail with
    /// [`SfaError::InvalidByte`] carrying the byte's offset.
    pub fn matches_bytes(
        &self,
        matcher: &ParallelMatcher<'_>,
        classifier: &ByteClassifier,
        input: &[u8],
        governor: &Governor,
    ) -> Result<(bool, MatchStats), SfaError> {
        let start = Instant::now();
        let mut stats = MatchStats {
            tier: MatchTier::FullSfa,
            blocks: 1,
            ..MatchStats::default()
        };
        let q = self.fold_block(
            matcher,
            classifier,
            input,
            0,
            matcher.dfa.start(),
            governor,
            &mut stats,
        )?;
        stats.bytes = input.len() as u64;
        stats.elapsed = start.elapsed();
        stats.queue_depth = self.pool.queue_depth();
        note_match(&stats);
        Ok((matcher.dfa.is_accepting(q), stats))
    }

    /// Accept decision for a stream, consumed in fixed-size blocks.
    /// Peak memory is one block; each block is chunk-matched in parallel
    /// and folded into a running DFA state, so the verdict is identical
    /// to reading the whole input at once.
    pub fn matches_stream<R: Read>(
        &self,
        matcher: &ParallelMatcher<'_>,
        classifier: &ByteClassifier,
        reader: R,
        governor: &Governor,
    ) -> Result<(bool, MatchStats), SfaError> {
        let (q, stats) = self.final_state_stream(matcher, classifier, reader, governor)?;
        Ok((matcher.dfa.is_accepting(q), stats))
    }

    /// Final DFA state for a stream (the streaming analogue of
    /// [`ParallelMatcher::final_state`]).
    pub fn final_state_stream<R: Read>(
        &self,
        matcher: &ParallelMatcher<'_>,
        classifier: &ByteClassifier,
        mut reader: R,
        governor: &Governor,
    ) -> Result<(u32, MatchStats), SfaError> {
        let start = Instant::now();
        let mut stats = MatchStats {
            tier: MatchTier::FullSfa,
            ..MatchStats::default()
        };
        let mut buf = vec![0u8; self.block_bytes];
        let mut q = matcher.dfa.start();
        let mut offset = 0u64;
        loop {
            let filled = self.read_block(&mut reader, &mut buf, &mut stats)?;
            if filled == 0 {
                break;
            }
            q = self.fold_block(
                matcher,
                classifier,
                &buf[..filled],
                offset,
                q,
                governor,
                &mut stats,
            )?;
            offset += filled as u64;
            stats.blocks += 1;
            if filled < buf.len() {
                break; // EOF
            }
        }
        stats.bytes = offset;
        stats.elapsed = start.elapsed();
        stats.queue_depth = self.pool.queue_depth();
        note_match(&stats);
        Ok((q, stats))
    }

    /// Batch matching: one pool task per input (whole-input SFA run),
    /// amortizing dispatch across the batch — many small inputs is the
    /// workload where per-input chunk splitting would be all overhead.
    /// Returns one verdict per input, in order.
    pub fn match_many(
        &self,
        matcher: &ParallelMatcher<'_>,
        inputs: &[&[SymbolId]],
        governor: &Governor,
    ) -> Result<Vec<bool>, SfaError> {
        governor.check(0, 0)?;
        let sfa = matcher.sfa;
        let dfa = matcher.dfa;
        let tbl = matcher.scan.sfa_table()?;
        let shift = tbl.shift();
        let mut verdicts = vec![false; inputs.len()];
        let ctl = AbortControl::new(governor);
        let scoped = {
            let ctl = &ctl;
            self.pool.scoped(|scope| {
                for (&input, slot) in inputs.iter().zip(verdicts.iter_mut()) {
                    scope.execute(move || {
                        // Whole-input single-chain scan on the compact
                        // pre-scaled table.
                        if let Some(scaled) = tbl.scan_lane(input, tbl.start_offset(), ctl) {
                            *slot = dfa.is_accepting(sfa.apply(scaled >> shift, dfa.start()));
                        }
                    });
                }
            })
        };
        ctl.finish(scoped)?;
        Ok(verdicts)
    }

    /// Chunk-match one block of raw bytes (fused classification) from
    /// running state `q`, returning the state after the block.
    #[allow(clippy::too_many_arguments)]
    fn fold_block(
        &self,
        matcher: &ParallelMatcher<'_>,
        classifier: &ByteClassifier,
        block: &[u8],
        block_offset: u64,
        q: u32,
        governor: &Governor,
        stats: &mut MatchStats,
    ) -> Result<u32, SfaError> {
        governor.check(0, 0)?;
        if block.is_empty() {
            return Ok(q);
        }
        let watch = Stopwatch::start();
        // Pass 1 with fused classification, K-way interleaved on the
        // compact table; pass 2 reduces the chunk mappings with the
        // composition tree and folds the running state through.
        let threads = self.pool.threads().max(1);
        let plan = matcher.scan.chunk_states_bytes(
            &self.pool,
            governor,
            classifier,
            block,
            block_offset,
            threads,
        )?;
        stats.chunks += plan.states.len() as u64;
        let (_, folded) = matcher
            .scan
            .entry_states(&self.pool, matcher.sfa, &plan.states, q)?;
        watch.record(&OBS_BLOCK_NANOS);
        Ok(folded)
    }
}

/// Classify raw bytes into a dense symbol buffer up front (the
/// speculative tier's input shape), polling the governor at the usual
/// granularity. Invalid bytes fail with their offset, exactly like the
/// fused paths.
fn encode_classified(
    classifier: &ByteClassifier,
    bytes: &[u8],
    governor: &Governor,
) -> Result<Vec<SymbolId>, SfaError> {
    let mut symbols = Vec::with_capacity(bytes.len());
    for (offset, &b) in bytes.iter().enumerate() {
        match classifier.classify(b) {
            Classified::Symbol(sym) => symbols.push(sym),
            Classified::Skip => {}
            Classified::Invalid => {
                return Err(SfaError::InvalidByte {
                    byte: b,
                    offset: offset as u64,
                })
            }
        }
        if (offset + 1) % crate::matcher::GOVERNOR_POLL_SYMBOLS == 0 {
            governor.check(0, 0)?;
        }
    }
    Ok(symbols)
}

/// Push one finished match's telemetry into the global metrics registry
/// (no-ops unless the `obs` feature is on and recording is enabled).
fn note_match(stats: &MatchStats) {
    OBS_BLOCKS_TOTAL.add(stats.blocks);
    OBS_BYTES_TOTAL.add(stats.bytes);
    OBS_RETRIES_TOTAL.add(stats.retries);
    OBS_QUEUE_DEPTH.set(stats.queue_depth as i64);
}

impl Default for MatchRuntime {
    fn default() -> Self {
        MatchRuntime::shared()
    }
}

impl MatchRuntime {
    /// Fill `buf` as far as the reader allows; returns bytes read (0 at
    /// EOF). Transient errors are retried per the [`RetryPolicy`]
    /// (counted in `stats.retries`); permanent errors and exhausted
    /// retries become [`SfaError::Io`].
    pub(crate) fn read_block<R: Read>(
        &self,
        reader: &mut R,
        buf: &mut [u8],
        stats: &mut MatchStats,
    ) -> Result<usize, SfaError> {
        let mut filled = 0;
        // Consecutive transient failures at the current read position;
        // resets on any successful read.
        let mut transient = 0u32;
        while filled < buf.len() {
            let read = match sfa_sync::fault_point!("runtime/read_block") {
                Ok(()) => reader.read(&mut buf[filled..]),
                Err(fault) => Err(std::io::Error::from(fault)),
            };
            match read {
                Ok(0) => break,
                Ok(n) => {
                    filled += n;
                    transient = 0;
                }
                Err(e) if is_transient(e.kind()) => {
                    transient += 1;
                    if transient >= self.retry.max_attempts {
                        return Err(SfaError::Io(format!(
                            "stream read failed after {transient} transient errors: {e}"
                        )));
                    }
                    stats.retries += 1;
                    (self.sleeper)(self.retry.backoff(transient));
                }
                Err(e) => return Err(SfaError::Io(e.to_string())),
            }
        }
        Ok(filled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::match_sequential;
    use crate::sequential::SequentialVariant;
    use crate::sfa::Sfa;
    use sfa_automata::pipeline::Pipeline;
    use std::io::Cursor;

    fn setup(pattern: &str) -> (sfa_automata::dfa::Dfa, Sfa) {
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str(pattern)
            .unwrap();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        (dfa, sfa)
    }

    #[test]
    fn stream_agrees_with_sequential_across_block_sizes() {
        let (dfa, sfa) = setup("RGD");
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        let alpha = Alphabet::amino_acids();
        let classifier = ByteClassifier::strict(&alpha);
        let text = sfa_workloads::protein_text_with_motif(10_000, 5, b"RGD", &[7_001]);
        let bytes = alpha.decode_symbols(&text);
        let expected = match_sequential(&dfa, &text);
        assert!(expected);
        for block in [1usize, 7, 64, 4096, 1 << 20] {
            let rt = MatchRuntime::new(3).with_block_bytes(block);
            let (verdict, stats) = rt
                .matches_stream(
                    &matcher,
                    &classifier,
                    Cursor::new(&bytes),
                    &Governor::unlimited(),
                )
                .unwrap();
            assert_eq!(verdict, expected, "block {block}");
            assert_eq!(stats.bytes, bytes.len() as u64);
            assert!(stats.blocks >= 1);
        }
    }

    #[test]
    fn bytes_path_fuses_classification() {
        let (dfa, sfa) = setup("RG");
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        let alpha = Alphabet::amino_acids();
        let rt = MatchRuntime::new(2);
        let strict = ByteClassifier::strict(&alpha);
        let (verdict, stats) = rt
            .matches_bytes(&matcher, &strict, b"MKVARGAA", &Governor::unlimited())
            .unwrap();
        assert!(verdict);
        assert_eq!(stats.bytes, 8);
        assert_eq!(stats.tier, MatchTier::FullSfa);
    }

    #[test]
    fn whitespace_skipping_and_invalid_bytes() {
        let (dfa, sfa) = setup("RG");
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        let alpha = Alphabet::amino_acids();
        let rt = MatchRuntime::new(2);
        let skipping = ByteClassifier::skipping_ascii_whitespace(&alpha);
        let (verdict, _) = rt
            .matches_bytes(&matcher, &skipping, b"MKV AR\nG AA", &Governor::unlimited())
            .unwrap();
        assert!(verdict, "whitespace must not break the motif");
        let strict = ByteClassifier::strict(&alpha);
        let err = rt
            .matches_bytes(&matcher, &strict, b"MKV ARG", &Governor::unlimited())
            .unwrap_err();
        assert!(
            matches!(
                err,
                SfaError::InvalidByte {
                    byte: b' ',
                    offset: 3
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn match_many_agrees_with_sequential() {
        let (dfa, sfa) = setup("R[GA]D");
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        let rt = MatchRuntime::new(3);
        let inputs: Vec<Vec<u8>> = (0..40)
            .map(|s| sfa_workloads::protein_text(200, s))
            .collect();
        let slices: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let verdicts = rt
            .match_many(&matcher, &slices, &Governor::unlimited())
            .unwrap();
        for (input, verdict) in inputs.iter().zip(&verdicts) {
            assert_eq!(*verdict, match_sequential(&dfa, input));
        }
    }

    /// A reader that fails with `kind` a fixed number of times before
    /// each successful read of the underlying data.
    struct FlakyReader<'a> {
        inner: Cursor<&'a [u8]>,
        kind: std::io::ErrorKind,
        failures_left: usize,
    }

    impl Read for FlakyReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.failures_left > 0 {
                self.failures_left -= 1;
                return Err(std::io::Error::from(self.kind));
            }
            self.inner.read(buf)
        }
    }

    #[test]
    fn transient_read_errors_are_retried_with_backoff() {
        let (dfa, sfa) = setup("RG");
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        let alpha = Alphabet::amino_acids();
        let classifier = ByteClassifier::strict(&alpha);
        let slept: Arc<std::sync::Mutex<Vec<Duration>>> = Arc::default();
        let log = Arc::clone(&slept);
        let rt = MatchRuntime::new(2)
            .with_retry_policy(RetryPolicy {
                max_attempts: 4,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(15),
            })
            .with_sleeper(move |d| log.lock().unwrap().push(d));
        let reader = FlakyReader {
            inner: Cursor::new(&b"MKVARGAA"[..]),
            kind: std::io::ErrorKind::WouldBlock,
            failures_left: 3,
        };
        let (verdict, stats) = rt
            .matches_stream(&matcher, &classifier, reader, &Governor::unlimited())
            .unwrap();
        assert!(verdict);
        assert_eq!(stats.retries, 3);
        // Exponential schedule, capped: 10ms, 20ms→15ms, 40ms→15ms.
        assert_eq!(
            *slept.lock().unwrap(),
            vec![
                Duration::from_millis(10),
                Duration::from_millis(15),
                Duration::from_millis(15)
            ]
        );
    }

    #[test]
    fn exhausted_retries_surface_a_typed_io_error() {
        let (dfa, sfa) = setup("RG");
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        let alpha = Alphabet::amino_acids();
        let classifier = ByteClassifier::strict(&alpha);
        let rt = MatchRuntime::new(2)
            .with_retry_policy(RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
            })
            .with_sleeper(|_| {});
        let reader = FlakyReader {
            inner: Cursor::new(&b"MKVARGAA"[..]),
            kind: std::io::ErrorKind::TimedOut,
            failures_left: usize::MAX,
        };
        let err = rt
            .matches_stream(&matcher, &classifier, reader, &Governor::unlimited())
            .unwrap_err();
        assert!(
            matches!(&err, SfaError::Io(msg) if msg.contains("after 2 transient errors")),
            "{err:?}"
        );
    }

    #[test]
    fn permanent_read_errors_are_not_retried() {
        let (dfa, sfa) = setup("RG");
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        let alpha = Alphabet::amino_acids();
        let classifier = ByteClassifier::strict(&alpha);
        let slept: Arc<std::sync::Mutex<Vec<Duration>>> = Arc::default();
        let log = Arc::clone(&slept);
        let rt = MatchRuntime::new(2).with_sleeper(move |d| log.lock().unwrap().push(d));
        let reader = FlakyReader {
            inner: Cursor::new(&b"MKVARGAA"[..]),
            kind: std::io::ErrorKind::PermissionDenied,
            failures_left: 1,
        };
        let err = rt
            .matches_stream(&matcher, &classifier, reader, &Governor::unlimited())
            .unwrap_err();
        assert!(matches!(err, SfaError::Io(_)), "{err:?}");
        assert!(
            slept.lock().unwrap().is_empty(),
            "no backoff for permanent errors"
        );
    }

    #[test]
    fn retry_policy_backoff_schedule() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(32),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(5));
        assert_eq!(p.backoff(2), Duration::from_millis(10));
        assert_eq!(p.backoff(3), Duration::from_millis(20));
        assert_eq!(p.backoff(4), Duration::from_millis(32));
        assert_eq!(p.backoff(63), Duration::from_millis(32), "shift saturates");
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn cancelled_stream_returns_cancelled() {
        let (dfa, sfa) = setup("RG");
        let matcher = ParallelMatcher::new(&sfa, &dfa).unwrap();
        let alpha = Alphabet::amino_acids();
        let classifier = ByteClassifier::strict(&alpha);
        let token = sfa_sync::CancelToken::new();
        token.cancel();
        let governor = Governor::new(&crate::budget::Budget::unlimited(), Some(token));
        let rt = MatchRuntime::new(2);
        let bytes = alpha.decode_symbols(&sfa_workloads::protein_text(10_000, 1));
        let err = rt
            .matches_stream(&matcher, &classifier, Cursor::new(&bytes), &governor)
            .unwrap_err();
        assert!(matches!(err, SfaError::Cancelled { .. }), "{err:?}");
    }

    /// Regression: a match that finished inside one timer tick
    /// (`elapsed == 0`) used to report `bytes_per_sec() == 0.0`, which
    /// the CLI printed as a fake "0.00 MiB/s" and bench records stored
    /// as genuine zero-throughput rows.
    #[test]
    fn sub_tick_matches_never_report_zero_throughput() {
        let stats = MatchStats {
            bytes: 4096,
            elapsed: Duration::ZERO,
            ..MatchStats::default()
        };
        assert!(stats.untimed());
        let tp = stats.bytes_per_sec();
        assert!(tp > 0.0, "clamped throughput must be positive, got {tp}");
        assert!(tp.is_finite());
        // Clamp floor: 4096 bytes over MIN_TIMED_ELAPSED exactly.
        let floor = 4096.0 / MIN_TIMED_ELAPSED.as_secs_f64();
        assert!((tp - floor).abs() < 1e-3);

        // Below-resolution but non-zero elapsed is also clamped.
        let nanos = MatchStats {
            bytes: 100,
            elapsed: Duration::from_nanos(3),
            ..MatchStats::default()
        };
        assert!(nanos.untimed());
        assert!(nanos.bytes_per_sec() > 0.0);

        // Empty input is an honest zero, not an untimed artifact.
        let empty = MatchStats::default();
        assert!(!empty.untimed());
        assert_eq!(empty.bytes_per_sec(), 0.0);

        // A properly timed match is untouched by the clamp.
        let timed = MatchStats {
            bytes: 1_000_000,
            elapsed: Duration::from_millis(10),
            ..MatchStats::default()
        };
        assert!(!timed.untimed());
        assert!((timed.bytes_per_sec() - 1e8).abs() < 1.0);
    }
}
