//! Concurrent SFA state repository.
//!
//! Each SFA state is one [`StateRecord`]: the 64-bit fingerprint, the hash
//! chain link (making the store a [`Links`] provider for the lock-free
//! table), the `|Σ|` successor slots, and the mapping bytes — either raw
//! or compressed, swapped in place by the compression phase (§III-C).
//! Records live in a lock-free [`Arena`] and are addressed by dense `u32`
//! ids; one id is one work item in the construction queues.

use crate::store::SpillRef;
use sfa_sync::{Arena, Links, NIL};
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};
use std::sync::Mutex;

/// Mapping payload of one SFA state.
#[derive(Debug)]
pub struct MappingBuf {
    /// True once the data holds codec output instead of raw id bytes.
    pub compressed: bool,
    /// Raw little-endian id bytes, or codec output. Empty when the
    /// payload lives in the spill tier (`spill` is `Some`).
    pub data: Box<[u8]>,
    /// Where the payload went when it was demoted to disk
    /// (`crate::store::SpillStore`); `None` for resident payloads.
    pub spill: Option<SpillRef>,
}

impl MappingBuf {
    /// A resident payload.
    pub fn resident(compressed: bool, data: Box<[u8]>) -> MappingBuf {
        MappingBuf {
            compressed,
            data,
            spill: None,
        }
    }

    /// A spill marker: the payload's bytes live at `r` in the spill
    /// store (always compressed — only the compressed tier demotes).
    pub fn spilled(r: SpillRef) -> MappingBuf {
        MappingBuf {
            compressed: true,
            data: Box::new([]),
            spill: Some(r),
        }
    }
}

/// One SFA state record; see module docs.
pub struct StateRecord {
    fingerprint: u64,
    next: AtomicU32,
    mapping: AtomicPtr<MappingBuf>,
    succ: Box<[AtomicU32]>,
}

/// A retired `MappingBuf` pointer: swapped out by a lock-free promotion
/// while concurrent readers may still hold the old `&MappingBuf`, so it
/// is freed only when the whole store drops.
struct RetiredBuf(*mut MappingBuf);
// SAFETY: the pointee is never accessed through this handle until Drop,
// at which point the store owns it exclusively.
unsafe impl Send for RetiredBuf {}

impl StateRecord {
    fn new(fingerprint: u64, mapping: MappingBuf, k: usize) -> Self {
        StateRecord {
            fingerprint,
            next: AtomicU32::new(NIL),
            mapping: AtomicPtr::new(Box::into_raw(Box::new(mapping))),
            succ: (0..k).map(|_| AtomicU32::new(NIL)).collect(),
        }
    }
}

impl Drop for StateRecord {
    fn drop(&mut self) {
        let ptr = *self.mapping.get_mut();
        if !ptr.is_null() {
            // SAFETY: the record owns its mapping buffer; `replace_mapping`
            // freed any predecessor, so this pointer is freed exactly once.
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }
}

/// Lock-free repository of SFA state records.
pub struct StateStore {
    arena: Arena<StateRecord>,
    k: usize,
    raw_bytes_per_state: usize,
    /// Buffers replaced by [`try_promote`](Self::try_promote) outside a
    /// quiescence window; freed when the store drops (see [`RetiredBuf`]).
    retired: Mutex<Vec<RetiredBuf>>,
}

impl StateStore {
    /// Store for at most `capacity` states of `n` `elem_bytes`-wide ids
    /// over a `k`-symbol alphabet.
    pub fn new(capacity: usize, n: usize, elem_bytes: usize, k: usize) -> Self {
        StateStore {
            arena: Arena::new(capacity, 4096),
            k,
            raw_bytes_per_state: n * elem_bytes,
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Number of allocated states.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True when no state has been allocated.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Symbols per state (successor slots).
    pub fn num_symbols(&self) -> usize {
        self.k
    }

    /// Raw (uncompressed) mapping size in bytes.
    pub fn raw_bytes_per_state(&self) -> usize {
        self.raw_bytes_per_state
    }

    /// Allocate a record; `None` when the capacity is exhausted.
    pub fn alloc(&self, fingerprint: u64, data: Box<[u8]>, compressed: bool) -> Option<u32> {
        let record = StateRecord::new(fingerprint, MappingBuf::resident(compressed, data), self.k);
        self.arena.push(record).ok()
    }

    /// The record for `id`.
    #[inline]
    pub fn record(&self, id: u32) -> &StateRecord {
        self.arena.index(id)
    }

    /// Fingerprint of state `id`.
    #[inline]
    pub fn fingerprint(&self, id: u32) -> u64 {
        self.record(id).fingerprint
    }

    /// Borrow the mapping buffer of state `id`.
    ///
    /// The returned reference is valid until `replace_mapping` is called
    /// for the same id; the compression phase guarantees (via its barrier
    /// protocol) that no reader holds a buffer across that swap.
    #[inline]
    pub fn mapping(&self, id: u32) -> &MappingBuf {
        let ptr = self.record(id).mapping.load(Ordering::Acquire);
        debug_assert!(!ptr.is_null());
        // SAFETY: the pointer is non-null (set at construction) and only
        // invalidated by `replace_mapping`, whose caller guarantees
        // quiescence (compression-phase barriers).
        unsafe { &*ptr }
    }

    /// Replace the mapping of `id`, freeing the previous buffer.
    ///
    /// # Concurrency contract
    /// Caller must guarantee no concurrent reader of `mapping(id)` — the
    /// engine only calls this between the compression-phase barriers,
    /// partitioned so exactly one worker touches each id.
    pub fn replace_mapping(&self, id: u32, buf: MappingBuf) {
        let new_ptr = Box::into_raw(Box::new(buf));
        let old = self.record(id).mapping.swap(new_ptr, Ordering::AcqRel);
        if !old.is_null() {
            // SAFETY: per the contract above nobody holds `old`; it was
            // Box::into_raw'd exactly once.
            unsafe { drop(Box::from_raw(old)) };
        }
    }

    /// Lock-free promotion: install `buf` over the *spill marker* of
    /// `id`, outside any quiescence window. Returns `false` (dropping
    /// `buf`) when the current mapping is not a marker — either the
    /// payload is already resident or a racing promoter won. The
    /// replaced marker is retired, not freed, because concurrent readers
    /// may still hold a `&MappingBuf` to it (see [`RetiredBuf`]).
    pub fn try_promote(&self, id: u32, buf: MappingBuf) -> bool {
        let record = self.record(id);
        let current = record.mapping.load(Ordering::Acquire);
        debug_assert!(!current.is_null());
        // SAFETY: mapping pointers are non-null and only retired (never
        // freed) while the store is alive — see `mapping`.
        if unsafe { &*current }.spill.is_none() {
            return false;
        }
        let new_ptr = Box::into_raw(Box::new(buf));
        match record
            .mapping
            .compare_exchange(current, new_ptr, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(old) => {
                self.retired.lock().unwrap().push(RetiredBuf(old));
                true
            }
            Err(_) => {
                // A racing promoter won; our buffer was never published.
                // SAFETY: new_ptr came from Box::into_raw above.
                unsafe { drop(Box::from_raw(new_ptr)) };
                false
            }
        }
    }

    /// Successor of state `id` on `sym`, or [`NIL`] if not yet computed.
    #[inline]
    pub fn succ(&self, id: u32, sym: usize) -> u32 {
        self.record(id).succ[sym].load(Ordering::Acquire)
    }

    /// Set the successor of `id` on `sym`.
    #[inline]
    pub fn set_succ(&self, id: u32, sym: usize, to: u32) {
        self.record(id).succ[sym].store(to, Ordering::Release);
    }

    /// Compare state `id`'s stored mapping against `data` (same
    /// representation: raw vs raw, or compressed vs compressed). Uses the
    /// SIMD byte comparison — the "exhaustive" compare of §III-A.
    #[inline]
    pub fn mapping_equals(&self, id: u32, data: &[u8]) -> bool {
        sfa_simd::bytes_equal(&self.mapping(id).data, data)
    }
}

impl Drop for StateStore {
    fn drop(&mut self) {
        for RetiredBuf(ptr) in self.retired.get_mut().unwrap().drain(..) {
            // SAFETY: retired pointers were Box::into_raw'd exactly once
            // and removed from their records by the promotion CAS; no
            // reader outlives the store.
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }
}

impl Links for StateStore {
    #[inline]
    fn link(&self, id: u32) -> &AtomicU32 {
        &self.record(id).next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> StateStore {
        StateStore::new(100, 4, 2, 3)
    }

    #[test]
    fn alloc_and_read_back() {
        let s = store();
        let id = s
            .alloc(
                0xABCD,
                vec![1, 0, 2, 0, 3, 0, 4, 0].into_boxed_slice(),
                false,
            )
            .unwrap();
        assert_eq!(id, 0);
        assert_eq!(s.fingerprint(id), 0xABCD);
        assert!(!s.mapping(id).compressed);
        assert_eq!(&*s.mapping(id).data, &[1, 0, 2, 0, 3, 0, 4, 0]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn successors_default_nil_and_update() {
        let s = store();
        let id = s.alloc(1, vec![0; 8].into_boxed_slice(), false).unwrap();
        for sym in 0..3 {
            assert_eq!(s.succ(id, sym), NIL);
        }
        s.set_succ(id, 1, 42);
        assert_eq!(s.succ(id, 1), 42);
        assert_eq!(s.succ(id, 0), NIL);
    }

    #[test]
    fn mapping_equality() {
        let s = store();
        let id = s
            .alloc(7, vec![9, 9, 9, 9, 9, 9, 9, 9].into_boxed_slice(), false)
            .unwrap();
        assert!(s.mapping_equals(id, &[9; 8]));
        assert!(!s.mapping_equals(id, &[9, 9, 9, 9, 9, 9, 9, 8]));
        assert!(!s.mapping_equals(id, &[9; 7]));
    }

    #[test]
    fn replace_mapping_swaps_payload() {
        let s = store();
        let id = s.alloc(7, vec![1; 8].into_boxed_slice(), false).unwrap();
        s.replace_mapping(
            id,
            MappingBuf::resident(true, vec![0xFE, 0xED].into_boxed_slice()),
        );
        assert!(s.mapping(id).compressed);
        assert_eq!(&*s.mapping(id).data, &[0xFE, 0xED]);
    }

    #[test]
    fn promotion_only_replaces_spill_markers() {
        let s = store();
        let id = s.alloc(7, vec![1; 8].into_boxed_slice(), false).unwrap();
        // Resident payload: promotion must refuse.
        assert!(!s.try_promote(
            id,
            MappingBuf::resident(true, vec![2; 2].into_boxed_slice())
        ));
        assert_eq!(&*s.mapping(id).data, &[1; 8]);
        // Demote to a marker (quiescent replace), then promote back.
        let r = crate::store::SpillRef {
            seg: 0,
            off: 0,
            len: 8,
        };
        s.replace_mapping(id, MappingBuf::spilled(r));
        assert_eq!(s.mapping(id).spill, Some(r));
        // A reader holding the marker across the promotion stays valid.
        let marker = s.mapping(id);
        assert!(s.try_promote(
            id,
            MappingBuf::resident(true, vec![3; 4].into_boxed_slice())
        ));
        assert_eq!(marker.spill, Some(r), "retired marker still readable");
        assert_eq!(&*s.mapping(id).data, &[3; 4]);
        assert!(s.mapping(id).spill.is_none());
        // Second promotion attempt loses (no longer a marker).
        assert!(!s.try_promote(
            id,
            MappingBuf::resident(true, vec![4; 4].into_boxed_slice())
        ));
    }

    #[test]
    fn capacity_exhaustion() {
        let s = StateStore::new(2, 1, 2, 1);
        s.alloc(0, vec![0; 2].into_boxed_slice(), false).unwrap();
        s.alloc(1, vec![0; 2].into_boxed_slice(), false).unwrap();
        assert!(s.alloc(2, vec![0; 2].into_boxed_slice(), false).is_none());
    }

    #[test]
    fn links_trait_exposes_chain_slots() {
        let s = store();
        let a = s.alloc(1, vec![0; 8].into_boxed_slice(), false).unwrap();
        let b = s.alloc(2, vec![1; 8].into_boxed_slice(), false).unwrap();
        s.link(a).store(b, Ordering::Relaxed);
        assert_eq!(s.link(a).load(Ordering::Relaxed), b);
        assert_eq!(s.link(b).load(Ordering::Relaxed), NIL);
    }
}
