//! Speculative parallel DFA matching with feasible-entry-set pruning —
//! data-parallel membership tests **without** SFA construction.
//!
//! The SFA removes the entry-state data dependency by precomputing the
//! chunk behaviour for *every* entry state, at an O(nⁿ) construction
//! cost. When that construction is infeasible, two weaker forms of the
//! same idea still parallelize matching over the raw DFA:
//!
//! * **Feasible-entry pruning** (PaREM, Memeti & Pllana,
//!   arXiv:1412.1741): the true entry state of a chunk is
//!   `δ*(q, window)` for *some* state `q` and the trailing symbols
//!   `window` before the boundary — so folding the full state set
//!   through a short trailing window yields a sound overapproximation
//!   `F` of the possible entry states. DFAs built from search patterns
//!   funnel hard: `|F|` is usually tiny. When every boundary's set is
//!   narrow the matcher runs each chunk from **every** feasible entry —
//!   a sparse partial mapping, i.e. an SFA mapping vector pruned from
//!   `n` rows down to `|F|` — and folds the exact entries sequentially.
//!   This is the exact **pruned** tier ([`MatchTier::PrunedSfa`]).
//!
//! * **Speculation** (Ko, Jeon & Han, arXiv:1210.5093): when the
//!   feasible sets stay wide, each non-first chunk starts from a
//!   *predicted* hot entry state (the most-visited feasible state, per
//!   the [`StatePredictor`] visit counters learned from previous runs
//!   on the same automaton). A sequential seam-verification pass then
//!   threads the true state left-to-right: a correct prediction adopts
//!   the speculative exit for free; a mispredicted chunk is re-run from
//!   the now-known true entry, stopping early as soon as the re-run
//!   converges onto the speculative run's checkpoint trail (same state
//!   at the same position ⇒ identical suffix). The worst case — every
//!   prediction wrong, no convergence — degenerates to one sequential
//!   pass plus the wasted speculative work, and still answers exactly.
//!
//! Both modes are verdict-identical to [`match_sequential`]
//! (`crate::matcher::match_sequential`) by construction; the property
//! suite in `tests/integration_properties.rs` pins this against the
//! oracle, including a forced-100%-mispredict adversary.
//!
//! [`MatchTier::PrunedSfa`]: crate::MatchTier::PrunedSfa

use crate::budget::Governor;
use crate::matcher::{AbortControl, GOVERNOR_POLL_SYMBOLS};
use crate::scan::ScanOptions;
use crate::SfaError;
use sfa_automata::alphabet::SymbolId;
use sfa_automata::dfa::Dfa;
use sfa_sync::pool::TaskPool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Trailing symbols folded per boundary for the feasible-entry-set
/// analysis. Deep enough that pattern-search DFAs funnel to a handful
/// of states, shallow enough that the analysis is invisible next to
/// the scan itself (`LOOKBACK × chunks` transitions per state).
const LOOKBACK: usize = 32;

/// Widest feasible set the enumerative pruned mode will scan. Each
/// chunk costs `|F|` passes, spread across the pool — beyond this the
/// redundant work eats the parallel speedup and speculation wins.
const PRUNE_LIMIT: usize = 4;

/// Checkpoint granularity of the speculative trail (symbols). Re-runs
/// compare against the trail at these positions and stop at the first
/// hit, so a mispredict costs on average far less than a full chunk.
const CHECKPOINT_SYMBOLS: usize = 4096;

/// Above this many DFA states the feasible-set fold (O(n) per folded
/// symbol per boundary) stops paying for itself; prediction falls back
/// to the globally hottest state.
const FEASIBLE_MAX_STATES: usize = 1 << 15;

/// Process-global warm-start cache capacity (distinct automata).
const WARM_CACHE_CAP: usize = 32;

// ----------------------------------------------------------------------
// State sets (bitset over DFA states)
// ----------------------------------------------------------------------

/// Dense bitset over DFA state ids — the feasible-entry-set
/// representation. `n ≤ FEASIBLE_MAX_STATES`, so at most 4 KiB.
#[derive(Clone)]
struct StateSet {
    words: Vec<u64>,
}

impl StateSet {
    fn empty(n: usize) -> StateSet {
        StateSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    fn full(n: usize) -> StateSet {
        let mut set = StateSet::empty(n);
        for (i, w) in set.words.iter_mut().enumerate() {
            let remaining = n - i * 64;
            *w = if remaining >= 64 {
                u64::MAX
            } else {
                (1u64 << remaining) - 1
            };
        }
        set
    }

    fn insert(&mut self, q: u32) {
        self.words[q as usize / 64] |= 1u64 << (q as usize % 64);
    }

    #[cfg_attr(not(test), allow(dead_code))]
    fn contains(&self, q: u32) -> bool {
        (self.words[q as usize / 64] >> (q as usize % 64)) & 1 == 1
    }

    fn clear(&mut self) {
        self.words.fill(0);
    }

    fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Member states in increasing id order.
    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros();
                    w &= w - 1;
                    Some(wi as u32 * 64 + bit)
                }
            })
        })
    }
}

// ----------------------------------------------------------------------
// Entry-state predictor
// ----------------------------------------------------------------------

/// Per-state visit-frequency counters for one automaton: every seam
/// verification records the *true* entry state of each chunk, and
/// predictions pick the most-visited state inside the boundary's
/// feasible set. Counters are monotone and shared — concurrent matches
/// against the same automaton train one predictor — and live in a
/// process-global cache keyed by DFA fingerprint, so a fresh
/// [`SpeculativeMatcher`] warm-starts from every previous run on the
/// same automaton. Totals are exported through `sfa-obs` as
/// `sfa_match_state_visits_total`.
pub struct StatePredictor {
    visits: Box<[AtomicU64]>,
}

impl StatePredictor {
    /// A cold predictor for an automaton with `num_states` states.
    pub fn new(num_states: u32) -> StatePredictor {
        StatePredictor {
            visits: (0..num_states).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// States this predictor covers.
    pub fn num_states(&self) -> usize {
        self.visits.len()
    }

    /// Record one observed true entry state.
    pub fn record(&self, q: u32) {
        self.visits[q as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Observed visit count for `q`.
    pub fn visits(&self, q: u32) -> u64 {
        self.visits[q as usize].load(Ordering::Relaxed)
    }

    /// Total observations across all states.
    pub fn total_visits(&self) -> u64 {
        self.visits.iter().map(|v| v.load(Ordering::Relaxed)).sum()
    }

    /// Most-visited state within `set` (lowest id wins ties, so a cold
    /// predictor deterministically picks the smallest feasible state).
    fn hottest_in(&self, set: &StateSet) -> Option<u32> {
        set.iter()
            .map(|q| (self.visits(q), q))
            .fold(None, |best: Option<(u64, u32)>, (v, q)| match best {
                Some((bv, bq)) if bv >= v => Some((bv, bq)),
                _ => Some((v, q)),
            })
            .map(|(_, q)| q)
    }

    /// Most-visited state overall (lowest id wins ties).
    fn hottest(&self) -> Option<u32> {
        (0..self.visits.len() as u32)
            .map(|q| (self.visits(q), q))
            .fold(None, |best: Option<(u64, u32)>, (v, q)| match best {
                Some((bv, bq)) if bv >= v => Some((bv, bq)),
                _ => Some((v, q)),
            })
            .map(|(_, q)| q)
    }
}

/// The process-global warm-start cache: DFA fingerprint → predictor.
/// Bounded FIFO — speculation is a degraded mode, so a handful of hot
/// automata is the realistic working set.
static WARM_PREDICTORS: Mutex<Vec<(u64, Arc<StatePredictor>)>> = Mutex::new(Vec::new());

/// The shared (warm-started) predictor for `dfa`: the same automaton —
/// keyed by [`crate::artifact::dfa_fingerprint`] — always gets the same
/// counters, so later runs inherit everything earlier runs learned.
pub fn shared_predictor(dfa: &Dfa) -> Arc<StatePredictor> {
    let fp = crate::artifact::dfa_fingerprint(dfa);
    let mut cache = WARM_PREDICTORS
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some((_, predictor)) = cache
        .iter()
        .find(|(key, p)| *key == fp && p.num_states() == dfa.num_states() as usize)
    {
        return Arc::clone(predictor);
    }
    let predictor = Arc::new(StatePredictor::new(dfa.num_states()));
    if cache.len() >= WARM_CACHE_CAP {
        cache.remove(0);
    }
    cache.push((fp, Arc::clone(&predictor)));
    predictor
}

// ----------------------------------------------------------------------
// Stats
// ----------------------------------------------------------------------

/// Telemetry from one speculative (or pruned) pass — folded into
/// [`MatchStats`](crate::MatchStats) by the runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Chunks the input split into.
    pub chunks: u64,
    /// Seams where the predicted entry state was wrong.
    pub mispredicts: u64,
    /// Chunk re-scans (mispredicted chunks re-run from the true entry;
    /// convergence may cut a re-scan short, but it still counts).
    pub reruns: u64,
    /// True entry states recorded into the predictor this pass.
    pub state_visits: u64,
    /// `true` when the exact enumerative pruned mode answered (narrow
    /// feasible sets — no speculation, no mispredicts possible).
    pub pruned: bool,
}

// ----------------------------------------------------------------------
// The matcher
// ----------------------------------------------------------------------

/// Chunk-parallel DFA membership test over the raw DFA — no SFA
/// required, so it works exactly where SFA construction is infeasible.
/// Construct once per automaton and match many inputs; the predictor
/// is shared process-wide per automaton (see [`shared_predictor`]).
pub struct SpeculativeMatcher<'d> {
    dfa: &'d Dfa,
    predictor: Arc<StatePredictor>,
    opts: ScanOptions,
}

impl std::fmt::Debug for SpeculativeMatcher<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeculativeMatcher")
            .field("dfa_states", &self.dfa.num_states())
            .field("trained_visits", &self.predictor.total_visits())
            .finish()
    }
}

impl<'d> SpeculativeMatcher<'d> {
    /// A matcher over `dfa` with default chunk geometry and the shared
    /// warm-started predictor.
    pub fn new(dfa: &'d Dfa) -> Result<SpeculativeMatcher<'d>, SfaError> {
        SpeculativeMatcher::with_options(dfa, ScanOptions::default())
    }

    /// A matcher with explicit chunk geometry (the same [`ScanOptions`]
    /// the SFA tiers use, so chunk seams land in the same places).
    pub fn with_options(
        dfa: &'d Dfa,
        opts: ScanOptions,
    ) -> Result<SpeculativeMatcher<'d>, SfaError> {
        if dfa.num_states() == 0 {
            return Err(SfaError::EmptyDfa);
        }
        opts.validate()?;
        Ok(SpeculativeMatcher {
            predictor: shared_predictor(dfa),
            dfa,
            opts,
        })
    }

    /// Replace the predictor — lets tests force specific predictions
    /// (bias the counters) without touching the process-global cache.
    pub fn with_predictor(mut self, predictor: Arc<StatePredictor>) -> SpeculativeMatcher<'d> {
        self.predictor = predictor;
        self
    }

    /// The visit counters backing this matcher's predictions.
    pub fn predictor(&self) -> &Arc<StatePredictor> {
        &self.predictor
    }

    /// Chunk length for an input of `len` symbols at `threads` workers —
    /// identical to [`ScanEngine::chunk_len`](crate::ScanEngine::chunk_len)
    /// so speculation inherits the tuned SFA chunk geometry.
    pub fn chunk_len(&self, len: usize, threads: usize) -> usize {
        let want = threads.max(1) * self.opts.oversubscribe * self.opts.interleave;
        len.div_ceil(want)
            .max(self.opts.min_chunk_symbols.min(len))
            .max(1)
    }

    /// Membership test: the DFA's accept decision for `input`, plus the
    /// speculation telemetry. Verdict-identical to
    /// [`match_sequential`](crate::match_sequential).
    pub fn matches(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        input: &[SymbolId],
        threads: usize,
    ) -> Result<(bool, SpecStats), SfaError> {
        let (q, stats) = self.final_state(pool, governor, input, threads)?;
        Ok((self.dfa.is_accepting(q), stats))
    }

    /// `δ*(q0, input)` computed chunk-parallel: pruned-enumerative when
    /// the feasible sets are narrow, predict/verify otherwise.
    pub fn final_state(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        input: &[SymbolId],
        threads: usize,
    ) -> Result<(u32, SpecStats), SfaError> {
        let mut stats = SpecStats {
            chunks: 1,
            ..SpecStats::default()
        };
        let q0 = self.dfa.start();
        governor.check(0, 0)?;
        if input.is_empty() {
            return Ok((q0, stats));
        }
        let chunk = self.chunk_len(input.len(), threads);
        let chunks: Vec<&[SymbolId]> = input.chunks(chunk).collect();
        stats.chunks = chunks.len() as u64;
        if chunks.len() == 1 {
            let q = run_governed(self.dfa, q0, input, governor)?;
            return Ok((q, stats));
        }
        let feasible = self.feasible_entry_sets(input, chunk, chunks.len());
        let widest = feasible
            .as_ref()
            .map(|sets| sets.iter().map(StateSet::len).max().unwrap_or(0));
        let q = match (feasible, widest) {
            (Some(sets), Some(w)) if w <= PRUNE_LIMIT => {
                self.pruned(pool, governor, &chunks, &sets, &mut stats)?
            }
            (feasible, _) => {
                self.speculate(pool, governor, &chunks, feasible.as_deref(), &mut stats)?
            }
        };
        Ok((q, stats))
    }

    /// PaREM feasible-entry sets, one per interior boundary
    /// (`sets[i-1]` covers chunk `i`): fold through the trailing
    /// [`LOOKBACK`] symbols before the boundary, starting from the full
    /// state set — or, when the boundary is within `LOOKBACK` of the
    /// input start, from `{q0}`, which makes the set *exact*. `None`
    /// when the DFA is too large for the fold to pay for itself.
    fn feasible_entry_sets(
        &self,
        input: &[SymbolId],
        chunk: usize,
        c: usize,
    ) -> Option<Vec<StateSet>> {
        let n = self.dfa.num_states() as usize;
        if n > FEASIBLE_MAX_STATES {
            return None;
        }
        let mut sets = Vec::with_capacity(c - 1);
        let mut next = StateSet::empty(n);
        for i in 1..c {
            let boundary = i * chunk;
            let (start, mut cur) = if boundary <= LOOKBACK {
                let mut seed = StateSet::empty(n);
                seed.insert(self.dfa.start());
                (0, seed)
            } else {
                (boundary - LOOKBACK, StateSet::full(n))
            };
            for &sym in &input[start..boundary] {
                next.clear();
                for q in cur.iter() {
                    next.insert(self.dfa.next(q, sym));
                }
                std::mem::swap(&mut cur, &mut next);
            }
            sets.push(cur);
        }
        Some(sets)
    }

    /// Exact enumerative mode: run every chunk from **each** of its
    /// feasible entry states in parallel (a pruned partial mapping —
    /// `|F|` rows instead of the SFA's `n`), then fold the true entries
    /// sequentially. No speculation, so no mispredicts are possible;
    /// the defensive re-run below cannot fire if the sets are sound.
    fn pruned(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        chunks: &[&[SymbolId]],
        feasible: &[StateSet],
        stats: &mut SpecStats,
    ) -> Result<u32, SfaError> {
        stats.pruned = true;
        let dfa = self.dfa;
        let q0 = dfa.start();
        // entries[i] = candidate entry states for chunk i; chunk 0's
        // entry is the start state, known exactly.
        let entries: Vec<Vec<u32>> = std::iter::once(vec![q0])
            .chain(feasible.iter().map(|set| set.iter().collect()))
            .collect();
        // Flatten (chunk, feasible row) pairs into lanes and run them
        // in K-way lockstep groups: rows of neighbouring chunks share a
        // task, so K transition loads stay in flight per iteration even
        // when most chunks have a single feasible entry.
        let lane_slices: Vec<&[SymbolId]> = chunks
            .iter()
            .zip(entries.iter())
            .flat_map(|(chunk, e)| std::iter::repeat_n(*chunk, e.len()))
            .collect();
        let mut lane_states: Vec<u32> = entries.iter().flatten().copied().collect();
        let k_way = self.opts.interleave;
        let ctl = AbortControl::new(governor);
        let scoped = {
            let ctl = &ctl;
            pool.scoped(|scope| {
                for (group, states) in lane_slices.chunks(k_way).zip(lane_states.chunks_mut(k_way))
                {
                    scope.execute(move || run_lane_group(dfa, group, states, None, ctl, k_way));
                }
            })
        };
        ctl.finish(scoped)?;
        let mut lane_exits = lane_states.iter();
        let exits: Vec<Vec<u32>> = entries
            .iter()
            .map(|e| e.iter().map(|_| *lane_exits.next().unwrap()).collect())
            .collect();
        let mut state = q0;
        for (i, chunk) in chunks.iter().enumerate() {
            self.predictor.record(state);
            stats.state_visits += 1;
            match entries[i].iter().position(|&e| e == state) {
                Some(pos) => state = exits[i][pos],
                None => {
                    // Unreachable if the feasible sets are sound; answer
                    // exactly anyway rather than trusting the analysis.
                    stats.reruns += 1;
                    state = run_governed(dfa, state, chunk, governor)?;
                }
            }
        }
        Ok(state)
    }

    /// Predict/verify mode: chunks run from predicted entries with a
    /// checkpoint trail, then one sequential seam pass threads the true
    /// state and re-runs only the mispredicted chunks (stopping at the
    /// first checkpoint where the re-run converges onto the trail).
    fn speculate(
        &self,
        pool: &TaskPool,
        governor: &Governor,
        chunks: &[&[SymbolId]],
        feasible: Option<&[StateSet]>,
        stats: &mut SpecStats,
    ) -> Result<u32, SfaError> {
        let dfa = self.dfa;
        let q0 = dfa.start();
        let c = chunks.len();
        let mut preds = Vec::with_capacity(c);
        preds.push(q0);
        for i in 1..c {
            let pred = match feasible {
                Some(sets) => self.predictor.hottest_in(&sets[i - 1]),
                None => self.predictor.hottest(),
            };
            preds.push(pred.unwrap_or(q0));
        }
        let mut exits = preds.clone();
        let mut trails: Vec<Vec<u32>> = chunks
            .iter()
            .map(|ch| Vec::with_capacity(ch.len().div_ceil(CHECKPOINT_SYMBOLS)))
            .collect();
        let k_way = self.opts.interleave;
        let ctl = AbortControl::new(governor);
        let scoped = {
            let ctl = &ctl;
            pool.scoped(|scope| {
                for ((group, states), trail_group) in chunks
                    .chunks(k_way)
                    .zip(exits.chunks_mut(k_way))
                    .zip(trails.chunks_mut(k_way))
                {
                    scope.execute(move || {
                        run_lane_group(dfa, group, states, Some(trail_group), ctl, k_way)
                    });
                }
            })
        };
        ctl.finish(scoped)?;
        // Seam verification: thread the true state left-to-right. Chunk
        // 0 ran from the real start state, so it can never mispredict.
        let mut state = q0;
        for i in 0..c {
            self.predictor.record(state);
            stats.state_visits += 1;
            if preds[i] == state {
                state = exits[i];
                continue;
            }
            stats.mispredicts += 1;
            stats.reruns += 1;
            state = rerun_chunk(dfa, chunks[i], state, &trails[i], exits[i], governor)?;
        }
        Ok(state)
    }
}

/// Run one chunk under the shared abort flag; `None` = stop requested.
fn run_chunk(dfa: &Dfa, mut q: u32, chunk: &[SymbolId], ctl: &AbortControl) -> Option<u32> {
    for block in chunk.chunks(GOVERNOR_POLL_SYMBOLS) {
        if ctl.should_stop() {
            return None;
        }
        q = dfa.run_from(q, block);
    }
    Some(q)
}

/// Run one task's group of lanes. A full group of equal-length lanes —
/// every group except the one holding the remainder chunk — steps
/// K-way interleaved, the same software pipeline as `scan_group_k` in
/// `scan.rs`: K independent transition loads in flight per iteration
/// instead of one, which is what makes chunk parallelism pay even on a
/// single core. Anything else finishes single-chain. When `trails` is
/// given, each lane records its state after every [`CHECKPOINT_SYMBOLS`]
/// block (the geometry `rerun_chunk` replays).
fn run_lane_group(
    dfa: &Dfa,
    group: &[&[SymbolId]],
    states: &mut [u32],
    trails: Option<&mut [Vec<u32>]>,
    ctl: &AbortControl,
    k_way: usize,
) {
    let uniform =
        group.len() == k_way && k_way > 1 && group.iter().all(|l| l.len() == group[0].len());
    match trails {
        Some(trails) if uniform => {
            match k_way {
                2 => lockstep_trails_k::<2>(dfa, group, states, trails, ctl),
                4 => lockstep_trails_k::<4>(dfa, group, states, trails, ctl),
                _ => lockstep_trails_k::<8>(dfa, group, states, trails, ctl),
            };
        }
        None if uniform => {
            match k_way {
                2 => lockstep_k::<2>(dfa, group, states, ctl),
                4 => lockstep_k::<4>(dfa, group, states, ctl),
                _ => lockstep_k::<8>(dfa, group, states, ctl),
            };
        }
        Some(trails) => {
            for (j, lane) in group.iter().enumerate() {
                let mut q = states[j];
                let mut since_poll = 0usize;
                for block in lane.chunks(CHECKPOINT_SYMBOLS) {
                    since_poll += block.len();
                    if since_poll >= GOVERNOR_POLL_SYMBOLS {
                        since_poll = 0;
                        if ctl.should_stop() {
                            return;
                        }
                    }
                    q = dfa.run_from(q, block);
                    trails[j].push(q);
                }
                states[j] = q;
            }
        }
        None => {
            for (j, lane) in group.iter().enumerate() {
                match run_chunk(dfa, states[j], lane, ctl) {
                    Some(q) => states[j] = q,
                    None => return,
                }
            }
        }
    }
}

/// The pipelined kernel: `K` equal-length lanes step in lockstep.
/// Returns `false` (leaving `states` unwritten) if aborted.
fn lockstep_k<const K: usize>(
    dfa: &Dfa,
    lanes: &[&[SymbolId]],
    states: &mut [u32],
    ctl: &AbortControl,
) -> bool {
    debug_assert!(lanes.len() == K && states.len() == K);
    let len = lanes[0].len();
    debug_assert!(lanes.iter().all(|l| l.len() == len));
    let mut s = [0u32; K];
    s.copy_from_slice(states);
    let poll = (GOVERNOR_POLL_SYMBOLS / K).max(1);
    let mut pos = 0;
    while pos < len {
        if ctl.should_stop() {
            return false;
        }
        let end = (pos + poll).min(len);
        for i in pos..end {
            for (j, s_j) in s.iter_mut().enumerate() {
                // SAFETY: i < len == lanes[j].len() for every lane.
                let sym = unsafe { *lanes[j].get_unchecked(i) };
                *s_j = dfa.next(*s_j, sym);
            }
        }
        pos = end;
    }
    states.copy_from_slice(&s);
    true
}

/// [`lockstep_k`] with a checkpoint trail per lane: the block loop runs
/// in [`CHECKPOINT_SYMBOLS`] strides so every lane's trail matches the
/// `lane.chunks(CHECKPOINT_SYMBOLS)` geometry exactly.
fn lockstep_trails_k<const K: usize>(
    dfa: &Dfa,
    lanes: &[&[SymbolId]],
    states: &mut [u32],
    trails: &mut [Vec<u32>],
    ctl: &AbortControl,
) -> bool {
    debug_assert!(lanes.len() == K && states.len() == K && trails.len() == K);
    let len = lanes[0].len();
    debug_assert!(lanes.iter().all(|l| l.len() == len));
    let mut s = [0u32; K];
    s.copy_from_slice(states);
    let mut pos = 0;
    while pos < len {
        if ctl.should_stop() {
            return false;
        }
        let end = (pos + CHECKPOINT_SYMBOLS).min(len);
        for i in pos..end {
            for (j, s_j) in s.iter_mut().enumerate() {
                // SAFETY: i < len == lanes[j].len() for every lane.
                let sym = unsafe { *lanes[j].get_unchecked(i) };
                *s_j = dfa.next(*s_j, sym);
            }
        }
        for (j, trail) in trails.iter_mut().enumerate() {
            trail.push(s[j]);
        }
        pos = end;
    }
    states.copy_from_slice(&s);
    true
}

/// Sequential governed run — the single-chunk path and the defensive
/// pruned fallback.
fn run_governed(
    dfa: &Dfa,
    mut q: u32,
    input: &[SymbolId],
    governor: &Governor,
) -> Result<u32, SfaError> {
    for block in input.chunks(GOVERNOR_POLL_SYMBOLS) {
        governor.check(0, 0)?;
        q = dfa.run_from(q, block);
    }
    Ok(q)
}

/// Re-run a mispredicted chunk from its true entry, comparing against
/// the speculative checkpoint trail: the first checkpoint where the
/// states agree proves the suffixes identical, so the speculative exit
/// is adopted and the rest of the chunk is skipped.
fn rerun_chunk(
    dfa: &Dfa,
    chunk: &[SymbolId],
    entry: u32,
    trail: &[u32],
    spec_exit: u32,
    governor: &Governor,
) -> Result<u32, SfaError> {
    let mut q = entry;
    let mut since_poll = 0usize;
    for (k, block) in chunk.chunks(CHECKPOINT_SYMBOLS).enumerate() {
        since_poll += block.len();
        if since_poll >= GOVERNOR_POLL_SYMBOLS {
            since_poll = 0;
            governor.check(0, 0)?;
        }
        q = dfa.run_from(q, block);
        if trail.get(k) == Some(&q) {
            return Ok(spec_exit);
        }
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::match_sequential;
    use sfa_automata::alphabet::Alphabet;
    use sfa_automata::dfa::DfaBuilder;
    use sfa_automata::pipeline::Pipeline;

    /// Tiny chunks so even short inputs split many ways.
    fn tiny_chunks() -> ScanOptions {
        ScanOptions {
            min_chunk_symbols: 1,
            ..ScanOptions::default()
        }
    }

    /// A DFA whose feasible sets never narrow: state = (count of symbol
    /// 0) mod m. Symbol 0 permutes the states and every other symbol is
    /// the identity, so the feasible fold keeps all m states and the
    /// matcher must speculate.
    fn mod_counter_dfa(m: u32) -> Dfa {
        let alphabet = Alphabet::amino_acids();
        let mut b = DfaBuilder::new(alphabet);
        for q in 0..m {
            b.add_state(q == 0);
        }
        for q in 0..m {
            b.add_transition(q, 0, (q + 1) % m);
            b.default_transition(q, q);
        }
        b.set_start(0);
        b.build_strict().unwrap()
    }

    /// Deterministic pseudo-random symbols (xorshift), `sym0_period`
    /// controls how often the counter-advancing symbol 0 appears.
    fn text(len: usize, sym0_period: usize, symbols: usize) -> Vec<SymbolId> {
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..len)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if sym0_period != 0 && i % sym0_period == 0 {
                    0
                } else {
                    // Never 0 unless the period says so.
                    (1 + (state as usize % (symbols - 1))) as SymbolId
                }
            })
            .collect()
    }

    fn search_dfa(pattern: &str) -> Dfa {
        Pipeline::search(Alphabet::amino_acids())
            .compile_str(pattern)
            .unwrap()
    }

    #[test]
    fn pruned_mode_matches_oracle_on_search_dfas() {
        let pool = TaskPool::new(4);
        let dfa = search_dfa("RGD");
        let matcher = SpeculativeMatcher::with_options(&dfa, tiny_chunks())
            .unwrap()
            .with_predictor(Arc::new(StatePredictor::new(dfa.num_states())));
        for len in [0usize, 1, 63, 1000, 5000] {
            let mut input = text(len, 0, dfa.num_symbols());
            // Plant the motif mid-input on the longer cases.
            if len >= 1000 {
                let at = len / 2;
                let planted = Alphabet::amino_acids().encode_bytes(b"RGD").unwrap();
                input[at..at + 3].copy_from_slice(&planted);
            }
            let (verdict, stats) = matcher
                .matches(&pool, &Governor::unlimited(), &input, 4)
                .unwrap();
            assert_eq!(verdict, match_sequential(&dfa, &input), "len={len}");
            if stats.chunks > 1 {
                assert!(stats.pruned, "search DFA should funnel to pruned mode");
                assert_eq!(stats.mispredicts, 0);
            }
        }
    }

    #[test]
    fn speculative_mode_matches_oracle_on_wide_feasible_sets() {
        let pool = TaskPool::new(4);
        let dfa = mod_counter_dfa(16);
        let matcher = SpeculativeMatcher::with_options(&dfa, tiny_chunks())
            .unwrap()
            .with_predictor(Arc::new(StatePredictor::new(dfa.num_states())));
        for period in [0usize, 3, 97, 1024] {
            let input = text(20_000, period, dfa.num_symbols());
            let (verdict, stats) = matcher
                .matches(&pool, &Governor::unlimited(), &input, 4)
                .unwrap();
            assert_eq!(verdict, match_sequential(&dfa, &input), "period={period}");
            assert!(!stats.pruned, "mod counter feasible sets never narrow");
            assert!(stats.chunks > 1);
        }
    }

    #[test]
    fn forced_total_mispredict_terminates_and_answers() {
        let pool = TaskPool::new(4);
        let dfa = mod_counter_dfa(16);
        // One count of symbol 0 right at the start: the true entry of
        // every later chunk is state 1 — while the cold predictor
        // deterministically picks state 0 — so every seam mispredicts
        // and no re-run ever converges (the trails stay offset by one).
        let mut input = text(50_000, 0, dfa.num_symbols());
        input[0] = 0;
        let matcher = SpeculativeMatcher::with_options(&dfa, tiny_chunks())
            .unwrap()
            .with_predictor(Arc::new(StatePredictor::new(dfa.num_states())));
        let (verdict, stats) = matcher
            .matches(&pool, &Governor::unlimited(), &input, 4)
            .unwrap();
        assert_eq!(verdict, match_sequential(&dfa, &input));
        assert!(stats.chunks > 1);
        assert_eq!(
            stats.mispredicts,
            stats.chunks - 1,
            "every non-first seam must mispredict"
        );
        assert_eq!(stats.reruns, stats.mispredicts);
    }

    #[test]
    fn warm_predictor_eliminates_mispredicts_on_repeat_runs() {
        let pool = TaskPool::new(4);
        let dfa = mod_counter_dfa(16);
        let mut input = text(50_000, 0, dfa.num_symbols());
        input[0] = 0;
        let predictor = Arc::new(StatePredictor::new(dfa.num_states()));
        let matcher = SpeculativeMatcher::with_options(&dfa, tiny_chunks())
            .unwrap()
            .with_predictor(Arc::clone(&predictor));
        let (_, cold) = matcher
            .matches(&pool, &Governor::unlimited(), &input, 4)
            .unwrap();
        assert!(cold.mispredicts > 0);
        // Second run on the same input: the counters now overwhelmingly
        // favour state 1, the true entry of every seam.
        let (verdict, warm) = matcher
            .matches(&pool, &Governor::unlimited(), &input, 4)
            .unwrap();
        assert_eq!(verdict, match_sequential(&dfa, &input));
        assert!(
            warm.mispredicts < cold.mispredicts,
            "warm {} vs cold {}",
            warm.mispredicts,
            cold.mispredicts
        );
    }

    #[test]
    fn shared_predictor_is_warm_started_per_automaton() {
        let dfa = mod_counter_dfa(7);
        let a = shared_predictor(&dfa);
        a.record(3);
        let b = shared_predictor(&dfa);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(b.visits(3), 1);
    }

    #[test]
    fn cancellation_stops_speculation_with_typed_error() {
        let pool = TaskPool::new(4);
        let dfa = mod_counter_dfa(16);
        let input = text(100_000, 7, dfa.num_symbols());
        let token = sfa_sync::CancelToken::new();
        token.cancel();
        let governor = Governor::new(&crate::Budget::unlimited(), Some(token));
        let matcher = SpeculativeMatcher::with_options(&dfa, tiny_chunks()).unwrap();
        let err = matcher.matches(&pool, &governor, &input, 4).unwrap_err();
        assert!(matches!(err, SfaError::Cancelled { .. }), "{err:?}");
    }

    #[test]
    fn feasible_sets_are_sound_overapproximations() {
        let dfa = search_dfa("RG");
        let matcher = SpeculativeMatcher::with_options(&dfa, tiny_chunks()).unwrap();
        let input = text(4096, 5, dfa.num_symbols());
        let chunk = matcher.chunk_len(input.len(), 4);
        let c = input.len().div_ceil(chunk);
        let sets = matcher.feasible_entry_sets(&input, chunk, c).unwrap();
        for (i, set) in sets.iter().enumerate() {
            let true_entry = dfa.run(&input[..(i + 1) * chunk]);
            assert!(
                set.contains(true_entry),
                "boundary {} excludes the true entry {true_entry}",
                i + 1
            );
        }
    }
}
