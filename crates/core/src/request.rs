//! The unified match request/response surface.
//!
//! Five PRs of organic growth left matching spread across a dozen method
//! variants (`try_*`, `*_on(pool, governor, …)`, per-call knobs). This
//! module consolidates them behind two plain-data types:
//!
//! * [`MatchRequest`] — *what* to match: a pattern reference (resolved
//!   by servers, ignored by an engine already bound to a DFA), an input
//!   source, a per-request [`Budget`], a [`TierPolicy`], a classifier
//!   mode for raw-byte inputs, and a trace flag.
//! * [`MatchOutcome`] — *what happened*: the verdict, the
//!   [`MatchTier`] that served it, the full [`MatchStats`] telemetry,
//!   and the degradation reason when a lower tier answered.
//!
//! [`MatchEngine::run`](crate::MatchEngine::run),
//! [`MatchRuntime::run`](crate::MatchRuntime::run), the CLI, and the
//! `sfa serve` daemon all speak these types; the serve wire protocol is
//! just their `sfa-json` serialization ([`MatchRequest::to_json`] /
//! [`MatchRequest::from_json`] and the same pair on the outcome).
//!
//! Both structs are `#[non_exhaustive]` with `with_*` builders (the
//! options/stats convention from PR 1), so new axes — another input
//! source, another policy — are non-breaking. The JSON decoders ignore
//! unknown fields for the same reason: an old server must accept a new
//! client's request.

use crate::budget::Budget;
use crate::engine::MatchTier;
use crate::runtime::{MatchStats, MIN_TIMED_ELAPSED};
use sfa_automata::alphabet::SymbolId;
use sfa_json::Value;
use std::path::PathBuf;
use std::time::Duration;

/// Where the input symbols come from.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InputSource {
    /// Pre-encoded dense symbols (already in the DFA's alphabet).
    Symbols(Vec<SymbolId>),
    /// Raw bytes, classified per [`MatchRequest::classifier`].
    Bytes(Vec<u8>),
    /// A local file, streamed in runtime-sized blocks (peak memory one
    /// block). Servers reject this variant from the wire — a remote
    /// caller must not name server-side paths.
    File(PathBuf),
}

impl InputSource {
    /// Input length in symbols/bytes, when knowable without I/O.
    pub fn len_hint(&self) -> Option<u64> {
        match self {
            InputSource::Symbols(s) => Some(s.len() as u64),
            InputSource::Bytes(b) => Some(b.len() as u64),
            InputSource::File(_) => None,
        }
    }
}

/// How raw bytes map to symbols (ignored for pre-encoded inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClassifierMode {
    /// Every byte must be in the alphabet ([`crate::ByteClassifier::strict`]).
    #[default]
    Strict,
    /// ASCII whitespace is skipped
    /// ([`crate::ByteClassifier::skipping_ascii_whitespace`]) — the
    /// natural mode for line-wrapped text files.
    SkipWhitespace,
}

impl ClassifierMode {
    fn as_str(&self) -> &'static str {
        match self {
            ClassifierMode::Strict => "strict",
            ClassifierMode::SkipWhitespace => "skip_whitespace",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "strict" => Some(ClassifierMode::Strict),
            "skip_whitespace" => Some(ClassifierMode::SkipWhitespace),
            _ => None,
        }
    }
}

/// Which degradation-ladder tiers may serve the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierPolicy {
    /// Use the best tier available, degrading as needed (the default —
    /// always answers).
    #[default]
    Auto,
    /// Force the sequential DFA scan, whatever tier the engine holds —
    /// the oracle mode load generators cross-check against.
    Sequential,
    /// Force the speculative raw-DFA tier ([`crate::speculative`]):
    /// chunk-parallel matching from predicted or feasible-set-pruned
    /// entry states, no SFA needed. The outcome reports
    /// [`MatchTier::PrunedSfa`] when the exact pruned mode answered and
    /// [`MatchTier::Speculative`] otherwise.
    Speculative,
    /// Fail with [`crate::SfaError::InvalidOptions`] unless the full
    /// SFA tier serves the request — for callers that would rather
    /// error than eat a sequential-scan latency cliff.
    RequireFull,
}

impl TierPolicy {
    /// The wire name (`"auto"`, `"sequential"`, `"speculative"`,
    /// `"require_full"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            TierPolicy::Auto => "auto",
            TierPolicy::Sequential => "sequential",
            TierPolicy::Speculative => "speculative",
            TierPolicy::RequireFull => "require_full",
        }
    }

    /// Parse a wire name — the inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(TierPolicy::Auto),
            "sequential" => Some(TierPolicy::Sequential),
            "speculative" => Some(TierPolicy::Speculative),
            "require_full" => Some(TierPolicy::RequireFull),
            _ => None,
        }
    }
}

/// One match query — see the module docs. Construct with
/// [`MatchRequest::symbols`] / [`bytes`](MatchRequest::bytes) /
/// [`text`](MatchRequest::text) / [`file`](MatchRequest::file), then
/// refine with the `with_*` builders.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct MatchRequest {
    /// Pattern reference for registry-backed callers (the serve daemon
    /// resolves it to a compiled automaton); `None` for an engine
    /// already bound to a DFA.
    pub pattern: Option<String>,
    /// The input to match.
    pub input: InputSource,
    /// Per-request resource budget (deadline, payload bytes). The
    /// unlimited default never fires.
    pub budget: Budget,
    /// Which tiers may answer.
    pub tier: TierPolicy,
    /// Byte→symbol mapping for [`InputSource::Bytes`]/[`InputSource::File`].
    pub classifier: ClassifierMode,
    /// Emit a `match/request` span for this query (in addition to the
    /// engine's usual per-query telemetry).
    pub trace: bool,
}

impl MatchRequest {
    fn with_input(input: InputSource) -> Self {
        MatchRequest {
            pattern: None,
            input,
            budget: Budget::unlimited(),
            tier: TierPolicy::default(),
            classifier: ClassifierMode::default(),
            trace: false,
        }
    }

    /// Match pre-encoded dense symbols.
    pub fn symbols(symbols: impl Into<Vec<SymbolId>>) -> Self {
        Self::with_input(InputSource::Symbols(symbols.into()))
    }

    /// Match raw bytes (classified per [`Self::with_classifier`]).
    pub fn bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Self::with_input(InputSource::Bytes(bytes.into()))
    }

    /// Match a text string's bytes — sugar for [`Self::bytes`].
    pub fn text(text: &str) -> Self {
        Self::bytes(text.as_bytes().to_vec())
    }

    /// Stream a local file.
    pub fn file(path: impl Into<PathBuf>) -> Self {
        Self::with_input(InputSource::File(path.into()))
    }

    /// Set the pattern reference (registry key or pattern id).
    pub fn with_pattern(mut self, pattern: impl Into<String>) -> Self {
        self.pattern = Some(pattern.into());
        self
    }

    /// Set the per-request budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Set the tier policy.
    pub fn with_tier(mut self, tier: TierPolicy) -> Self {
        self.tier = tier;
        self
    }

    /// Set the byte classifier mode.
    pub fn with_classifier(mut self, classifier: ClassifierMode) -> Self {
        self.classifier = classifier;
        self
    }

    /// Request a `match/request` trace span.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Serialize for the wire (see the module docs for field tolerance).
    pub fn to_json(&self) -> Value {
        let input = match &self.input {
            InputSource::Symbols(syms) => Value::Object(vec![(
                "symbols".into(),
                Value::Array(syms.iter().map(|&s| Value::Number(s as f64)).collect()),
            )]),
            InputSource::Bytes(bytes) => Value::Object(vec![(
                "bytes".into(),
                Value::Array(bytes.iter().map(|&b| Value::Number(b as f64)).collect()),
            )]),
            InputSource::File(path) => Value::Object(vec![(
                "file".into(),
                Value::String(path.display().to_string()),
            )]),
        };
        Value::Object(vec![
            (
                "pattern".into(),
                match &self.pattern {
                    Some(p) => Value::String(p.clone()),
                    None => Value::Null,
                },
            ),
            ("input".into(), input),
            ("budget".into(), budget_to_json(&self.budget)),
            ("tier".into(), Value::String(self.tier.as_str().into())),
            (
                "classifier".into(),
                Value::String(self.classifier.as_str().into()),
            ),
            ("trace".into(), Value::Bool(self.trace)),
        ])
    }

    /// Decode from the wire. Unknown fields are ignored; missing fields
    /// take their defaults; a missing/invalid `input` is an error (a
    /// request without input is meaningless). `{"text": "..."}` is
    /// accepted as an ergonomic alias for a byte input.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let input_v = v.get("input").ok_or("request is missing \"input\"")?;
        let input = if let Some(syms) = input_v.get("symbols") {
            InputSource::Symbols(number_array(syms, "input.symbols")?)
        } else if let Some(bytes) = input_v.get("bytes") {
            InputSource::Bytes(number_array(bytes, "input.bytes")?)
        } else if let Some(text) = input_v.get("text") {
            let s = text.as_str().ok_or("input.text must be a string")?;
            InputSource::Bytes(s.as_bytes().to_vec())
        } else if let Some(file) = input_v.get("file") {
            let s = file.as_str().ok_or("input.file must be a string")?;
            InputSource::File(PathBuf::from(s))
        } else {
            return Err("input must have one of symbols/bytes/text/file".into());
        };
        let mut req = Self::with_input(input);
        if let Some(p) = v.get("pattern").and_then(Value::as_str) {
            req.pattern = Some(p.to_string());
        }
        if let Some(b) = v.get("budget") {
            req.budget = budget_from_json(b)?;
        }
        if let Some(t) = v.get("tier") {
            let s = t.as_str().ok_or("tier must be a string")?;
            req.tier = TierPolicy::parse(s).ok_or("unknown tier policy")?;
        }
        if let Some(c) = v.get("classifier") {
            let s = c.as_str().ok_or("classifier must be a string")?;
            req.classifier = ClassifierMode::parse(s).ok_or("unknown classifier mode")?;
        }
        if let Some(t) = v.get("trace").and_then(Value::as_bool) {
            req.trace = t;
        }
        Ok(req)
    }
}

/// One answered match query — verdict, serving tier, telemetry, and
/// (when a lower tier answered) why the engine degraded.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct MatchOutcome {
    /// The accept decision — identical on every tier by the SFA
    /// construction, so degradation never changes this field.
    pub verdict: bool,
    /// The tier that served the query.
    pub tier: MatchTier,
    /// Full per-match telemetry.
    pub stats: MatchStats,
    /// Why the query was served below the full tier (rendered from the
    /// engine's last governance error), `None` on the full tier.
    pub degraded: Option<String>,
}

impl MatchOutcome {
    /// An outcome from a verdict and its stats (tier is read from the
    /// stats).
    pub fn new(verdict: bool, stats: MatchStats) -> Self {
        MatchOutcome {
            verdict,
            tier: stats.tier,
            stats,
            degraded: None,
        }
    }

    /// Attach the degradation reason.
    pub fn with_degraded(mut self, reason: impl Into<String>) -> Self {
        self.degraded = Some(reason.into());
        self
    }

    /// Serialize for the wire. `elapsed_secs` and `throughput_bps` are
    /// floats; `sfa-json` renders any non-finite value as `null`, which
    /// [`Self::from_json`] tolerates.
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("verdict".into(), Value::Bool(self.verdict)),
            ("tier".into(), Value::String(self.tier.to_string())),
            (
                "stats".into(),
                Value::Object(vec![
                    ("blocks".into(), Value::Number(self.stats.blocks as f64)),
                    ("chunks".into(), Value::Number(self.stats.chunks as f64)),
                    ("bytes".into(), Value::Number(self.stats.bytes as f64)),
                    (
                        "elapsed_secs".into(),
                        Value::Number(self.stats.elapsed.as_secs_f64()),
                    ),
                    (
                        "queue_depth".into(),
                        Value::Number(self.stats.queue_depth as f64),
                    ),
                    ("retries".into(), Value::Number(self.stats.retries as f64)),
                    (
                        "mispredicts".into(),
                        Value::Number(self.stats.mispredicts as f64),
                    ),
                    ("reruns".into(), Value::Number(self.stats.reruns as f64)),
                    (
                        "state_visits".into(),
                        Value::Number(self.stats.state_visits as f64),
                    ),
                    (
                        "throughput_bps".into(),
                        Value::Number(self.stats.bytes_per_sec()),
                    ),
                    ("untimed".into(), Value::Bool(self.stats.untimed())),
                ]),
            ),
            (
                "degraded".into(),
                match &self.degraded {
                    Some(r) => Value::String(r.clone()),
                    None => Value::Null,
                },
            ),
        ])
    }

    /// Decode from the wire. Unknown fields are ignored; numeric stats
    /// that are missing, `null`, or non-finite decode as zero (derived
    /// fields like `throughput_bps` are recomputed, not stored).
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let verdict = v
            .get("verdict")
            .and_then(Value::as_bool)
            .ok_or("outcome is missing \"verdict\"")?;
        let tier = match v.get("tier").and_then(Value::as_str) {
            Some("full") => MatchTier::FullSfa,
            Some("lazy") => MatchTier::LazySfa,
            Some("pruned") => MatchTier::PrunedSfa,
            Some("speculative") => MatchTier::Speculative,
            Some("sequential") | None => MatchTier::Sequential,
            Some(_) => return Err("unknown tier".into()),
        };
        let mut stats = MatchStats {
            tier,
            ..MatchStats::default()
        };
        if let Some(s) = v.get("stats") {
            stats.blocks = u64_field(s, "blocks");
            stats.chunks = u64_field(s, "chunks");
            stats.bytes = u64_field(s, "bytes");
            stats.queue_depth = u64_field(s, "queue_depth") as usize;
            stats.retries = u64_field(s, "retries");
            stats.mispredicts = u64_field(s, "mispredicts");
            stats.reruns = u64_field(s, "reruns");
            stats.state_visits = u64_field(s, "state_visits");
            let secs = s
                .get("elapsed_secs")
                .and_then(Value::as_f64)
                .filter(|f| f.is_finite() && *f >= 0.0)
                .unwrap_or(0.0);
            stats.elapsed = Duration::from_secs_f64(secs.min(u32::MAX as f64));
        }
        let degraded = v
            .get("degraded")
            .and_then(Value::as_str)
            .map(str::to_string);
        Ok(MatchOutcome {
            verdict,
            tier,
            stats,
            degraded,
        })
    }

    /// The wall time, clamped the same way [`MatchStats::bytes_per_sec`]
    /// clamps — never a fake zero for sub-tick matches.
    pub fn timed_elapsed(&self) -> Duration {
        self.stats.elapsed.max(MIN_TIMED_ELAPSED)
    }
}

fn budget_to_json(b: &Budget) -> Value {
    Value::Object(vec![
        (
            "deadline_ms".into(),
            match b.deadline {
                Some(d) => Value::Number(d.as_secs_f64() * 1e3),
                None => Value::Null,
            },
        ),
        (
            "max_payload_bytes".into(),
            match b.max_payload_bytes {
                Some(n) => Value::Number(n as f64),
                None => Value::Null,
            },
        ),
        (
            "max_states".into(),
            match b.max_states {
                Some(n) => Value::Number(n as f64),
                None => Value::Null,
            },
        ),
    ])
}

fn budget_from_json(v: &Value) -> Result<Budget, String> {
    let mut budget = Budget::unlimited();
    if let Some(ms) = v.get("deadline_ms").and_then(Value::as_f64) {
        if !ms.is_finite() || ms < 0.0 {
            return Err("budget.deadline_ms must be a non-negative finite number".into());
        }
        budget = budget.with_deadline(Duration::from_secs_f64(ms / 1e3));
    }
    if let Some(n) = v.get("max_payload_bytes").and_then(Value::as_f64) {
        budget = budget.with_max_payload_bytes(n.max(0.0) as u64);
    }
    if let Some(n) = v.get("max_states").and_then(Value::as_f64) {
        budget = budget.with_max_states(n.max(0.0) as u64);
    }
    Ok(budget)
}

fn u64_field(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_f64)
        .filter(|f| f.is_finite() && *f >= 0.0)
        .unwrap_or(0.0) as u64
}

fn number_array(v: &Value, what: &str) -> Result<Vec<u8>, String> {
    match v {
        Value::Array(items) => items
            .iter()
            .map(|item| {
                item.as_f64()
                    .filter(|f| f.is_finite() && (0.0..=255.0).contains(f) && f.fract() == 0.0)
                    .map(|f| f as u8)
                    .ok_or_else(|| format!("{what} entries must be integers in 0..=255"))
            })
            .collect(),
        _ => Err(format!("{what} must be an array")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_round_trip() {
        let req = MatchRequest::bytes(b"MKVARG".to_vec())
            .with_pattern("abcd1234")
            .with_budget(
                Budget::unlimited()
                    .with_deadline(Duration::from_millis(250))
                    .with_max_payload_bytes(1 << 20),
            )
            .with_tier(TierPolicy::RequireFull)
            .with_classifier(ClassifierMode::SkipWhitespace)
            .with_trace(true);
        let text = sfa_json::to_string(&req.to_json());
        let back = MatchRequest::from_json(&sfa_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn text_alias_and_unknown_fields_tolerated() {
        let v = sfa_json::from_str(
            r#"{"input": {"text": "RGD"}, "tier": "sequential",
                "some_future_field": {"nested": [1,2,3]}, "other": null}"#,
        )
        .unwrap();
        let req = MatchRequest::from_json(&v).unwrap();
        assert_eq!(req.input, InputSource::Bytes(b"RGD".to_vec()));
        assert_eq!(req.tier, TierPolicy::Sequential);
        assert_eq!(req.classifier, ClassifierMode::Strict);
        assert!(req.budget.is_unlimited());
    }

    #[test]
    fn missing_input_is_rejected() {
        let v = sfa_json::from_str(r#"{"tier": "auto"}"#).unwrap();
        assert!(MatchRequest::from_json(&v).is_err());
        let v = sfa_json::from_str(r#"{"input": {"bytes": [1, 999]}}"#).unwrap();
        assert!(MatchRequest::from_json(&v).is_err());
    }

    #[test]
    fn outcome_round_trip_and_null_float_tolerance() {
        let stats = MatchStats {
            tier: MatchTier::FullSfa,
            blocks: 3,
            chunks: 12,
            bytes: 1 << 20,
            elapsed: Duration::from_micros(750),
            queue_depth: 2,
            retries: 1,
            mispredicts: 5,
            reruns: 4,
            state_visits: 11,
            ..MatchStats::default()
        };
        let out = MatchOutcome::new(true, stats).with_degraded("test reason");
        let text = sfa_json::to_string(&out.to_json());
        let back = MatchOutcome::from_json(&sfa_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back.verdict, out.verdict);
        assert_eq!(back.tier, MatchTier::FullSfa);
        assert_eq!(back.stats.bytes, out.stats.bytes);
        assert_eq!(back.stats.elapsed, out.stats.elapsed);
        assert_eq!(back.stats.mispredicts, 5);
        assert_eq!(back.stats.reruns, 4);
        assert_eq!(back.stats.state_visits, 11);
        assert_eq!(back.degraded.as_deref(), Some("test reason"));

        // Non-finite floats render as null on the wire; decoding
        // tolerates that (and any other null/missing numeric).
        let v = sfa_json::from_str(
            r#"{"verdict": false, "tier": "lazy",
                "stats": {"bytes": 7, "elapsed_secs": null}}"#,
        )
        .unwrap();
        let lenient = MatchOutcome::from_json(&v).unwrap();
        assert!(!lenient.verdict);
        assert_eq!(lenient.tier, MatchTier::LazySfa);
        assert_eq!(lenient.stats.bytes, 7);
        assert_eq!(lenient.stats.elapsed, Duration::ZERO);
    }

    #[test]
    fn speculative_tier_round_trips_on_the_wire() {
        let req = MatchRequest::text("RGD").with_tier(TierPolicy::Speculative);
        let text = sfa_json::to_string(&req.to_json());
        let back = MatchRequest::from_json(&sfa_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back.tier, TierPolicy::Speculative);

        for (name, tier) in [
            ("pruned", MatchTier::PrunedSfa),
            ("speculative", MatchTier::Speculative),
        ] {
            let stats = MatchStats {
                tier,
                mispredicts: 2,
                reruns: 2,
                ..MatchStats::default()
            };
            let out = MatchOutcome::new(false, stats);
            let wire = sfa_json::to_string(&out.to_json());
            assert!(wire.contains(name), "tier {name} missing from {wire}");
            let back = MatchOutcome::from_json(&sfa_json::from_str(&wire).unwrap()).unwrap();
            assert_eq!(back.tier, tier);
            assert_eq!(back.stats.mispredicts, 2);
        }
    }
}
