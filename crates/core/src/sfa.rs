//! The simultaneous finite automaton produced by construction.
//!
//! An [`Sfa`] owns the SFA transition table δₛ plus every state's mapping
//! vector — raw (u16/u32, row-major) or still compressed, exactly as the
//! three-phase construction left them (§III-C). The mapping of SFA state
//! `s` answers, for every DFA state `q`, which DFA state is reached after
//! reading the input that led to `s`.

use crate::elem::Elem;
use sfa_automata::dfa::Dfa;
use sfa_compress::codec::HybridCodec;
use sfa_compress::{Codec, DeflateCodec, Lz77Codec, RleCodec, StoreCodec};

/// Which codec compressed the retained SFA states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecChoice {
    /// LZSS + Huffman (default, the paper's deflate).
    Deflate,
    /// LZSS only.
    Lz77,
    /// Period-aware run-length coding.
    Rle,
    /// Identity (compression disabled but the plumbing exercised).
    Store,
    /// Per-state RLE-or-deflate choice (best of both SFA state shapes).
    Hybrid,
}

impl CodecChoice {
    /// Instantiate the codec.
    pub fn codec(self) -> Box<dyn Codec> {
        match self {
            CodecChoice::Deflate => Box::new(DeflateCodec),
            CodecChoice::Lz77 => Box::new(Lz77Codec),
            CodecChoice::Rle => Box::new(RleCodec),
            CodecChoice::Store => Box::new(StoreCodec),
            CodecChoice::Hybrid => Box::new(HybridCodec),
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CodecChoice::Deflate => "deflate",
            CodecChoice::Lz77 => "lz77",
            CodecChoice::Rle => "rle",
            CodecChoice::Store => "store",
            CodecChoice::Hybrid => "hybrid",
        }
    }
}

/// Storage for the per-state mapping vectors.
pub enum MappingStore {
    /// Raw 16-bit ids, row-major `num_states × n`.
    U16(Vec<u16>),
    /// Raw 32-bit ids, row-major `num_states × n`.
    U32(Vec<u32>),
    /// Per-state compressed blobs (construction ended in compressed mode).
    Compressed {
        /// Element width of the compressed payload (2 or 4).
        elem_bytes: usize,
        /// One blob per state.
        blobs: Vec<Box<[u8]>>,
        /// Codec that produced the blobs.
        codec: CodecChoice,
    },
}

impl MappingStore {
    /// Bytes held by this store (the paper's "Size" column in Table II).
    pub fn payload_bytes(&self) -> usize {
        match self {
            MappingStore::U16(v) => v.len() * 2,
            MappingStore::U32(v) => v.len() * 4,
            MappingStore::Compressed { blobs, .. } => blobs.iter().map(|b| b.len()).sum(),
        }
    }
}

impl std::fmt::Debug for Sfa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Sfa(states={}, symbols={}, dfa_states={}, compressed={})",
            self.num_states(),
            self.k,
            self.n,
            self.is_compressed()
        )
    }
}

/// A constructed simultaneous finite automaton.
pub struct Sfa {
    /// Number of DFA states `n` (the mapping dimension).
    n: usize,
    /// Alphabet size `|Σ|`.
    k: usize,
    /// SFA start state (the identity mapping).
    start: u32,
    /// Row-major `num_states × k` successor table δₛ.
    delta: Vec<u32>,
    /// Mapping vectors.
    mappings: MappingStore,
}

impl Sfa {
    /// Assemble from parts (used by the construction engines).
    pub fn from_parts(
        n: usize,
        k: usize,
        start: u32,
        delta: Vec<u32>,
        mappings: MappingStore,
    ) -> Sfa {
        debug_assert_eq!(delta.len() % k, 0);
        Sfa {
            n,
            k,
            start,
            delta,
            mappings,
        }
    }

    /// Number of SFA states `|Qₛ|`.
    pub fn num_states(&self) -> u32 {
        (self.delta.len() / self.k) as u32
    }

    /// Alphabet size.
    pub fn num_symbols(&self) -> usize {
        self.k
    }

    /// DFA size `n` (mapping dimension).
    pub fn dfa_states(&self) -> usize {
        self.n
    }

    /// The start state (identity mapping).
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Are the mapping vectors still compressed?
    pub fn is_compressed(&self) -> bool {
        matches!(self.mappings, MappingStore::Compressed { .. })
    }

    /// Bytes held by the mapping store.
    pub fn mapping_bytes(&self) -> usize {
        self.mappings.payload_bytes()
    }

    /// Borrow the mapping store (serialization and diagnostics).
    pub fn mappings(&self) -> &MappingStore {
        &self.mappings
    }

    /// δₛ(s, σ).
    #[inline]
    pub fn step(&self, s: u32, sym: u8) -> u32 {
        self.delta[s as usize * self.k + sym as usize]
    }

    /// The raw row-major transition table (`num_states × k`), for the
    /// [`crate::scan`] table builder.
    pub(crate) fn delta(&self) -> &[u32] {
        &self.delta
    }

    /// Run the SFA from its start state over `input`, returning the SFA
    /// state — whose mapping tells, for *every* DFA start state, where the
    /// DFA would be after `input`. This is the per-chunk step of parallel
    /// matching.
    pub fn run(&self, input: &[u8]) -> u32 {
        let mut s = self.start;
        for &sym in input {
            s = self.step(s, sym);
        }
        s
    }

    /// The mapping vector of state `s`, widened to u32 (decompressing if
    /// needed — cost amortized by [`Sfa::decompress`] for hot use).
    pub fn mapping_of(&self, s: u32) -> Vec<u32> {
        let s = s as usize;
        match &self.mappings {
            MappingStore::U16(v) => v[s * self.n..(s + 1) * self.n]
                .iter()
                .map(|&x| x as u32)
                .collect(),
            MappingStore::U32(v) => v[s * self.n..(s + 1) * self.n].to_vec(),
            MappingStore::Compressed {
                elem_bytes,
                blobs,
                codec,
            } => {
                let raw = codec
                    .codec()
                    .decompress_to_vec(&blobs[s])
                    .expect("stored SFA state failed to decompress");
                if *elem_bytes == 2 {
                    let mut v16 = Vec::new();
                    <u16 as Elem>::read_bytes(&raw, &mut v16);
                    v16.into_iter().map(|x| x as u32).collect()
                } else {
                    let mut v32 = Vec::new();
                    <u32 as Elem>::read_bytes(&raw, &mut v32);
                    v32
                }
            }
        }
    }

    /// Apply state `s`'s mapping to DFA state `q`.
    pub fn apply(&self, s: u32, q: u32) -> u32 {
        match &self.mappings {
            MappingStore::U16(v) => v[s as usize * self.n + q as usize] as u32,
            MappingStore::U32(v) => v[s as usize * self.n + q as usize],
            MappingStore::Compressed { .. } => self.mapping_of(s)[q as usize],
        }
    }

    /// Decompress all mapping vectors in place (no-op when raw).
    pub fn decompress(&mut self) {
        if let MappingStore::Compressed {
            elem_bytes,
            blobs,
            codec,
        } = &self.mappings
        {
            let codec = codec.codec();
            if *elem_bytes == 2 {
                let mut all: Vec<u16> = Vec::with_capacity(blobs.len() * self.n);
                let mut scratch = Vec::new();
                for blob in blobs {
                    let raw = codec.decompress_to_vec(blob).expect("corrupt SFA state");
                    <u16 as Elem>::read_bytes(&raw, &mut scratch);
                    all.extend_from_slice(&scratch);
                }
                self.mappings = MappingStore::U16(all);
            } else {
                let mut all: Vec<u32> = Vec::with_capacity(blobs.len() * self.n);
                let mut scratch = Vec::new();
                for blob in blobs {
                    let raw = codec.decompress_to_vec(blob).expect("corrupt SFA state");
                    <u32 as Elem>::read_bytes(&raw, &mut scratch);
                    all.extend_from_slice(&scratch);
                }
                self.mappings = MappingStore::U32(all);
            }
        }
    }

    /// Compose two mapping vectors: `(f ∘ g)(q) = g[f[q]]` — i.e. first
    /// run the chunk that produced `f`, then the chunk that produced `g`.
    /// Associative, which is what makes the parallel-match reduction work.
    pub fn compose(f: &[u32], g: &[u32]) -> Vec<u32> {
        f.iter().map(|&mid| g[mid as usize]).collect()
    }

    /// Consistency check against the source DFA: for every SFA state `s`,
    /// symbol `σ` and DFA state `q`:
    /// `mapping(δₛ(s,σ))[q] == δ(mapping(s)[q], σ)`, and the start state
    /// must be the identity. Used by tests and the `verify` CLI command.
    pub fn validate(&self, dfa: &Dfa) -> Result<(), String> {
        if self.n != dfa.num_states() as usize || self.k != dfa.num_symbols() {
            return Err("dimension mismatch with DFA".into());
        }
        let start_map = self.mapping_of(self.start);
        for (q, &m) in start_map.iter().enumerate() {
            if m != q as u32 {
                return Err(format!("start mapping is not identity at q={q}"));
            }
        }
        // Decompress every mapping exactly once up front: validating a
        // compressed store would otherwise decode each state ~|Σ|+1 times.
        let mappings: Vec<Vec<u32>> = (0..self.num_states()).map(|s| self.mapping_of(s)).collect();
        for s in 0..self.num_states() {
            let m = &mappings[s as usize];
            for sym in 0..self.k {
                let succ = self.step(s, sym as u8);
                if succ >= self.num_states() {
                    return Err(format!("dangling successor {succ} at ({s},{sym})"));
                }
                let succ_map = &mappings[succ as usize];
                for q in 0..self.n {
                    let expect = dfa.next(m[q], sym as u8);
                    if succ_map[q] != expect {
                        return Err(format!(
                            "inconsistent transition: state {s} sym {sym} q {q}: \
                             got {}, expected {expect}",
                            succ_map[q]
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny hand-built SFA over a 2-state DFA and 2 symbols: DFA is the
    /// parity automaton (symbol 0 keeps state, symbol 1 toggles).
    fn parity_sfa() -> Sfa {
        // SFA states: s0 = identity [0,1], s1 = toggle [1,0].
        // δs: s0 --0--> s0, s0 --1--> s1, s1 --0--> s1, s1 --1--> s0.
        Sfa::from_parts(
            2,
            2,
            0,
            vec![0, 1, 1, 0],
            MappingStore::U16(vec![0, 1, 1, 0]),
        )
    }

    fn parity_dfa() -> Dfa {
        use sfa_automata::alphabet::Alphabet;
        use sfa_automata::dfa::DfaBuilder;
        let mut b = DfaBuilder::new(Alphabet::binary());
        let even = b.add_state(true);
        let odd = b.add_state(false);
        b.set_start(even);
        b.add_transition(even, 0, even);
        b.add_transition(even, 1, odd);
        b.add_transition(odd, 0, odd);
        b.add_transition(odd, 1, even);
        b.build_strict().unwrap()
    }

    #[test]
    fn basic_accessors() {
        let sfa = parity_sfa();
        assert_eq!(sfa.num_states(), 2);
        assert_eq!(sfa.num_symbols(), 2);
        assert_eq!(sfa.dfa_states(), 2);
        assert!(!sfa.is_compressed());
        assert_eq!(sfa.mapping_bytes(), 8);
    }

    #[test]
    fn run_and_apply() {
        let sfa = parity_sfa();
        // Odd number of 1s → toggle mapping.
        let s = sfa.run(&[1, 0, 1, 1]);
        assert_eq!(sfa.mapping_of(s), vec![1, 0]);
        assert_eq!(sfa.apply(s, 0), 1);
        // Even → identity.
        let s = sfa.run(&[1, 1]);
        assert_eq!(sfa.mapping_of(s), vec![0, 1]);
    }

    #[test]
    fn composition_matches_concatenation() {
        let sfa = parity_sfa();
        let a = sfa.run(&[1, 0]);
        let b = sfa.run(&[1, 1, 1]);
        let composed = Sfa::compose(&sfa.mapping_of(a), &sfa.mapping_of(b));
        let direct = sfa.run(&[1, 0, 1, 1, 1]);
        assert_eq!(composed, sfa.mapping_of(direct));
    }

    #[test]
    fn validate_accepts_correct_sfa() {
        let sfa = parity_sfa();
        sfa.validate(&parity_dfa()).unwrap();
    }

    #[test]
    fn validate_rejects_broken_sfa() {
        let broken = Sfa::from_parts(
            2,
            2,
            0,
            vec![0, 1, 1, 1], // s1 --1--> s1 is wrong (toggle ∘ toggle ≠ toggle)
            MappingStore::U16(vec![0, 1, 1, 0]),
        );
        assert!(broken.validate(&parity_dfa()).is_err());
    }

    #[test]
    fn compressed_store_round_trips() {
        // Compress the parity mappings with deflate and read them back.
        let codec = CodecChoice::Deflate;
        let raw0 = <u16 as Elem>::as_bytes(&[0u16, 1]).to_vec();
        let raw1 = <u16 as Elem>::as_bytes(&[1u16, 0]).to_vec();
        let blobs = vec![
            codec.codec().compress_to_vec(&raw0).into_boxed_slice(),
            codec.codec().compress_to_vec(&raw1).into_boxed_slice(),
        ];
        let mut sfa = Sfa::from_parts(
            2,
            2,
            0,
            vec![0, 1, 1, 0],
            MappingStore::Compressed {
                elem_bytes: 2,
                blobs,
                codec,
            },
        );
        assert!(sfa.is_compressed());
        assert_eq!(sfa.mapping_of(1), vec![1, 0]);
        assert_eq!(sfa.apply(1, 1), 0);
        sfa.validate(&parity_dfa()).unwrap();
        sfa.decompress();
        assert!(!sfa.is_compressed());
        assert_eq!(sfa.mapping_of(1), vec![1, 0]);
        sfa.validate(&parity_dfa()).unwrap();
    }

    #[test]
    fn codec_choice_round_trip() {
        for choice in [
            CodecChoice::Deflate,
            CodecChoice::Lz77,
            CodecChoice::Rle,
            CodecChoice::Store,
            CodecChoice::Hybrid,
        ] {
            let codec = choice.codec();
            let data = b"mapping mapping mapping".to_vec();
            let c = codec.compress_to_vec(&data);
            assert_eq!(
                codec.decompress_to_vec(&c).unwrap(),
                data,
                "{}",
                choice.name()
            );
        }
    }
}
