//! Sequential SFA construction — Algorithm 1 and its optimizations.
//!
//! Three variants reproduce the paper's Fig. 4 progression:
//!
//! * [`SequentialVariant::Baseline`] — the construction method of the
//!   original SFA paper: the state set is an ordered tree map
//!   (`BTreeMap`, standing in for the C++ STL red-black-tree `std::map`),
//!   every membership test compares whole state vectors, and successors
//!   are generated one symbol at a time (line 6 of Algorithm 1).
//! * [`SequentialVariant::Hashing`] — fingerprints + a fingerprint-keyed
//!   hash table make membership `O(1)` expected; the exhaustive compare
//!   only runs on fingerprint equality (§III-A).
//! * [`SequentialVariant::Transposed`] — additionally generates all `|Σ|`
//!   successors of a state at once via the parameterized-transposition
//!   SIMD kernels (§III-A, Fig. 3). This is the paper's fastest
//!   single-threaded method and the baseline for parallel speedups.
//!
//! ## Checkpointed construction
//!
//! The sequential worklist is a FIFO whose ids are assigned
//! monotonically, so the pop order is exactly the id order — the
//! worklist *is* a cursor over the arena. [`SeqEngine`] exploits this:
//! its resumable state is just `{mappings, δₛ, processed-cursor}`, which
//! is what a [`crate::artifact::Checkpoint`] persists (the state-set is
//! rebuilt by re-interning the persisted rows, in id order, so hash
//! chains come back identical). Construction resumed from a checkpoint
//! therefore produces a **byte-identical** SFA to an uninterrupted run.
//! The parallel engine snapshots the same `{mappings, δₛ, cursor}` shape
//! at its canonical-order barriers (see `parallel`), so checkpoints are
//! interchangeable between the two engines: a parallel build can resume a
//! sequential snapshot and vice versa, to the same bytes.

use crate::artifact::{self, Checkpoint, CheckpointConfig};
use crate::budget::Governor;
use crate::elem::{fits_u16, Elem};
use crate::io::IoError;
use crate::sfa::Sfa;
use crate::stats::{ConstructionResult, ConstructionStats};
use crate::store::{SpillConfig, TieredRows};
use crate::SfaError;
use sfa_automata::dfa::Dfa;
use sfa_hash::{CityFingerprinter, Fingerprinter};
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// Which sequential algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequentialVariant {
    /// Tree-map state set (`BTreeMap`), per-symbol successor generation.
    Baseline,
    /// Pointer-per-node tree state set (`PointerTreeMap`) — closer to the
    /// paper's C++ `std::map` memory behaviour than `BTreeMap` (which
    /// packs entries per node and is kinder to caches).
    BaselinePointerTree,
    /// Fingerprints + hash table.
    Hashing,
    /// Hashing + parameterized SIMD transposition.
    Transposed,
}

/// Default sequential arena capacity (2²⁴ states — far beyond anything
/// the sequential algorithms finish in reasonable time).
pub const DEFAULT_SEQUENTIAL_STATE_BUDGET: usize = 1 << 24;

/// Construct the SFA of `dfa` sequentially with the default state budget.
#[deprecated(
    since = "0.2.0",
    note = "use Sfa::builder(&dfa).sequential(variant).build()"
)]
pub fn construct_sequential(
    dfa: &Dfa,
    variant: SequentialVariant,
) -> Result<ConstructionResult, SfaError> {
    construct_sequential_governed(
        dfa,
        variant,
        DEFAULT_SEQUENTIAL_STATE_BUDGET,
        &Governor::unlimited(),
    )
}

/// Construct with an explicit SFA-state budget.
#[deprecated(
    since = "0.2.0",
    note = "use Sfa::builder(&dfa).sequential(variant).state_budget(n).build()"
)]
pub fn construct_sequential_budgeted(
    dfa: &Dfa,
    variant: SequentialVariant,
    state_budget: usize,
) -> Result<ConstructionResult, SfaError> {
    construct_sequential_governed(dfa, variant, state_budget, &Governor::unlimited())
}

/// The canonical governed entry point ([`crate::builder::SfaBuilder`]
/// calls this): construct under an explicit arena capacity and a
/// [`Governor`] polled once per processed SFA state.
pub fn construct_sequential_governed(
    dfa: &Dfa,
    variant: SequentialVariant,
    state_budget: usize,
    governor: &Governor,
) -> Result<ConstructionResult, SfaError> {
    construct_sequential_resumable(dfa, variant, state_budget, governor, None, None)
}

/// Governed sequential construction with optional checkpointing and
/// resume (see the module docs; `SfaBuilder::{checkpoint, resume_from}`
/// are the public entry points).
pub fn construct_sequential_resumable(
    dfa: &Dfa,
    variant: SequentialVariant,
    state_budget: usize,
    governor: &Governor,
    checkpoint: Option<&CheckpointConfig>,
    resume: Option<&Checkpoint>,
) -> Result<ConstructionResult, SfaError> {
    construct_sequential_spillable(
        dfa,
        variant,
        state_budget,
        governor,
        checkpoint,
        resume,
        None,
    )
}

/// The full sequential entry point: resumable construction with the
/// tier ladder (`crate::store`) attached when `spill` is configured.
/// With a spill config, crossing the resident-byte cap demotes cold
/// mapping batches (compress, then disk) instead of growing without
/// bound — and the result is byte-identical to an uncapped build,
/// because every tier transition is a lossless byte round trip and the
/// interning order never depends on where a row resides.
#[allow(clippy::too_many_arguments)]
pub fn construct_sequential_spillable(
    dfa: &Dfa,
    variant: SequentialVariant,
    state_budget: usize,
    governor: &Governor,
    checkpoint: Option<&CheckpointConfig>,
    resume: Option<&Checkpoint>,
    spill: Option<&SpillConfig>,
) -> Result<ConstructionResult, SfaError> {
    if dfa.num_states() == 0 {
        return Err(SfaError::EmptyDfa);
    }
    if fits_u16(dfa.num_states()) {
        construct_impl::<u16>(
            dfa,
            variant,
            state_budget,
            governor,
            checkpoint,
            resume,
            spill,
        )
    } else {
        construct_impl::<u32>(
            dfa,
            variant,
            state_budget,
            governor,
            checkpoint,
            resume,
            spill,
        )
    }
}

/// Membership structure per variant.
enum StateSet {
    Tree(BTreeMap<Box<[u8]>, u32>),
    PointerTree(crate::treemap::PointerTreeMap),
    Hash(HashMap<u64, Vec<u32>>),
}

/// The resumable sequential construction engine (see the module docs).
///
/// The worklist of Algorithm 1 is represented as the `processed` cursor:
/// ids are assigned monotonically and popped FIFO, so the next state to
/// process is always id `processed`. Everything the engine needs to
/// continue — `mappings`, `delta`, `processed` — is exactly what a
/// [`Checkpoint`] persists; the membership set is derived state and is
/// rebuilt on resume.
struct SeqEngine<E: Elem> {
    variant: SequentialVariant,
    state_budget: usize,
    n: usize,
    k: usize,
    /// Typed copy of the DFA transition table for the kernels.
    table: Vec<E>,
    /// Tiered mapping arena: state id → row of `n` elements. In plain
    /// mode (no spill config) this is exactly the old flat `Vec<E>`;
    /// with a spill config, cold batches demote down the ladder.
    rows: TieredRows<E>,
    /// δₛ rows (`u32::MAX` = not yet filled).
    delta: Vec<u32>,
    /// States with complete δₛ rows; also the worklist cursor.
    processed: usize,
    set: StateSet,
    stats: ConstructionStats,
    fingerprinter: CityFingerprinter,
    dfa_crc: u64,
}

impl<E: Elem> SeqEngine<E> {
    fn empty_set(variant: SequentialVariant) -> StateSet {
        match variant {
            SequentialVariant::Baseline => StateSet::Tree(BTreeMap::new()),
            SequentialVariant::BaselinePointerTree => {
                StateSet::PointerTree(crate::treemap::PointerTreeMap::new())
            }
            _ => StateSet::Hash(HashMap::new()),
        }
    }

    fn make_rows(n: usize, spill: Option<&SpillConfig>) -> Result<TieredRows<E>, SfaError> {
        match spill {
            None => Ok(TieredRows::plain(n)),
            Some(cfg) => TieredRows::spilling(n, cfg),
        }
    }

    /// Fresh build: intern the identity start mapping ⟨q₀, …, qₙ₋₁⟩.
    fn new(
        dfa: &Dfa,
        variant: SequentialVariant,
        state_budget: usize,
        spill: Option<&SpillConfig>,
    ) -> Result<SeqEngine<E>, SfaError> {
        let n = dfa.num_states() as usize;
        let k = dfa.num_symbols();
        let mut engine = SeqEngine {
            variant,
            state_budget,
            n,
            k,
            table: dfa.table().iter().map(|&q| E::from_u32(q)).collect(),
            rows: Self::make_rows(n, spill)?,
            delta: Vec::new(),
            processed: 0,
            set: Self::empty_set(variant),
            stats: ConstructionStats::with_threads(1),
            fingerprinter: CityFingerprinter,
            dfa_crc: artifact::dfa_fingerprint(dfa),
        };
        let identity: Vec<E> = (0..n as u32).map(E::from_u32).collect();
        engine.intern(&identity)?;
        Ok(engine)
    }

    /// Continue an interrupted build from a validated [`Checkpoint`].
    /// The membership set is rebuilt by re-interning the persisted rows
    /// in id order, so (for the hashing variants) fingerprint chains
    /// come back in the same order a fresh build created them.
    fn resume(
        dfa: &Dfa,
        variant: SequentialVariant,
        state_budget: usize,
        ckpt: &Checkpoint,
        spill: Option<&SpillConfig>,
    ) -> Result<SeqEngine<E>, SfaError> {
        let n = dfa.num_states() as usize;
        let k = dfa.num_symbols();
        let mappings = ckpt.validate_for::<E>(dfa).map_err(SfaError::Artifact)?;
        let num_states = mappings.len() / n;
        let fingerprinter = CityFingerprinter;
        let mut set = Self::empty_set(variant);
        for id in 0..num_states as u32 {
            let bytes = E::as_bytes(&mappings[id as usize * n..(id as usize + 1) * n]);
            match &mut set {
                StateSet::Tree(map) => {
                    map.insert(bytes.to_vec().into_boxed_slice(), id);
                }
                StateSet::PointerTree(map) => {
                    map.insert(bytes, id);
                }
                StateSet::Hash(map) => {
                    let fp = fingerprinter.fingerprint(bytes);
                    map.entry(fp).or_default().push(id);
                }
            }
        }
        // Checkpoints persist plaintext rows regardless of what tier a
        // row transited before the snapshot; refill the (possibly
        // spilling) arena from them, demotion restarting from scratch.
        let mut rows = Self::make_rows(n, spill)?;
        for id in 0..num_states {
            rows.push_row(&mappings[id * n..(id + 1) * n]);
        }
        Ok(SeqEngine {
            variant,
            state_budget,
            n,
            k,
            table: dfa.table().iter().map(|&q| E::from_u32(q)).collect(),
            rows,
            delta: ckpt.delta.clone(),
            processed: ckpt.processed as usize,
            set,
            stats: ConstructionStats::with_threads(1),
            fingerprinter,
            dfa_crc: ckpt.dfa_crc,
        })
    }

    fn num_states(&self) -> usize {
        self.rows.num_rows()
    }

    /// Find-or-insert a candidate mapping; returns its id.
    fn intern(&mut self, cand: &[E]) -> Result<u32, SfaError> {
        let bytes = E::as_bytes(cand);
        // Fingerprint computed once; reused on the insert path below.
        let mut fp_memo: Option<u64> = None;
        let found = match &mut self.set {
            StateSet::Tree(map) => map.get(bytes).copied(),
            StateSet::PointerTree(map) => map.get(bytes),
            StateSet::Hash(map) => {
                let fp = self.fingerprinter.fingerprint(bytes);
                fp_memo = Some(fp);
                let mut hit = None;
                if let Some(chain) = map.get(&fp) {
                    for &id in chain {
                        // Fingerprints matched: exhaustive compare (§III-A).
                        self.stats.exhaustive_compares += 1;
                        let row = self.rows.row(id as usize)?;
                        if sfa_simd::bytes_equal(E::as_bytes(row), bytes) {
                            hit = Some(id);
                            break;
                        }
                        self.stats.fingerprint_collisions += 1;
                    }
                }
                hit
            }
        };
        if let Some(id) = found {
            self.stats.duplicates += 1;
            return Ok(id);
        }
        let id = self.rows.num_rows() as u32;
        if id as usize >= self.state_budget {
            return Err(SfaError::StateBudgetExceeded {
                budget: self.state_budget,
            });
        }
        self.rows.push_row(cand);
        self.delta.extend(std::iter::repeat_n(u32::MAX, self.k));
        match &mut self.set {
            StateSet::Tree(map) => {
                map.insert(bytes.to_vec().into_boxed_slice(), id);
            }
            StateSet::PointerTree(map) => {
                map.insert(bytes, id);
            }
            StateSet::Hash(map) => {
                let fp = fp_memo.expect("hash variant computed the fingerprint on lookup");
                map.entry(fp).or_default().push(id);
            }
        }
        Ok(id)
    }

    /// Snapshot the engine to the checkpoint artifact (atomic write).
    /// Called only between states, so every row below the cursor is
    /// complete and everything above it is untouched frontier. Rows are
    /// materialized back to plaintext first, so a checkpoint taken
    /// mid-spill is byte-identical to one from an unspilled run — and
    /// resumes to identical bytes on either path.
    fn write_checkpoint(&mut self, cfg: &CheckpointConfig) -> Result<(), SfaError> {
        sfa_sync::fault_point!("checkpoint/write")
            .map_err(|e| SfaError::Artifact(IoError::Io(e.to_string())))?;
        let flat = self.rows.materialize()?;
        let ckpt = Checkpoint {
            dfa_states: self.n as u32,
            symbols: self.k as u32,
            elem_bytes: E::BYTES as u8,
            processed: self.processed as u64,
            num_states: self.num_states() as u64,
            dfa_crc: self.dfa_crc,
            delta: self.delta.clone(),
            mappings_le: artifact::mappings_to_le(&flat),
        };
        artifact::write_checkpoint(&cfg.path, &ckpt).map_err(SfaError::Artifact)
    }

    /// Drive the cursor to the end of the arena (Algorithm 1's main
    /// loop), optionally writing checkpoints every
    /// [`CheckpointConfig::every_states`] processed states — the same
    /// per-state cadence the governor is polled at.
    fn run(
        &mut self,
        governor: &Governor,
        checkpoint: Option<&CheckpointConfig>,
    ) -> Result<(), SfaError> {
        // Scratch buffers.
        let mut rows_u32: Vec<u32> = vec![0; self.n];
        let mut transposed: Vec<E> = vec![E::from_u32(0); self.k * self.n];
        let mut candidate: Vec<E> = vec![E::from_u32(0); self.n];

        let governed = !governor.is_unlimited();
        let mut since_checkpoint = 0u64;
        while self.processed < self.num_states() {
            let id = self.processed as u32;
            // Snapshot BEFORE the governor poll: a budget/cancel abort
            // at this iteration then still leaves the freshest
            // checkpoint behind for `resume_from` to continue.
            if let Some(cfg) = checkpoint {
                if since_checkpoint >= cfg.every_states {
                    self.write_checkpoint(cfg)?;
                    since_checkpoint = 0;
                }
            }
            if governed {
                // One check per processed SFA state: cheap relative to
                // the |Σ| candidate generations the state is about to do.
                governor.check(
                    self.num_states() as u64,
                    (self.rows.total_elems() * E::BYTES) as u64,
                )?;
            }
            sfa_sync::fault_point!("construct/state").map_err(|e| SfaError::Io(e.to_string()))?;
            // Read the source row once (possibly promoting it up the
            // tier ladder) — both variants generate from this copy.
            let src = self.rows.row(id as usize)?;
            for (r, &e) in rows_u32.iter_mut().zip(src.iter()) {
                *r = e.to_u32();
            }
            match self.variant {
                SequentialVariant::Transposed => {
                    // Parameterized transposition: all k successors at once.
                    E::transpose_gather(&self.table, self.k, &rows_u32, &mut transposed);
                    for sym in 0..self.k {
                        self.stats.candidates += 1;
                        let cand = &transposed[sym * self.n..(sym + 1) * self.n];
                        let succ = self.intern(cand)?;
                        self.delta[id as usize * self.k + sym] = succ;
                    }
                }
                _ => {
                    // Line 6 of Algorithm 1: one symbol at a time.
                    for sym in 0..self.k {
                        self.stats.candidates += 1;
                        for (q, slot) in candidate.iter_mut().enumerate() {
                            let cur = rows_u32[q];
                            *slot = self.table[cur as usize * self.k + sym];
                        }
                        let succ = self.intern(&candidate)?;
                        self.delta[id as usize * self.k + sym] = succ;
                    }
                }
            }
            self.processed += 1;
            since_checkpoint += 1;
            // Cursor moved: rows below it are eligible for demotion if
            // the resident cap is exceeded (no-op in plain mode).
            self.rows.maybe_demote(self.processed)?;
        }
        Ok(())
    }

    fn finish(mut self, t0: Instant) -> Result<ConstructionResult, SfaError> {
        self.stats.states = self.num_states() as u64;
        self.stats.uncompressed_bytes = (self.rows.total_elems() * E::BYTES) as u64;
        self.stats.stored_bytes = self.stats.uncompressed_bytes;
        self.stats.peak_bytes = self.rows.peak_bytes();
        self.stats.resident_bytes = self.rows.resident_bytes();
        self.stats.spilled_bytes = self.rows.spilled_bytes();
        self.stats.demotions = self.rows.demotions;
        self.stats.promotions = self.rows.promotions;
        self.stats.total_secs = t0.elapsed().as_secs_f64();
        self.stats.phase1_secs = self.stats.total_secs;
        // Materialize every tier back to the flat plaintext store: the
        // artifact is byte-identical no matter what was demoted when.
        let flat = self.rows.materialize()?;
        // The start state is always id 0: the identity mapping is the
        // first row interned, in fresh builds and (by induction over the
        // persisted arena) in resumed ones.
        let sfa = Sfa::from_parts(self.n, self.k, 0, self.delta, E::into_store(flat));
        Ok(ConstructionResult {
            sfa,
            stats: self.stats,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn construct_impl<E: Elem>(
    dfa: &Dfa,
    variant: SequentialVariant,
    state_budget: usize,
    governor: &Governor,
    checkpoint: Option<&CheckpointConfig>,
    resume: Option<&Checkpoint>,
    spill: Option<&SpillConfig>,
) -> Result<ConstructionResult, SfaError> {
    let t0 = Instant::now();
    let mut engine = match resume {
        None => SeqEngine::<E>::new(dfa, variant, state_budget, spill)?,
        Some(ckpt) => SeqEngine::<E>::resume(dfa, variant, state_budget, ckpt, spill)?,
    };
    engine.run(governor, checkpoint)?;
    let result = engine.finish(t0)?;
    // Phase spans + global metrics are derived from the stats the
    // stopwatch above already filled, so the span durations and the
    // reported `total_secs` can never disagree.
    crate::obs::observe_construction(&result.stats);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_automata::alphabet::Alphabet;
    use sfa_automata::pipeline::Pipeline;

    fn rg_dfa() -> Dfa {
        Pipeline::search(Alphabet::amino_acids())
            .compile_str("RG")
            .unwrap()
    }

    #[test]
    fn fig2_sfa_has_six_states() {
        // The paper's Fig. 2 SFA (from the 3-state Fig. 1 DFA) has SFA
        // states f0…f5.
        let dfa = rg_dfa();
        for variant in [
            SequentialVariant::Baseline,
            SequentialVariant::BaselinePointerTree,
            SequentialVariant::Hashing,
            SequentialVariant::Transposed,
        ] {
            let result = Sfa::builder(&dfa).sequential(variant).build().unwrap();
            assert_eq!(result.sfa.num_states(), 6, "{variant:?}");
            result.sfa.validate(&dfa).unwrap();
            assert_eq!(result.stats.states, 6);
            assert_eq!(result.stats.candidates, 6 * 20);
        }
    }

    #[test]
    fn all_variants_agree_on_state_count() {
        let alpha = Alphabet::amino_acids();
        for pattern in ["RG", "R{2,3}G", "[RG]N[^A]", "N-{P}-[ST]-{P}"] {
            let dfa = if pattern.contains('-') {
                Pipeline::search(alpha.clone())
                    .compile_prosite(pattern)
                    .unwrap()
            } else {
                Pipeline::search(alpha.clone())
                    .compile_str(pattern)
                    .unwrap()
            };
            let base = Sfa::builder(&dfa)
                .sequential(SequentialVariant::Baseline)
                .build()
                .unwrap();
            let ptree = Sfa::builder(&dfa)
                .sequential(SequentialVariant::BaselinePointerTree)
                .build()
                .unwrap();
            let hash = Sfa::builder(&dfa)
                .sequential(SequentialVariant::Hashing)
                .build()
                .unwrap();
            let trans = Sfa::builder(&dfa)
                .sequential(SequentialVariant::Transposed)
                .build()
                .unwrap();
            assert_eq!(base.sfa.num_states(), ptree.sfa.num_states(), "{pattern}");
            assert_eq!(base.sfa.num_states(), hash.sfa.num_states(), "{pattern}");
            assert_eq!(base.sfa.num_states(), trans.sfa.num_states(), "{pattern}");
            trans.sfa.validate(&dfa).unwrap();
        }
    }

    #[test]
    fn sfa_simulates_dfa_from_every_state() {
        let dfa = rg_dfa();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        let alpha = dfa.alphabet().clone();
        for text in [&b"AARGA"[..], b"RRRG", b"GGGG", b""] {
            let syms = alpha.encode_bytes(text).unwrap();
            let s = sfa.run(&syms);
            let mapping = sfa.mapping_of(s);
            for q0 in 0..dfa.num_states() {
                assert_eq!(
                    mapping[q0 as usize],
                    dfa.run_from(q0, &syms),
                    "start {q0}, text {:?}",
                    std::str::from_utf8(text).unwrap()
                );
            }
        }
    }

    #[test]
    fn budget_is_enforced() {
        let dfa = rg_dfa();
        let err = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .state_budget(3)
            .build()
            .unwrap_err();
        assert_eq!(err, SfaError::StateBudgetExceeded { budget: 3 });
    }

    #[test]
    fn single_state_dfa() {
        // One accepting state looping on everything: SFA = 1 state.
        use sfa_automata::dfa::DfaBuilder;
        let mut b = DfaBuilder::new(Alphabet::binary());
        let q = b.add_state(true);
        b.set_start(q);
        b.default_transition(q, q);
        let dfa = b.build_strict().unwrap();
        let result = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap();
        assert_eq!(result.sfa.num_states(), 1);
        result.sfa.validate(&dfa).unwrap();
    }

    #[test]
    fn exact_string_dfa_sfa_is_compact() {
        // rN DFAs are sink-dominated; their SFAs stay small relative to
        // the n^n worst case.
        let dfa = sfa_automata::random::rn(30);
        let result = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap();
        assert!(result.sfa.num_states() > 1);
        result.sfa.validate(&dfa).unwrap();
        // Identity start mapping.
        let m = result.sfa.mapping_of(result.sfa.start());
        assert_eq!(m, (0..dfa.num_states()).collect::<Vec<_>>());
    }

    #[test]
    fn hashing_stats_show_fingerprint_effectiveness() {
        let dfa = rg_dfa();
        let result = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Hashing)
            .build()
            .unwrap();
        // A duplicate costs exactly one confirming exhaustive compare;
        // fingerprints must eliminate all *wasted* compares here.
        assert_eq!(result.stats.fingerprint_collisions, 0);
        assert_eq!(result.stats.wasted_compare_rate(), 0.0);
        assert_eq!(result.stats.exhaustive_compares, result.stats.duplicates);
    }
}
