//! Sequential SFA construction — Algorithm 1 and its optimizations.
//!
//! Three variants reproduce the paper's Fig. 4 progression:
//!
//! * [`SequentialVariant::Baseline`] — the construction method of the
//!   original SFA paper: the state set is an ordered tree map
//!   (`BTreeMap`, standing in for the C++ STL red-black-tree `std::map`),
//!   every membership test compares whole state vectors, and successors
//!   are generated one symbol at a time (line 6 of Algorithm 1).
//! * [`SequentialVariant::Hashing`] — fingerprints + a fingerprint-keyed
//!   hash table make membership `O(1)` expected; the exhaustive compare
//!   only runs on fingerprint equality (§III-A).
//! * [`SequentialVariant::Transposed`] — additionally generates all `|Σ|`
//!   successors of a state at once via the parameterized-transposition
//!   SIMD kernels (§III-A, Fig. 3). This is the paper's fastest
//!   single-threaded method and the baseline for parallel speedups.

use crate::budget::Governor;
use crate::elem::{fits_u16, Elem};
use crate::sfa::Sfa;
use crate::stats::{ConstructionResult, ConstructionStats};
use crate::SfaError;
use sfa_automata::dfa::Dfa;
use sfa_hash::{CityFingerprinter, Fingerprinter};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Instant;

/// Which sequential algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequentialVariant {
    /// Tree-map state set (`BTreeMap`), per-symbol successor generation.
    Baseline,
    /// Pointer-per-node tree state set (`PointerTreeMap`) — closer to the
    /// paper's C++ `std::map` memory behaviour than `BTreeMap` (which
    /// packs entries per node and is kinder to caches).
    BaselinePointerTree,
    /// Fingerprints + hash table.
    Hashing,
    /// Hashing + parameterized SIMD transposition.
    Transposed,
}

/// Default sequential arena capacity (2²⁴ states — far beyond anything
/// the sequential algorithms finish in reasonable time).
pub const DEFAULT_SEQUENTIAL_STATE_BUDGET: usize = 1 << 24;

/// Construct the SFA of `dfa` sequentially with the default state budget.
#[deprecated(
    since = "0.2.0",
    note = "use Sfa::builder(&dfa).sequential(variant).build()"
)]
pub fn construct_sequential(
    dfa: &Dfa,
    variant: SequentialVariant,
) -> Result<ConstructionResult, SfaError> {
    construct_sequential_governed(
        dfa,
        variant,
        DEFAULT_SEQUENTIAL_STATE_BUDGET,
        &Governor::unlimited(),
    )
}

/// Construct with an explicit SFA-state budget.
#[deprecated(
    since = "0.2.0",
    note = "use Sfa::builder(&dfa).sequential(variant).state_budget(n).build()"
)]
pub fn construct_sequential_budgeted(
    dfa: &Dfa,
    variant: SequentialVariant,
    state_budget: usize,
) -> Result<ConstructionResult, SfaError> {
    construct_sequential_governed(dfa, variant, state_budget, &Governor::unlimited())
}

/// The canonical governed entry point ([`crate::builder::SfaBuilder`]
/// calls this): construct under an explicit arena capacity and a
/// [`Governor`] polled once per processed SFA state.
pub fn construct_sequential_governed(
    dfa: &Dfa,
    variant: SequentialVariant,
    state_budget: usize,
    governor: &Governor,
) -> Result<ConstructionResult, SfaError> {
    if dfa.num_states() == 0 {
        return Err(SfaError::EmptyDfa);
    }
    if fits_u16(dfa.num_states()) {
        construct_impl::<u16>(dfa, variant, state_budget, governor)
    } else {
        construct_impl::<u32>(dfa, variant, state_budget, governor)
    }
}

/// Membership structure per variant.
enum StateSet {
    Tree(BTreeMap<Box<[u8]>, u32>),
    PointerTree(crate::treemap::PointerTreeMap),
    Hash(HashMap<u64, Vec<u32>>),
}

fn construct_impl<E: Elem>(
    dfa: &Dfa,
    variant: SequentialVariant,
    state_budget: usize,
    governor: &Governor,
) -> Result<ConstructionResult, SfaError> {
    let t0 = Instant::now();
    let n = dfa.num_states() as usize;
    let k = dfa.num_symbols();
    let fingerprinter = CityFingerprinter;

    // Typed copy of the transition table for the kernels.
    let table: Vec<E> = dfa.table().iter().map(|&q| E::from_u32(q)).collect();

    // Flat mapping storage: state id -> row of n elements.
    let mut mappings: Vec<E> = Vec::with_capacity(n * 64);
    let mut delta: Vec<u32> = Vec::new();
    let mut worklist: VecDeque<u32> = VecDeque::new();
    let mut stats = ConstructionStats::with_threads(1);

    let mut set = match variant {
        SequentialVariant::Baseline => StateSet::Tree(BTreeMap::new()),
        SequentialVariant::BaselinePointerTree => {
            StateSet::PointerTree(crate::treemap::PointerTreeMap::new())
        }
        _ => StateSet::Hash(HashMap::new()),
    };

    // Find-or-insert a candidate mapping; returns (id, inserted).
    let mut intern = |cand: &[E],
                      mappings: &mut Vec<E>,
                      delta: &mut Vec<u32>,
                      worklist: &mut VecDeque<u32>,
                      stats: &mut ConstructionStats|
     -> Result<(u32, bool), SfaError> {
        let bytes = E::as_bytes(cand);
        // Fingerprint computed once; reused on the insert path below.
        let mut fp_memo: Option<u64> = None;
        let found = match &mut set {
            StateSet::Tree(map) => map.get(bytes).copied(),
            StateSet::PointerTree(map) => map.get(bytes),
            StateSet::Hash(map) => {
                let fp = fingerprinter.fingerprint(bytes);
                fp_memo = Some(fp);
                let mut hit = None;
                if let Some(chain) = map.get(&fp) {
                    for &id in chain {
                        // Fingerprints matched: exhaustive compare (§III-A).
                        stats.exhaustive_compares += 1;
                        let row =
                            &mappings[id as usize * cand.len()..(id as usize + 1) * cand.len()];
                        if sfa_simd::bytes_equal(E::as_bytes(row), bytes) {
                            hit = Some(id);
                            break;
                        }
                        stats.fingerprint_collisions += 1;
                    }
                }
                hit
            }
        };
        if let Some(id) = found {
            stats.duplicates += 1;
            return Ok((id, false));
        }
        let id = (mappings.len() / cand.len()) as u32;
        if id as usize >= state_budget {
            return Err(SfaError::StateBudgetExceeded {
                budget: state_budget,
            });
        }
        mappings.extend_from_slice(cand);
        delta.extend(std::iter::repeat_n(u32::MAX, k));
        worklist.push_back(id);
        match &mut set {
            StateSet::Tree(map) => {
                map.insert(bytes.to_vec().into_boxed_slice(), id);
            }
            StateSet::PointerTree(map) => {
                map.insert(bytes, id);
            }
            StateSet::Hash(map) => {
                let fp = fp_memo.expect("hash variant computed the fingerprint on lookup");
                map.entry(fp).or_default().push(id);
            }
        }
        Ok((id, true))
    };

    // Start state: the identity mapping ⟨q₀, …, qₙ₋₁⟩.
    let identity: Vec<E> = (0..n as u32).map(E::from_u32).collect();
    let (start, _) = intern(
        &identity,
        &mut mappings,
        &mut delta,
        &mut worklist,
        &mut stats,
    )?;

    // Scratch buffers.
    let mut rows_u32: Vec<u32> = vec![0; n];
    let mut transposed: Vec<E> = vec![E::from_u32(0); k * n];
    let mut candidate: Vec<E> = vec![E::from_u32(0); n];

    let governed = !governor.is_unlimited();
    while let Some(id) = worklist.pop_front() {
        if governed {
            // One checkpoint per processed SFA state: cheap relative to
            // the |Σ| candidate generations the state is about to do.
            governor.check(
                (mappings.len() / n) as u64,
                (mappings.len() * E::BYTES) as u64,
            )?;
        }
        match variant {
            SequentialVariant::Transposed => {
                // Parameterized transposition: all k successors at once.
                let src = &mappings[id as usize * n..(id as usize + 1) * n];
                for (r, &e) in rows_u32.iter_mut().zip(src.iter()) {
                    *r = e.to_u32();
                }
                E::transpose_gather(&table, k, &rows_u32, &mut transposed);
                for sym in 0..k {
                    stats.candidates += 1;
                    let cand = &transposed[sym * n..(sym + 1) * n];
                    let (succ, _) =
                        intern(cand, &mut mappings, &mut delta, &mut worklist, &mut stats)?;
                    delta[id as usize * k + sym] = succ;
                }
            }
            _ => {
                // Line 6 of Algorithm 1: one symbol at a time.
                for sym in 0..k {
                    stats.candidates += 1;
                    for q in 0..n {
                        let cur = mappings[id as usize * n + q].to_u32();
                        candidate[q] = table[cur as usize * k + sym];
                    }
                    let (succ, _) = intern(
                        &candidate,
                        &mut mappings,
                        &mut delta,
                        &mut worklist,
                        &mut stats,
                    )?;
                    delta[id as usize * k + sym] = succ;
                }
            }
        }
    }

    stats.states = (mappings.len() / n) as u64;
    stats.uncompressed_bytes = (mappings.len() * E::BYTES) as u64;
    stats.stored_bytes = stats.uncompressed_bytes;
    stats.peak_bytes = stats.uncompressed_bytes;
    stats.total_secs = t0.elapsed().as_secs_f64();
    stats.phase1_secs = stats.total_secs;

    let sfa = Sfa::from_parts(n, k, start, delta, E::into_store(mappings));
    Ok(ConstructionResult { sfa, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfa_automata::alphabet::Alphabet;
    use sfa_automata::pipeline::Pipeline;

    fn rg_dfa() -> Dfa {
        Pipeline::search(Alphabet::amino_acids())
            .compile_str("RG")
            .unwrap()
    }

    #[test]
    fn fig2_sfa_has_six_states() {
        // The paper's Fig. 2 SFA (from the 3-state Fig. 1 DFA) has SFA
        // states f0…f5.
        let dfa = rg_dfa();
        for variant in [
            SequentialVariant::Baseline,
            SequentialVariant::BaselinePointerTree,
            SequentialVariant::Hashing,
            SequentialVariant::Transposed,
        ] {
            let result = Sfa::builder(&dfa).sequential(variant).build().unwrap();
            assert_eq!(result.sfa.num_states(), 6, "{variant:?}");
            result.sfa.validate(&dfa).unwrap();
            assert_eq!(result.stats.states, 6);
            assert_eq!(result.stats.candidates, 6 * 20);
        }
    }

    #[test]
    fn all_variants_agree_on_state_count() {
        let alpha = Alphabet::amino_acids();
        for pattern in ["RG", "R{2,3}G", "[RG]N[^A]", "N-{P}-[ST]-{P}"] {
            let dfa = if pattern.contains('-') {
                Pipeline::search(alpha.clone())
                    .compile_prosite(pattern)
                    .unwrap()
            } else {
                Pipeline::search(alpha.clone())
                    .compile_str(pattern)
                    .unwrap()
            };
            let base = Sfa::builder(&dfa)
                .sequential(SequentialVariant::Baseline)
                .build()
                .unwrap();
            let ptree = Sfa::builder(&dfa)
                .sequential(SequentialVariant::BaselinePointerTree)
                .build()
                .unwrap();
            let hash = Sfa::builder(&dfa)
                .sequential(SequentialVariant::Hashing)
                .build()
                .unwrap();
            let trans = Sfa::builder(&dfa)
                .sequential(SequentialVariant::Transposed)
                .build()
                .unwrap();
            assert_eq!(base.sfa.num_states(), ptree.sfa.num_states(), "{pattern}");
            assert_eq!(base.sfa.num_states(), hash.sfa.num_states(), "{pattern}");
            assert_eq!(base.sfa.num_states(), trans.sfa.num_states(), "{pattern}");
            trans.sfa.validate(&dfa).unwrap();
        }
    }

    #[test]
    fn sfa_simulates_dfa_from_every_state() {
        let dfa = rg_dfa();
        let sfa = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa;
        let alpha = dfa.alphabet().clone();
        for text in [&b"AARGA"[..], b"RRRG", b"GGGG", b""] {
            let syms = alpha.encode_bytes(text).unwrap();
            let s = sfa.run(&syms);
            let mapping = sfa.mapping_of(s);
            for q0 in 0..dfa.num_states() {
                assert_eq!(
                    mapping[q0 as usize],
                    dfa.run_from(q0, &syms),
                    "start {q0}, text {:?}",
                    std::str::from_utf8(text).unwrap()
                );
            }
        }
    }

    #[test]
    fn budget_is_enforced() {
        let dfa = rg_dfa();
        let err = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .state_budget(3)
            .build()
            .unwrap_err();
        assert_eq!(err, SfaError::StateBudgetExceeded { budget: 3 });
    }

    #[test]
    fn single_state_dfa() {
        // One accepting state looping on everything: SFA = 1 state.
        use sfa_automata::dfa::DfaBuilder;
        let mut b = DfaBuilder::new(Alphabet::binary());
        let q = b.add_state(true);
        b.set_start(q);
        b.default_transition(q, q);
        let dfa = b.build_strict().unwrap();
        let result = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap();
        assert_eq!(result.sfa.num_states(), 1);
        result.sfa.validate(&dfa).unwrap();
    }

    #[test]
    fn exact_string_dfa_sfa_is_compact() {
        // rN DFAs are sink-dominated; their SFAs stay small relative to
        // the n^n worst case.
        let dfa = sfa_automata::random::rn(30);
        let result = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap();
        assert!(result.sfa.num_states() > 1);
        result.sfa.validate(&dfa).unwrap();
        // Identity start mapping.
        let m = result.sfa.mapping_of(result.sfa.start());
        assert_eq!(m, (0..dfa.num_states()).collect::<Vec<_>>());
    }

    #[test]
    fn hashing_stats_show_fingerprint_effectiveness() {
        let dfa = rg_dfa();
        let result = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Hashing)
            .build()
            .unwrap();
        // A duplicate costs exactly one confirming exhaustive compare;
        // fingerprints must eliminate all *wasted* compares here.
        assert_eq!(result.stats.fingerprint_collisions, 0);
        assert_eq!(result.stats.wasted_compare_rate(), 0.0);
        assert_eq!(result.stats.exhaustive_compares, result.stats.duplicates);
    }
}
