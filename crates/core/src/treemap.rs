//! A pointer-per-node ordered map — the STL-`std::map` stand-in.
//!
//! The paper's sequential baseline uses C++ `std::map`, a red-black tree
//! with one heap allocation per node and pointer-chasing lookups. Rust's
//! `BTreeMap` is the same *asymptotically* but much kinder to caches
//! (nodes pack ~11 entries), which makes the Fig. 4 baseline faster than
//! the paper's and compresses the measured speedups. This module provides
//! a treap (randomized BST): one node per entry, heap-allocated, expected
//! `O(log n)` — the same memory-access pattern class as `std::map`, so
//! the `BaselinePointerTree` variant reproduces the paper's baseline cost
//! model more faithfully. Priorities come from FxHash of the key, keeping
//! construction deterministic.

use std::cmp::Ordering;

struct Node {
    key: Box<[u8]>,
    value: u32,
    priority: u64,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

/// Ordered byte-string → u32 map backed by a treap.
#[derive(Default)]
pub struct PointerTreeMap {
    root: Option<Box<Node>>,
    len: usize,
}

impl PointerTreeMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Look up `key` (full byte-by-byte comparisons along the path, like
    /// the paper's exhaustive membership test).
    pub fn get(&self, key: &[u8]) -> Option<u32> {
        let mut cur = self.root.as_deref();
        while let Some(node) = cur {
            match key.cmp(&node.key) {
                Ordering::Equal => return Some(node.value),
                Ordering::Less => cur = node.left.as_deref(),
                Ordering::Greater => cur = node.right.as_deref(),
            }
        }
        None
    }

    /// Insert `key → value`; returns the previous value if present.
    pub fn insert(&mut self, key: &[u8], value: u32) -> Option<u32> {
        let priority = sfa_hash::fx::fx_hash64(key);
        let (root, old) = Self::insert_node(self.root.take(), key, value, priority);
        self.root = root;
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_node(
        node: Option<Box<Node>>,
        key: &[u8],
        value: u32,
        priority: u64,
    ) -> (Option<Box<Node>>, Option<u32>) {
        let Some(mut node) = node else {
            return (
                Some(Box::new(Node {
                    key: key.to_vec().into_boxed_slice(),
                    value,
                    priority,
                    left: None,
                    right: None,
                })),
                None,
            );
        };
        match key.cmp(&node.key) {
            Ordering::Equal => {
                let old = node.value;
                node.value = value;
                (Some(node), Some(old))
            }
            Ordering::Less => {
                let (left, old) = Self::insert_node(node.left.take(), key, value, priority);
                node.left = left;
                // Treap rotation: bubble higher priorities up.
                if node
                    .left
                    .as_ref()
                    .is_some_and(|l| l.priority > node.priority)
                {
                    node = Self::rotate_right(node);
                }
                (Some(node), old)
            }
            Ordering::Greater => {
                let (right, old) = Self::insert_node(node.right.take(), key, value, priority);
                node.right = right;
                if node
                    .right
                    .as_ref()
                    .is_some_and(|r| r.priority > node.priority)
                {
                    node = Self::rotate_left(node);
                }
                (Some(node), old)
            }
        }
    }

    fn rotate_right(mut node: Box<Node>) -> Box<Node> {
        let mut left = node.left.take().expect("rotate_right needs a left child");
        node.left = left.right.take();
        left.right = Some(node);
        left
    }

    fn rotate_left(mut node: Box<Node>) -> Box<Node> {
        let mut right = node.right.take().expect("rotate_left needs a right child");
        node.right = right.left.take();
        right.left = Some(node);
        right
    }

    /// In-order iteration (tests/diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], u32)> {
        // Explicit stack to avoid recursion limits on degenerate shapes.
        let mut stack: Vec<&Node> = Vec::new();
        let mut cur = self.root.as_deref();
        std::iter::from_fn(move || {
            while let Some(node) = cur {
                stack.push(node);
                cur = node.left.as_deref();
            }
            let node = stack.pop()?;
            cur = node.right.as_deref();
            Some((&*node.key, node.value))
        })
    }
}

impl Drop for PointerTreeMap {
    fn drop(&mut self) {
        // Iterative teardown: Box's recursive drop overflows the stack on
        // large/degenerate trees.
        let mut stack: Vec<Box<Node>> = Vec::new();
        if let Some(root) = self.root.take() {
            stack.push(root);
        }
        while let Some(mut node) = stack.pop() {
            if let Some(l) = node.left.take() {
                stack.push(l);
            }
            if let Some(r) = node.right.take() {
                stack.push(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = PointerTreeMap::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(b"hello", 1), None);
        assert_eq!(t.insert(b"world", 2), None);
        assert_eq!(t.insert(b"hello", 3), Some(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(b"hello"), Some(3));
        assert_eq!(t.get(b"world"), Some(2));
        assert_eq!(t.get(b"nope"), None);
    }

    #[test]
    fn agrees_with_btreemap_on_random_ops() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut t = PointerTreeMap::new();
        let mut oracle: BTreeMap<Vec<u8>, u32> = BTreeMap::new();
        for i in 0..5_000u32 {
            let len = rng.random_range(1..20);
            let key: Vec<u8> = (0..len).map(|_| rng.random_range(0..8u8)).collect();
            assert_eq!(t.insert(&key, i), oracle.insert(key.clone(), i));
        }
        assert_eq!(t.len(), oracle.len());
        for (k, v) in &oracle {
            assert_eq!(t.get(k), Some(*v));
        }
        // In-order iteration matches sorted order.
        let ours: Vec<Vec<u8>> = t.iter().map(|(k, _)| k.to_vec()).collect();
        let theirs: Vec<Vec<u8>> = oracle.keys().cloned().collect();
        assert_eq!(ours, theirs);
    }

    #[test]
    fn survives_sorted_insertion() {
        // Sorted input degenerates a plain BST; the treap must stay
        // balanced enough to finish fast and drop without stack overflow.
        let mut t = PointerTreeMap::new();
        for i in 0..50_000u32 {
            t.insert(&i.to_be_bytes(), i);
        }
        assert_eq!(t.len(), 50_000);
        assert_eq!(t.get(&25_000u32.to_be_bytes()), Some(25_000));
        assert_eq!(t.get(&49_999u32.to_be_bytes()), Some(49_999));
    }

    #[test]
    fn empty_key_is_valid() {
        let mut t = PointerTreeMap::new();
        t.insert(b"", 7);
        assert_eq!(t.get(b""), Some(7));
    }
}
