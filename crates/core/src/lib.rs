//! # sfa-core — parallel construction of simultaneous finite automata
//!
//! Rust implementation of *"Parallel Construction of Simultaneous
//! Deterministic Finite Automata on Shared-memory Multicores"* (Jung,
//! Park, Blieberger, Burgstaller — ICPP 2017).
//!
//! Given a DFA `A` with `n` states, the **simultaneous DFA** (SFA) `S(A)`
//! simulates `n` instances of `A` at once: an SFA state is the vector
//! `⟨δ*(q₀,w), …, δ*(qₙ₋₁,w)⟩` — the state each instance reaches after the
//! input read so far. Because the SFA's start state is the identity
//! mapping, running the SFA over a *chunk* of input computes the DFA's
//! behaviour for **every possible entry state**, which removes the data
//! dependency that makes DFA matching sequential: split the input, match
//! chunks in parallel, compose the resulting mappings ([`matcher`]).
//!
//! The hard part is *constructing* the SFA (exponential state growth).
//! This crate provides the paper's full algorithm stack:
//!
//! * [`sequential`] — Algorithm 1 in three variants: the red-black-tree
//!   baseline, fingerprint+hashing, and hashing+parameterized SIMD
//!   transposition (the paper's Fig. 4 comparison),
//! * [`parallel`] — the lock-free multicore engine: work-stealing
//!   thread-local deques seeded from a CAS global queue, a lock-free
//!   chained hash table of states, and the three-phase in-memory
//!   compression scheme (§III-B, §III-C),
//! * [`matcher`] — sequential DFA matching and parallel SFA matching with
//!   mapping composition (§IV-D),
//! * [`sfa::Sfa`] — the constructed automaton (optionally with its state
//!   vectors still compressed),
//! * [`stats`] — construction statistics: comparisons, collisions, phase
//!   times, memory, contention.
//!
//! ## Quick start
//!
//! ```
//! use sfa_automata::prelude::*;
//! use sfa_core::prelude::*;
//!
//! // DFA for "contains RG" (Fig. 1 of the paper).
//! let dfa = Pipeline::search(Alphabet::amino_acids())
//!     .compile_str("RG")
//!     .unwrap();
//!
//! // Build the SFA with the fastest sequential algorithm…
//! let sfa = Sfa::builder(&dfa)
//!     .sequential(SequentialVariant::Transposed)
//!     .build()
//!     .unwrap()
//!     .sfa;
//!
//! // …or in parallel, under a resource budget.
//! let parallel = Sfa::builder(&dfa)
//!     .threads(2)
//!     .budget(Budget::unlimited().with_max_states(1 << 20))
//!     .build()
//!     .unwrap();
//! assert_eq!(sfa.num_states(), parallel.sfa.num_states());
//!
//! // Match in parallel chunks.
//! let text = Alphabet::amino_acids().encode_bytes(b"MKVARGAA").unwrap();
//! assert!(match_with_sfa(&sfa, &dfa, &text, 4));
//! ```

pub mod artifact;
pub mod budget;
pub mod builder;
pub mod elem;
pub mod engine;
pub mod io;
pub mod lazy;
pub mod matcher;
pub mod memory;
pub mod obs;
pub mod parallel;
pub mod request;
pub mod runtime;
pub mod scan;
pub mod sequential;
pub mod sfa;
pub mod speculative;
pub mod state;
pub mod stats;
pub mod store;
pub mod treemap;

pub use artifact::{ArtifactInfo, ArtifactKind, CheckpointConfig};
pub use budget::{Budget, BudgetProgress, BudgetResource};
pub use builder::SfaBuilder;
pub use engine::{EngineStats, MatchEngine, MatchTier};
pub use lazy::LazySfa;
#[allow(deprecated)]
pub use matcher::try_match_with_sfa;
pub use matcher::{match_sequential, match_with_sfa, ParallelMatcher};
#[allow(deprecated)]
pub use parallel::construct_parallel;
pub use parallel::{CompressionPolicy, ParallelOptions, Scheduler};
pub use request::{ClassifierMode, InputSource, MatchOutcome, MatchRequest, TierPolicy};
pub use runtime::{ByteClassifier, Classified, MatchRuntime, MatchStats, RetryPolicy};
pub use scan::{prefix_compose_on, ScanEngine, ScanOptions, ScanTable};
#[allow(deprecated)]
pub use sequential::construct_sequential;
pub use sequential::SequentialVariant;
pub use sfa::Sfa;
pub use sfa_sync::fault_point;
/// Deterministic fault-injection layer (lives in `sfa_sync`; re-exported
/// so `sfa_core::faults::arm(..)` works for engine-level tests). No-ops
/// unless built with the `fault-injection` feature.
pub use sfa_sync::faults;
pub use sfa_sync::CancelToken;
pub use speculative::{shared_predictor, SpecStats, SpeculativeMatcher, StatePredictor};
pub use stats::{ConstructionResult, ConstructionStats};
pub use store::{SpillConfig, SpillStore};

/// Errors produced by SFA construction.
///
/// `#[non_exhaustive]`: downstream matches need a wildcard arm, which
/// lets future resource axes add variants without a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SfaError {
    /// The engine's arena capacity (`ParallelOptions::state_budget` /
    /// the sequential and lazy `state_budget` arguments) was exhausted.
    StateBudgetExceeded {
        /// The configured limit.
        budget: usize,
    },
    /// A [`Budget`] axis was exhausted mid-construction.
    BudgetExceeded {
        /// Which axis fired.
        resource: BudgetResource,
        /// Progress at the moment the check fired.
        progress: BudgetProgress,
    },
    /// The build's [`CancelToken`] was cancelled.
    Cancelled {
        /// Progress at the moment the cancellation was observed.
        progress: BudgetProgress,
    },
    /// A DFA with zero states was supplied.
    EmptyDfa,
    /// Thread pool configuration invalid (zero threads).
    NoThreads,
    /// Mutually exclusive options were combined.
    InvalidOptions(&'static str),
    /// An SFA was paired with a DFA it was not built from: the state or
    /// symbol counts disagree. Matching such a pair would index past the
    /// mapping vectors or silently return wrong verdicts.
    Mismatch {
        /// DFA states the SFA's mappings cover.
        sfa_dfa_states: usize,
        /// States of the DFA actually supplied.
        dfa_states: usize,
        /// Symbols in the SFA's transition table.
        sfa_symbols: usize,
        /// Symbols of the DFA actually supplied.
        dfa_symbols: usize,
    },
    /// A pooled matcher worker panicked while scanning its chunk. The
    /// panic was contained — the pool and the process survive — and the
    /// payload message is carried here.
    WorkerPanic {
        /// The panic payload (or `"; "`-joined payloads).
        message: String,
    },
    /// A streamed input byte is outside the alphabet (and the classifier
    /// was not configured to skip it).
    InvalidByte {
        /// The offending byte.
        byte: u8,
        /// Offset of the byte from the start of the stream.
        offset: u64,
    },
    /// An I/O error while reading a streamed input.
    Io(String),
    /// A persisted artifact (serialized SFA or construction checkpoint)
    /// could not be written or loaded: corrupt, truncated, wrong
    /// version, or the underlying file I/O failed.
    Artifact(io::IoError),
    /// The configured spill directory cannot be used (missing and not
    /// creatable, or not writable — e.g. a read-only filesystem).
    /// Raised up front, before construction starts, so a build never
    /// dies mid-spill on a predictable misconfiguration.
    SpillDirUnavailable {
        /// The rejected directory.
        path: std::path::PathBuf,
        /// What the writability probe reported.
        reason: String,
    },
}

impl SfaError {
    /// `true` for the errors produced by resource governance (budget
    /// exhaustion or cancellation) — the errors the
    /// [`MatchEngine`] degradation ladder recovers from, as opposed to
    /// configuration errors that no retry can fix.
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            SfaError::StateBudgetExceeded { .. }
                | SfaError::BudgetExceeded { .. }
                | SfaError::Cancelled { .. }
        )
    }
}

impl std::fmt::Display for SfaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SfaError::StateBudgetExceeded { budget } => {
                write!(f, "SFA construction exceeded the state budget of {budget}")
            }
            SfaError::BudgetExceeded { resource, progress } => write!(
                f,
                "SFA construction exceeded its {resource} budget after {} states, \
                 {} payload bytes, {:.3}s",
                progress.states,
                progress.payload_bytes,
                progress.elapsed.as_secs_f64()
            ),
            SfaError::Cancelled { progress } => write!(
                f,
                "SFA construction was cancelled after {} states, {} payload bytes, {:.3}s",
                progress.states,
                progress.payload_bytes,
                progress.elapsed.as_secs_f64()
            ),
            SfaError::EmptyDfa => write!(f, "input DFA has no states"),
            SfaError::NoThreads => write!(f, "at least one worker thread is required"),
            SfaError::InvalidOptions(msg) => write!(f, "invalid option combination: {msg}"),
            SfaError::Mismatch {
                sfa_dfa_states,
                dfa_states,
                sfa_symbols,
                dfa_symbols,
            } => write!(
                f,
                "SFA/DFA mismatch: SFA built for {sfa_dfa_states} states x {sfa_symbols} \
                 symbols, DFA has {dfa_states} states x {dfa_symbols} symbols"
            ),
            SfaError::WorkerPanic { message } => {
                write!(f, "matcher worker panicked: {message}")
            }
            SfaError::InvalidByte { byte, offset } => write!(
                f,
                "input byte 0x{byte:02x} at offset {offset} is outside the alphabet"
            ),
            SfaError::Io(msg) => write!(f, "I/O error while streaming input: {msg}"),
            SfaError::Artifact(e) => write!(f, "artifact error: {e}"),
            SfaError::SpillDirUnavailable { path, reason } => write!(
                f,
                "spill directory {} is unusable: {reason}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for SfaError {}

impl From<io::IoError> for SfaError {
    fn from(e: io::IoError) -> SfaError {
        SfaError::Artifact(e)
    }
}

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::artifact::{ArtifactInfo, ArtifactKind, CheckpointConfig};
    pub use crate::budget::{Budget, BudgetProgress, BudgetResource};
    pub use crate::builder::SfaBuilder;
    pub use crate::engine::{EngineStats, MatchEngine, MatchTier};
    pub use crate::lazy::LazySfa;
    #[allow(deprecated)]
    pub use crate::matcher::try_match_with_sfa;
    pub use crate::matcher::{match_sequential, match_with_sfa, ParallelMatcher};
    #[allow(deprecated)]
    pub use crate::parallel::construct_parallel;
    pub use crate::parallel::{CompressionPolicy, ParallelOptions, Scheduler};
    pub use crate::request::{ClassifierMode, InputSource, MatchOutcome, MatchRequest, TierPolicy};
    pub use crate::runtime::{ByteClassifier, Classified, MatchRuntime, MatchStats, RetryPolicy};
    pub use crate::scan::{prefix_compose_on, ScanEngine, ScanOptions, ScanTable};
    #[allow(deprecated)]
    pub use crate::sequential::construct_sequential;
    pub use crate::sequential::SequentialVariant;
    pub use crate::sfa::Sfa;
    pub use crate::speculative::{shared_predictor, SpecStats, SpeculativeMatcher, StatePredictor};
    pub use crate::stats::{ConstructionResult, ConstructionStats};
    pub use crate::store::{SpillConfig, SpillStore};
    pub use crate::SfaError;
    pub use sfa_sync::CancelToken;
}
