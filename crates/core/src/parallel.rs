//! Parallel SFA construction for shared-memory multicores (§III-B/C).
//!
//! The engine reproduces the paper's design point for point:
//!
//! * **Work items** are SFA state ids. The start-up phase distributes work
//!   through a single CAS-synchronized [`GlobalQueue`]; once it fills to
//!   its threshold capacity, workers switch to **thread-local Chase–Lev
//!   deques** with closest-victim-first stealing (§III-B2).
//! * **State interning** goes through the lock-free [`ChainedTable`]:
//!   fingerprint → bucket → chain walk (fingerprint short-circuit, then
//!   SIMD exhaustive compare) → CAS insert at head (§III-A).
//! * **Successor generation** uses the parameterized-transposition SIMD
//!   kernels: all `|Σ|` candidate mappings of a state in one pass.
//! * **Three phases** (§III-C): build raw until the [`MemoryManager`]
//!   watermark trips; stop the world behind a barrier; all workers jointly
//!   compress every state and rebuild the hash table without duplicate
//!   checks; resume in compressed mode, compressing each new state and
//!   comparing candidates by their *compressed* bytes (our codecs are
//!   deterministic, so equal plaintexts ⇔ equal ciphertexts).
//! * **Schedulers** ([`Scheduler`]) swap the work-distribution structure
//!   to reproduce the paper's TBB-queue comparison (§IV-B) and the
//!   global-queue-only ablation.
//! * **Canonical renumbering**: arena ids are assigned in whatever order
//!   workers win their CAS races, so the harvest renumbers every state
//!   by BFS from the start state in symbol order — exactly the discovery
//!   order of the sequential FIFO worklist. A parallel build is therefore
//!   **byte-identical** to the sequential one for any thread count,
//!   scheduler, and work granularity (with a schedule-independent
//!   compression policy), and race-loser arena garbage can never leave
//!   gaps or aliases in the final id space.
//! * **Checkpointing**: on top of that determinism, a parallel build can
//!   snapshot the canonical prefix of the automaton at a stop-the-world
//!   rendezvous (same barrier machinery as the compression phase) into
//!   the same artifact container sequential builds use — either engine
//!   resumes it to a byte-identical SFA (DESIGN.md §14).

use crate::artifact::{self, Checkpoint, CheckpointConfig};
use crate::budget::Governor;
use crate::elem::{fits_u16, Elem};
use crate::io::IoError;
use crate::memory::MemoryManager;
use crate::sfa::{CodecChoice, MappingStore, Sfa};
use crate::state::{MappingBuf, StateStore};
use crate::stats::{ConstructionResult, ConstructionStats};
use crate::store::{SpillConfig, SpillRef, SpillStore};
use crate::SfaError;
use sfa_automata::dfa::Dfa;
use sfa_compress::Codec;
use sfa_hash::{CityFingerprinter, Fingerprinter};
use sfa_sync::counters::ContentionSnapshot;
use sfa_sync::deque::{work_stealing_deque, Steal, StealPolicy, Stealer, Worker};
use sfa_sync::mutex::Mutex;
use sfa_sync::{ChainedTable, FindOrInsert, GlobalQueue, Links, MsQueue, NIL};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::Instant;

/// Work-distribution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Paper default: global queue start-up, then thread-local deques
    /// with work-stealing.
    WorkStealing,
    /// Ablation: one global CAS queue for the entire run.
    GlobalOnly,
    /// Comparison: one shared MPMC queue for everything (the TBB
    /// `concurrent_queue` stand-in of §IV-B).
    SharedMpmc,
}

/// When to compress SFA states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionPolicy {
    /// Never compress (fastest; needs the memory).
    Never,
    /// Trip the compression phase when state payloads exceed this many
    /// bytes (the paper's watermark scheme).
    WhenMemoryExceeds(usize),
    /// Ablation: compress every state from the start (the paper argues —
    /// and Table II shows — this wastes time on tractable inputs).
    FromStart,
}

/// Which fingerprint function the engine uses (§III-A: CityHash won on
/// throughput; Rabin gives provable collision bounds, which matters for
/// the probabilistic mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FingerprintAlgo {
    /// CityHash64 (the paper's production choice).
    City,
    /// Rabin fingerprints (PCLMULQDQ-accelerated; tight collision bounds).
    Rabin,
    /// FxHash (fast, weak — for experiments only).
    Fx,
}

impl FingerprintAlgo {
    /// Boxed, dynamically-dispatched fingerprinter for callers that only
    /// know the algorithm at runtime (the CLI flag). The construction
    /// engine itself never calls this on its hot path: [`Engine::run`]
    /// matches on the algorithm **once** and monomorphizes the whole
    /// worker body over a concrete fingerprinter type, so the
    /// per-candidate fingerprint call is static (and inlinable) instead
    /// of a virtual call per candidate state.
    pub fn create(self) -> Box<dyn Fingerprinter> {
        match self {
            FingerprintAlgo::City => Box::new(CityFingerprinter),
            FingerprintAlgo::Rabin => Box::new(sfa_hash::RabinFingerprinter::default()),
            FingerprintAlgo::Fx => Box::new(sfa_hash::FxFingerprinter),
        }
    }
}

/// Options for parallel construction (see
/// [`crate::builder::SfaBuilder`], which wraps these).
///
/// `#[non_exhaustive]`: start from [`ParallelOptions::default`] or
/// [`ParallelOptions::with_threads`] and adjust fields or chain the
/// builder-style methods; new knobs can then be added without a breaking
/// change.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ParallelOptions {
    /// Worker threads.
    pub threads: usize,
    /// Work-distribution strategy.
    pub scheduler: Scheduler,
    /// Compression policy.
    pub compression: CompressionPolicy,
    /// Codec used by the compression phase.
    pub codec: CodecChoice,
    /// Maximum number of SFA states (arena capacity).
    pub state_budget: usize,
    /// Global-queue capacity — the start-up threshold after which workers
    /// switch to their local deques (§III-B2).
    pub global_queue_capacity: usize,
    /// Hash-table buckets (`None`: sized from the state budget).
    pub hash_buckets: Option<usize>,
    /// Ablation switch: when `false`, chain walks skip the fingerprint
    /// short-circuit and byte-compare every entry.
    pub fingerprint_short_circuit: bool,
    /// Fingerprint function.
    pub fingerprint: FingerprintAlgo,
    /// Work granularity (§III-B1): 1 = coarse-grained (one SFA state per
    /// work item, successor generation via the transposition kernel — the
    /// paper's production configuration); B > 1 = medium-grained (each
    /// state yields B work items, one per block of `|Σ|/B` symbols,
    /// generated symbol-by-symbol). Medium granularity helps only when
    /// states are scarce relative to workers; it forgoes the transposition
    /// kernel's locality, which is exactly the trade-off §III-B1 weighs.
    pub symbol_blocks: usize,
    /// The paper's probabilistic variant (§III-A): state identity is
    /// decided by fingerprints *alone* (no exhaustive comparison), and a
    /// state's mapping payload is dropped as soon as the state has been
    /// processed — a large peak-memory saving at a provably small risk of
    /// merging distinct states (use [`FingerprintAlgo::Rabin`] for the
    /// tight bound). Mapping vectors of the final SFA are reconstructed
    /// from δₛ and the DFA. Incompatible with compression.
    pub probabilistic: bool,
    /// Spill tier (`crate::store`): when set, the config's byte cap
    /// becomes the memory watermark — the first crossing trips the
    /// compression phase (tier 2), and while compressed payloads still
    /// exceed the cap the engine demotes the oldest of them to mmap'd
    /// segments under `dir` at stop-the-world rendezvous points (tier 3),
    /// promoting them back on access. The harvested store is materialized
    /// to plaintext, so a capped build stays byte-identical to an
    /// uncapped one. Incompatible with the probabilistic mode (which
    /// stores no payloads to spill).
    pub spill: Option<SpillConfig>,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            threads: 4,
            scheduler: Scheduler::WorkStealing,
            compression: CompressionPolicy::Never,
            codec: CodecChoice::Deflate,
            state_budget: 1 << 22,
            global_queue_capacity: 1024,
            hash_buckets: None,
            fingerprint_short_circuit: true,
            fingerprint: FingerprintAlgo::City,
            symbol_blocks: 1,
            probabilistic: false,
            spill: None,
        }
    }
}

impl ParallelOptions {
    /// Defaults with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ParallelOptions {
            threads,
            ..Default::default()
        }
    }

    /// Set the scheduler.
    pub fn scheduler(mut self, s: Scheduler) -> Self {
        self.scheduler = s;
        self
    }

    /// Set the compression policy.
    pub fn compression(mut self, c: CompressionPolicy) -> Self {
        self.compression = c;
        self
    }

    /// Set the codec.
    pub fn codec(mut self, c: CodecChoice) -> Self {
        self.codec = c;
        self
    }

    /// Set the state budget.
    pub fn state_budget(mut self, b: usize) -> Self {
        self.state_budget = b;
        self
    }

    /// Set the work granularity (symbol blocks per state; see
    /// [`ParallelOptions::symbol_blocks`]).
    pub fn symbol_blocks(mut self, blocks: usize) -> Self {
        self.symbol_blocks = blocks;
        self
    }

    /// Enable the probabilistic (fingerprint-only) variant with the given
    /// fingerprint function.
    pub fn probabilistic(mut self, algo: FingerprintAlgo) -> Self {
        self.probabilistic = true;
        self.fingerprint = algo;
        self
    }

    /// Enable the spill tier (see [`ParallelOptions::spill`]).
    pub fn spill(mut self, cfg: SpillConfig) -> Self {
        self.spill = Some(cfg);
        self
    }
}

/// Construct the SFA of `dfa` in parallel.
#[deprecated(
    since = "0.2.0",
    note = "use Sfa::builder(&dfa).options(&opts).build()"
)]
pub fn construct_parallel(
    dfa: &Dfa,
    opts: &ParallelOptions,
) -> Result<ConstructionResult, SfaError> {
    construct_parallel_governed(dfa, opts, &Governor::unlimited())
}

/// The canonical governed entry point ([`crate::builder::SfaBuilder`]
/// calls this): every worker polls `governor` once per work item, in all
/// three phases, and winds down cooperatively when a budget axis fires
/// or the attached token is cancelled.
pub fn construct_parallel_governed(
    dfa: &Dfa,
    opts: &ParallelOptions,
    governor: &Governor,
) -> Result<ConstructionResult, SfaError> {
    construct_parallel_resumable(dfa, opts, governor, None, None)
}

/// Governed parallel construction with optional checkpointing and resume
/// (`SfaBuilder::{checkpoint, resume_from}` are the public entry points).
///
/// Checkpoints written here use the same container as sequential builds:
/// the snapshot is the canonical prefix of the automaton (see
/// [`canonical_order`]), so a parallel checkpoint can be resumed by
/// either engine and the finished SFA is byte-identical to an
/// uninterrupted run. Requires a schedule-independent compression policy
/// ([`CompressionPolicy::Never`] or [`CompressionPolicy::FromStart`]) and
/// the exact (non-probabilistic) mode.
pub fn construct_parallel_resumable(
    dfa: &Dfa,
    opts: &ParallelOptions,
    governor: &Governor,
    checkpoint: Option<&CheckpointConfig>,
    resume: Option<&Checkpoint>,
) -> Result<ConstructionResult, SfaError> {
    if dfa.num_states() == 0 {
        return Err(SfaError::EmptyDfa);
    }
    if opts.threads == 0 {
        return Err(SfaError::NoThreads);
    }
    if opts.symbol_blocks == 0 || opts.symbol_blocks > dfa.num_symbols() {
        return Err(SfaError::InvalidOptions("symbol_blocks must be in 1..=|Σ|"));
    }
    if (opts.state_budget as u64) * (opts.symbol_blocks as u64) >= TOMBSTONE as u64 {
        return Err(SfaError::InvalidOptions(
            "state_budget × symbol_blocks must fit the u32 work-item encoding",
        ));
    }
    if opts.probabilistic && opts.symbol_blocks != 1 {
        return Err(SfaError::InvalidOptions(
            "probabilistic mode requires symbol_blocks = 1 (the payload drop \
             needs exactly one work item per state)",
        ));
    }
    if opts.probabilistic && !matches!(opts.compression, CompressionPolicy::Never) {
        return Err(SfaError::InvalidOptions(
            "probabilistic mode stores no payloads to compress",
        ));
    }
    if opts.probabilistic && (checkpoint.is_some() || resume.is_some()) {
        return Err(SfaError::InvalidOptions(
            "probabilistic construction drops mapping payloads, so it can \
             neither write nor resume checkpoints",
        ));
    }
    if opts.probabilistic && opts.spill.is_some() {
        return Err(SfaError::InvalidOptions(
            "probabilistic construction drops mapping payloads, so there is \
             nothing to spill",
        ));
    }
    if matches!(opts.compression, CompressionPolicy::WhenMemoryExceeds(_))
        && (checkpoint.is_some() || resume.is_some())
        && opts.spill.is_none()
    {
        // With a spill tier the final store is materialized to plaintext,
        // so the watermark's schedule-dependent trip point cannot leak
        // into the artifact — the rejection only applies without one.
        return Err(SfaError::InvalidOptions(
            "checkpointed parallel construction requires a schedule-independent \
             compression policy (Never or FromStart); the memory watermark's trip \
             point is not, so resumed artifacts could not be byte-identical",
        ));
    }
    // Fail fast (before allocating the arena or spawning workers) when
    // the budget is already exhausted — e.g. a zero deadline or a token
    // cancelled ahead of the call.
    governor.check(0, 0)?;
    if fits_u16(dfa.num_states()) {
        Engine::<u16>::run(dfa, opts, governor, checkpoint, resume)
    } else {
        Engine::<u32>::run(dfa, opts, governor, checkpoint, resume)
    }
}

// Phase-flag values.
const PHASE_RAW: u8 = 0;
const PHASE_COMPRESS_REQUESTED: u8 = 1;
const PHASE_COMPRESSED: u8 = 2;

/// Barrier over the *currently active* workers.
///
/// A fixed-count `std::sync::Barrier` can deadlock here: a worker that
/// exits early (state-budget error) stops participating, and a peer that
/// subsequently requests the compression phase would wait for a quorum
/// that can never assemble. This barrier re-reads the live worker count
/// while spinning, so departures unblock waiters. (On the error path the
/// constructed automaton is discarded, so a departed worker's skipped
/// compression partition is harmless.)
struct PhaseBarrier {
    /// Arrival counters, indexed by generation parity so consecutive
    /// barriers never share a counter (a worker released from barrier g
    /// may arrive at barrier g+1 before stragglers have left barrier g).
    arrived: [AtomicUsize; 2],
    generation: AtomicUsize,
    active: AtomicUsize,
    /// Single-advancer election: exactly one quorum observer resets the
    /// next counter and bumps the generation, so a racing observer can
    /// never wipe arrivals that already landed on the next barrier.
    advancing: AtomicBool,
}

impl PhaseBarrier {
    fn new(workers: usize) -> Self {
        PhaseBarrier {
            arrived: [AtomicUsize::new(0), AtomicUsize::new(0)],
            generation: AtomicUsize::new(0),
            active: AtomicUsize::new(workers),
            advancing: AtomicBool::new(false),
        }
    }

    /// A worker stops participating (worker exit). Must not be called
    /// while that worker is inside `wait`.
    fn deregister(&self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        self.arrived[gen & 1].fetch_add(1, Ordering::SeqCst);
        let mut backoff = sfa_sync::backoff::Backoff::new();
        while self.generation.load(Ordering::Acquire) == gen {
            let arrived = self.arrived[gen & 1].load(Ordering::SeqCst);
            // `active` is re-read every spin: a deregistering worker
            // shrinks the quorum and unblocks the barrier (the error
            // path discards the automaton, so its skipped partition work
            // does not matter).
            if arrived >= self.active.load(Ordering::SeqCst)
                && self
                    .advancing
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                if self.generation.load(Ordering::Acquire) == gen {
                    // Sole advancer: clear the NEXT barrier's counter,
                    // then release everyone by bumping the generation.
                    // Newcomers can only arrive at slot (gen+1)&1 after
                    // observing the bump, which happens-after the reset.
                    self.arrived[(gen + 1) & 1].store(0, Ordering::SeqCst);
                    self.generation.store(gen + 1, Ordering::SeqCst);
                }
                self.advancing.store(false, Ordering::SeqCst);
                break;
            }
            backoff.spin();
        }
    }
}

struct Shared<E: Elem> {
    table_typed: Vec<E>,
    n: usize,
    k: usize,
    opts: ParallelOptions,
    store: StateStore,
    table: ChainedTable,
    global_q: GlobalQueue,
    mpmc: MsQueue,
    /// Outstanding work items (incremented before enqueue, decremented
    /// after processing). 0 ⇒ construction complete.
    pending: AtomicU64,
    /// `true` once the global queue filled and workers switched to their
    /// thread-local deques.
    switched: AtomicBool,
    phase: AtomicU8,
    barrier: PhaseBarrier,
    mem: MemoryManager,
    error: Mutex<Option<SfaError>>,
    has_error: AtomicBool,
    clock: Mutex<PhaseClock>,
    governor: Governor,
    /// CRC-64 fingerprint of the source DFA (bound into checkpoints so a
    /// snapshot can never be resumed against the wrong automaton).
    dfa_crc: u64,
    /// Checkpoint cadence, when parallel checkpointing is enabled.
    ckpt: Option<CheckpointConfig>,
    /// Set when a worker crosses [`Shared::ckpt_next`]: all workers then
    /// converge on the rendezvous barrier and one of them snapshots the
    /// canonical prefix.
    ckpt_requested: AtomicBool,
    /// Discovered-state count at which the next snapshot is due.
    ckpt_next: AtomicU64,
    /// One-shot leader latch for the compression protocol (CAS-elected —
    /// worker 0 may have exited on an error path before compressing).
    compress_leader: AtomicBool,
    /// The disk tier, when [`ParallelOptions::spill`] is configured.
    spill: Option<SpillStore>,
    /// Raised when a worker observes resident bytes above the cap in
    /// compressed mode; everyone converges on the rendezvous and one
    /// leader runs a [`WorkerCtx::spill_pass`].
    spill_requested: AtomicBool,
    /// Arena length at the end of the last spill pass. A new pass is only
    /// requested once the arena has grown (or payloads were promoted)
    /// since — a pass over an unchanged arena would find nothing new to
    /// demote, and re-requesting it forever would livelock the build.
    spill_last_len: AtomicU64,
    /// Promotion count at the end of the last spill pass (same guard).
    spill_last_promotions: AtomicU64,
}

#[derive(Default)]
struct PhaseClock {
    compression_start: Option<Instant>,
    compression_end: Option<Instant>,
}

/// Per-worker statistics (thread-local; merged at the end). `Cell`s so
/// the interning closure (an immutable-capture `Fn`) can bump them.
#[derive(Default)]
struct LocalStats {
    candidates: Cell<u64>,
    duplicates: Cell<u64>,
    exhaustive: Cell<u64>,
    collisions: Cell<u64>,
}

impl LocalStats {
    #[inline]
    fn bump(cell: &Cell<u64>) {
        cell.set(cell.get() + 1);
    }
}

struct Engine<E: Elem> {
    _marker: std::marker::PhantomData<E>,
}

impl<E: Elem> Engine<E> {
    /// Dispatch on the fingerprint algorithm **once**, then run the
    /// whole construction monomorphized over the concrete fingerprinter
    /// (satellite of the scan-engine PR: the old `Box<dyn Fingerprinter>`
    /// cost a virtual call per candidate state).
    fn run(
        dfa: &Dfa,
        opts: &ParallelOptions,
        governor: &Governor,
        checkpoint: Option<&CheckpointConfig>,
        resume: Option<&Checkpoint>,
    ) -> Result<ConstructionResult, SfaError> {
        match opts.fingerprint {
            FingerprintAlgo::City => {
                Self::run_with(dfa, opts, governor, checkpoint, resume, CityFingerprinter)
            }
            FingerprintAlgo::Rabin => Self::run_with(
                dfa,
                opts,
                governor,
                checkpoint,
                resume,
                sfa_hash::RabinFingerprinter::default(),
            ),
            FingerprintAlgo::Fx => Self::run_with(
                dfa,
                opts,
                governor,
                checkpoint,
                resume,
                sfa_hash::FxFingerprinter,
            ),
        }
    }

    fn run_with<F: Fingerprinter + Clone>(
        dfa: &Dfa,
        opts: &ParallelOptions,
        governor: &Governor,
        checkpoint: Option<&CheckpointConfig>,
        resume: Option<&Checkpoint>,
        fingerprinter: F,
    ) -> Result<ConstructionResult, SfaError> {
        let t0 = Instant::now();
        let n = dfa.num_states() as usize;
        let k = dfa.num_symbols();
        let threads = opts.threads;

        // Bucket-count heuristic: budget/64 keeps expected chains short
        // for real SFAs while avoiding a multi-megabyte zeroed allocation
        // for small patterns (chains absorb the tail gracefully).
        let buckets = opts
            .hash_buckets
            .unwrap_or_else(|| (opts.state_budget / 64).clamp(1 << 12, 1 << 22));
        let start_compressed = matches!(opts.compression, CompressionPolicy::FromStart);
        // With a spill tier, its cap IS the watermark: the first crossing
        // trips the compression phase (tier 2), and `over_limit` polls
        // against the same value to drive spill passes (tier 3). An
        // explicit compression watermark composes by `min`.
        let mem_limit = match (&opts.spill, opts.compression) {
            (Some(cfg), CompressionPolicy::WhenMemoryExceeds(w)) => {
                Some(w.min(cfg.cap_bytes as usize))
            }
            (Some(cfg), _) => Some(cfg.cap_bytes as usize),
            (None, CompressionPolicy::WhenMemoryExceeds(w)) => Some(w),
            (None, _) => None,
        };
        let spill = match &opts.spill {
            Some(cfg) => Some(SpillStore::create(&cfg.dir, cfg.retry.clone())?),
            None => None,
        };

        // The seed phase must be able to enqueue one item per symbol
        // block — and, on resume, one per persisted frontier state per
        // block — before any worker-local deque exists.
        let seed_items = match resume {
            Some(ckpt) => ((ckpt.num_states - ckpt.processed).max(1) as usize)
                .saturating_mul(opts.symbol_blocks),
            None => opts.symbol_blocks,
        };
        let shared = Shared::<E> {
            table_typed: dfa.table().iter().map(|&q| E::from_u32(q)).collect(),
            n,
            k,
            opts: opts.clone(),
            store: StateStore::new(opts.state_budget, n, E::BYTES, k),
            table: ChainedTable::new(buckets),
            global_q: GlobalQueue::new(
                match opts.scheduler {
                    Scheduler::GlobalOnly => opts.state_budget,
                    _ => opts.global_queue_capacity,
                }
                .max(seed_items),
            ),
            mpmc: MsQueue::new(),
            pending: AtomicU64::new(0),
            switched: AtomicBool::new(false),
            phase: AtomicU8::new(if start_compressed {
                PHASE_COMPRESSED
            } else {
                PHASE_RAW
            }),
            barrier: PhaseBarrier::new(threads),
            mem: MemoryManager::new(mem_limit),
            error: Mutex::new(None),
            has_error: AtomicBool::new(false),
            clock: Mutex::new(PhaseClock::default()),
            governor: governor.clone(),
            dfa_crc: artifact::dfa_fingerprint(dfa),
            ckpt: checkpoint.cloned(),
            ckpt_requested: AtomicBool::new(false),
            ckpt_next: AtomicU64::new(u64::MAX),
            compress_leader: AtomicBool::new(false),
            spill,
            spill_requested: AtomicBool::new(false),
            spill_last_len: AtomicU64::new(0),
            spill_last_promotions: AtomicU64::new(0),
        };

        let codec = opts.codec.codec();
        let blocks = opts.symbol_blocks as u32;
        let enqueue = |item: u32| match opts.scheduler {
            Scheduler::SharedMpmc => shared.mpmc.enqueue(item),
            _ => {
                let _ = shared.global_q.enqueue(item);
            }
        };
        let seed_row = |row: &[E]| -> Result<u32, SfaError> {
            let bytes = E::as_bytes(row);
            let fp = fingerprinter.fingerprint(bytes);
            let payload: Box<[u8]> = if start_compressed {
                codec.compress_to_vec(bytes).into_boxed_slice()
            } else {
                bytes.to_vec().into_boxed_slice()
            };
            if shared.mem.charge(payload.len()) {
                // A watermark below the seeded states still has to trigger
                // the (one-shot) compression phase once workers start —
                // unless the build already starts compressed (FromStart
                // with a spill cap), where the trip is meaningless.
                let _ = shared.phase.compare_exchange(
                    PHASE_RAW,
                    PHASE_COMPRESS_REQUESTED,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
            }
            let id = shared.store.alloc(fp, payload, start_compressed).ok_or(
                SfaError::StateBudgetExceeded {
                    budget: opts.state_budget,
                },
            )?;
            shared.table.insert_unchecked(fp, id, &shared.store);
            Ok(id)
        };
        match resume {
            None => {
                // Seed the start state (identity mapping).
                let identity: Vec<E> = (0..n as u32).map(E::from_u32).collect();
                let start = seed_row(&identity)?;
                debug_assert_eq!(start, 0);
                shared.pending.store(blocks as u64, Ordering::SeqCst);
                for blk in 0..blocks {
                    enqueue(start * blocks + blk);
                }
            }
            Some(ckpt) => {
                // Re-intern the persisted arena in id order: parallel
                // snapshots are written in canonical (= sequential) order,
                // so arena ids here equal checkpoint row indices and hash
                // chains come back in discovery order.
                let mappings = ckpt.validate_for::<E>(dfa).map_err(SfaError::Artifact)?;
                let num_states = ckpt.num_states as usize;
                for idx in 0..num_states {
                    let id = seed_row(&mappings[idx * n..(idx + 1) * n])?;
                    debug_assert_eq!(id as usize, idx);
                }
                // Processed rows keep their completed δₛ entries; frontier
                // rows stay NIL and are recomputed by the workers.
                for row in 0..ckpt.processed as usize {
                    for sym in 0..k {
                        shared
                            .store
                            .set_succ(row as u32, sym, ckpt.delta[row * k + sym]);
                    }
                }
                let frontier = ckpt.num_states - ckpt.processed;
                shared
                    .pending
                    .store(frontier * blocks as u64, Ordering::SeqCst);
                for id in ckpt.processed as u32..ckpt.num_states as u32 {
                    for blk in 0..blocks {
                        enqueue(id * blocks + blk);
                    }
                }
            }
        }
        if let Some(cfg) = checkpoint {
            shared.ckpt_next.store(
                shared.store.len() as u64 + cfg.every_states,
                Ordering::SeqCst,
            );
        }

        // Thread-local deques + stealer matrix (victim order per worker).
        let mut workers: Vec<Option<Worker>> = Vec::with_capacity(threads);
        let mut all_stealers: Vec<Stealer> = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (w, s) = work_stealing_deque(1024);
            workers.push(Some(w));
            all_stealers.push(s);
        }
        let victim_order: Vec<Vec<Stealer>> = (0..threads)
            .map(|w| {
                StealPolicy::closest_first(w, threads)
                    .victims()
                    .iter()
                    .map(|&v| all_stealers[v].clone())
                    .collect()
            })
            .collect();

        let mut merged_local = Vec::new();
        let mut deque_contention = ContentionSnapshot::default();
        let mut panics: Vec<String> = Vec::new();
        std::thread::scope(|scope| {
            let shared_ref = &shared;
            let mut handles = Vec::with_capacity(threads);
            for (index, (worker, victims)) in workers
                .iter_mut()
                .map(|w| w.take().unwrap())
                .zip(victim_order)
                .enumerate()
            {
                let fingerprinter = fingerprinter.clone();
                handles.push(scope.spawn(move || {
                    let ctx = WorkerCtx {
                        index,
                        shared: shared_ref,
                        deque: worker,
                        victims,
                        fingerprinter,
                        codec: shared_ref.opts.codec.codec(),
                    };
                    ctx.run()
                }));
            }
            for h in handles {
                // A panicking worker already marked the run failed and
                // left the barrier quorum (ExitGuard), so peers have
                // stopped; contain the payload instead of re-panicking.
                match h.join() {
                    Ok((stats, snap)) => {
                        merged_local.push(stats);
                        deque_contention = merge_snap(deque_contention, snap);
                    }
                    Err(payload) => panics.push(sfa_sync::pool::panic_message(payload)),
                }
            }
        });

        if !panics.is_empty() {
            return Err(SfaError::WorkerPanic {
                message: panics.join("; "),
            });
        }
        if let Some(err) = shared.error.lock().take() {
            return Err(err);
        }

        // Assemble statistics.
        let mut stats = ConstructionStats::with_threads(threads);
        for l in &merged_local {
            stats.candidates += l.candidates.get();
            stats.duplicates += l.duplicates.get();
            stats.exhaustive_compares += l.exhaustive.get();
            stats.fingerprint_collisions += l.collisions.get();
        }
        let clock = shared.clock.lock();
        let total = t0.elapsed().as_secs_f64();
        stats.total_secs = total;
        match (clock.compression_start, clock.compression_end) {
            (Some(cs), Some(ce)) => {
                stats.phase1_secs = cs.duration_since(t0).as_secs_f64();
                stats.compression_secs = ce.duration_since(cs).as_secs_f64();
                stats.phase3_secs = total - stats.phase1_secs - stats.compression_secs;
                stats.compressed = true;
            }
            _ => {
                stats.phase1_secs = total;
                stats.compressed = start_compressed;
            }
        }
        drop(clock);

        // Harvest the SFA in **canonical order**: BFS from the identity
        // state (arena id 0) with a FIFO worklist expanding successors
        // in symbol order — exactly the id order the sequential engine
        // assigns — so the harvested automaton is byte-identical to a
        // sequential build regardless of thread count, scheduler, or
        // CAS race outcomes. Arena ids wasted on lost races are never
        // BFS-reachable (only insert winners are recorded as
        // successors), so the canonical id space is dense by
        // construction: no gap handling, no aliasing.
        let (order, canon_of, bfs_processed) = canonical_order(&shared.store, k);
        let num_states = order.len();
        debug_assert_eq!(
            bfs_processed, num_states,
            "unprocessed state escaped the frontier drain"
        );
        stats.states = num_states as u64;
        stats.uncompressed_bytes = (num_states * n * E::BYTES) as u64;

        let mut delta = vec![0u32; num_states * k];
        let compressed_mode = shared.phase.load(Ordering::SeqCst) == PHASE_COMPRESSED;
        let probabilistic = opts.probabilistic;
        // A spill-capped build materializes the store back to plaintext:
        // where (or whether) the compression watermark tripped depends on
        // the schedule, and materializing erases that difference — the
        // capped artifact stays byte-identical to an uncapped build.
        let materialize = shared.spill.is_some();
        let mut blobs: Vec<Box<[u8]>> = Vec::new();
        let mut flat: Vec<E> = Vec::new();
        if compressed_mode && !materialize {
            blobs = vec![Box::default(); num_states];
        } else if !probabilistic {
            flat = vec![E::from_u32(0); num_states * n];
        }
        let mut scratch = Vec::new();
        let mut raw_scratch: Vec<u8> = Vec::new();
        let mut fetch_scratch: Vec<u8> = Vec::new();
        for (new_id, &id) in order.iter().enumerate() {
            for sym in 0..k {
                let succ = shared.store.succ(id, sym);
                debug_assert_ne!(succ, NIL, "unprocessed state escaped");
                debug_assert_ne!(canon_of[succ as usize], NIL, "successor outside BFS order");
                delta[new_id * k + sym] = canon_of[succ as usize];
            }
            if probabilistic {
                continue; // payloads were dropped; reconstructed below
            }
            let buf = shared.store.mapping(id);
            if compressed_mode && !materialize {
                debug_assert!(buf.compressed);
                blobs[new_id] = buf.data.clone();
            } else {
                let bytes: &[u8] = if let Some(r) = buf.spill {
                    shared
                        .spill
                        .as_ref()
                        .expect("spill marker without a spill store")
                        .fetch(r, &mut fetch_scratch)?;
                    &fetch_scratch
                } else {
                    &buf.data
                };
                let raw: &[u8] = if buf.compressed {
                    raw_scratch.clear();
                    codec.decompress(bytes, &mut raw_scratch).map_err(|_| {
                        SfaError::Artifact(IoError::Corrupt(
                            "stored state failed to decompress at harvest",
                        ))
                    })?;
                    &raw_scratch
                } else {
                    bytes
                };
                E::read_bytes(raw, &mut scratch);
                flat[new_id * n..(new_id + 1) * n].copy_from_slice(&scratch);
            }
        }
        if probabilistic {
            // Reconstruct every mapping from δₛ and δ: the start state is
            // the identity, and mapping(δₛ(s,σ))[q] = δ(mapping(s)[q], σ).
            flat = reconstruct_mappings::<E>(&shared.table_typed, n, k, &delta, num_states, 0);
        }
        let mappings = if compressed_mode && !materialize {
            MappingStore::Compressed {
                elem_bytes: E::BYTES,
                blobs,
                codec: opts.codec,
            }
        } else {
            E::into_store(flat)
        };
        stats.stored_bytes = mappings.payload_bytes() as u64;
        stats.peak_bytes = shared.mem.peak();
        stats.resident_bytes = shared.mem.used();
        if let Some(store) = &shared.spill {
            stats.spilled_bytes = store.spilled_bytes();
            stats.demotions = store.demotions();
            stats.promotions = store.promotions();
        }

        // Merge contention counters.
        stats.contention = merge_snap(
            merge_snap(deque_contention, shared.global_q.counters().snapshot()),
            merge_snap(
                shared.table.counters().snapshot(),
                shared.mpmc.counters().snapshot(),
            ),
        );

        // The identity state is arena id 0 (first allocation, fresh and
        // resumed alike) and BFS starts there, so canonical start is 0 —
        // the same start id the sequential engine produces.
        let sfa = Sfa::from_parts(n, k, 0, delta, mappings);
        // Phase spans + global metrics come from the very stats fields
        // assembled above, so spans always sum to `total_secs`.
        crate::obs::observe_construction(&stats);
        Ok(ConstructionResult { sfa, stats })
    }
}

/// Canonical (= sequential) numbering of the arena: BFS from arena id 0
/// (the identity state) with a FIFO worklist, expanding successors in
/// symbol order, stopping at the first state whose δₛ row is incomplete.
///
/// Returns `(order, canon_of, processed)` where `order[c]` is the arena
/// id holding canonical id `c`, `canon_of` is the inverse permutation
/// (`NIL` for unreached arena slots — race-loser allocations and, mid
/// build, states only discoverable through unprocessed rows), and
/// `processed` is the length of the complete-row prefix of `order`.
///
/// The sequential worklist is a FIFO over monotonically assigned ids
/// that generates successors in symbol order, so after the frontier
/// drains this reproduces the sequential id assignment exactly; mid
/// build, `order[..processed]` + the discovered tail is exactly the
/// arena a sequential build would hold at cursor `processed`, which is
/// what makes parallel checkpoints interchangeable with sequential ones.
fn canonical_order(store: &StateStore, k: usize) -> (Vec<u32>, Vec<u32>, usize) {
    let len = store.len();
    let mut canon_of = vec![NIL; len];
    let mut order: Vec<u32> = Vec::with_capacity(len);
    if len == 0 {
        return (order, canon_of, 0);
    }
    canon_of[0] = 0;
    order.push(0);
    let mut cursor = 0usize;
    while cursor < order.len() {
        let id = order[cursor];
        // An incomplete row means the sequential engine would not have
        // processed this state yet — and, FIFO, none after it either.
        // Stop discovering: everything already in `order` is exactly the
        // sequential arena at this cursor.
        if (0..k).any(|sym| store.succ(id, sym) == NIL) {
            break;
        }
        for sym in 0..k {
            let succ = store.succ(id, sym) as usize;
            if canon_of[succ] == NIL {
                canon_of[succ] = order.len() as u32;
                order.push(succ as u32);
            }
        }
        cursor += 1;
    }
    (order, canon_of, cursor)
}

/// Rebuild all mapping vectors from the SFA transition table and the DFA
/// transition table (used by the probabilistic mode, whose construction
/// discards payloads). BFS from the identity start mapping.
fn reconstruct_mappings<E: Elem>(
    dfa_table: &[E],
    n: usize,
    k: usize,
    delta: &[u32],
    num_states: usize,
    start: u32,
) -> Vec<E> {
    let mut flat: Vec<E> = vec![E::from_u32(0); num_states * n];
    let mut visited = vec![false; num_states];
    for (q, slot) in flat[start as usize * n..(start as usize + 1) * n]
        .iter_mut()
        .enumerate()
    {
        *slot = E::from_u32(q as u32);
    }
    visited[start as usize] = true;
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(s) = queue.pop_front() {
        for sym in 0..k {
            let succ = delta[s as usize * k + sym];
            if visited[succ as usize] {
                continue;
            }
            visited[succ as usize] = true;
            for q in 0..n {
                let cur = flat[s as usize * n + q].to_u32() as usize;
                flat[succ as usize * n + q] = dfa_table[cur * k + sym];
            }
            queue.push_back(succ);
        }
    }
    debug_assert!(visited.iter().all(|&v| v), "unreachable SFA state");
    flat
}

fn merge_snap(a: ContentionSnapshot, b: ContentionSnapshot) -> ContentionSnapshot {
    ContentionSnapshot {
        cas_failures: a.cas_failures + b.cas_failures,
        cas_successes: a.cas_successes + b.cas_successes,
        steal_attempts: a.steal_attempts + b.steal_attempts,
        steal_successes: a.steal_successes + b.steal_successes,
        enqueues: a.enqueues + b.enqueues,
        dequeues: a.dequeues + b.dequeues,
    }
}

struct WorkerCtx<'s, E: Elem, F: Fingerprinter> {
    index: usize,
    shared: &'s Shared<E>,
    deque: Worker,
    victims: Vec<Stealer>,
    /// Concrete fingerprinter type: the per-candidate fingerprint call
    /// is statically dispatched (see [`FingerprintAlgo::create`]).
    fingerprinter: F,
    codec: Box<dyn Codec>,
}

impl<'s, E: Elem, F: Fingerprinter> WorkerCtx<'s, E, F> {
    fn run(self) -> (LocalStats, ContentionSnapshot) {
        let shared = self.shared;
        // On ANY exit from this function — including a panic unwinding out
        // of process() — mark the run failed and leave the barrier quorum,
        // so peers stop instead of spinning on `pending` forever.
        struct ExitGuard<'a, E: Elem>(&'a Shared<E>);
        impl<'a, E: Elem> Drop for ExitGuard<'a, E> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    let mut slot = self.0.error.lock();
                    if slot.is_none() {
                        *slot = Some(SfaError::InvalidOptions(
                            "worker panicked during construction",
                        ));
                    }
                    self.0.has_error.store(true, Ordering::SeqCst);
                }
                self.0.barrier.deregister();
            }
        }
        let _guard = ExitGuard(shared);
        let n = shared.n;
        let k = shared.k;
        let governed = !shared.governor.is_unlimited();
        let stats = LocalStats::default();

        // Scratch buffers reused across states.
        let mut rows_u32: Vec<u32> = vec![0; n];
        let mut transposed: Vec<E> = vec![E::from_u32(0); k * n];
        let mut raw_scratch: Vec<u8> = Vec::new();
        let mut elems_scratch: Vec<E> = Vec::new();
        let mut spill_scratch: Vec<u8> = Vec::new();

        let mut backoff = sfa_sync::backoff::Backoff::new();
        loop {
            // Stop-the-world protocols first: everyone must converge on
            // the rendezvous barrier, including idle and error-state
            // workers. Compression and checkpoint requests share ONE
            // entry barrier so workers can never split across two
            // different barrier sequences (see `rendezvous`).
            if shared.phase.load(Ordering::SeqCst) == PHASE_COMPRESS_REQUESTED
                || shared.ckpt_requested.load(Ordering::SeqCst)
                || shared.spill_requested.load(Ordering::SeqCst)
            {
                self.rendezvous();
                backoff.reset();
                continue;
            }
            if shared.has_error.load(Ordering::SeqCst) {
                break;
            }
            // Injectable fault at the same cadence the governor polls:
            // error kinds stop this worker (peers drain via has_error),
            // panic kinds unwind into ExitGuard + the join containment.
            if let Err(fault) = sfa_sync::fault_point!("construct/worker") {
                self.record_error(SfaError::Io(fault.to_string()));
                break;
            }
            if governed {
                // One checkpoint per loop turn (≈ one per work item):
                // budget axes and the cancel token are polled against the
                // live arena and memory-manager counters.
                if let Err(e) = shared
                    .governor
                    .check(shared.store.len() as u64, shared.mem.used())
                {
                    self.record_error(e);
                    break;
                }
            }
            // Spill trigger (tier 3), at the same per-item cadence: once
            // the arena is compressed and resident bytes still exceed the
            // cap, raise a stop-the-world spill pass — but only when the
            // arena grew (or payloads were promoted back) since the last
            // pass, else a pass over unchanged residents could recur
            // without ever freeing another byte.
            if let Some(store) = &shared.spill {
                if shared.phase.load(Ordering::SeqCst) == PHASE_COMPRESSED
                    && shared.mem.over_limit()
                    && (shared.store.len() as u64 > shared.spill_last_len.load(Ordering::SeqCst)
                        || store.promotions() > shared.spill_last_promotions.load(Ordering::SeqCst))
                {
                    shared.spill_requested.store(true, Ordering::SeqCst);
                    continue;
                }
            }
            // Checkpoint trigger, at the same per-item cadence: the
            // worker that advances the discovered-state watermark raises
            // the request; everyone (including the raiser) converges on
            // the rendezvous at their next loop turn.
            if let Some(cfg) = &shared.ckpt {
                let due = shared.ckpt_next.load(Ordering::SeqCst);
                let len = shared.store.len() as u64;
                if len >= due
                    && shared
                        .ckpt_next
                        .compare_exchange(
                            due,
                            len + cfg.every_states,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                {
                    shared.ckpt_requested.store(true, Ordering::SeqCst);
                    continue;
                }
            }
            match self.obtain_work() {
                Some(item) => {
                    backoff.reset();
                    let blocks = shared.opts.symbol_blocks as u32;
                    let (id, block) = (item / blocks, item % blocks);
                    self.process(
                        id,
                        block,
                        &stats,
                        &mut rows_u32,
                        &mut transposed,
                        &mut raw_scratch,
                        &mut elems_scratch,
                        &mut spill_scratch,
                    );
                    shared.pending.fetch_sub(1, Ordering::SeqCst);
                }
                None => {
                    if shared.pending.load(Ordering::SeqCst) == 0 {
                        // Re-check the flags: a compression or checkpoint
                        // request is ordered before the pending decrement
                        // that made us see 0 (all SeqCst), so this cannot
                        // miss one.
                        if shared.phase.load(Ordering::SeqCst) == PHASE_COMPRESS_REQUESTED
                            || shared.ckpt_requested.load(Ordering::SeqCst)
                            || shared.spill_requested.load(Ordering::SeqCst)
                        {
                            continue;
                        }
                        break;
                    }
                    backoff.spin();
                }
            }
        }
        let snap = self.deque.counters().snapshot();
        (stats, snap)
    }

    fn obtain_work(&self) -> Option<u32> {
        let shared = self.shared;
        match shared.opts.scheduler {
            Scheduler::SharedMpmc => shared.mpmc.dequeue(),
            Scheduler::GlobalOnly => shared.global_q.dequeue().or_else(|| self.deque.pop()),
            Scheduler::WorkStealing => {
                if let Some(id) = self.deque.pop() {
                    return Some(id);
                }
                if let Some(id) = shared.global_q.dequeue() {
                    return Some(id);
                }
                for victim in &self.victims {
                    loop {
                        match victim.steal() {
                            Steal::Success(id) => return Some(id),
                            Steal::Retry => continue,
                            Steal::Empty => break,
                        }
                    }
                }
                None
            }
        }
    }

    fn dispatch_work(&self, id: u32) {
        let shared = self.shared;
        match shared.opts.scheduler {
            Scheduler::SharedMpmc => shared.mpmc.enqueue(id),
            Scheduler::GlobalOnly => {
                if let sfa_sync::global_queue::Enqueue::Full = shared.global_q.enqueue(id) {
                    // Sized to the state budget, so Full implies budget
                    // exhaustion races; fall back to the local deque.
                    self.deque.push(id);
                }
            }
            Scheduler::WorkStealing => {
                // Start-up phase: the single global queue statically
                // distributes the first states; once it fills, switch to
                // the thread-local deques for good (§III-B2).
                if !shared.switched.load(Ordering::Relaxed) {
                    match shared.global_q.enqueue(id) {
                        sfa_sync::global_queue::Enqueue::Ok => return,
                        sfa_sync::global_queue::Enqueue::Full => {
                            shared.switched.store(true, Ordering::Relaxed);
                        }
                    }
                }
                self.deque.push(id);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process(
        &self,
        id: u32,
        block: u32,
        stats: &LocalStats,
        rows_u32: &mut [u32],
        transposed: &mut [E],
        raw_scratch: &mut Vec<u8>,
        elems_scratch: &mut Vec<E>,
        spill_scratch: &mut Vec<u8>,
    ) {
        let shared = self.shared;
        let n = shared.n;
        let k = shared.k;
        let blocks = shared.opts.symbol_blocks;
        let compressed_mode = shared.phase.load(Ordering::SeqCst) == PHASE_COMPRESSED;

        // Source mapping → u32 rows (fetch from the spill tier and
        // decompress first when needed).
        {
            let buf = shared.store.mapping(id);
            let raw: &[u8] = if let Some(r) = buf.spill {
                let store = shared
                    .spill
                    .as_ref()
                    .expect("spill marker without a spill store");
                if let Err(e) = store.fetch(r, spill_scratch) {
                    self.record_error(e);
                    return;
                }
                // On-access promotion: re-install the fetched blob so the
                // next reader finds it resident. Losing the CAS (a racing
                // promoter won) just drops our copy — the segment bytes
                // are immutable either way, so both copies are identical.
                let promoted = MappingBuf::resident(true, spill_scratch.clone().into_boxed_slice());
                if shared.store.try_promote(id, promoted) {
                    let _ = shared.mem.charge(spill_scratch.len());
                }
                raw_scratch.clear();
                self.codec
                    .decompress(spill_scratch, raw_scratch)
                    .expect("spilled state failed to decompress");
                raw_scratch
            } else if buf.compressed {
                raw_scratch.clear();
                self.codec
                    .decompress(&buf.data, raw_scratch)
                    .expect("stored state failed to decompress");
                raw_scratch
            } else {
                &buf.data
            };
            E::read_bytes(raw, elems_scratch);
            for (r, e) in rows_u32.iter_mut().zip(elems_scratch.iter()) {
                *r = e.to_u32();
            }
        }

        // Symbol range of this work item: the whole alphabet for the
        // coarse-grained default, one block of it for medium granularity.
        let per_block = k.div_ceil(blocks);
        let sym_lo = block as usize * per_block;
        let sym_hi = (sym_lo + per_block).min(k);

        if blocks == 1 {
            // All |Σ| successors at once (parameterized transposition).
            E::transpose_gather(&shared.table_typed, k, rows_u32, transposed);
        } else {
            // Medium-grained: generate this block symbol-by-symbol
            // (line 6 of Algorithm 1); the transposition kernel's
            // locality is the price of the finer distribution (§III-B1).
            for sym in sym_lo..sym_hi {
                for (i, &q) in rows_u32.iter().enumerate() {
                    transposed[sym * n + i] = shared.table_typed[q as usize * k + sym];
                }
            }
        }

        for sym in sym_lo..sym_hi {
            LocalStats::bump(&stats.candidates);
            let cand = &transposed[sym * n..(sym + 1) * n];
            let cand_bytes = E::as_bytes(cand);
            let fp = self.fingerprinter.fingerprint(cand_bytes);

            // Representation used for comparison and storage: compressed
            // candidates compare against compressed residents — the codec
            // is deterministic, so equal plaintexts ⇔ equal ciphertexts.
            let compressed_repr: Option<Vec<u8>> = if compressed_mode {
                Some(self.codec.compress_to_vec(cand_bytes))
            } else {
                None
            };
            let repr: &[u8] = compressed_repr.as_deref().unwrap_or(cand_bytes);

            let probabilistic = shared.opts.probabilistic;
            let eq = |other: u32| {
                if probabilistic {
                    // Fingerprint-only identity (the §III-A probabilistic
                    // variant): no payload to compare.
                    return shared.store.fingerprint(other) == fp;
                }
                if shared.opts.fingerprint_short_circuit && shared.store.fingerprint(other) != fp {
                    return false;
                }
                LocalStats::bump(&stats.exhaustive);
                let obuf = shared.store.mapping(other);
                let equal = if let Some(r) = obuf.spill {
                    // The resident marker is empty: compare against the
                    // spilled bytes (same compressed representation). A
                    // fetch failure marks the run failed — the returned
                    // `false` can at worst insert a duplicate into an
                    // already-discarded build.
                    let store = shared
                        .spill
                        .as_ref()
                        .expect("spill marker without a spill store");
                    let mut spilled = Vec::new();
                    match store.fetch(r, &mut spilled) {
                        Ok(()) => spilled.as_slice() == repr,
                        Err(e) => {
                            self.record_error(e);
                            false
                        }
                    }
                } else {
                    shared.store.mapping_equals(other, repr)
                };
                if !equal && shared.store.fingerprint(other) == fp {
                    LocalStats::bump(&stats.collisions);
                }
                equal
            };

            // Cheap pre-check avoids allocating a record for duplicates
            // (the overwhelmingly common case). The fault site lets the
            // regression suite force the race-loser path deterministically:
            // with it armed the pre-check is skipped, so this worker
            // allocates an arena record and then loses the insert race
            // whenever the candidate already exists — exactly the arena
            // gap pattern real CAS races produce.
            let force_race = sfa_sync::fault_point!("construct/race").is_err();
            if !force_race {
                if let Some(found) = shared.table.find(fp, &shared.store, eq) {
                    LocalStats::bump(&stats.duplicates);
                    shared.store.set_succ(id, sym, found);
                    continue;
                }
            }

            let payload: Box<[u8]> = repr.to_vec().into_boxed_slice();
            let payload_len = payload.len();
            let Some(new_id) = shared.store.alloc(fp, payload, compressed_mode) else {
                self.record_error(SfaError::StateBudgetExceeded {
                    budget: shared.opts.state_budget,
                });
                return;
            };
            if shared.mem.charge(payload_len) && shared.phase.load(Ordering::SeqCst) == PHASE_RAW {
                // First crossing of the watermark: request compression.
                shared
                    .phase
                    .store(PHASE_COMPRESS_REQUESTED, Ordering::SeqCst);
            }
            match shared.table.find_or_insert(fp, new_id, &shared.store, eq) {
                FindOrInsert::Found(existing) => {
                    // Lost an insert race: `new_id` becomes arena garbage.
                    // Tombstone it so the compression-phase table rebuild
                    // never resurrects it (harvest also filters on table
                    // membership), and uncharge its payload — the bytes
                    // stay allocated until the arena drops, but they are
                    // dead weight, and leaving them charged would drift
                    // `used` away from live bytes (inflating `over_limit`
                    // pressure on the spill tier for the whole build).
                    LocalStats::bump(&stats.duplicates);
                    shared.store.link(new_id).store(TOMBSTONE, Ordering::SeqCst);
                    shared.mem.credit(payload_len);
                    shared.store.set_succ(id, sym, existing);
                }
                FindOrInsert::Inserted => {
                    shared.store.set_succ(id, sym, new_id);
                    shared.pending.fetch_add(blocks as u64, Ordering::SeqCst);
                    for blk in 0..blocks as u32 {
                        self.dispatch_work(new_id * blocks as u32 + blk);
                    }
                }
            }
        }
        if shared.opts.probabilistic && blocks == 1 {
            // The mapping payload of a processed state is never read
            // again (identity is fingerprint-only and the final mappings
            // are reconstructed from δₛ): drop it to cap peak memory.
            // Safe: only the processing worker reads its state's payload,
            // and processing is over. (With medium granularity other
            // blocks of the same state may still need the payload, so the
            // drop is skipped — granularity 1 is the probabilistic mode's
            // intended configuration.)
            let len = shared.store.mapping(id).data.len();
            shared.mem.credit(len);
            shared
                .store
                .replace_mapping(id, MappingBuf::resident(false, Box::default()));
        }
    }

    fn record_error(&self, err: SfaError) {
        let shared = self.shared;
        let mut slot = shared.error.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
        shared.has_error.store(true, Ordering::SeqCst);
    }

    /// Converge the workers for the stop-the-world sub-protocols. Both
    /// the compression request and a checkpoint request funnel through
    /// this single entry barrier: if each protocol had its own quiesce
    /// barrier, workers racing toward different protocols would merge
    /// into one barrier generation and corrupt both (e.g. a checkpoint
    /// reader scanning mappings while a compression peer swaps them).
    ///
    /// After R1 no worker is processing a state, so `phase` and
    /// `ckpt_requested` are frozen: every worker latches identical
    /// booleans and therefore executes an identical barrier sequence —
    /// compression first (it changes the stored representation), then
    /// the checkpoint snapshot (which must read a settled arena).
    fn rendezvous(&self) {
        let shared = self.shared;
        // R1: quiesce.
        shared.barrier.wait();
        let compress = shared.phase.load(Ordering::SeqCst) == PHASE_COMPRESS_REQUESTED;
        let ckpt = shared.ckpt_requested.load(Ordering::SeqCst);
        let spill = shared.spill_requested.load(Ordering::SeqCst);
        // R1b: everyone has latched the flags before anyone may mutate
        // them. Without this, the checkpoint writer's CAS (which clears
        // `ckpt_requested` inside `participate_checkpoint`) can race a
        // slow worker that hasn't latched yet — that worker would read
        // `ckpt = false`, skip R2, and re-enter the main loop while the
        // snapshot is still being written, merging barrier generations
        // (and, transitively, allowing two concurrent writers on the
        // same checkpoint path). Between R1 and R1b both flags are
        // stable: every registered worker is inside this protocol, and
        // the only mutators (the writer CAS, the compression leader's
        // phase switch) run strictly after R1b.
        shared.barrier.wait();
        if compress {
            self.participate_compression();
        }
        if spill {
            // After compression (the pass demotes compressed payloads)
            // and before a checkpoint snapshot (which reads through the
            // markers the pass installs).
            self.participate_spill();
        }
        if ckpt {
            self.participate_checkpoint();
        }
    }

    /// The stop-the-world compression phase (§III-C). Entered from
    /// [`WorkerCtx::rendezvous`] with all workers quiesced (R1); between
    /// the barriers nobody processes states, so mapping buffers can be
    /// swapped and freed safely.
    fn participate_compression(&self) {
        let shared = self.shared;
        let threads = shared.opts.threads;
        // Leader election by CAS, not worker index: worker 0 may already
        // have exited (error path), and an absent leader would leave the
        // phase flag stuck at COMPRESS_REQUESTED — the survivors would
        // re-enter this protocol forever. Compression is one-shot per
        // run, so a plain latch suffices.
        let leader = shared
            .compress_leader
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        if leader {
            shared.clock.lock().compression_start = Some(Instant::now());
        }
        let total = shared.store.len();
        let governed = !shared.governor.is_unlimited();
        // Jointly compress: worker w takes ids ≡ w (mod threads). A
        // worker that observes budget exhaustion or cancellation here
        // records the error and skips its remaining partition, but still
        // completes the whole barrier protocol — leaving the quorum
        // mid-phase could strand peers, and on the error path the
        // automaton is discarded anyway, so the skipped work is moot.
        let mut processed = 0u64;
        let mut id = self.index;
        while id < total {
            if shared.has_error.load(Ordering::SeqCst) {
                break;
            }
            if governed && processed.is_multiple_of(64) {
                if let Err(e) = shared
                    .governor
                    .check(shared.store.len() as u64, shared.mem.used())
                {
                    self.record_error(e);
                    break;
                }
            }
            processed += 1;
            // Tombstoned race losers are dead weight: they are never read
            // again and their payload was already uncharged when they
            // lost, so re-encoding them here would waste work and drift
            // the credit/charge balance.
            if shared.store.link(id as u32).load(Ordering::SeqCst) != TOMBSTONE {
                let buf = shared.store.mapping(id as u32);
                if !buf.compressed {
                    let compressed = self.codec.compress_to_vec(&buf.data);
                    shared.mem.credit(buf.data.len());
                    let _ = shared.mem.charge(compressed.len());
                    shared.store.replace_mapping(
                        id as u32,
                        MappingBuf::resident(true, compressed.into_boxed_slice()),
                    );
                }
            }
            id += threads;
        }
        // B2: all states compressed.
        shared.barrier.wait();
        if leader {
            // "the hash-table is emptied" — then rebuilt without
            // duplicate checks.
            shared.table.clear();
        }
        // B3: table cleared.
        shared.barrier.wait();
        let mut id = self.index;
        while id < total {
            if shared.has_error.load(Ordering::SeqCst) {
                break;
            }
            // Only re-insert live states: wasted duplicate allocations
            // were never in the table; re-inserting them would resurrect
            // duplicates. Live = referenced as some successor or the
            // start state — cheapest reliable criterion here is: the
            // record was reachable through the old table. We preserved
            // that knowledge in the chain links being part of the old
            // table; after clear() it is gone, so instead we re-insert
            // every allocated record that is *not* marked wasted. Wasted
            // records are recognizable: they lost their insert race, so
            // their successor slots are still all NIL *and* they are not
            // the processed frontier… — to keep this airtight the engine
            // marks losers explicitly via a tombstone fingerprint chain
            // link: see `find_or_insert` loser handling below.
            if shared.store.link(id as u32).load(Ordering::SeqCst) != TOMBSTONE {
                shared.table.insert_unchecked(
                    shared.store.fingerprint(id as u32),
                    id as u32,
                    &shared.store,
                );
            }
            id += threads;
        }
        // B4: table rebuilt.
        shared.barrier.wait();
        if leader {
            shared.clock.lock().compression_end = Some(Instant::now());
            shared.phase.store(PHASE_COMPRESSED, Ordering::SeqCst);
        }
        // B5: phase switch visible to everyone.
        shared.barrier.wait();
    }

    /// The stop-the-world spill pass (tier 3 of `crate::store`). Entered
    /// from [`WorkerCtx::rendezvous`] with all workers quiesced, so
    /// mapping buffers can be swapped for spill markers safely. One
    /// leader — the CAS winner that clears the request flag — demotes;
    /// the closing barrier releases everyone.
    fn participate_spill(&self) {
        let shared = self.shared;
        if shared
            .spill_requested
            .compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            if !shared.has_error.load(Ordering::SeqCst) {
                if let Err(e) = self.spill_pass() {
                    self.record_error(e);
                }
            }
            // Advance the progress markers even when the pass failed or
            // demoted nothing, so workers cannot immediately re-request
            // an identical pass (see `Shared::spill_last_len`).
            let store = shared
                .spill
                .as_ref()
                .expect("spill requested without a store");
            shared
                .spill_last_len
                .store(shared.store.len() as u64, Ordering::SeqCst);
            shared
                .spill_last_promotions
                .store(store.promotions(), Ordering::SeqCst);
        }
        // Release the quiesced peers.
        shared.barrier.wait();
    }

    /// Demote the oldest resident compressed payloads to one spill
    /// segment until resident bytes drop to half the cap (a refill
    /// watermark — stopping exactly at the cap would re-arm the next
    /// stop-the-world pass on the very next allocation). Runs quiesced:
    /// `replace_mapping` is safe, and ids are scanned in allocation order
    /// so the *oldest* (least likely to be re-read — BFS frontiers move
    /// forward) go first. Tombstoned race losers were already uncharged
    /// when they lost, so demoting them would double-credit; skip them.
    fn spill_pass(&self) -> Result<(), SfaError> {
        let shared = self.shared;
        let store = shared
            .spill
            .as_ref()
            .expect("spill pass without a spill store");
        let floor = shared.mem.limit().unwrap_or(u64::MAX) / 2;
        let total = shared.store.len() as u32;
        let mut batch: Vec<u8> = Vec::new();
        let mut refs: Vec<(u32, SpillRef)> = Vec::new();
        let mut would_free = 0u64;
        for id in 0..total {
            if shared.mem.used().saturating_sub(would_free) <= floor {
                break;
            }
            if shared.store.link(id).load(Ordering::SeqCst) == TOMBSTONE {
                continue;
            }
            let buf = shared.store.mapping(id);
            if !buf.compressed || buf.spill.is_some() || buf.data.is_empty() {
                continue;
            }
            let off = batch.len() as u32;
            batch.extend_from_slice(&buf.data);
            refs.push((
                id,
                SpillRef {
                    seg: 0,
                    off,
                    len: buf.data.len() as u32,
                },
            ));
            would_free += buf.data.len() as u64;
            if batch.len() >= (u32::MAX / 2) as usize {
                break; // keep the u32 segment offsets comfortably in range
            }
        }
        if refs.is_empty() {
            return Ok(());
        }
        let seg = store.write_segment(&batch, refs.len() as u64)?;
        for (id, mut r) in refs {
            r.seg = seg;
            let len = r.len as usize;
            shared.store.replace_mapping(id, MappingBuf::spilled(r));
            shared.mem.credit(len);
        }
        // All resident payloads are compressed in this phase, so the hot
        // tier is empty by definition.
        crate::store::publish_tier_gauges(0, shared.mem.used(), store.spilled_bytes());
        Ok(())
    }

    /// The stop-the-world checkpoint snapshot. Entered from
    /// [`WorkerCtx::rendezvous`] with all workers quiesced (R1, plus the
    /// compression sub-protocol when both were requested), so the arena
    /// is settled and the canonical prefix is stable. One worker —
    /// whichever wins the CAS that clears the request flag, NOT worker 0
    /// (which may already have exited on an error path) — snapshots and
    /// writes the artifact; the closing barrier releases everyone.
    fn participate_checkpoint(&self) {
        let shared = self.shared;
        if shared
            .ckpt_requested
            .compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            // Never snapshot a failing run: the error path discards the
            // build, and a checkpoint of it could shadow a good one.
            if !shared.has_error.load(Ordering::SeqCst) {
                let cfg = shared
                    .ckpt
                    .as_ref()
                    .expect("checkpoint requested without a cadence config");
                if let Err(e) = self.write_checkpoint(cfg) {
                    self.record_error(e);
                }
            }
        }
        // R2: snapshot complete; peers resume.
        shared.barrier.wait();
    }

    /// Snapshot the canonical prefix to the checkpoint artifact (atomic
    /// write). The persisted shape is exactly the sequential engine's:
    /// `{mappings, δₛ, cursor}` in canonical order, plaintext rows —
    /// which is what makes the two engines' checkpoints interchangeable.
    fn write_checkpoint(&self, cfg: &CheckpointConfig) -> Result<(), SfaError> {
        sfa_sync::fault_point!("checkpoint/write")
            .map_err(|e| SfaError::Artifact(IoError::Io(e.to_string())))?;
        let shared = self.shared;
        let n = shared.n;
        let k = shared.k;
        let (order, canon_of, processed) = canonical_order(&shared.store, k);
        let num_states = order.len();
        // δₛ in canonical ids: complete rows below the cursor, MAX above
        // (frontier rows are recomputed from scratch on resume).
        let mut delta = vec![u32::MAX; num_states * k];
        for (c, &id) in order.iter().take(processed).enumerate() {
            for sym in 0..k {
                let succ = shared.store.succ(id, sym);
                debug_assert_ne!(succ, NIL);
                delta[c * k + sym] = canon_of[succ as usize];
            }
        }
        // Mapping arena in canonical order, decompressed: checkpoints
        // persist plaintext rows (the resuming engine re-compresses
        // under its own policy), matching the sequential engine.
        let mut flat: Vec<E> = vec![E::from_u32(0); num_states * n];
        let mut raw_scratch: Vec<u8> = Vec::new();
        let mut fetch_scratch: Vec<u8> = Vec::new();
        let mut elems: Vec<E> = Vec::new();
        for (c, &id) in order.iter().enumerate() {
            let buf = shared.store.mapping(id);
            let bytes: &[u8] = if let Some(r) = buf.spill {
                shared
                    .spill
                    .as_ref()
                    .expect("spill marker without a spill store")
                    .fetch(r, &mut fetch_scratch)?;
                &fetch_scratch
            } else {
                &buf.data
            };
            let raw: &[u8] = if buf.compressed {
                raw_scratch.clear();
                self.codec
                    .decompress(bytes, &mut raw_scratch)
                    .expect("stored state failed to decompress");
                &raw_scratch
            } else {
                bytes
            };
            E::read_bytes(raw, &mut elems);
            flat[c * n..(c + 1) * n].copy_from_slice(&elems);
        }
        let ckpt = Checkpoint {
            dfa_states: n as u32,
            symbols: k as u32,
            elem_bytes: E::BYTES as u8,
            processed: processed as u64,
            num_states: num_states as u64,
            dfa_crc: shared.dfa_crc,
            delta,
            mappings_le: artifact::mappings_to_le(&flat),
        };
        artifact::write_checkpoint(&cfg.path, &ckpt).map_err(SfaError::Artifact)
    }
}

/// Chain-link tombstone marking arena records that lost their insert race
/// and must never re-enter the hash table.
const TOMBSTONE: u32 = u32::MAX - 1;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialVariant;
    use sfa_automata::alphabet::Alphabet;
    use sfa_automata::pipeline::Pipeline;

    fn rg_dfa() -> Dfa {
        Pipeline::search(Alphabet::amino_acids())
            .compile_str("RG")
            .unwrap()
    }

    fn assert_equivalent(dfa: &Dfa, opts: &ParallelOptions) {
        let seq = Sfa::builder(dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap();
        let par = Sfa::builder(dfa).options(opts).build().unwrap();
        assert_eq!(
            seq.sfa.num_states(),
            par.sfa.num_states(),
            "state count mismatch under {opts:?}"
        );
        par.sfa.validate(dfa).unwrap();
    }

    #[test]
    fn single_thread_matches_sequential() {
        assert_equivalent(&rg_dfa(), &ParallelOptions::with_threads(1));
    }

    #[test]
    fn multi_thread_matches_sequential() {
        for threads in [2, 4, 8] {
            assert_equivalent(&rg_dfa(), &ParallelOptions::with_threads(threads));
        }
    }

    #[test]
    fn larger_pattern_all_schedulers() {
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str("R[GA]{2}N")
            .unwrap();
        for scheduler in [
            Scheduler::WorkStealing,
            Scheduler::GlobalOnly,
            Scheduler::SharedMpmc,
        ] {
            let opts = ParallelOptions::with_threads(4).scheduler(scheduler);
            assert_equivalent(&dfa, &opts);
        }
    }

    #[test]
    fn tiny_global_queue_forces_early_switch() {
        let mut opts = ParallelOptions::with_threads(4);
        opts.global_queue_capacity = 2;
        assert_equivalent(&rg_dfa(), &opts);
    }

    #[test]
    fn compression_from_start_matches() {
        let dfa = rg_dfa();
        let opts = ParallelOptions::with_threads(2).compression(CompressionPolicy::FromStart);
        let par = Sfa::builder(&dfa).options(&opts).build().unwrap();
        assert!(par.sfa.is_compressed());
        let seq = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap();
        assert_eq!(par.sfa.num_states(), seq.sfa.num_states());
        par.sfa.validate(&dfa).unwrap();
    }

    #[test]
    fn three_phase_compression_trips_mid_run() {
        // r100 generates enough states with 204-byte vectors; the tiny
        // watermark trips compression early.
        let dfa = sfa_automata::random::rn(100);
        let opts = ParallelOptions::with_threads(4)
            .compression(CompressionPolicy::WhenMemoryExceeds(4096));
        let par = Sfa::builder(&dfa).options(&opts).build().unwrap();
        assert!(par.stats.compressed, "compression phase must have run");
        assert!(par.sfa.is_compressed());
        assert!(par.stats.compression_secs >= 0.0);
        let seq = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap();
        assert_eq!(par.sfa.num_states(), seq.sfa.num_states());
        par.sfa.validate(&dfa).unwrap();
        // Ratio sanity: sink-dominated states compress well.
        assert!(par.stats.compression_ratio() > 4.0);
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let dfa = rg_dfa();
        let opts = ParallelOptions::with_threads(2).state_budget(3);
        match Sfa::builder(&dfa).options(&opts).build() {
            Err(SfaError::StateBudgetExceeded { budget: 3 }) => {}
            Err(other) => panic!("expected budget error, got {other:?}"),
            Ok(r) => panic!("expected budget error, got {} states", r.sfa.num_states()),
        }
    }

    #[test]
    fn zero_threads_rejected() {
        let err = Sfa::builder(&rg_dfa())
            .options(&ParallelOptions::with_threads(0))
            .build()
            .unwrap_err();
        assert_eq!(err, SfaError::NoThreads);
    }

    #[test]
    fn fingerprint_ablation_matches() {
        let dfa = rg_dfa();
        let mut opts = ParallelOptions::with_threads(2);
        opts.fingerprint_short_circuit = false;
        let par = Sfa::builder(&dfa).options(&opts).build().unwrap();
        par.sfa.validate(&dfa).unwrap();
        // Without the short-circuit every chain entry is byte-compared.
        assert!(par.stats.exhaustive_compares >= par.stats.duplicates);
    }

    #[test]
    fn stats_are_plausible() {
        let dfa = rg_dfa();
        let par = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(2))
            .build()
            .unwrap();
        assert_eq!(par.stats.states, 6);
        assert_eq!(par.stats.candidates, 6 * 20);
        assert_eq!(
            par.stats.duplicates,
            par.stats.candidates - (par.stats.states - 1)
        );
        assert!(par.stats.total_secs > 0.0);
    }
}

#[cfg(test)]
mod probabilistic_tests {
    use super::*;
    use crate::sequential::SequentialVariant;

    #[test]
    fn probabilistic_matches_exact_on_rn() {
        let dfa = sfa_automata::random::rn(60);
        let exact = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap();
        for algo in [FingerprintAlgo::City, FingerprintAlgo::Rabin] {
            let opts = ParallelOptions::with_threads(4).probabilistic(algo);
            let prob = Sfa::builder(&dfa).options(&opts).build().unwrap();
            // 64-bit fingerprints over a few thousand states: a collision
            // would be a genuine bug signal at these sizes.
            assert_eq!(prob.sfa.num_states(), exact.sfa.num_states(), "{algo:?}");
            // Reconstructed mappings must be fully consistent.
            prob.sfa.validate(&dfa).unwrap();
        }
    }

    #[test]
    fn probabilistic_reduces_peak_memory() {
        let dfa = sfa_automata::random::rn(100);
        let exact = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(2))
            .build()
            .unwrap();
        let prob = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(2).probabilistic(FingerprintAlgo::Rabin))
            .build()
            .unwrap();
        assert_eq!(prob.sfa.num_states(), exact.sfa.num_states());
        assert!(
            prob.stats.peak_bytes * 4 < exact.stats.peak_bytes,
            "probabilistic peak {} not well below exact peak {}",
            prob.stats.peak_bytes,
            exact.stats.peak_bytes
        );
    }

    #[test]
    fn probabilistic_rejects_compression() {
        let dfa = sfa_automata::random::rn(20);
        let mut opts = ParallelOptions::with_threads(2).probabilistic(FingerprintAlgo::City);
        opts.compression = CompressionPolicy::FromStart;
        assert_eq!(
            Sfa::builder(&dfa).options(&opts).build().unwrap_err(),
            SfaError::InvalidOptions("probabilistic mode stores no payloads to compress")
        );
    }

    #[test]
    fn probabilistic_matching_agrees() {
        let dfa = sfa_automata::random::rn(40);
        let opts = ParallelOptions::with_threads(2).probabilistic(FingerprintAlgo::City);
        let sfa = Sfa::builder(&dfa).options(&opts).build().unwrap().sfa;
        let text = sfa_workloads::protein_text(20_000, 5);
        assert_eq!(
            crate::matcher::match_with_sfa(&sfa, &dfa, &text, 4),
            crate::matcher::match_sequential(&dfa, &text)
        );
    }
}

#[cfg(test)]
mod granularity_tests {
    use super::*;
    use crate::sequential::SequentialVariant;

    #[test]
    fn medium_grained_matches_coarse() {
        let dfa = sfa_automata::random::rn(50);
        let expected = Sfa::builder(&dfa)
            .sequential(SequentialVariant::Transposed)
            .build()
            .unwrap()
            .sfa
            .num_states();
        for blocks in [1usize, 2, 4, 5, 20] {
            for threads in [1usize, 4] {
                let opts = ParallelOptions::with_threads(threads).symbol_blocks(blocks);
                let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
                assert_eq!(
                    r.sfa.num_states(),
                    expected,
                    "blocks {blocks} threads {threads}"
                );
                r.sfa.validate(&dfa).unwrap();
            }
        }
    }

    #[test]
    fn medium_grained_with_compression() {
        let dfa = sfa_automata::random::rn(60);
        let expected = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(2))
            .build()
            .unwrap()
            .sfa
            .num_states();
        let opts = ParallelOptions::with_threads(4)
            .symbol_blocks(4)
            .compression(CompressionPolicy::WhenMemoryExceeds(1 << 13));
        let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
        assert_eq!(r.sfa.num_states(), expected);
        assert!(r.stats.compressed);
        r.sfa.validate(&dfa).unwrap();
    }

    #[test]
    fn invalid_block_counts_rejected() {
        let dfa = sfa_automata::random::rn(10);
        for blocks in [0usize, 21, 100] {
            let opts = ParallelOptions::with_threads(2).symbol_blocks(blocks);
            assert!(matches!(
                Sfa::builder(&dfa).options(&opts).build(),
                Err(SfaError::InvalidOptions(_))
            ));
        }
    }

    #[test]
    fn candidate_stats_account_for_blocks() {
        let dfa = sfa_automata::random::rn(30);
        let coarse = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(2))
            .build()
            .unwrap();
        let medium = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(2).symbol_blocks(4))
            .build()
            .unwrap();
        // Same candidates in total regardless of granularity.
        assert_eq!(coarse.stats.candidates, medium.stats.candidates);
        assert_eq!(coarse.stats.states, medium.stats.states);
    }
}

#[cfg(test)]
mod error_robustness_tests {
    use super::*;

    #[test]
    fn budget_error_racing_compression_request_does_not_deadlock() {
        // Regression: a worker exiting on StateBudgetExceeded while a peer
        // trips the compression watermark used to strand the fixed-count
        // barrier forever. The quorum-aware PhaseBarrier must let the run
        // finish with the budget error instead.
        let dfa = sfa_automata::random::rn(120);
        for _ in 0..5 {
            let opts = ParallelOptions::with_threads(4)
                .state_budget(400)
                .compression(CompressionPolicy::WhenMemoryExceeds(16 * 1024));
            match Sfa::builder(&dfa).options(&opts).build() {
                Err(SfaError::StateBudgetExceeded { budget: 400 }) => {}
                other => panic!("expected budget error, got {:?}", other.map(|r| r.stats)),
            }
        }
    }

    #[test]
    fn watermark_below_first_state_still_compresses() {
        // Regression: the seed state's charge used to consume the one-shot
        // watermark trip, so a watermark smaller than the first state
        // meant compression never ran.
        let dfa = sfa_automata::random::rn(80);
        let opts =
            ParallelOptions::with_threads(2).compression(CompressionPolicy::WhenMemoryExceeds(1));
        let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
        assert!(r.stats.compressed, "compression must trigger");
        assert!(r.sfa.is_compressed());
        r.sfa.validate(&dfa).unwrap();
    }

    #[test]
    fn seed_items_survive_tiny_global_queue_with_blocks() {
        // Regression: seeding `blocks` items into a smaller global queue
        // silently dropped work and hung the run.
        let dfa = sfa_automata::random::rn(40);
        let mut opts = ParallelOptions::with_threads(2).symbol_blocks(8);
        opts.global_queue_capacity = 1;
        let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
        r.sfa.validate(&dfa).unwrap();
    }

    #[test]
    fn memory_accounting_balances_over_racy_builds() {
        // Regression (tiered-store PR): race-loser records must uncharge
        // their payload when they lose the insert CAS. Before the fix,
        // `used` drifted up by one payload per lost race, inflating
        // spill-tier pressure for the rest of the build. With balanced
        // accounting, resident bytes at harvest equal the retained
        // store's bytes exactly — for any racy schedule.
        let dfa = sfa_automata::random::rn(60);
        for _ in 0..3 {
            let r = Sfa::builder(&dfa)
                .options(&ParallelOptions::with_threads(8))
                .build()
                .unwrap();
            assert_eq!(
                r.stats.resident_bytes, r.stats.stored_bytes,
                "charge/uncharge must balance over a racy parallel build"
            );
        }
    }

    #[test]
    fn memory_accounting_credits_race_losers() {
        // After a run with no compression, `used` accounting should equal
        // live payload bytes (losers credited back), so peak ≥ used and
        // used ≈ states × state size.
        let dfa = sfa_automata::random::rn(60);
        let r = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(4))
            .build()
            .unwrap();
        assert!(r.stats.peak_bytes >= r.stats.uncompressed_bytes);
        // Peak can exceed live bytes by at most the transient losers.
        assert!(r.stats.peak_bytes < r.stats.uncompressed_bytes * 2);
    }
}

#[cfg(test)]
mod spill_tests {
    use super::*;
    use crate::io;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sfa_par_spill_{}_{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn capped_build_is_byte_identical_to_uncapped() {
        let dfa = sfa_automata::random::rn(120);
        let uncapped = Sfa::builder(&dfa)
            .options(&ParallelOptions::with_threads(4))
            .build()
            .unwrap();
        // A cap at 1/20th of the retained plaintext bytes sits well below
        // what even the compressed tier needs resident, forcing passes
        // all the way down to disk.
        let cap = (uncapped.stats.stored_bytes / 20).max(1);
        let dir = tmp_dir("ident");
        let opts =
            ParallelOptions::with_threads(4).spill(crate::store::SpillConfig::new(&dir, cap));
        let capped = Sfa::builder(&dfa).options(&opts).build().unwrap();
        assert!(capped.stats.compressed, "cap must trip the compressed tier");
        assert!(
            capped.stats.demotions > 0 && capped.stats.spilled_bytes > 0,
            "cap must reach the disk tier (demotions {}, spilled {})",
            capped.stats.demotions,
            capped.stats.spilled_bytes
        );
        assert!(
            capped.stats.resident_bytes < uncapped.stats.stored_bytes,
            "spilling must shed resident bytes"
        );
        // The headline guarantee: the serialized artifact is unchanged by
        // the whole demotion/promotion schedule.
        assert_eq!(
            io::to_bytes(&capped.sfa),
            io::to_bytes(&uncapped.sfa),
            "capped artifact must be byte-identical to the uncapped one"
        );
        capped.sfa.validate(&dfa).unwrap();
        drop(capped);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spilled_frontier_states_promote_on_access() {
        // A tiny cap spills unprocessed frontier states, so workers must
        // fetch (and re-install) them to continue — promotions happen.
        let dfa = sfa_automata::random::rn(100);
        let dir = tmp_dir("promote");
        let opts =
            ParallelOptions::with_threads(2).spill(crate::store::SpillConfig::new(&dir, 2048));
        let r = Sfa::builder(&dfa).options(&opts).build().unwrap();
        assert!(r.stats.demotions > 0);
        assert!(
            r.stats.promotions > 0,
            "spilled frontier must have been promoted back on access"
        );
        r.sfa.validate(&dfa).unwrap();
        drop(r);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_rejects_probabilistic() {
        let dfa = sfa_automata::random::rn(20);
        let dir = tmp_dir("prob");
        let opts = ParallelOptions::with_threads(2)
            .probabilistic(FingerprintAlgo::City)
            .spill(crate::store::SpillConfig::new(&dir, 1024));
        assert!(matches!(
            Sfa::builder(&dfa).options(&opts).build(),
            Err(SfaError::InvalidOptions(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_dir_unavailable_is_typed() {
        // A path under a *file* can never become a directory.
        let blocker =
            std::env::temp_dir().join(format!("sfa_spill_blocker_{}", std::process::id()));
        std::fs::write(&blocker, b"not a dir").unwrap();
        let dfa = sfa_automata::random::rn(20);
        let opts = ParallelOptions::with_threads(2)
            .spill(crate::store::SpillConfig::new(blocker.join("sub"), 1024));
        match Sfa::builder(&dfa).options(&opts).build() {
            Err(SfaError::SpillDirUnavailable { .. }) => {}
            other => panic!("expected SpillDirUnavailable, got {other:?}"),
        }
        let _ = std::fs::remove_file(&blocker);
    }
}
