//! Brzozowski's minimization — an independent oracle for Hopcroft.
//!
//! `minimize(A) = det(rev(det(rev(A))))`: reversing a DFA gives an NFA
//! whose determinization is the minimal DFA of the reversed language;
//! doing it twice yields the minimal DFA of the original language. It is
//! exponentially slower than Hopcroft in the worst case, but its
//! correctness follows from a two-line proof, which makes it the ideal
//! cross-validation oracle for this crate's production
//! [`crate::minimize::minimize`] (see the tests here and the workspace
//! property suite).

use crate::dfa::{Dfa, StateId};
use crate::error::AutomataError;
use std::collections::HashMap;

/// Reverse-determinize: the minimal DFA of the *reversed* language of
/// `dfa`, built by subset construction over reversed edges. (All states
/// of `dfa` are treated as reachable; unreachable ones simply never
/// appear in a subset that matters.)
fn reverse_determinize(dfa: &Dfa, budget: Option<usize>) -> Result<Dfa, AutomataError> {
    let n = dfa.num_states() as usize;
    let k = dfa.num_symbols();

    // Reversed transition lists: rev[sym][q] = set of p with δ(p,sym)=q.
    let mut rev: Vec<Vec<Vec<StateId>>> = vec![vec![Vec::new(); n]; k];
    for p in 0..n {
        for (sym, &succ) in dfa.row(p as StateId).iter().enumerate() {
            rev[sym][succ as usize].push(p as StateId);
        }
    }

    // Subset construction: start set = accepting states of the original;
    // a subset accepts iff it contains the original start state.
    let mut index: HashMap<Vec<StateId>, StateId> = HashMap::new();
    let mut subsets: Vec<Vec<StateId>> = Vec::new();
    let mut table: Vec<StateId> = Vec::new();
    let mut accepting: Vec<bool> = Vec::new();
    let mut worklist: Vec<StateId> = Vec::new();

    let intern = |set: Vec<StateId>,
                  index: &mut HashMap<Vec<StateId>, StateId>,
                  subsets: &mut Vec<Vec<StateId>>,
                  table: &mut Vec<StateId>,
                  accepting: &mut Vec<bool>,
                  worklist: &mut Vec<StateId>|
     -> Result<StateId, AutomataError> {
        if let Some(&id) = index.get(&set) {
            return Ok(id);
        }
        if let Some(b) = budget {
            if subsets.len() >= b {
                return Err(AutomataError::StateBudgetExceeded { budget: b });
            }
        }
        let id = subsets.len() as StateId;
        accepting.push(set.binary_search(&dfa.start()).is_ok());
        index.insert(set.clone(), id);
        subsets.push(set);
        table.extend(std::iter::repeat_n(u32::MAX, k));
        worklist.push(id);
        Ok(id)
    };

    let start_set: Vec<StateId> = dfa.accepting_states();
    let start = intern(
        start_set,
        &mut index,
        &mut subsets,
        &mut table,
        &mut accepting,
        &mut worklist,
    )?;

    let mut seen = vec![false; n];
    while let Some(id) = worklist.pop() {
        let set = subsets[id as usize].clone();
        for sym in 0..k {
            for flag in seen.iter_mut() {
                *flag = false;
            }
            let mut moved: Vec<StateId> = Vec::new();
            for &q in &set {
                for &p in &rev[sym][q as usize] {
                    if !seen[p as usize] {
                        seen[p as usize] = true;
                        moved.push(p);
                    }
                }
            }
            moved.sort_unstable();
            let succ = intern(
                moved,
                &mut index,
                &mut subsets,
                &mut table,
                &mut accepting,
                &mut worklist,
            )?;
            table[id as usize * k + sym] = succ;
        }
    }

    Dfa::from_parts(
        dfa.alphabet().clone(),
        subsets.len() as u32,
        start,
        accepting,
        table,
    )
}

/// Minimize `dfa` by Brzozowski's double-reversal. `budget` bounds the
/// intermediate automaton (the first reversal can blow up exponentially).
pub fn minimize_brzozowski(dfa: &Dfa, budget: Option<usize>) -> Result<Dfa, AutomataError> {
    let rev1 = reverse_determinize(dfa, budget)?;
    reverse_determinize(&rev1, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::minimize::minimize;
    use crate::pipeline::Pipeline;
    use crate::random::random_dfa;

    #[test]
    fn agrees_with_hopcroft_on_patterns() {
        let pipeline = Pipeline::search(Alphabet::amino_acids()).without_minimization();
        for pattern in ["RG", "R{2,3}G", "(R|G)N?", "[^P][ST]"] {
            let raw = pipeline.compile_str(pattern).unwrap();
            let hopcroft = minimize(&raw);
            let brzozowski = minimize_brzozowski(&raw, Some(100_000)).unwrap();
            assert_eq!(hopcroft.num_states(), brzozowski.num_states(), "{pattern}");
            assert!(hopcroft.isomorphic(&brzozowski), "{pattern}");
        }
    }

    #[test]
    fn agrees_with_hopcroft_on_random_dfas() {
        let alpha = Alphabet::binary();
        for seed in 0..30 {
            let dfa = random_dfa(&alpha, 8, 0.3, seed);
            let hopcroft = minimize(&dfa);
            let brzozowski = minimize_brzozowski(&dfa, Some(100_000)).unwrap();
            assert!(
                hopcroft.isomorphic(&brzozowski),
                "seed {seed}: hopcroft {} vs brzozowski {}",
                hopcroft.num_states(),
                brzozowski.num_states()
            );
        }
    }

    #[test]
    fn reversal_recognizes_reversed_language() {
        // det(rev(A)) accepts w iff A accepts reverse(w).
        let dfa = Pipeline::exact(Alphabet::amino_acids())
            .compile_str("RGD")
            .unwrap();
        let rev = reverse_determinize(&dfa, None).unwrap();
        assert!(rev.accepts_bytes(b"DGR").unwrap());
        assert!(!rev.accepts_bytes(b"RGD").unwrap());
        assert!(!rev.accepts_bytes(b"DG").unwrap());
    }

    #[test]
    fn budget_bounds_the_blowup() {
        // Reversal of Σ*·r is the classic exponential case for r with a
        // long "k-th symbol from the end" structure.
        let dfa = Pipeline::search(Alphabet::binary())
            .without_minimization()
            .compile_str("1.{6}")
            .unwrap();
        match minimize_brzozowski(&dfa, Some(8)) {
            Err(AutomataError::StateBudgetExceeded { .. }) => {}
            Ok(min) => {
                // Fine too: this direction may stay small; just validate.
                assert!(min.num_states() >= 1);
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn empty_language_minimizes_to_one_state() {
        use crate::dfa::DfaBuilder;
        let mut b = DfaBuilder::new(Alphabet::binary());
        let q0 = b.add_state(false);
        b.set_start(q0);
        b.default_transition(q0, q0);
        let dfa = b.build_strict().unwrap();
        let min = minimize_brzozowski(&dfa, None).unwrap();
        assert_eq!(min.num_states(), 1);
        assert!(!min.accepts(&[0, 1]));
    }
}
