//! Error type shared by the parsing and construction stages.

use std::fmt;

/// Errors produced while parsing patterns or assembling automata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutomataError {
    /// A character in the input is not part of the target alphabet.
    SymbolNotInAlphabet(char),
    /// A byte in the input is not part of the target alphabet.
    ByteNotInAlphabet(u8),
    /// Syntax error while parsing a regular expression.
    RegexSyntax { pos: usize, msg: String },
    /// Syntax error while parsing a PROSITE pattern.
    PrositeSyntax { pos: usize, msg: String },
    /// Syntax error while reading a Grail+ file.
    GrailSyntax { line: usize, msg: String },
    /// A transition references a state that was never declared.
    UnknownState(u32),
    /// The builder was asked to finish an automaton with no states.
    EmptyAutomaton,
    /// A repetition bound was inverted (e.g. `x(5,2)`).
    BadRepetition { min: u32, max: u32 },
    /// The construction exceeded a configured state budget.
    StateBudgetExceeded { budget: usize },
    /// Two automata with different alphabet codings were combined.
    AlphabetMismatch,
}

impl fmt::Display for AutomataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomataError::SymbolNotInAlphabet(c) => {
                write!(f, "symbol {c:?} is not in the alphabet")
            }
            AutomataError::ByteNotInAlphabet(b) => {
                write!(f, "byte 0x{b:02x} is not in the alphabet")
            }
            AutomataError::RegexSyntax { pos, msg } => {
                write!(f, "regex syntax error at offset {pos}: {msg}")
            }
            AutomataError::PrositeSyntax { pos, msg } => {
                write!(f, "PROSITE syntax error at offset {pos}: {msg}")
            }
            AutomataError::GrailSyntax { line, msg } => {
                write!(f, "Grail+ syntax error at line {line}: {msg}")
            }
            AutomataError::UnknownState(q) => write!(f, "transition references unknown state {q}"),
            AutomataError::EmptyAutomaton => write!(f, "automaton has no states"),
            AutomataError::BadRepetition { min, max } => {
                write!(f, "repetition bounds inverted: ({min},{max})")
            }
            AutomataError::StateBudgetExceeded { budget } => {
                write!(f, "construction exceeded the state budget of {budget}")
            }
            AutomataError::AlphabetMismatch => {
                write!(f, "automata have different alphabet codings")
            }
        }
    }
}

impl std::error::Error for AutomataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AutomataError::RegexSyntax {
            pos: 3,
            msg: "unbalanced parenthesis".into(),
        };
        let s = e.to_string();
        assert!(s.contains("offset 3"));
        assert!(s.contains("unbalanced"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            AutomataError::SymbolNotInAlphabet('z'),
            AutomataError::SymbolNotInAlphabet('z')
        );
        assert_ne!(
            AutomataError::ByteNotInAlphabet(1),
            AutomataError::ByteNotInAlphabet(2)
        );
    }
}
