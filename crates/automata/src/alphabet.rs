//! Dense symbol coding for automata alphabets.
//!
//! Automata in this workspace always operate on *dense symbol ids*
//! `0..k` rather than raw bytes, so transition tables are rectangular
//! `|Q| × k` arrays — the layout the paper's parameterized-transposition
//! kernels require. An [`Alphabet`] owns the bidirectional mapping between
//! external bytes and dense ids.

use crate::error::AutomataError;
use std::fmt;

/// Upper bound on alphabet size (dense ids are stored in a `u8`).
pub const MAX_ALPHABET: usize = 256;

/// A dense symbol id (index into an [`Alphabet`]).
pub type SymbolId = u8;

/// A set of symbols from one alphabet, stored as a 256-bit set over dense
/// ids. Used for character classes in regular expressions and NFA edges.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymbolSet {
    bits: [u64; 4],
}

impl SymbolSet {
    /// The empty set.
    pub const EMPTY: SymbolSet = SymbolSet { bits: [0; 4] };

    /// Set containing a single symbol.
    #[inline]
    pub fn singleton(sym: SymbolId) -> Self {
        let mut s = Self::EMPTY;
        s.insert(sym);
        s
    }

    /// Set containing every dense id below `k`.
    pub fn all(k: usize) -> Self {
        debug_assert!(k <= MAX_ALPHABET);
        let mut s = Self::EMPTY;
        for sym in 0..k {
            s.insert(sym as SymbolId);
        }
        s
    }

    /// Insert a symbol.
    #[inline]
    pub fn insert(&mut self, sym: SymbolId) {
        self.bits[(sym >> 6) as usize] |= 1u64 << (sym & 63);
    }

    /// Remove a symbol.
    #[inline]
    pub fn remove(&mut self, sym: SymbolId) {
        self.bits[(sym >> 6) as usize] &= !(1u64 << (sym & 63));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, sym: SymbolId) -> bool {
        self.bits[(sym >> 6) as usize] & (1u64 << (sym & 63)) != 0
    }

    /// Number of symbols in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no symbol is present.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Union.
    pub fn union(&self, other: &SymbolSet) -> SymbolSet {
        let mut out = *self;
        for (a, b) in out.bits.iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
        out
    }

    /// Intersection.
    pub fn intersection(&self, other: &SymbolSet) -> SymbolSet {
        let mut out = *self;
        for (a, b) in out.bits.iter_mut().zip(other.bits.iter()) {
            *a &= *b;
        }
        out
    }

    /// Complement *within an alphabet of size `k`*.
    pub fn complement(&self, k: usize) -> SymbolSet {
        let mut out = SymbolSet::all(k);
        for (a, b) in out.bits.iter_mut().zip(self.bits.iter()) {
            *a &= !*b;
        }
        out
    }

    /// Iterate over member symbols in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = SymbolId> + '_ {
        (0..MAX_ALPHABET as u32)
            .map(|i| i as SymbolId)
            .filter(move |&s| self.contains(s))
    }
}

impl fmt::Debug for SymbolSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymbolSet{{")?;
        for (i, s) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

/// A finite alphabet with a dense coding of its symbols.
///
/// `Alphabet` maps external bytes to dense ids `0..len()` and back. All
/// automata built from one alphabet share its coding, so transition tables
/// stay rectangular and comparisons stay cheap.
#[derive(Clone, PartialEq, Eq)]
pub struct Alphabet {
    /// byte -> dense id (+1); 0 means "not in alphabet".
    encode: [u16; 256],
    /// dense id -> byte.
    decode: Vec<u8>,
}

impl Alphabet {
    /// Build an alphabet from a set of bytes. Duplicates are ignored; dense
    /// ids are assigned in the order of first occurrence.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut encode = [0u16; 256];
        let mut decode = Vec::new();
        for &b in bytes {
            if encode[b as usize] == 0 {
                decode.push(b);
                encode[b as usize] = decode.len() as u16; // id + 1
            }
        }
        Alphabet { encode, decode }
    }

    /// The 20-letter amino-acid alphabet used by PROSITE patterns
    /// (Σ = {A,C,D,E,F,G,H,I,K,L,M,N,P,Q,R,S,T,V,W,Y}).
    pub fn amino_acids() -> Self {
        Self::from_bytes(b"ACDEFGHIKLMNPQRSTVWY")
    }

    /// Lower-case ASCII letters `a..=z`.
    pub fn lowercase() -> Self {
        Self::from_bytes(b"abcdefghijklmnopqrstuvwxyz")
    }

    /// Binary alphabet `{0,1}` (as ASCII bytes `'0'`/`'1'`).
    pub fn binary() -> Self {
        Self::from_bytes(b"01")
    }

    /// All 256 byte values (network-payload matching).
    pub fn full_bytes() -> Self {
        let all: Vec<u8> = (0u16..256).map(|b| b as u8).collect();
        Self::from_bytes(&all)
    }

    /// Printable ASCII (0x20..=0x7e).
    pub fn printable_ascii() -> Self {
        let all: Vec<u8> = (0x20u8..=0x7e).collect();
        Self::from_bytes(&all)
    }

    /// Number of symbols.
    #[inline]
    pub fn len(&self) -> usize {
        self.decode.len()
    }

    /// True if the alphabet has no symbols.
    pub fn is_empty(&self) -> bool {
        self.decode.is_empty()
    }

    /// Dense id for a byte, if the byte belongs to the alphabet.
    #[inline]
    pub fn encode(&self, byte: u8) -> Option<SymbolId> {
        match self.encode[byte as usize] {
            0 => None,
            id => Some((id - 1) as SymbolId),
        }
    }

    /// Dense id for a byte, as an error-producing operation.
    #[inline]
    pub fn encode_checked(&self, byte: u8) -> Result<SymbolId, AutomataError> {
        self.encode(byte)
            .ok_or(AutomataError::ByteNotInAlphabet(byte))
    }

    /// The byte a dense id decodes to.
    ///
    /// # Panics
    /// Panics when `sym >= self.len()`.
    #[inline]
    pub fn decode(&self, sym: SymbolId) -> u8 {
        self.decode[sym as usize]
    }

    /// Encode a whole byte string into dense ids.
    pub fn encode_bytes(&self, text: &[u8]) -> Result<Vec<SymbolId>, AutomataError> {
        text.iter().map(|&b| self.encode_checked(b)).collect()
    }

    /// Decode a dense-id string back into bytes.
    pub fn decode_symbols(&self, syms: &[SymbolId]) -> Vec<u8> {
        syms.iter().map(|&s| self.decode(s)).collect()
    }

    /// Iterate over `(dense id, byte)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, u8)> + '_ {
        self.decode
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as SymbolId, b))
    }

    /// A [`SymbolSet`] containing every symbol of this alphabet.
    pub fn universe(&self) -> SymbolSet {
        SymbolSet::all(self.len())
    }
}

impl fmt::Debug for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Alphabet(")?;
        for &b in &self.decode {
            if b.is_ascii_graphic() {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amino_alphabet_has_20_symbols() {
        let a = Alphabet::amino_acids();
        assert_eq!(a.len(), 20);
        assert_eq!(a.encode(b'A'), Some(0));
        assert_eq!(a.encode(b'Y'), Some(19));
        assert_eq!(a.encode(b'B'), None); // B is not an amino-acid code
        assert_eq!(a.decode(0), b'A');
    }

    #[test]
    fn duplicates_are_ignored() {
        let a = Alphabet::from_bytes(b"aabbc");
        assert_eq!(a.len(), 3);
        assert_eq!(a.encode(b'a'), Some(0));
        assert_eq!(a.encode(b'b'), Some(1));
        assert_eq!(a.encode(b'c'), Some(2));
    }

    #[test]
    fn round_trip_encode_decode() {
        let a = Alphabet::amino_acids();
        let text = b"MKVLAARG";
        let syms = a.encode_bytes(text).unwrap();
        assert_eq!(a.decode_symbols(&syms), text);
    }

    #[test]
    fn encode_rejects_foreign_bytes() {
        let a = Alphabet::binary();
        assert_eq!(
            a.encode_checked(b'2'),
            Err(AutomataError::ByteNotInAlphabet(b'2'))
        );
        assert!(a.encode_bytes(b"0102").is_err());
    }

    #[test]
    fn full_byte_alphabet() {
        let a = Alphabet::full_bytes();
        assert_eq!(a.len(), 256);
        for b in 0..=255u8 {
            assert_eq!(a.encode(b), Some(b));
            assert_eq!(a.decode(b), b);
        }
    }

    #[test]
    fn symbol_set_basic_ops() {
        let mut s = SymbolSet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(64);
        s.insert(255);
        assert_eq!(s.len(), 3);
        assert!(s.contains(3) && s.contains(64) && s.contains(255));
        assert!(!s.contains(4));
        s.remove(64);
        assert_eq!(s.len(), 2);
        assert!(!s.contains(64));
    }

    #[test]
    fn symbol_set_algebra() {
        let a = {
            let mut s = SymbolSet::EMPTY;
            s.insert(0);
            s.insert(1);
            s
        };
        let b = {
            let mut s = SymbolSet::EMPTY;
            s.insert(1);
            s.insert(2);
            s
        };
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersection(&b).len(), 1);
        assert!(a.intersection(&b).contains(1));

        let compl = a.complement(4);
        assert_eq!(compl.len(), 2);
        assert!(compl.contains(2) && compl.contains(3));
    }

    #[test]
    fn symbol_set_all_matches_universe() {
        let a = Alphabet::amino_acids();
        assert_eq!(a.universe().len(), 20);
        for (sym, _) in a.iter() {
            assert!(a.universe().contains(sym));
        }
    }

    #[test]
    fn symbol_set_iter_is_sorted() {
        let mut s = SymbolSet::EMPTY;
        for sym in [200u8, 5, 77, 63, 64] {
            s.insert(sym);
        }
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![5, 63, 64, 77, 200]);
    }
}
