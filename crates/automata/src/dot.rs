//! Graphviz DOT export for automata.
//!
//! Debugging aid: render a DFA (or a small SFA via its δₛ table) as a DOT
//! digraph. Parallel edges to the same successor are merged into one edge
//! labelled with a compact symbol-set description, so even the 20-symbol
//! amino automata stay readable.

use crate::dfa::Dfa;
use std::fmt::Write as _;

/// Options for DOT rendering.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name.
    pub name: String,
    /// Left-to-right layout (`rankdir=LR`).
    pub horizontal: bool,
    /// Omit edges into sink states (decluttering for search automata).
    pub hide_sink_edges: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "dfa".into(),
            horizontal: true,
            hide_sink_edges: true,
        }
    }
}

/// Render `dfa` as a DOT digraph.
pub fn dfa_to_dot(dfa: &Dfa, opts: &DotOptions) -> String {
    let mut out = String::new();
    writeln!(out, "digraph {} {{", sanitize(&opts.name)).unwrap();
    if opts.horizontal {
        writeln!(out, "  rankdir=LR;").unwrap();
    }
    writeln!(out, "  node [shape=circle];").unwrap();
    // Invisible entry arrow.
    writeln!(out, "  __start [shape=point, style=invis];").unwrap();
    writeln!(out, "  __start -> q{};", dfa.start()).unwrap();
    let sinks: Vec<u32> = if opts.hide_sink_edges {
        dfa.sink_states()
    } else {
        Vec::new()
    };
    for q in 0..dfa.num_states() {
        if dfa.is_accepting(q) {
            writeln!(out, "  q{q} [shape=doublecircle];").unwrap();
        }
    }
    for q in 0..dfa.num_states() {
        // Group symbols by successor.
        let mut by_succ: std::collections::BTreeMap<u32, Vec<u8>> = Default::default();
        for (sym, &succ) in dfa.row(q).iter().enumerate() {
            by_succ
                .entry(succ)
                .or_default()
                .push(dfa.alphabet().decode(sym as u8));
        }
        for (succ, bytes) in by_succ {
            if sinks.contains(&succ) {
                continue;
            }
            writeln!(
                out,
                "  q{q} -> q{succ} [label=\"{}\"];",
                edge_label(&bytes, dfa.num_symbols())
            )
            .unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

/// Compact label for a set of edge bytes: `Σ` for the full alphabet,
/// an explicit list when short, `¬{…}` (complement) when that is shorter.
fn edge_label(bytes: &[u8], alphabet_size: usize) -> String {
    if bytes.len() == alphabet_size {
        return "Σ".to_string();
    }
    let render = |bs: &[u8]| -> String {
        bs.iter()
            .map(|&b| {
                if b.is_ascii_graphic() {
                    escape_char(b as char)
                } else {
                    format!("\\\\x{b:02x}")
                }
            })
            .collect::<Vec<_>>()
            .join(",")
    };
    if bytes.len() * 2 <= alphabet_size {
        render(bytes)
    } else {
        // Complement is shorter — but we only know the present bytes, so
        // the caller's alphabet decides; render as ¬ of the absent set is
        // not possible here without the alphabet, so keep the list capped.
        let s = render(bytes);
        if s.len() > 30 {
            format!("{}…({})", &s[..27.min(s.len())], bytes.len())
        } else {
            s
        }
    }
}

fn escape_char(c: char) -> String {
    match c {
        '"' => "\\\"".into(),
        '\\' => "\\\\".into(),
        other => other.to_string(),
    }
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "dfa".into()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::pipeline::Pipeline;

    fn rg() -> Dfa {
        Pipeline::search(Alphabet::amino_acids())
            .compile_str("RG")
            .unwrap()
    }

    #[test]
    fn dot_contains_structure() {
        let dot = dfa_to_dot(&rg(), &DotOptions::default());
        assert!(dot.starts_with("digraph dfa {"));
        assert!(dot.contains("rankdir=LR"));
        assert!(dot.contains("doublecircle"), "accept state rendered");
        assert!(dot.contains("__start -> q"));
        assert!(dot.trim_end().ends_with('}'));
        // Every line inside the braces is a well-formed statement.
        for line in dot.lines().skip(1) {
            let t = line.trim();
            assert!(
                t.is_empty() || t == "}" || t.ends_with(';'),
                "bad line {t:?}"
            );
        }
    }

    #[test]
    fn full_alphabet_edges_collapse_to_sigma() {
        let dot = dfa_to_dot(&rg(), &DotOptions::default());
        assert!(dot.contains("label=\"Σ\""), "absorbing accept uses Σ");
    }

    #[test]
    fn sink_edges_can_be_shown() {
        let dfa = Pipeline::exact(Alphabet::amino_acids())
            .compile_str("RG")
            .unwrap();
        let hidden = dfa_to_dot(&dfa, &DotOptions::default());
        let shown = dfa_to_dot(
            &dfa,
            &DotOptions {
                hide_sink_edges: false,
                ..Default::default()
            },
        );
        assert!(shown.len() > hidden.len());
    }

    #[test]
    fn names_are_sanitized() {
        let dot = dfa_to_dot(
            &rg(),
            &DotOptions {
                name: "my graph; attack".into(),
                ..Default::default()
            },
        );
        assert!(dot.starts_with("digraph my_graph__attack {"));
        let dot = dfa_to_dot(
            &rg(),
            &DotOptions {
                name: "".into(),
                ..Default::default()
            },
        );
        assert!(dot.starts_with("digraph dfa {"));
    }

    #[test]
    fn quotes_in_byte_alphabets_are_escaped() {
        let dfa = Pipeline::exact(Alphabet::printable_ascii())
            .compile_str("a\\\"b")
            .unwrap();
        let dot = dfa_to_dot(&dfa, &DotOptions::default());
        assert!(dot.contains("\\\""), "quote escaped in label");
    }
}
