//! Boolean operations on DFAs.
//!
//! Standard product/complement constructions. These make multi-pattern
//! workloads expressible as a *single* DFA (union of signatures), which
//! then gets one SFA — the deployment mode intrusion-prevention systems
//! use for signature sets (§V's related-work setting).

use crate::alphabet::SymbolId;
use crate::dfa::{Dfa, StateId};
use crate::error::AutomataError;
use std::collections::HashMap;

/// Complement: accepts exactly the strings `dfa` rejects. (Requires the
/// complete transition function every [`Dfa`] maintains.)
pub fn complement(dfa: &Dfa) -> Dfa {
    let accepting: Vec<bool> = (0..dfa.num_states())
        .map(|q| !dfa.is_accepting(q))
        .collect();
    Dfa::from_parts(
        dfa.alphabet().clone(),
        dfa.num_states(),
        dfa.start(),
        accepting,
        dfa.table().to_vec(),
    )
    .expect("complement preserves well-formedness")
}

/// How the product construction combines acceptance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductMode {
    /// Accept when *both* accept (intersection).
    Intersection,
    /// Accept when *either* accepts (union).
    Union,
    /// Accept when the first accepts and the second does not (difference).
    Difference,
}

/// Product construction over the reachable state pairs.
///
/// Both automata must share the same alphabet coding. The result is
/// trimmed but not minimized (run [`crate::minimize::minimize`] if the
/// canonical automaton is wanted).
pub fn product(a: &Dfa, b: &Dfa, mode: ProductMode) -> Result<Dfa, AutomataError> {
    if a.alphabet() != b.alphabet() {
        return Err(AutomataError::AlphabetMismatch);
    }
    let k = a.num_symbols();
    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut pairs: Vec<(StateId, StateId)> = Vec::new();
    let mut table: Vec<StateId> = Vec::new();
    let mut accepting: Vec<bool> = Vec::new();
    let mut worklist: Vec<StateId> = Vec::new();

    let accepts = |qa: StateId, qb: StateId| match mode {
        ProductMode::Intersection => a.is_accepting(qa) && b.is_accepting(qb),
        ProductMode::Union => a.is_accepting(qa) || b.is_accepting(qb),
        ProductMode::Difference => a.is_accepting(qa) && !b.is_accepting(qb),
    };

    let mut intern = |pair: (StateId, StateId),
                      pairs: &mut Vec<(StateId, StateId)>,
                      accepting: &mut Vec<bool>,
                      table: &mut Vec<StateId>,
                      worklist: &mut Vec<StateId>|
     -> StateId {
        if let Some(&id) = index.get(&pair) {
            return id;
        }
        let id = pairs.len() as StateId;
        index.insert(pair, id);
        pairs.push(pair);
        accepting.push(accepts(pair.0, pair.1));
        table.extend(std::iter::repeat_n(u32::MAX, k));
        worklist.push(id);
        id
    };

    let start = intern(
        (a.start(), b.start()),
        &mut pairs,
        &mut accepting,
        &mut table,
        &mut worklist,
    );
    while let Some(id) = worklist.pop() {
        let (qa, qb) = pairs[id as usize];
        for sym in 0..k {
            let succ = intern(
                (a.next(qa, sym as SymbolId), b.next(qb, sym as SymbolId)),
                &mut pairs,
                &mut accepting,
                &mut table,
                &mut worklist,
            );
            table[id as usize * k + sym] = succ;
        }
    }

    Dfa::from_parts(
        a.alphabet().clone(),
        pairs.len() as u32,
        start,
        accepting,
        table,
    )
}

/// Union of many DFAs (left fold of [`product`] with
/// [`ProductMode::Union`]): one automaton matching *any* of the patterns.
pub fn union_all(dfas: &[Dfa]) -> Result<Dfa, AutomataError> {
    let mut iter = dfas.iter();
    let first = iter.next().ok_or(AutomataError::EmptyAutomaton)?;
    let mut acc = first.clone();
    for next in iter {
        acc = product(&acc, next, ProductMode::Union)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::minimize::minimize;
    use crate::pipeline::Pipeline;

    fn dfa(pattern: &str) -> Dfa {
        Pipeline::search(Alphabet::amino_acids())
            .compile_str(pattern)
            .unwrap()
    }

    #[test]
    fn complement_flips_acceptance() {
        let d = dfa("RG");
        let c = complement(&d);
        for text in [&b"AARGA"[..], b"GR", b"", b"RG"] {
            assert_eq!(
                d.accepts_bytes(text).unwrap(),
                !c.accepts_bytes(text).unwrap()
            );
        }
    }

    #[test]
    fn double_complement_is_identity_language() {
        let d = dfa("R[GA]N");
        let cc = complement(&complement(&d));
        assert!(minimize(&d).isomorphic(&minimize(&cc)));
    }

    #[test]
    fn intersection_semantics() {
        let a = dfa("RG");
        let b = dfa("GD");
        let both = product(&a, &b, ProductMode::Intersection).unwrap();
        assert!(both.accepts_bytes(b"RGDA").unwrap()); // has RG and GD
        assert!(!both.accepts_bytes(b"RGAA").unwrap()); // only RG
        assert!(!both.accepts_bytes(b"AGDA").unwrap()); // only GD
        assert!(!both.accepts_bytes(b"AAAA").unwrap());
    }

    #[test]
    fn union_semantics() {
        let a = dfa("RG");
        let b = dfa("GD");
        let either = product(&a, &b, ProductMode::Union).unwrap();
        assert!(either.accepts_bytes(b"RGAA").unwrap());
        assert!(either.accepts_bytes(b"AGDA").unwrap());
        assert!(either.accepts_bytes(b"RGDA").unwrap());
        assert!(!either.accepts_bytes(b"AAAA").unwrap());
    }

    #[test]
    fn difference_semantics() {
        let a = dfa("RG");
        let b = dfa("RGD");
        let diff = product(&a, &b, ProductMode::Difference).unwrap();
        assert!(diff.accepts_bytes(b"RGAA").unwrap()); // RG but not RGD
        assert!(!diff.accepts_bytes(b"RGDA").unwrap()); // both
        assert!(!diff.accepts_bytes(b"AAAA").unwrap()); // neither
    }

    #[test]
    fn union_all_matches_any_signature() {
        let dfas: Vec<Dfa> = ["RG", "GD", "WWW"].iter().map(|p| dfa(p)).collect();
        let all = union_all(&dfas).unwrap();
        assert!(all.accepts_bytes(b"AARG").unwrap());
        assert!(all.accepts_bytes(b"AGDA").unwrap());
        assert!(all.accepts_bytes(b"AWWWA").unwrap());
        assert!(!all.accepts_bytes(b"AAAA").unwrap());
        // Equivalent to the single alternation regex.
        let alt = dfa("RG|GD|WWW");
        assert!(minimize(&all).isomorphic(&minimize(&alt)));
    }

    #[test]
    fn mismatched_alphabets_rejected() {
        let a = dfa("RG");
        let b = Pipeline::search(Alphabet::binary())
            .compile_str("01")
            .unwrap();
        assert!(product(&a, &b, ProductMode::Union).is_err());
    }

    #[test]
    fn product_result_is_complete_and_trim_safe() {
        let a = dfa("RG");
        let b = dfa("GD");
        let p = product(&a, &b, ProductMode::Union).unwrap();
        // Completeness: every transition valid (checked by from_parts),
        // reachability: all states reachable by construction.
        assert!(p.reachable_states().iter().all(|&r| r));
    }
}
