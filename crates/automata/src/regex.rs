//! Regular-expression AST and parser.
//!
//! Patterns are parsed against a concrete [`Alphabet`]: every literal must
//! be a member symbol and character classes are represented as dense
//! [`SymbolSet`]s, so downstream automata never deal with raw bytes.
//!
//! Supported syntax: literals, `.` (any symbol), `[abc]`, `[a-z]`, `[^...]`,
//! alternation `|`, grouping `(...)`, and the quantifiers `*`, `+`, `?`,
//! `{n}`, `{n,}`, `{n,m}`. `\` escapes the following character.

use crate::alphabet::{Alphabet, SymbolSet};
use crate::error::AutomataError;

/// A regular expression over dense symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The empty string ε.
    Epsilon,
    /// One symbol drawn from a set (a literal is a singleton set).
    Class(SymbolSet),
    /// Concatenation r₁r₂…rₙ.
    Concat(Vec<Regex>),
    /// Alternation r₁|r₂|…|rₙ.
    Alt(Vec<Regex>),
    /// Kleene star r*.
    Star(Box<Regex>),
    /// Bounded/unbounded repetition r{min,max} (max `None` = unbounded).
    Repeat {
        inner: Box<Regex>,
        min: u32,
        max: Option<u32>,
    },
}

impl Regex {
    /// `r+` desugars to `r{1,}`.
    pub fn plus(inner: Regex) -> Regex {
        Regex::Repeat {
            inner: Box::new(inner),
            min: 1,
            max: None,
        }
    }

    /// `r?` desugars to `r{0,1}`.
    pub fn opt(inner: Regex) -> Regex {
        Regex::Repeat {
            inner: Box::new(inner),
            min: 0,
            max: Some(1),
        }
    }

    /// A single literal symbol.
    pub fn literal(sym: u8) -> Regex {
        Regex::Class(SymbolSet::singleton(sym))
    }

    /// The `Σ` wildcard for an alphabet of `k` symbols.
    pub fn any(k: usize) -> Regex {
        Regex::Class(SymbolSet::all(k))
    }

    /// Concatenate, flattening nested concatenations and dropping ε.
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Epsilon => {}
                Regex::Empty => return Regex::Empty,
                Regex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().unwrap(),
            _ => Regex::Concat(out),
        }
    }

    /// Alternate, flattening nested alternations and dropping ∅.
    pub fn alt(parts: Vec<Regex>) -> Regex {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Alt(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().unwrap(),
            _ => Regex::Alt(out),
        }
    }

    /// Wrap this expression so it matches *anywhere* in the input:
    /// `Σ* r Σ*` — the catenation the paper applies to all pattern FAs
    /// (§I, "pattern-matching at any position in the input").
    pub fn search_anywhere(self, alphabet_len: usize) -> Regex {
        Regex::concat(vec![
            Regex::Star(Box::new(Regex::any(alphabet_len))),
            self,
            Regex::Star(Box::new(Regex::any(alphabet_len))),
        ])
    }

    /// Wrap this expression as `Σ* r` (prefix catenation only): the DFA
    /// then accepts exactly at the positions where a match **ends**, so
    /// counting accepting positions counts match occurrences — the form
    /// [`crate::pipeline::Pipeline::scanner`] and the match-counting
    /// matcher use.
    pub fn search_prefix(self, alphabet_len: usize) -> Regex {
        Regex::concat(vec![Regex::Star(Box::new(Regex::any(alphabet_len))), self])
    }

    /// Can this expression match the empty string?
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Class(_) => false,
            Regex::Epsilon => true,
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::nullable),
            Regex::Star(_) => true,
            Regex::Repeat { inner, min, .. } => *min == 0 || inner.nullable(),
        }
    }

    /// Number of AST nodes (used by tests and workload statistics).
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Class(_) => 1,
            Regex::Concat(parts) | Regex::Alt(parts) => {
                1 + parts.iter().map(Regex::size).sum::<usize>()
            }
            Regex::Star(inner) => 1 + inner.size(),
            Regex::Repeat { inner, .. } => 1 + inner.size(),
        }
    }
}

/// Parse `pattern` as a regular expression over `alphabet`.
pub fn parse(pattern: &str, alphabet: &Alphabet) -> Result<Regex, AutomataError> {
    let mut p = Parser {
        bytes: pattern.as_bytes(),
        pos: 0,
        alphabet,
    };
    let r = p.parse_alt()?;
    if p.pos != p.bytes.len() {
        return Err(AutomataError::RegexSyntax {
            pos: p.pos,
            msg: format!("unexpected character {:?}", p.bytes[p.pos] as char),
        });
    }
    Ok(r)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    alphabet: &'a Alphabet,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn err(&self, msg: impl Into<String>) -> AutomataError {
        AutomataError::RegexSyntax {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn parse_alt(&mut self) -> Result<Regex, AutomataError> {
        let mut parts = vec![self.parse_concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            parts.push(self.parse_concat()?);
        }
        Ok(Regex::alt(parts))
    }

    fn parse_concat(&mut self) -> Result<Regex, AutomataError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(Regex::concat(parts))
    }

    fn parse_repeat(&mut self) -> Result<Regex, AutomataError> {
        let mut atom = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    atom = Regex::Star(Box::new(atom));
                }
                Some(b'+') => {
                    self.bump();
                    atom = Regex::plus(atom);
                }
                Some(b'?') => {
                    self.bump();
                    atom = Regex::opt(atom);
                }
                Some(b'{') => {
                    self.bump();
                    let (min, max) = self.parse_bounds()?;
                    if let Some(m) = max {
                        if m < min {
                            return Err(AutomataError::BadRepetition { min, max: m });
                        }
                    }
                    atom = Regex::Repeat {
                        inner: Box::new(atom),
                        min,
                        max,
                    };
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    fn parse_bounds(&mut self) -> Result<(u32, Option<u32>), AutomataError> {
        let min = self.parse_number()?;
        match self.bump() {
            Some(b'}') => Ok((min, Some(min))),
            Some(b',') => {
                if self.peek() == Some(b'}') {
                    self.bump();
                    Ok((min, None))
                } else {
                    let max = self.parse_number()?;
                    match self.bump() {
                        Some(b'}') => Ok((min, Some(max))),
                        _ => Err(self.err("expected '}' after repetition bounds")),
                    }
                }
            }
            _ => Err(self.err("expected '}' or ',' in repetition")),
        }
    }

    fn parse_number(&mut self) -> Result<u32, AutomataError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse::<u32>()
            .map_err(|_| self.err("repetition bound too large"))
    }

    fn parse_atom(&mut self) -> Result<Regex, AutomataError> {
        match self.peek() {
            None => Err(self.err("unexpected end of pattern")),
            Some(b'(') => {
                self.bump();
                let inner = self.parse_alt()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("unbalanced parenthesis"));
                }
                Ok(inner)
            }
            Some(b'[') => {
                self.bump();
                self.parse_class()
            }
            Some(b'.') => {
                self.bump();
                Ok(Regex::any(self.alphabet.len()))
            }
            Some(b'\\') => {
                self.bump();
                let lit = self
                    .bump()
                    .ok_or_else(|| self.err("dangling escape at end of pattern"))?;
                let sym = self
                    .alphabet
                    .encode(lit)
                    .ok_or(AutomataError::SymbolNotInAlphabet(lit as char))?;
                Ok(Regex::literal(sym))
            }
            Some(b) if b"*+?{}()[]|".contains(&b) => {
                Err(self.err(format!("unexpected metacharacter {:?}", b as char)))
            }
            Some(b) => {
                self.bump();
                let sym = self
                    .alphabet
                    .encode(b)
                    .ok_or(AutomataError::SymbolNotInAlphabet(b as char))?;
                Ok(Regex::literal(sym))
            }
        }
    }

    fn parse_class(&mut self) -> Result<Regex, AutomataError> {
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut set = SymbolSet::EMPTY;
        let mut first = true;
        loop {
            let b = self
                .bump()
                .ok_or_else(|| self.err("unterminated character class"))?;
            if b == b']' && !first {
                break;
            }
            first = false;
            let lit = if b == b'\\' {
                self.bump()
                    .ok_or_else(|| self.err("dangling escape in class"))?
            } else {
                b
            };
            // Range `a-z`? Only when '-' is followed by a non-']' char.
            if self.peek() == Some(b'-') && self.bytes.get(self.pos + 1) != Some(&b']') {
                self.bump(); // '-'
                let mut hi = self
                    .bump()
                    .ok_or_else(|| self.err("unterminated range in class"))?;
                if hi == b'\\' {
                    // The upper bound honours escapes too: `[a-\]]`.
                    hi = self
                        .bump()
                        .ok_or_else(|| self.err("dangling escape in range"))?;
                }
                if hi < lit {
                    return Err(
                        self.err(format!("inverted range {:?}-{:?}", lit as char, hi as char))
                    );
                }
                for c in lit..=hi {
                    // Range members outside the alphabet are skipped: the
                    // amino alphabet has gaps (no B, J, O, U, X, Z) and
                    // PROSITE-style ranges must tolerate them.
                    if let Some(sym) = self.alphabet.encode(c) {
                        set.insert(sym);
                    }
                }
            } else {
                let sym = self
                    .alphabet
                    .encode(lit)
                    .ok_or(AutomataError::SymbolNotInAlphabet(lit as char))?;
                set.insert(sym);
            }
        }
        let set = if negated {
            set.complement(self.alphabet.len())
        } else {
            set
        };
        if set.is_empty() {
            return Err(self.err("empty character class"));
        }
        Ok(Regex::Class(set))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amino() -> Alphabet {
        Alphabet::amino_acids()
    }

    #[test]
    fn parses_literals_and_concat() {
        let r = parse("RG", &amino()).unwrap();
        assert_eq!(r.size(), 3); // concat node + 2 literals
        assert!(!r.nullable());
    }

    #[test]
    fn parses_alternation() {
        let r = parse("R|G|A", &amino()).unwrap();
        match r {
            Regex::Alt(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected Alt, got {other:?}"),
        }
    }

    #[test]
    fn parses_quantifiers() {
        assert!(parse("R*", &amino()).unwrap().nullable());
        assert!(!parse("R+", &amino()).unwrap().nullable());
        assert!(parse("R?", &amino()).unwrap().nullable());
        let r = parse("R{3}", &amino()).unwrap();
        match r {
            Regex::Repeat { min, max, .. } => {
                assert_eq!((min, max), (3, Some(3)));
            }
            other => panic!("expected Repeat, got {other:?}"),
        }
        let r = parse("R{2,}", &amino()).unwrap();
        match r {
            Regex::Repeat { min, max, .. } => assert_eq!((min, max), (2, None)),
            other => panic!("expected Repeat, got {other:?}"),
        }
    }

    #[test]
    fn parses_classes() {
        let r = parse("[RG]", &amino()).unwrap();
        match r {
            Regex::Class(set) => assert_eq!(set.len(), 2),
            other => panic!("expected Class, got {other:?}"),
        }
        let r = parse("[^RG]", &amino()).unwrap();
        match r {
            Regex::Class(set) => assert_eq!(set.len(), 18),
            other => panic!("expected Class, got {other:?}"),
        }
    }

    #[test]
    fn class_ranges_skip_alphabet_gaps() {
        // A-F over amino acids covers A, C, D, E, F (B is not an amino acid).
        let r = parse("[A-F]", &amino()).unwrap();
        match r {
            Regex::Class(set) => assert_eq!(set.len(), 5),
            other => panic!("expected Class, got {other:?}"),
        }
    }

    #[test]
    fn dot_matches_alphabet() {
        let r = parse(".", &amino()).unwrap();
        match r {
            Regex::Class(set) => assert_eq!(set.len(), 20),
            other => panic!("expected Class, got {other:?}"),
        }
    }

    #[test]
    fn rejects_foreign_literal() {
        assert!(matches!(
            parse("RZ", &amino()),
            Err(AutomataError::SymbolNotInAlphabet('Z'))
        ));
    }

    #[test]
    fn rejects_syntax_errors() {
        assert!(parse("(RG", &amino()).is_err());
        assert!(parse("RG)", &amino()).is_err());
        assert!(parse("*R", &amino()).is_err());
        assert!(parse("[", &amino()).is_err());
        assert!(parse("R{3,1}", &amino()).is_err());
        assert!(parse("R{", &amino()).is_err());
    }

    #[test]
    fn escape_allows_metacharacters_in_byte_alphabets() {
        let alpha = Alphabet::printable_ascii();
        let r = parse(r"a\*b", &alpha).unwrap();
        // concat of 3 literals
        assert_eq!(r.size(), 4);
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(
            Regex::concat(vec![Regex::Epsilon, Regex::Epsilon]),
            Regex::Epsilon
        );
        assert_eq!(Regex::alt(vec![]), Regex::Empty);
        assert_eq!(
            Regex::concat(vec![Regex::literal(0), Regex::Empty]),
            Regex::Empty
        );
        // Nested concats flatten.
        let r = Regex::concat(vec![
            Regex::concat(vec![Regex::literal(0), Regex::literal(1)]),
            Regex::literal(2),
        ]);
        match r {
            Regex::Concat(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flattened Concat, got {other:?}"),
        }
    }

    #[test]
    fn search_anywhere_is_nullable_only_if_inner_is() {
        let r = parse("RG", &amino()).unwrap().search_anywhere(20);
        assert!(!r.nullable());
        let r = parse("R*", &amino()).unwrap().search_anywhere(20);
        assert!(r.nullable());
    }

    #[test]
    fn class_with_leading_bracket_member() {
        // "[]" as first member: `]` right after `[` is a literal member.
        let alpha = Alphabet::printable_ascii();
        let r = parse("[]a]", &alpha).unwrap();
        match r {
            Regex::Class(set) => {
                assert!(set.contains(alpha.encode(b']').unwrap()));
                assert!(set.contains(alpha.encode(b'a').unwrap()));
            }
            other => panic!("expected Class, got {other:?}"),
        }
    }
}
