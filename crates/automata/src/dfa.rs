//! Dense deterministic finite automata.
//!
//! A [`Dfa`] stores its transition function δ as one contiguous row-major
//! `|Q| × |Σ|` table of `u32` state ids — the exact layout the paper's
//! parameterized-transposition kernels operate on (§III-A, Fig. 3). The
//! transition function is *complete*: every `(state, symbol)` pair has a
//! successor (patterns that can fail use an explicit sink state).

use crate::alphabet::{Alphabet, SymbolId};
use crate::error::AutomataError;
use std::fmt;

/// Identifier of a DFA state (dense, `0..num_states`).
pub type StateId = u32;

/// A complete deterministic finite automaton over a dense alphabet.
#[derive(Clone)]
pub struct Dfa {
    alphabet: Alphabet,
    num_states: u32,
    start: StateId,
    accepting: Vec<bool>,
    /// Row-major `num_states × alphabet.len()` successor table.
    table: Vec<StateId>,
}

impl Dfa {
    /// Construct from raw parts, validating completeness and bounds.
    pub fn from_parts(
        alphabet: Alphabet,
        num_states: u32,
        start: StateId,
        accepting: Vec<bool>,
        table: Vec<StateId>,
    ) -> Result<Self, AutomataError> {
        if num_states == 0 {
            return Err(AutomataError::EmptyAutomaton);
        }
        if start >= num_states {
            return Err(AutomataError::UnknownState(start));
        }
        if accepting.len() != num_states as usize
            || table.len() != num_states as usize * alphabet.len()
        {
            return Err(AutomataError::EmptyAutomaton);
        }
        if let Some(&bad) = table.iter().find(|&&q| q >= num_states) {
            return Err(AutomataError::UnknownState(bad));
        }
        Ok(Dfa {
            alphabet,
            num_states,
            start,
            accepting,
            table,
        })
    }

    /// The alphabet this DFA runs over.
    #[inline]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states `|Q|`.
    #[inline]
    pub fn num_states(&self) -> u32 {
        self.num_states
    }

    /// Number of symbols `|Σ|`.
    #[inline]
    pub fn num_symbols(&self) -> usize {
        self.alphabet.len()
    }

    /// The start state `q0`.
    #[inline]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether `q` is accepting.
    #[inline]
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting[q as usize]
    }

    /// All accepting states.
    pub fn accepting_states(&self) -> Vec<StateId> {
        (0..self.num_states)
            .filter(|&q| self.accepting[q as usize])
            .collect()
    }

    /// δ(q, σ).
    #[inline]
    pub fn next(&self, q: StateId, sym: SymbolId) -> StateId {
        self.table[q as usize * self.alphabet.len() + sym as usize]
    }

    /// The transition-table row for state `q` (successors for all symbols).
    #[inline]
    pub fn row(&self, q: StateId) -> &[StateId] {
        let k = self.alphabet.len();
        &self.table[q as usize * k..(q as usize + 1) * k]
    }

    /// The whole row-major transition table.
    #[inline]
    pub fn table(&self) -> &[StateId] {
        &self.table
    }

    /// δ*(q, input) over dense symbols.
    pub fn run_from(&self, mut q: StateId, input: &[SymbolId]) -> StateId {
        for &sym in input {
            q = self.next(q, sym);
        }
        q
    }

    /// δ*(q0, input) over dense symbols.
    pub fn run(&self, input: &[SymbolId]) -> StateId {
        self.run_from(self.start, input)
    }

    /// Membership test over dense symbols.
    pub fn accepts(&self, input: &[SymbolId]) -> bool {
        self.is_accepting(self.run(input))
    }

    /// Membership test over raw bytes (encodes through the alphabet).
    pub fn accepts_bytes(&self, text: &[u8]) -> Result<bool, AutomataError> {
        let mut q = self.start;
        for &b in text {
            let sym = self.alphabet.encode_checked(b)?;
            q = self.next(q, sym);
        }
        Ok(self.is_accepting(q))
    }

    /// Detect *sink* states: non-accepting states whose every transition
    /// loops back to themselves. The paper's r500-class SFAs are dominated
    /// by such a state, which is what makes their states so compressible.
    pub fn sink_states(&self) -> Vec<StateId> {
        (0..self.num_states)
            .filter(|&q| !self.accepting[q as usize] && self.row(q).iter().all(|&succ| succ == q))
            .collect()
    }

    /// States reachable from the start state.
    pub fn reachable_states(&self) -> Vec<bool> {
        let mut seen = vec![false; self.num_states as usize];
        let mut stack = vec![self.start];
        seen[self.start as usize] = true;
        while let Some(q) = stack.pop() {
            for &succ in self.row(q) {
                if !seen[succ as usize] {
                    seen[succ as usize] = true;
                    stack.push(succ);
                }
            }
        }
        seen
    }

    /// Remove unreachable states, re-densifying ids. Returns the trimmed
    /// DFA (identity transformation when everything is reachable).
    pub fn trim(&self) -> Dfa {
        let reach = self.reachable_states();
        let mut remap = vec![u32::MAX; self.num_states as usize];
        let mut next_id = 0u32;
        for (q, &r) in reach.iter().enumerate() {
            if r {
                remap[q] = next_id;
                next_id += 1;
            }
        }
        let k = self.alphabet.len();
        let mut table = Vec::with_capacity(next_id as usize * k);
        let mut accepting = Vec::with_capacity(next_id as usize);
        for (q, _) in reach.iter().enumerate().filter(|(_, &r)| r) {
            {
                accepting.push(self.accepting[q]);
                for &succ in self.row(q as StateId) {
                    table.push(remap[succ as usize]);
                }
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            num_states: next_id,
            start: remap[self.start as usize],
            accepting,
            table,
        }
    }

    /// Structural equality up to state renaming, decided by parallel BFS.
    /// Two minimal complete DFAs for the same language are isomorphic, so
    /// this doubles as a language-equality test for minimized automata.
    pub fn isomorphic(&self, other: &Dfa) -> bool {
        if self.num_states != other.num_states || self.alphabet.len() != other.alphabet.len() {
            return false;
        }
        let n = self.num_states as usize;
        let mut map = vec![u32::MAX; n]; // self -> other
        let mut rmap = vec![u32::MAX; n]; // other -> self
        let mut queue = std::collections::VecDeque::new();
        map[self.start as usize] = other.start;
        rmap[other.start as usize] = self.start;
        queue.push_back((self.start, other.start));
        while let Some((a, b)) = queue.pop_front() {
            if self.accepting[a as usize] != other.accepting[b as usize] {
                return false;
            }
            for sym in 0..self.alphabet.len() {
                let sa = self.next(a, sym as SymbolId);
                let sb = other.next(b, sym as SymbolId);
                match (map[sa as usize], rmap[sb as usize]) {
                    (u32::MAX, u32::MAX) => {
                        map[sa as usize] = sb;
                        rmap[sb as usize] = sa;
                        queue.push_back((sa, sb));
                    }
                    (m, r) => {
                        if m != sb || r != sa {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Count positions in `text` (encoded) at which a match *ends*, running
    /// the automaton once over the whole text. Only meaningful for
    /// "search" DFAs built with the Σ*RΣ* catenation, where acceptance is
    /// monotone; for those this reports the first accepting position, then
    /// every subsequent position (the language is suffix-closed after a
    /// match). Exposed mostly for tests and examples.
    pub fn first_match_end(&self, input: &[SymbolId]) -> Option<usize> {
        let mut q = self.start;
        if self.is_accepting(q) {
            return Some(0);
        }
        for (i, &sym) in input.iter().enumerate() {
            q = self.next(q, sym);
            if self.is_accepting(q) {
                return Some(i + 1);
            }
        }
        None
    }
}

impl fmt::Debug for Dfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dfa(states={}, symbols={}, start={}, accepting={})",
            self.num_states,
            self.alphabet.len(),
            self.start,
            self.accepting.iter().filter(|&&a| a).count()
        )
    }
}

/// Incremental builder for [`Dfa`].
///
/// States are added explicitly; missing transitions can either be reported
/// as an error or routed to an automatically created sink state.
pub struct DfaBuilder {
    alphabet: Alphabet,
    start: Option<StateId>,
    accepting: Vec<bool>,
    /// `u32::MAX` marks a transition that has not been set.
    table: Vec<StateId>,
}

impl DfaBuilder {
    /// Create an empty builder over `alphabet`.
    pub fn new(alphabet: Alphabet) -> Self {
        DfaBuilder {
            alphabet,
            start: None,
            accepting: Vec::new(),
            table: Vec::new(),
        }
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> u32 {
        self.accepting.len() as u32
    }

    /// Add a state, returning its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        let id = self.accepting.len() as StateId;
        self.accepting.push(accepting);
        self.table
            .extend(std::iter::repeat_n(u32::MAX, self.alphabet.len()));
        id
    }

    /// Mark the start state.
    pub fn set_start(&mut self, q: StateId) -> &mut Self {
        self.start = Some(q);
        self
    }

    /// Mark a state accepting (or not) after creation.
    pub fn set_accepting(&mut self, q: StateId, accepting: bool) -> &mut Self {
        self.accepting[q as usize] = accepting;
        self
    }

    /// Set δ(from, sym) = to.
    pub fn add_transition(&mut self, from: StateId, sym: SymbolId, to: StateId) -> &mut Self {
        let k = self.alphabet.len();
        self.table[from as usize * k + sym as usize] = to;
        self
    }

    /// Set δ(from, ·) = to for every symbol not yet set.
    pub fn default_transition(&mut self, from: StateId, to: StateId) -> &mut Self {
        let k = self.alphabet.len();
        for slot in &mut self.table[from as usize * k..(from as usize + 1) * k] {
            if *slot == u32::MAX {
                *slot = to;
            }
        }
        self
    }

    /// Finish, routing all unset transitions to a fresh sink state (created
    /// only if needed).
    pub fn build_with_sink(mut self) -> Result<Dfa, AutomataError> {
        if self.accepting.is_empty() {
            return Err(AutomataError::EmptyAutomaton);
        }
        if self.table.contains(&u32::MAX) {
            let sink = self.add_state(false);
            for slot in &mut self.table {
                if *slot == u32::MAX {
                    *slot = sink;
                }
            }
        }
        self.build_strict()
    }

    /// Finish, requiring every transition to have been set.
    pub fn build_strict(self) -> Result<Dfa, AutomataError> {
        let start = self.start.ok_or(AutomataError::EmptyAutomaton)?;
        let num_states = self.accepting.len() as u32;
        if let Some(&bad) = self.table.iter().find(|&&t| t >= num_states) {
            return Err(AutomataError::UnknownState(bad));
        }
        Dfa::from_parts(self.alphabet, num_states, start, self.accepting, self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 1 automaton: accepts strings containing "RG" over the
    /// amino-acid alphabet.
    pub(crate) fn contains_rg() -> Dfa {
        let alpha = Alphabet::amino_acids();
        let r = alpha.encode(b'R').unwrap();
        let g = alpha.encode(b'G').unwrap();
        let mut b = DfaBuilder::new(alpha);
        let q0 = b.add_state(false);
        let q1 = b.add_state(false);
        let q2 = b.add_state(true);
        b.set_start(q0);
        // q0: on R -> q1, else stay.
        b.default_transition(q0, q0);
        b.add_transition(q0, r, q1);
        // q1: on G -> q2 (accept), on R stay, else back to q0.
        b.default_transition(q1, q0);
        b.add_transition(q1, r, q1);
        b.add_transition(q1, g, q2);
        // q2: absorbing accept.
        b.default_transition(q2, q2);
        b.build_strict().unwrap()
    }

    #[test]
    fn fig1_automaton_matches_paper_examples() {
        let dfa = contains_rg();
        assert_eq!(dfa.num_states(), 3);
        assert!(dfa.accepts_bytes(b"RG").unwrap());
        assert!(dfa.accepts_bytes(b"AARGA").unwrap());
        assert!(dfa.accepts_bytes(b"RRRG").unwrap());
        assert!(!dfa.accepts_bytes(b"").unwrap());
        assert!(!dfa.accepts_bytes(b"GR").unwrap());
        assert!(!dfa.accepts_bytes(b"RARA").unwrap());
    }

    #[test]
    fn row_matches_next() {
        let dfa = contains_rg();
        for q in 0..dfa.num_states() {
            let row = dfa.row(q).to_vec();
            for (sym, &succ) in row.iter().enumerate() {
                assert_eq!(dfa.next(q, sym as SymbolId), succ);
            }
        }
    }

    #[test]
    fn builder_detects_missing_start() {
        let mut b = DfaBuilder::new(Alphabet::binary());
        b.add_state(true);
        assert!(b.build_with_sink().is_err());
    }

    #[test]
    fn build_with_sink_completes_table() {
        let alpha = Alphabet::binary();
        let mut b = DfaBuilder::new(alpha);
        let q0 = b.add_state(false);
        let q1 = b.add_state(true);
        b.set_start(q0);
        b.add_transition(q0, 0, q1);
        // q0 on '1' and q1 on everything are unset -> sink.
        let dfa = b.build_with_sink().unwrap();
        assert_eq!(dfa.num_states(), 3);
        let sinks = dfa.sink_states();
        assert_eq!(sinks.len(), 1);
        assert!(dfa.accepts(&[0]));
        assert!(!dfa.accepts(&[1]));
        assert!(!dfa.accepts(&[0, 0]));
    }

    #[test]
    fn strict_build_rejects_incomplete_table() {
        let alpha = Alphabet::binary();
        let mut b = DfaBuilder::new(alpha);
        let q0 = b.add_state(true);
        b.set_start(q0);
        assert!(b.build_strict().is_err());
    }

    #[test]
    fn sink_detection() {
        let dfa = contains_rg();
        // The accept state is absorbing but accepting, so it is NOT a sink.
        assert!(dfa.sink_states().is_empty());
    }

    #[test]
    fn trim_removes_unreachable() {
        let alpha = Alphabet::binary();
        let mut b = DfaBuilder::new(alpha);
        let q0 = b.add_state(false);
        let q1 = b.add_state(true);
        let orphan = b.add_state(true);
        b.set_start(q0);
        b.default_transition(q0, q1);
        b.default_transition(q1, q1);
        b.default_transition(orphan, orphan);
        let dfa = b.build_strict().unwrap();
        assert_eq!(dfa.num_states(), 3);
        let t = dfa.trim();
        assert_eq!(t.num_states(), 2);
        assert!(t.accepts(&[0]));
        assert!(!t.accepts(&[]));
    }

    #[test]
    fn isomorphism_detects_renaming() {
        let a = contains_rg();
        // Rebuild with states in a different order: q2, q0, q1.
        let alpha = Alphabet::amino_acids();
        let r = alpha.encode(b'R').unwrap();
        let g = alpha.encode(b'G').unwrap();
        let mut b = DfaBuilder::new(alpha);
        let p2 = b.add_state(true);
        let p0 = b.add_state(false);
        let p1 = b.add_state(false);
        b.set_start(p0);
        b.default_transition(p0, p0);
        b.add_transition(p0, r, p1);
        b.default_transition(p1, p0);
        b.add_transition(p1, r, p1);
        b.add_transition(p1, g, p2);
        b.default_transition(p2, p2);
        let c = b.build_strict().unwrap();
        assert!(a.isomorphic(&c));
        assert!(c.isomorphic(&a));
    }

    #[test]
    fn isomorphism_rejects_different_language() {
        let a = contains_rg();
        let alpha = Alphabet::amino_acids();
        let mut b = DfaBuilder::new(alpha);
        let q0 = b.add_state(false);
        let q1 = b.add_state(false);
        let q2 = b.add_state(false); // no accepting state at all
        b.set_start(q0);
        b.default_transition(q0, q1);
        b.default_transition(q1, q2);
        b.default_transition(q2, q2);
        let c = b.build_strict().unwrap();
        assert!(!a.isomorphic(&c));
    }

    #[test]
    fn first_match_end_reports_earliest() {
        let dfa = contains_rg();
        let alpha = dfa.alphabet().clone();
        let input = alpha.encode_bytes(b"AARGRG").unwrap();
        assert_eq!(dfa.first_match_end(&input), Some(4));
        let input = alpha.encode_bytes(b"AAAA").unwrap();
        assert_eq!(dfa.first_match_end(&input), None);
    }

    #[test]
    fn run_from_composes() {
        let dfa = contains_rg();
        let alpha = dfa.alphabet().clone();
        let a = alpha.encode_bytes(b"AAR").unwrap();
        let b2 = alpha.encode_bytes(b"GAA").unwrap();
        let whole = alpha.encode_bytes(b"AARGAA").unwrap();
        let mid = dfa.run(&a);
        assert_eq!(dfa.run_from(mid, &b2), dfa.run(&whole));
    }
}
