//! Hopcroft's DFA minimization.
//!
//! The paper's workload DFAs are *minimal* DFAs produced by Grail+; this
//! module provides the equivalent step so the whole pipeline is
//! self-contained. `O(k·n·log n)` partition refinement with in-place
//! block splitting (swap-to-front, no per-split hashing).

use crate::alphabet::SymbolId;
use crate::dfa::{Dfa, StateId};

/// Minimize `dfa`: trim unreachable states, then merge
/// indistinguishable ones with Hopcroft's partition refinement.
/// The result accepts exactly the same language.
pub fn minimize(dfa: &Dfa) -> Dfa {
    let dfa = dfa.trim();
    let n = dfa.num_states() as usize;
    let k = dfa.num_symbols();
    if n <= 1 {
        return dfa;
    }

    // Inverse transition lists in CSR form: predecessors of q on sym are
    // preds[pred_off[sym * n + q] .. pred_off[sym * n + q + 1]].
    let mut pred_off = vec![0u32; k * n + 1];
    for p in 0..n {
        for (sym, &succ) in dfa.row(p as StateId).iter().enumerate() {
            pred_off[sym * n + succ as usize + 1] += 1;
        }
    }
    for i in 1..pred_off.len() {
        pred_off[i] += pred_off[i - 1];
    }
    let mut preds = vec![0u32; k * n];
    {
        let mut cursor = pred_off.clone();
        for p in 0..n {
            for (sym, &succ) in dfa.row(p as StateId).iter().enumerate() {
                let slot = cursor[sym * n + succ as usize];
                preds[slot as usize] = p as u32;
                cursor[sym * n + succ as usize] += 1;
            }
        }
    }

    // Partition with in-place membership: block_of[q], member list per
    // block, and each state's position inside its block's member list.
    let mut block_of: Vec<u32> = vec![0; n];
    let mut pos_in_block: Vec<u32> = vec![0; n];
    let mut blocks: Vec<Vec<u32>> = vec![Vec::new(), Vec::new()];
    for q in 0..n {
        let b = usize::from(dfa.is_accepting(q as StateId));
        block_of[q] = b as u32;
        pos_in_block[q] = blocks[b].len() as u32;
        blocks[b].push(q as u32);
    }
    if blocks[1].is_empty() {
        blocks.pop();
    } else if blocks[0].is_empty() {
        blocks.swap_remove(0);
        block_of.iter_mut().for_each(|b| *b = 0);
    }

    let mut in_worklist: Vec<bool> = vec![true; blocks.len()];
    let mut worklist: Vec<u32> = (0..blocks.len() as u32).collect();
    // Number of splitter-hit members swapped to the front of each block.
    let mut hit_count: Vec<u32> = vec![0; blocks.len()];
    let mut touched: Vec<u32> = Vec::new();
    let mut splitter: Vec<u32> = Vec::new();

    while let Some(a) = worklist.pop() {
        in_worklist[a as usize] = false;
        // Snapshot: block `a` itself may split while in use as splitter.
        splitter.clear();
        splitter.extend_from_slice(&blocks[a as usize]);
        for sym in 0..k {
            // X = δ⁻¹(splitter, sym); swap hit members to block fronts.
            touched.clear();
            for &q in &splitter {
                let lo = pred_off[sym * n + q as usize] as usize;
                let hi = pred_off[sym * n + q as usize + 1] as usize;
                for &p in &preds[lo..hi] {
                    let b = block_of[p as usize] as usize;
                    let h = hit_count[b];
                    if h == 0 {
                        touched.push(b as u32);
                    }
                    // p is un-hit (each p occurs at most once per sym), so
                    // it sits in the un-hit region [h, len).
                    let pos = pos_in_block[p as usize];
                    debug_assert!(pos >= h);
                    let other = blocks[b][h as usize];
                    blocks[b][pos as usize] = other;
                    pos_in_block[other as usize] = pos;
                    blocks[b][h as usize] = p;
                    pos_in_block[p as usize] = h;
                    hit_count[b] = h + 1;
                }
            }
            for &tb in &touched {
                let b = tb as usize;
                let hits = hit_count[b] as usize;
                hit_count[b] = 0;
                let total = blocks[b].len();
                if hits == total {
                    continue; // every member hit: no split
                }
                // Split: hit members are blocks[b][0..hits].
                let new_id = blocks.len() as u32;
                let back = blocks[b].split_off(hits); // un-hit part
                let (keep, carve) = if blocks[b].len() >= back.len() {
                    // Keep the hit part in the old id; carve the back.
                    (None, back)
                } else {
                    // Keep the back in the old id; carve the hit part.
                    let front = std::mem::replace(&mut blocks[b], back);
                    (Some(()), front)
                };
                if keep.is_some() {
                    // The back part moved down by `hits`: rebase positions.
                    for (i, &q) in blocks[b].iter().enumerate() {
                        pos_in_block[q as usize] = i as u32;
                    }
                }
                for (i, &q) in carve.iter().enumerate() {
                    block_of[q as usize] = new_id;
                    pos_in_block[q as usize] = i as u32;
                }
                blocks.push(carve);
                in_worklist.push(false);
                hit_count.push(0);
                if in_worklist[b] {
                    worklist.push(new_id);
                    in_worklist[new_id as usize] = true;
                } else {
                    let smaller = if blocks[b].len() <= blocks[new_id as usize].len() {
                        b as u32
                    } else {
                        new_id
                    };
                    worklist.push(smaller);
                    in_worklist[smaller as usize] = true;
                }
            }
        }
    }

    // Build the quotient automaton.
    let m = blocks.len();
    let mut table = vec![0u32; m * k];
    let mut accepting = vec![false; m];
    for (b, members) in blocks.iter().enumerate() {
        let rep = members[0];
        accepting[b] = dfa.is_accepting(rep);
        for sym in 0..k {
            table[b * k + sym] = block_of[dfa.next(rep, sym as SymbolId) as usize];
        }
    }
    let start = block_of[dfa.start() as usize];
    Dfa::from_parts(dfa.alphabet().clone(), m as u32, start, accepting, table)
        .expect("quotient automaton is well-formed by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::dfa::DfaBuilder;
    use crate::nfa::Nfa;
    use crate::regex::parse;
    use crate::subset::determinize;

    fn minimal_dfa(pattern: &str, anywhere: bool) -> Dfa {
        let alpha = Alphabet::amino_acids();
        let mut r = parse(pattern, &alpha).unwrap();
        if anywhere {
            r = r.search_anywhere(alpha.len());
        }
        let nfa = Nfa::from_regex(&r, &alpha, None).unwrap();
        minimize(&determinize(&nfa, None).unwrap())
    }

    #[test]
    fn fig1_pattern_minimizes_to_three_states() {
        // Σ*RGΣ* needs exactly 3 states (Fig. 1 of the paper).
        let dfa = minimal_dfa("RG", true);
        assert_eq!(dfa.num_states(), 3);
        assert!(dfa.accepts_bytes(b"AARGA").unwrap());
        assert!(!dfa.accepts_bytes(b"GR").unwrap());
    }

    #[test]
    fn minimization_preserves_language() {
        let alpha = Alphabet::amino_acids();
        for pattern in ["RG", "R{2,4}G", "(R|G)*A", "[^A]{3}", "R+G+|GA"] {
            let r = parse(pattern, &alpha).unwrap();
            let nfa = Nfa::from_regex(&r, &alpha, None).unwrap();
            let big = determinize(&nfa, None).unwrap();
            let small = minimize(&big);
            assert!(small.num_states() <= big.num_states());
            for text in [
                &b""[..],
                b"R",
                b"G",
                b"A",
                b"RG",
                b"RRG",
                b"RRRG",
                b"RRRRG",
                b"RRRRRG",
                b"GA",
                b"RGA",
                b"CCC",
                b"CCCC",
                b"RGRGRG",
            ] {
                assert_eq!(
                    big.accepts_bytes(text).unwrap(),
                    small.accepts_bytes(text).unwrap(),
                    "pattern {pattern:?} text {:?}",
                    std::str::from_utf8(text).unwrap()
                );
            }
        }
    }

    #[test]
    fn minimal_dfas_for_same_language_are_isomorphic() {
        let a = minimal_dfa("RR*", false);
        let b = minimal_dfa("R+", false);
        assert!(a.isomorphic(&b));
    }

    #[test]
    fn already_minimal_is_fixed_point() {
        let dfa = minimal_dfa("RG", true);
        let again = minimize(&dfa);
        assert_eq!(dfa.num_states(), again.num_states());
        assert!(dfa.isomorphic(&again));
    }

    #[test]
    fn merges_redundant_states() {
        let alpha = Alphabet::binary();
        let mut b = DfaBuilder::new(alpha);
        let q0 = b.add_state(false);
        let a1 = b.add_state(true);
        let a2 = b.add_state(true);
        b.set_start(q0);
        b.add_transition(q0, 0, a1);
        b.add_transition(q0, 1, a2);
        b.default_transition(a1, a1);
        b.default_transition(a2, a2);
        let dfa = b.build_strict().unwrap();
        let min = minimize(&dfa);
        assert_eq!(min.num_states(), 2);
        assert!(min.accepts(&[0]));
        assert!(min.accepts(&[1]));
        assert!(!min.accepts(&[]));
    }

    #[test]
    fn all_accepting_automaton() {
        let alpha = Alphabet::binary();
        let mut b = DfaBuilder::new(alpha);
        let q0 = b.add_state(true);
        let q1 = b.add_state(true);
        b.set_start(q0);
        b.default_transition(q0, q1);
        b.default_transition(q1, q0);
        let dfa = b.build_strict().unwrap();
        let min = minimize(&dfa);
        assert_eq!(min.num_states(), 1);
        assert!(min.accepts(&[0, 1, 0]));
    }

    #[test]
    fn single_state_automaton() {
        let alpha = Alphabet::binary();
        let mut b = DfaBuilder::new(alpha);
        let q0 = b.add_state(false);
        b.set_start(q0);
        b.default_transition(q0, q0);
        let dfa = b.build_strict().unwrap();
        let min = minimize(&dfa);
        assert_eq!(min.num_states(), 1);
    }

    #[test]
    fn minimization_trims_unreachable() {
        let alpha = Alphabet::binary();
        let mut b = DfaBuilder::new(alpha);
        let q0 = b.add_state(false);
        let q1 = b.add_state(true);
        let orphan = b.add_state(true);
        b.set_start(q0);
        b.default_transition(q0, q1);
        b.default_transition(q1, q1);
        b.default_transition(orphan, q0);
        let dfa = b.build_strict().unwrap();
        assert_eq!(minimize(&dfa).num_states(), 2);
    }

    #[test]
    fn large_counter_automaton_minimizes_fast() {
        // "contains a run of 12 R's": the subset DFA is larger, the
        // minimal DFA has exactly 13 states.
        let dfa = minimal_dfa("R{12}", true);
        assert_eq!(dfa.num_states(), 13);
    }

    #[test]
    fn random_dfas_minimize_to_language_equivalent() {
        use crate::random::random_dfa;
        let alpha = Alphabet::lowercase();
        for seed in 0..5 {
            let dfa = random_dfa(&alpha, 60, 0.3, seed);
            let min = minimize(&dfa);
            assert!(min.num_states() <= dfa.num_states());
            // Spot-check language equality on random inputs.
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 999);
            for _ in 0..100 {
                let len = rng.random_range(0..40);
                let input: Vec<u8> = (0..len).map(|_| rng.random_range(0..26) as u8).collect();
                assert_eq!(dfa.accepts(&input), min.accepts(&input));
            }
        }
    }
}
