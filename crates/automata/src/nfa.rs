//! Non-deterministic finite automata and the Thompson construction.
//!
//! The NFA is the intermediate form between the regex AST and the dense
//! [`Dfa`](crate::dfa::Dfa): [`Nfa::from_regex`] performs the classic
//! Thompson construction (with bounded repetitions expanded by copying),
//! and [`crate::subset`] determinizes the result.

use crate::alphabet::{Alphabet, SymbolId, SymbolSet};
use crate::error::AutomataError;
use crate::regex::Regex;

/// Identifier of an NFA state.
pub type NfaStateId = u32;

/// One NFA state: ε-successors plus symbol-set-labelled successors.
#[derive(Debug, Clone, Default)]
pub struct NfaState {
    /// ε-transitions.
    pub epsilon: Vec<NfaStateId>,
    /// Labelled transitions; the label is a set of symbols (character
    /// class), so one edge covers a whole class without fan-out.
    pub edges: Vec<(SymbolSet, NfaStateId)>,
}

/// A non-deterministic finite automaton with ε-transitions and one start /
/// one accept state (Thompson normal form).
#[derive(Debug, Clone)]
pub struct Nfa {
    alphabet: Alphabet,
    states: Vec<NfaState>,
    start: NfaStateId,
    accept: NfaStateId,
}

impl Nfa {
    /// Thompson construction from a regex AST.
    ///
    /// Bounded repetitions `r{min,max}` are expanded by copying `r`, so the
    /// NFA size is linear in `min + max`. Pass a `state_budget` to guard
    /// against adversarial bounds (`None` = unlimited).
    pub fn from_regex(
        regex: &Regex,
        alphabet: &Alphabet,
        state_budget: Option<usize>,
    ) -> Result<Nfa, AutomataError> {
        let mut b = ThompsonBuilder {
            states: Vec::new(),
            budget: state_budget,
        };
        let frag = b.compile(regex)?;
        Ok(Nfa {
            alphabet: alphabet.clone(),
            states: b.states,
            start: frag.start,
            accept: frag.accept,
        })
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Start state.
    pub fn start(&self) -> NfaStateId {
        self.start
    }

    /// Accept state (Thompson normal form has exactly one).
    pub fn accept(&self) -> NfaStateId {
        self.accept
    }

    /// Borrow a state.
    pub fn state(&self, id: NfaStateId) -> &NfaState {
        &self.states[id as usize]
    }

    /// ε-closure of a set of states, returned as a sorted, deduplicated id
    /// vector (canonical set representation for the subset construction).
    pub fn epsilon_closure(&self, seed: &[NfaStateId]) -> Vec<NfaStateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<NfaStateId> = Vec::with_capacity(seed.len());
        for &s in seed {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        let mut out = stack.clone();
        while let Some(s) = stack.pop() {
            for &t in &self.states[s as usize].epsilon {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// All states reachable from `set` on `sym` (before ε-closure).
    pub fn move_on(&self, set: &[NfaStateId], sym: SymbolId) -> Vec<NfaStateId> {
        let mut out = Vec::new();
        for &s in set {
            for (label, t) in &self.states[s as usize].edges {
                if label.contains(sym) {
                    out.push(*t);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Direct NFA simulation (used as a reference oracle in tests).
    pub fn accepts(&self, input: &[SymbolId]) -> bool {
        let mut current = self.epsilon_closure(&[self.start]);
        for &sym in input {
            let moved = self.move_on(&current, sym);
            current = self.epsilon_closure(&moved);
            if current.is_empty() {
                return false;
            }
        }
        current.binary_search(&self.accept).is_ok()
    }

    /// Membership test over raw bytes.
    pub fn accepts_bytes(&self, text: &[u8]) -> Result<bool, AutomataError> {
        let syms = self.alphabet.encode_bytes(text)?;
        Ok(self.accepts(&syms))
    }
}

struct Fragment {
    start: NfaStateId,
    accept: NfaStateId,
}

struct ThompsonBuilder {
    states: Vec<NfaState>,
    budget: Option<usize>,
}

impl ThompsonBuilder {
    fn add_state(&mut self) -> Result<NfaStateId, AutomataError> {
        if let Some(budget) = self.budget {
            if self.states.len() >= budget {
                return Err(AutomataError::StateBudgetExceeded { budget });
            }
        }
        self.states.push(NfaState::default());
        Ok(self.states.len() as NfaStateId - 1)
    }

    fn eps(&mut self, from: NfaStateId, to: NfaStateId) {
        self.states[from as usize].epsilon.push(to);
    }

    fn edge(&mut self, from: NfaStateId, label: SymbolSet, to: NfaStateId) {
        self.states[from as usize].edges.push((label, to));
    }

    fn compile(&mut self, regex: &Regex) -> Result<Fragment, AutomataError> {
        match regex {
            Regex::Empty => {
                // Two disconnected states: nothing is accepted.
                let start = self.add_state()?;
                let accept = self.add_state()?;
                Ok(Fragment { start, accept })
            }
            Regex::Epsilon => {
                let start = self.add_state()?;
                let accept = self.add_state()?;
                self.eps(start, accept);
                Ok(Fragment { start, accept })
            }
            Regex::Class(set) => {
                let start = self.add_state()?;
                let accept = self.add_state()?;
                self.edge(start, *set, accept);
                Ok(Fragment { start, accept })
            }
            Regex::Concat(parts) => {
                debug_assert!(!parts.is_empty());
                let mut iter = parts.iter();
                let first = self.compile(iter.next().unwrap())?;
                let mut tail = first.accept;
                for p in iter {
                    let frag = self.compile(p)?;
                    self.eps(tail, frag.start);
                    tail = frag.accept;
                }
                Ok(Fragment {
                    start: first.start,
                    accept: tail,
                })
            }
            Regex::Alt(parts) => {
                let start = self.add_state()?;
                let accept = self.add_state()?;
                for p in parts {
                    let frag = self.compile(p)?;
                    self.eps(start, frag.start);
                    self.eps(frag.accept, accept);
                }
                Ok(Fragment { start, accept })
            }
            Regex::Star(inner) => {
                let start = self.add_state()?;
                let accept = self.add_state()?;
                let frag = self.compile(inner)?;
                self.eps(start, frag.start);
                self.eps(start, accept);
                self.eps(frag.accept, frag.start);
                self.eps(frag.accept, accept);
                Ok(Fragment { start, accept })
            }
            Regex::Repeat { inner, min, max } => self.compile_repeat(inner, *min, *max),
        }
    }

    /// Expand `r{min,max}` by copying: `min` mandatory copies followed by
    /// either `max - min` optional copies or a trailing star.
    fn compile_repeat(
        &mut self,
        inner: &Regex,
        min: u32,
        max: Option<u32>,
    ) -> Result<Fragment, AutomataError> {
        let start = self.add_state()?;
        let mut tail = start;
        for _ in 0..min {
            let frag = self.compile(inner)?;
            self.eps(tail, frag.start);
            tail = frag.accept;
        }
        match max {
            None => {
                // Trailing star.
                let star = self.compile(&Regex::Star(Box::new(inner.clone())))?;
                self.eps(tail, star.start);
                Ok(Fragment {
                    start,
                    accept: star.accept,
                })
            }
            Some(max) => {
                let accept = self.add_state()?;
                self.eps(tail, accept);
                for _ in min..max {
                    let frag = self.compile(inner)?;
                    self.eps(tail, frag.start);
                    tail = frag.accept;
                    self.eps(tail, accept);
                }
                Ok(Fragment { start, accept })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse;

    fn nfa_for(pattern: &str) -> Nfa {
        let alpha = Alphabet::amino_acids();
        let r = parse(pattern, &alpha).unwrap();
        Nfa::from_regex(&r, &alpha, None).unwrap()
    }

    fn accepts(nfa: &Nfa, text: &[u8]) -> bool {
        nfa.accepts_bytes(text).unwrap()
    }

    #[test]
    fn literal_concat() {
        let nfa = nfa_for("RG");
        assert!(accepts(&nfa, b"RG"));
        assert!(!accepts(&nfa, b"R"));
        assert!(!accepts(&nfa, b"RGA"));
        assert!(!accepts(&nfa, b""));
    }

    #[test]
    fn alternation() {
        let nfa = nfa_for("R|G");
        assert!(accepts(&nfa, b"R"));
        assert!(accepts(&nfa, b"G"));
        assert!(!accepts(&nfa, b"A"));
        assert!(!accepts(&nfa, b"RG"));
    }

    #[test]
    fn star() {
        let nfa = nfa_for("R*");
        assert!(accepts(&nfa, b""));
        assert!(accepts(&nfa, b"R"));
        assert!(accepts(&nfa, b"RRRR"));
        assert!(!accepts(&nfa, b"RA"));
    }

    #[test]
    fn plus_and_opt() {
        let nfa = nfa_for("R+G?");
        assert!(accepts(&nfa, b"R"));
        assert!(accepts(&nfa, b"RRG"));
        assert!(!accepts(&nfa, b""));
        assert!(!accepts(&nfa, b"G"));
    }

    #[test]
    fn bounded_repeat() {
        let nfa = nfa_for("R{2,4}");
        assert!(!accepts(&nfa, b"R"));
        assert!(accepts(&nfa, b"RR"));
        assert!(accepts(&nfa, b"RRR"));
        assert!(accepts(&nfa, b"RRRR"));
        assert!(!accepts(&nfa, b"RRRRR"));
    }

    #[test]
    fn exact_repeat() {
        let nfa = nfa_for("[RG]{3}");
        assert!(accepts(&nfa, b"RGR"));
        assert!(accepts(&nfa, b"GGG"));
        assert!(!accepts(&nfa, b"RG"));
        assert!(!accepts(&nfa, b"RGRG"));
        assert!(!accepts(&nfa, b"RAG"));
    }

    #[test]
    fn unbounded_repeat() {
        let nfa = nfa_for("R{2,}");
        assert!(!accepts(&nfa, b"R"));
        assert!(accepts(&nfa, b"RR"));
        assert!(accepts(&nfa, b"RRRRRRRR"));
    }

    #[test]
    fn zero_min_repeat_is_nullable() {
        let nfa = nfa_for("R{0,2}");
        assert!(accepts(&nfa, b""));
        assert!(accepts(&nfa, b"RR"));
        assert!(!accepts(&nfa, b"RRR"));
    }

    #[test]
    fn search_anywhere_nfa() {
        let alpha = Alphabet::amino_acids();
        let r = parse("RG", &alpha).unwrap().search_anywhere(alpha.len());
        let nfa = Nfa::from_regex(&r, &alpha, None).unwrap();
        assert!(nfa.accepts_bytes(b"AARGA").unwrap());
        assert!(nfa.accepts_bytes(b"RG").unwrap());
        assert!(!nfa.accepts_bytes(b"GR").unwrap());
    }

    #[test]
    fn empty_language() {
        let alpha = Alphabet::amino_acids();
        let nfa = Nfa::from_regex(&Regex::Empty, &alpha, None).unwrap();
        assert!(!nfa.accepts_bytes(b"").unwrap());
        assert!(!nfa.accepts_bytes(b"R").unwrap());
    }

    #[test]
    fn epsilon_language() {
        let alpha = Alphabet::amino_acids();
        let nfa = Nfa::from_regex(&Regex::Epsilon, &alpha, None).unwrap();
        assert!(nfa.accepts_bytes(b"").unwrap());
        assert!(!nfa.accepts_bytes(b"R").unwrap());
    }

    #[test]
    fn budget_is_enforced() {
        let alpha = Alphabet::amino_acids();
        let r = parse("R{1000}", &alpha).unwrap();
        let err = Nfa::from_regex(&r, &alpha, Some(100)).unwrap_err();
        assert!(matches!(err, AutomataError::StateBudgetExceeded { .. }));
    }

    #[test]
    fn epsilon_closure_is_sorted_and_deduped() {
        let nfa = nfa_for("(R|G)*");
        let closure = nfa.epsilon_closure(&[nfa.start()]);
        let mut sorted = closure.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(closure, sorted);
    }
}
