//! Subset construction: NFA → complete DFA.
//!
//! The SFA construction algorithm (crate `sfa-core`) is itself a close
//! cousin of this algorithm — the paper notes the similarity explicitly
//! (§I). This sequential version produces the *input* DFAs. The inner
//! loop reuses stamped scratch buffers (no per-move allocation), which
//! matters for the multi-thousand-state PROSITE automata.

use crate::alphabet::SymbolId;
use crate::dfa::{Dfa, StateId};
use crate::error::AutomataError;
use crate::nfa::{Nfa, NfaStateId};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Fx-style word-at-a-time hasher for subset keys: the default SipHash is
/// a measurable cost when interning tens of thousands of multi-kilobyte
/// subsets (HashDoS is not a concern for internally generated ids).
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().unwrap());
            self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            let w = u64::from_le_bytes(buf);
            self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// Determinize `nfa` into a complete [`Dfa`].
///
/// The resulting DFA always has a total transition function: NFA dead ends
/// map to an explicit sink state. `state_budget` bounds the number of DFA
/// states to guard against pathological blow-up (`None` = unlimited).
pub fn determinize(nfa: &Nfa, state_budget: Option<usize>) -> Result<Dfa, AutomataError> {
    let k = nfa.alphabet().len();
    let nfa_n = nfa.num_states();
    let mut index: HashMap<Vec<NfaStateId>, StateId, FxBuild> = HashMap::default();
    let mut subsets: Vec<Vec<NfaStateId>> = Vec::new();
    let mut table: Vec<StateId> = Vec::new();
    let mut accepting: Vec<bool> = Vec::new();
    let mut worklist: Vec<StateId> = Vec::new();

    // Generation-stamped visited marks shared by move/closure, reused
    // across all iterations. u64: a u32 generation would wrap after 2³²
    // closure computations and silently corrupt the marks.
    let mut stamp: Vec<u64> = vec![0; nfa_n];
    let mut generation: u64 = 0;
    let mut stack: Vec<NfaStateId> = Vec::new();
    let mut scratch: Vec<NfaStateId> = Vec::new();

    // ε-closure of `seed` into `scratch` (sorted canonical form).
    let closure = |seed: &[NfaStateId],
                   stamp: &mut Vec<u64>,
                   generation: &mut u64,
                   stack: &mut Vec<NfaStateId>,
                   scratch: &mut Vec<NfaStateId>| {
        *generation += 1;
        let gen = *generation;
        stack.clear();
        scratch.clear();
        for &s in seed {
            if stamp[s as usize] != gen {
                stamp[s as usize] = gen;
                stack.push(s);
                scratch.push(s);
            }
        }
        while let Some(s) = stack.pop() {
            for &t in &nfa.state(s).epsilon {
                if stamp[t as usize] != gen {
                    stamp[t as usize] = gen;
                    stack.push(t);
                    scratch.push(t);
                }
            }
        }
        scratch.sort_unstable();
    };

    let intern = |set: &[NfaStateId],
                  index: &mut HashMap<Vec<NfaStateId>, StateId, FxBuild>,
                  subsets: &mut Vec<Vec<NfaStateId>>,
                  accepting: &mut Vec<bool>,
                  table: &mut Vec<StateId>,
                  worklist: &mut Vec<StateId>|
     -> Result<StateId, AutomataError> {
        if let Some(&id) = index.get(set) {
            return Ok(id);
        }
        if let Some(budget) = state_budget {
            if subsets.len() >= budget {
                return Err(AutomataError::StateBudgetExceeded { budget });
            }
        }
        let id = subsets.len() as StateId;
        accepting.push(set.binary_search(&nfa.accept()).is_ok());
        index.insert(set.to_vec(), id);
        subsets.push(set.to_vec());
        table.extend(std::iter::repeat_n(u32::MAX, k));
        worklist.push(id);
        Ok(id)
    };

    closure(
        &[nfa.start()],
        &mut stamp,
        &mut generation,
        &mut stack,
        &mut scratch,
    );
    let start_set = scratch.clone();
    let start = intern(
        &start_set,
        &mut index,
        &mut subsets,
        &mut accepting,
        &mut table,
        &mut worklist,
    )?;

    let mut moved: Vec<NfaStateId> = Vec::new();
    while let Some(id) = worklist.pop() {
        let set = subsets[id as usize].clone();
        for sym in 0..k {
            // move(set, sym) without allocation.
            generation += 1;
            let gen = generation;
            moved.clear();
            for &s in &set {
                for (label, t) in &nfa.state(s).edges {
                    if label.contains(sym as SymbolId) && stamp[*t as usize] != gen {
                        stamp[*t as usize] = gen;
                        moved.push(*t);
                    }
                }
            }
            closure(
                &moved,
                &mut stamp,
                &mut generation,
                &mut stack,
                &mut scratch,
            );
            let closed = scratch.clone();
            let succ = intern(
                &closed,
                &mut index,
                &mut subsets,
                &mut accepting,
                &mut table,
                &mut worklist,
            )?;
            table[id as usize * k + sym] = succ;
        }
    }

    Dfa::from_parts(
        nfa.alphabet().clone(),
        subsets.len() as u32,
        start,
        accepting,
        table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::regex::parse;

    fn dfa_for(pattern: &str) -> Dfa {
        let alpha = Alphabet::amino_acids();
        let r = parse(pattern, &alpha).unwrap();
        let nfa = Nfa::from_regex(&r, &alpha, None).unwrap();
        determinize(&nfa, None).unwrap()
    }

    #[test]
    fn dfa_agrees_with_nfa_on_examples() {
        let alpha = Alphabet::amino_acids();
        for pattern in ["RG", "R|G", "R*G+", "(RG){2,3}", "[RG]{2}[^A]"] {
            let r = parse(pattern, &alpha).unwrap();
            let nfa = Nfa::from_regex(&r, &alpha, None).unwrap();
            let dfa = determinize(&nfa, None).unwrap();
            for text in [
                &b""[..],
                b"R",
                b"G",
                b"RG",
                b"GR",
                b"RGRG",
                b"RGRGRG",
                b"RRG",
                b"RGG",
                b"RGC",
                b"CCC",
            ] {
                assert_eq!(
                    dfa.accepts_bytes(text).unwrap(),
                    nfa.accepts_bytes(text).unwrap(),
                    "pattern {pattern:?} disagrees on {:?}",
                    std::str::from_utf8(text).unwrap()
                );
            }
        }
    }

    #[test]
    fn dfa_is_complete() {
        let dfa = dfa_for("RG");
        for q in 0..dfa.num_states() {
            assert_eq!(dfa.row(q).len(), 20);
            for &succ in dfa.row(q) {
                assert!(succ < dfa.num_states());
            }
        }
    }

    #[test]
    fn empty_language_has_no_accepting_reachable() {
        let alpha = Alphabet::amino_acids();
        let nfa = Nfa::from_regex(&crate::regex::Regex::Empty, &alpha, None).unwrap();
        let dfa = determinize(&nfa, None).unwrap();
        assert!(!dfa.accepts_bytes(b"").unwrap());
        assert!(!dfa.accepts_bytes(b"RG").unwrap());
    }

    #[test]
    fn budget_is_enforced() {
        let alpha = Alphabet::amino_acids();
        let r = parse(".{8}R", &alpha).unwrap();
        let nfa = Nfa::from_regex(&r, &alpha, None).unwrap();
        let err = determinize(&nfa, Some(4)).unwrap_err();
        assert!(matches!(err, AutomataError::StateBudgetExceeded { .. }));
    }

    #[test]
    fn search_anywhere_dfa_matches_substrings() {
        let alpha = Alphabet::amino_acids();
        let r = parse("RG", &alpha).unwrap().search_anywhere(alpha.len());
        let nfa = Nfa::from_regex(&r, &alpha, None).unwrap();
        let dfa = determinize(&nfa, None).unwrap();
        assert!(dfa.accepts_bytes(b"AAARGAAA").unwrap());
        assert!(dfa.accepts_bytes(b"RG").unwrap());
        assert!(!dfa.accepts_bytes(b"GGRRR").unwrap());
    }

    #[test]
    fn agrees_with_public_closure_api() {
        // The scratch-buffer closure must equal Nfa::epsilon_closure.
        let alpha = Alphabet::amino_acids();
        let r = parse("(R|G)*[RG]{2,3}", &alpha).unwrap();
        let nfa = Nfa::from_regex(&r, &alpha, None).unwrap();
        let dfa = determinize(&nfa, None).unwrap();
        // Language check doubles as closure-equivalence evidence.
        for text in [&b"RG"[..], b"RRR", b"G", b"", b"RGRGR"] {
            assert_eq!(
                dfa.accepts_bytes(text).unwrap(),
                nfa.accepts_bytes(text).unwrap()
            );
        }
    }
}
