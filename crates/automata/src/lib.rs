//! Finite-automata substrate for the SFA construction library.
//!
//! This crate provides everything needed to turn a textual pattern into the
//! dense, minimal deterministic finite automaton (DFA) that the SFA
//! construction algorithm of Jung et al. (ICPP 2017) consumes:
//!
//! * [`alphabet::Alphabet`] — dense symbol coding for arbitrary byte
//!   alphabets (the 20-letter amino-acid alphabet ships as a constant),
//! * [`regex`] — a regular-expression AST, parser and Thompson-construction
//!   compiler,
//! * [`prosite`] — a parser for the PROSITE protein-pattern syntax used by
//!   the paper's evaluation workload,
//! * [`nfa`]/[`subset`] — non-deterministic automata and the subset
//!   construction,
//! * [`minimize`] — Hopcroft's DFA minimization ([`brzozowski`] provides
//!   the double-reversal construction as a cross-validation oracle),
//! * [`dfa::Dfa`] — the dense transition-table DFA representation,
//! * [`ops`] — boolean operations (complement, product, union) for
//!   multi-pattern automata,
//! * [`grail`] — reader/writer for the Grail+ textual automaton format the
//!   paper uses to exchange DFAs,
//! * [`random`] — seeded synthetic workload automata (exact-string `rN`
//!   patterns, random DFAs),
//! * [`dot`] — Graphviz export for debugging.
//!
//! The typical pipeline is:
//!
//! ```
//! use sfa_automata::prelude::*;
//!
//! // "contains RG" over the amino-acid alphabet, as in Fig. 1 of the paper.
//! let dfa = Pipeline::search(Alphabet::amino_acids())
//!     .compile_str("RG")
//!     .unwrap();
//! assert!(dfa.accepts_bytes(b"AARGA").unwrap());
//! assert!(!dfa.accepts_bytes(b"ARAG").unwrap());
//! ```

pub mod alphabet;
pub mod brzozowski;
pub mod dfa;
pub mod dot;
pub mod error;
pub mod grail;
pub mod minimize;
pub mod nfa;
pub mod ops;
pub mod pipeline;
pub mod prosite;
pub mod random;
pub mod regex;
pub mod subset;

pub use alphabet::Alphabet;
pub use dfa::{Dfa, DfaBuilder, StateId};
pub use error::AutomataError;
pub use nfa::Nfa;
pub use pipeline::Pipeline;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::alphabet::Alphabet;
    pub use crate::dfa::{Dfa, DfaBuilder, StateId};
    pub use crate::error::AutomataError;
    pub use crate::nfa::Nfa;
    pub use crate::pipeline::Pipeline;
    pub use crate::regex::Regex;
}
