//! High-level pattern → minimal DFA pipeline.
//!
//! [`Pipeline`] bundles the full compilation chain (parse → Thompson NFA →
//! subset construction → Hopcroft minimization) behind one call, replacing
//! the Grail+ toolchain the paper shells out to.

use crate::alphabet::Alphabet;
use crate::dfa::Dfa;
use crate::error::AutomataError;
use crate::minimize::minimize;
use crate::nfa::Nfa;
use crate::prosite::PrositePattern;
use crate::regex::{self, Regex};
use crate::subset::determinize;

/// Pattern-compilation pipeline configuration.
#[derive(Clone, Debug)]
pub struct Pipeline {
    alphabet: Alphabet,
    /// Wrap patterns in `Σ* r Σ*` so they match anywhere (the paper's
    /// catenation, applied to all evaluation FAs).
    search_anywhere: bool,
    /// Wrap patterns in `Σ* r` (match-end acceptance for counting).
    scanner: bool,
    /// Run Hopcroft minimization on the result.
    minimize: bool,
    /// Optional NFA/DFA state budgets to bound pathological inputs.
    nfa_budget: Option<usize>,
    dfa_budget: Option<usize>,
}

impl Pipeline {
    /// Pipeline producing *search* automata (`Σ* r Σ*`, minimized) — the
    /// configuration used throughout the paper's evaluation.
    pub fn search(alphabet: Alphabet) -> Self {
        Pipeline {
            alphabet,
            search_anywhere: true,
            scanner: false,
            minimize: true,
            nfa_budget: None,
            dfa_budget: None,
        }
    }

    /// Pipeline producing exact-match automata (no catenation), minimized.
    pub fn exact(alphabet: Alphabet) -> Self {
        Pipeline {
            search_anywhere: false,
            ..Self::search(alphabet)
        }
    }

    /// Pipeline producing *scanner* automata (`Σ* r`, minimized): the DFA
    /// accepts exactly at positions where a match ends, which is what the
    /// occurrence-counting matcher needs.
    pub fn scanner(alphabet: Alphabet) -> Self {
        Pipeline {
            search_anywhere: false,
            scanner: true,
            ..Self::search(alphabet)
        }
    }

    /// Disable minimization (keeps the raw subset-construction DFA).
    pub fn without_minimization(mut self) -> Self {
        self.minimize = false;
        self
    }

    /// Bound the Thompson NFA size.
    pub fn nfa_budget(mut self, budget: usize) -> Self {
        self.nfa_budget = Some(budget);
        self
    }

    /// Bound the determinized DFA size.
    pub fn dfa_budget(mut self, budget: usize) -> Self {
        self.dfa_budget = Some(budget);
        self
    }

    /// The alphabet this pipeline compiles over.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Compile a regex string.
    pub fn compile_str(&self, pattern: &str) -> Result<Dfa, AutomataError> {
        let r = regex::parse(pattern, &self.alphabet)?;
        self.compile_regex(r)
    }

    /// Compile a PROSITE pattern string. PROSITE semantics already include
    /// the unanchored-side catenation, so `search_anywhere` is not applied
    /// again.
    pub fn compile_prosite(&self, pattern: &str) -> Result<Dfa, AutomataError> {
        let p = PrositePattern::parse_with(pattern, &self.alphabet)?;
        let r = p.compile(&self.alphabet);
        self.lower(r)
    }

    /// Compile an already-parsed regex.
    pub fn compile_regex(&self, mut r: Regex) -> Result<Dfa, AutomataError> {
        if self.search_anywhere {
            r = r.search_anywhere(self.alphabet.len());
        } else if self.scanner {
            r = r.search_prefix(self.alphabet.len());
        }
        self.lower(r)
    }

    fn lower(&self, r: Regex) -> Result<Dfa, AutomataError> {
        let nfa = Nfa::from_regex(&r, &self.alphabet, self.nfa_budget)?;
        let dfa = determinize(&nfa, self.dfa_budget)?;
        Ok(if self.minimize { minimize(&dfa) } else { dfa })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_pipeline_builds_fig1_automaton() {
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str("RG")
            .unwrap();
        assert_eq!(dfa.num_states(), 3);
        assert!(dfa.accepts_bytes(b"AARGA").unwrap());
        assert!(!dfa.accepts_bytes(b"GR").unwrap());
    }

    #[test]
    fn exact_pipeline_requires_full_match() {
        let dfa = Pipeline::exact(Alphabet::amino_acids())
            .compile_str("RG")
            .unwrap();
        assert!(dfa.accepts_bytes(b"RG").unwrap());
        assert!(!dfa.accepts_bytes(b"ARG").unwrap());
    }

    #[test]
    fn prosite_pipeline() {
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_prosite("N-{P}-[ST]-{P}.")
            .unwrap();
        assert!(dfa.accepts_bytes(b"AANGSAAA").unwrap());
        assert!(!dfa.accepts_bytes(b"NPSA").unwrap());
    }

    #[test]
    fn unminimized_is_no_smaller() {
        let pl = Pipeline::search(Alphabet::amino_acids());
        let min = pl.compile_str("R{2,4}G").unwrap();
        let raw = pl
            .clone()
            .without_minimization()
            .compile_str("R{2,4}G")
            .unwrap();
        assert!(raw.num_states() >= min.num_states());
        assert!(min.isomorphic(&minimize_ref(&raw)));
    }

    fn minimize_ref(dfa: &Dfa) -> Dfa {
        crate::minimize::minimize(dfa)
    }

    #[test]
    fn budgets_propagate() {
        let pl = Pipeline::search(Alphabet::amino_acids()).dfa_budget(2);
        assert!(matches!(
            pl.compile_str("RGRG"),
            Err(AutomataError::StateBudgetExceeded { .. })
        ));
        let pl = Pipeline::search(Alphabet::amino_acids()).nfa_budget(3);
        assert!(pl.compile_str("RGRG").is_err());
    }
}
