//! Seeded synthetic automata for benchmarks.
//!
//! Two families, mirroring the paper's synthetic workload:
//!
//! * [`exact_string_dfa`] — the `rN` benchmark family. `r500` in the paper
//!   is a synthetic pattern from the original SFA paper that does **not**
//!   use the `Σ*RΣ*` catenation; its DFA recognizes one exact string, so
//!   almost every run of the automaton falls into the error (sink) state.
//!   That sink dominance is what makes `r500` SFA states compress at ~95×
//!   (§III-C) and keeps its SFA small.
//! * [`random_dfa`] — uniformly random complete DFAs, useful for fuzzing
//!   the construction algorithms.

use crate::alphabet::{Alphabet, SymbolId};
use crate::dfa::{Dfa, DfaBuilder, StateId};
use rand::rngs::StdRng;

/// Build the DFA recognizing exactly one random string of length `len`
/// over `alphabet`, seeded for reproducibility. The DFA has `len + 2`
/// states: the `len + 1` spine states plus one sink.
pub fn exact_string_dfa(alphabet: &Alphabet, len: usize, seed: u64) -> Dfa {
    let mut rng = StdRng::seed_from_u64(seed);
    let string: Vec<SymbolId> = (0..len)
        .map(|_| rng.random_range(0..alphabet.len()) as SymbolId)
        .collect();
    exact_string_dfa_for(alphabet, &string)
}

/// Build the DFA recognizing exactly `string` (dense symbols).
pub fn exact_string_dfa_for(alphabet: &Alphabet, string: &[SymbolId]) -> Dfa {
    let mut b = DfaBuilder::new(alphabet.clone());
    let len = string.len();
    // Spine states 0..=len; state len accepts.
    for i in 0..=len {
        b.add_state(i == len);
    }
    let sink = b.add_state(false);
    b.set_start(0);
    for (i, &sym) in string.iter().enumerate() {
        b.default_transition(i as StateId, sink);
        b.add_transition(i as StateId, sym, (i + 1) as StateId);
    }
    b.default_transition(len as StateId, sink);
    b.default_transition(sink, sink);
    b.build_strict().expect("spine DFA is complete")
}

/// The paper's `r500` benchmark: an exact random 500-symbol string over the
/// amino-acid alphabet (502 DFA states), fixed seed.
pub fn r500() -> Dfa {
    rn(500)
}

/// The `rN` family with the canonical seed.
pub fn rn(n: usize) -> Dfa {
    exact_string_dfa(&Alphabet::amino_acids(), n, 0x5FA5_EED0 + n as u64)
}

/// A uniformly random complete DFA: every transition goes to a uniform
/// random state; each state is accepting with probability `accept_prob`.
/// State 0 is the start state. At least one state is made accepting so the
/// automaton is never trivially empty.
pub fn random_dfa(alphabet: &Alphabet, num_states: u32, accept_prob: f64, seed: u64) -> Dfa {
    assert!(num_states > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let k = alphabet.len();
    let table: Vec<StateId> = (0..num_states as usize * k)
        .map(|_| rng.random_range(0..num_states))
        .collect();
    let mut accepting: Vec<bool> = (0..num_states)
        .map(|_| rng.random_bool(accept_prob))
        .collect();
    if !accepting.iter().any(|&a| a) {
        let idx = rng.random_range(0..num_states) as usize;
        accepting[idx] = true;
    }
    Dfa::from_parts(alphabet.clone(), num_states, 0, accepting, table)
        .expect("random DFA is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_string_dfa_accepts_only_its_string() {
        let alpha = Alphabet::amino_acids();
        let string = alpha.encode_bytes(b"MKVL").unwrap();
        let dfa = exact_string_dfa_for(&alpha, &string);
        assert_eq!(dfa.num_states(), 6); // 5 spine + sink
        assert!(dfa.accepts(&string));
        assert!(!dfa.accepts(&string[..3]));
        let mut longer = string.clone();
        longer.push(0);
        assert!(!dfa.accepts(&longer));
        let mut wrong = string.clone();
        wrong[2] = (wrong[2] + 1) % 20;
        assert!(!dfa.accepts(&wrong));
    }

    #[test]
    fn exact_string_dfa_has_one_sink() {
        let dfa = rn(50);
        assert_eq!(dfa.num_states(), 52);
        assert_eq!(dfa.sink_states().len(), 1);
    }

    #[test]
    fn rn_is_deterministic() {
        let a = rn(100);
        let b = rn(100);
        assert!(a.isomorphic(&b));
    }

    #[test]
    fn r500_shape_matches_paper() {
        let dfa = r500();
        assert_eq!(dfa.num_states(), 502);
        assert_eq!(dfa.num_symbols(), 20);
        assert_eq!(dfa.sink_states().len(), 1);
        assert_eq!(dfa.accepting_states().len(), 1);
    }

    #[test]
    fn random_dfa_is_complete_and_seeded() {
        let alpha = Alphabet::lowercase();
        let a = random_dfa(&alpha, 40, 0.2, 7);
        let b = random_dfa(&alpha, 40, 0.2, 7);
        let c = random_dfa(&alpha, 40, 0.2, 8);
        assert!(a.isomorphic(&b));
        // Different seeds virtually never produce isomorphic automata of
        // this size; treat a collision as a test failure worth investigating.
        assert!(!a.isomorphic(&c));
        assert!(!a.accepting_states().is_empty());
    }

    #[test]
    fn random_dfa_never_trivially_empty() {
        let alpha = Alphabet::binary();
        for seed in 0..20 {
            let dfa = random_dfa(&alpha, 5, 0.0, seed);
            assert_eq!(dfa.accepting_states().len(), 1);
        }
    }
}
