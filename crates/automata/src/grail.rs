//! Grail+ textual automaton format.
//!
//! The paper generates minimal DFAs with Grail+ and reads them into its own
//! representation ("Our framework reads DFAs and input strings in Grail+
//! format", §IV). This module implements the same interchange format so
//! externally produced automata can be used directly:
//!
//! ```text
//! (START) |- 0
//! 0 R 1
//! 1 G 2
//! 2 -| (FINAL)
//! ```
//!
//! Each transition line is `state symbol state`; `(START) |- q` marks the
//! start state; `q -| (FINAL)` marks an accepting state. Symbols must be
//! single bytes.

use crate::alphabet::Alphabet;
use crate::dfa::{Dfa, DfaBuilder, StateId};
use crate::error::AutomataError;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serialize a DFA to Grail+ text.
pub fn write_dfa(dfa: &Dfa) -> String {
    let mut out = String::new();
    writeln!(out, "(START) |- {}", dfa.start()).unwrap();
    for q in 0..dfa.num_states() {
        for (sym, &succ) in dfa.row(q).iter().enumerate() {
            let byte = dfa.alphabet().decode(sym as u8);
            writeln!(out, "{} {} {}", q, byte as char, succ).unwrap();
        }
    }
    for q in dfa.accepting_states() {
        writeln!(out, "{q} -| (FINAL)").unwrap();
    }
    out
}

/// Parse Grail+ text into a DFA.
///
/// When `alphabet` is `None` the alphabet is inferred from the symbols that
/// occur in the file (in byte order, so the coding is deterministic).
/// Missing transitions are routed to an implicit sink state, which keeps
/// partially specified Grail+ automata usable; fully specified ones
/// round-trip exactly.
pub fn read_dfa(text: &str, alphabet: Option<Alphabet>) -> Result<Dfa, AutomataError> {
    let mut start: Option<u32> = None;
    let mut finals: Vec<u32> = Vec::new();
    let mut transitions: Vec<(u32, u8, u32)> = Vec::new();
    let mut symbols_seen: BTreeMap<u8, ()> = BTreeMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let syntax = |msg: &str| AutomataError::GrailSyntax {
            line: lineno + 1,
            msg: msg.to_string(),
        };
        match toks.as_slice() {
            ["(START)", "|-", q] => {
                let q: u32 = q.parse().map_err(|_| syntax("bad start state id"))?;
                if start.replace(q).is_some() {
                    return Err(syntax("duplicate start state"));
                }
            }
            [q, "-|", "(FINAL)"] => {
                let q: u32 = q.parse().map_err(|_| syntax("bad final state id"))?;
                finals.push(q);
            }
            [from, sym, to] => {
                let from: u32 = from.parse().map_err(|_| syntax("bad source state id"))?;
                let to: u32 = to.parse().map_err(|_| syntax("bad target state id"))?;
                if sym.len() != 1 {
                    return Err(syntax("symbols must be single bytes"));
                }
                let byte = sym.as_bytes()[0];
                symbols_seen.insert(byte, ());
                transitions.push((from, byte, to));
            }
            _ => return Err(syntax("unrecognized line")),
        }
    }

    let start = start.ok_or(AutomataError::GrailSyntax {
        line: 0,
        msg: "missing (START) |- line".into(),
    })?;

    let alphabet = alphabet.unwrap_or_else(|| {
        let bytes: Vec<u8> = symbols_seen.keys().copied().collect();
        Alphabet::from_bytes(&bytes)
    });

    let max_state = transitions
        .iter()
        .flat_map(|&(f, _, t)| [f, t])
        .chain(finals.iter().copied())
        .chain(std::iter::once(start))
        .max()
        .unwrap_or(start);

    let mut b = DfaBuilder::new(alphabet.clone());
    for _ in 0..=max_state {
        b.add_state(false);
    }
    b.set_start(start as StateId);
    for q in &finals {
        b.set_accepting(*q, true);
    }
    for (from, byte, to) in transitions {
        let sym = alphabet.encode_checked(byte)?;
        b.add_transition(from, sym, to);
    }
    b.build_with_sink()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimize::minimize;
    use crate::nfa::Nfa;
    use crate::regex::parse;
    use crate::subset::determinize;

    fn rg_dfa() -> Dfa {
        let alpha = Alphabet::amino_acids();
        let r = parse("RG", &alpha).unwrap().search_anywhere(alpha.len());
        let nfa = Nfa::from_regex(&r, &alpha, None).unwrap();
        minimize(&determinize(&nfa, None).unwrap())
    }

    #[test]
    fn round_trip_preserves_language() {
        let dfa = rg_dfa();
        let text = write_dfa(&dfa);
        let back = read_dfa(&text, Some(dfa.alphabet().clone())).unwrap();
        assert!(dfa.isomorphic(&back));
    }

    #[test]
    fn round_trip_with_inferred_alphabet() {
        let dfa = rg_dfa();
        let text = write_dfa(&dfa);
        let back = read_dfa(&text, None).unwrap();
        assert_eq!(back.num_symbols(), 20);
        assert!(back.accepts_bytes(b"AARGA").unwrap());
        assert!(!back.accepts_bytes(b"GR").unwrap());
    }

    #[test]
    fn reads_handwritten_file() {
        let text = "\n# exact string 'ab'\n(START) |- 0\n0 a 1\n1 b 2\n2 -| (FINAL)\n";
        let dfa = read_dfa(text, None).unwrap();
        assert!(dfa.accepts_bytes(b"ab").unwrap());
        assert!(!dfa.accepts_bytes(b"a").unwrap());
        assert!(!dfa.accepts_bytes(b"abb").unwrap());
        // Incomplete transitions routed to sink.
        assert_eq!(dfa.sink_states().len(), 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_dfa("hello world foo bar", None).is_err());
        assert!(read_dfa("0 ab 1", None).is_err()); // multi-byte symbol
        assert!(read_dfa("0 a 1", None).is_err()); // no start line
        assert!(
            read_dfa("(START) |- 0\n(START) |- 1", None).is_err(),
            "duplicate start must be rejected"
        );
    }

    #[test]
    fn final_states_parse() {
        let text = "(START) |- 0\n0 a 0\n0 -| (FINAL)";
        let dfa = read_dfa(text, None).unwrap();
        assert!(dfa.accepts_bytes(b"").unwrap());
        assert!(dfa.accepts_bytes(b"aaa").unwrap());
    }
}
