//! PROSITE protein-pattern syntax.
//!
//! The paper's evaluation workload is 1250 patterns from the PROSITE
//! protein-sequence database (§IV). PROSITE patterns look like
//!
//! ```text
//! N-{P}-[ST]-{P}.            (N-glycosylation site, PS00001)
//! C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H.   (zinc finger, PS00028)
//! ```
//!
//! Grammar implemented here (PROSITE user manual conventions):
//!
//! * elements are separated by `-` and the pattern may end with `.`;
//! * an element is an amino-acid letter, `x` (any residue), `[..]`
//!   (any residue listed) or `{..}` (any residue **not** listed);
//! * an element may carry a repetition `(n)` or `(n,m)`;
//! * `<` as the first character anchors the pattern at the sequence start,
//!   `>` as the last character anchors it at the end.
//!
//! [`PrositePattern::compile`] lowers a pattern to a [`Regex`] over the
//! amino-acid alphabet; unanchored sides get the `Σ*` catenation the paper
//! applies so matching works at any position (§I).

use crate::alphabet::{Alphabet, SymbolSet};
use crate::error::AutomataError;
use crate::regex::Regex;

/// A parsed PROSITE pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrositePattern {
    /// Elements in sequence order.
    pub elements: Vec<PrositeElement>,
    /// `<` anchor present.
    pub anchored_start: bool,
    /// `>` anchor present.
    pub anchored_end: bool,
}

/// One pattern element plus its repetition bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrositeElement {
    /// The residue class this element accepts.
    pub class: SymbolSet,
    /// Minimum repetitions (1 when no suffix is given).
    pub min: u32,
    /// Maximum repetitions.
    pub max: u32,
}

impl PrositePattern {
    /// Parse PROSITE pattern text over the amino-acid alphabet.
    pub fn parse(pattern: &str) -> Result<PrositePattern, AutomataError> {
        Self::parse_with(pattern, &Alphabet::amino_acids())
    }

    /// Parse over a caller-provided alphabet (tests use small alphabets).
    pub fn parse_with(pattern: &str, alphabet: &Alphabet) -> Result<PrositePattern, AutomataError> {
        let mut p = PrositeParser {
            bytes: pattern.trim().as_bytes(),
            pos: 0,
            alphabet,
        };
        p.parse()
    }

    /// Lower to a regex over `alphabet`. Unanchored sides are wrapped in
    /// `Σ*` so the compiled DFA matches the pattern anywhere in a sequence.
    pub fn compile(&self, alphabet: &Alphabet) -> Regex {
        let k = alphabet.len();
        let mut parts: Vec<Regex> = Vec::with_capacity(self.elements.len() + 2);
        if !self.anchored_start {
            parts.push(Regex::Star(Box::new(Regex::any(k))));
        }
        for el in &self.elements {
            parts.push(Regex::Repeat {
                inner: Box::new(Regex::Class(el.class)),
                min: el.min,
                max: Some(el.max),
            });
        }
        if !self.anchored_end {
            parts.push(Regex::Star(Box::new(Regex::any(k))));
        }
        Regex::concat(parts)
    }

    /// Sum of maximum repetitions — a rough length/size proxy used by the
    /// workload generator to bucket patterns.
    pub fn weight(&self) -> u32 {
        self.elements.iter().map(|e| e.max).sum()
    }
}

struct PrositeParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    alphabet: &'a Alphabet,
}

impl<'a> PrositeParser<'a> {
    fn err(&self, msg: impl Into<String>) -> AutomataError {
        AutomataError::PrositeSyntax {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn parse(&mut self) -> Result<PrositePattern, AutomataError> {
        let mut anchored_start = false;
        let mut anchored_end = false;
        if self.peek() == Some(b'<') {
            self.bump();
            anchored_start = true;
        }
        let mut elements = Vec::new();
        loop {
            elements.push(self.parse_element()?);
            match self.peek() {
                Some(b'-') => {
                    self.bump();
                }
                Some(b'>') => {
                    self.bump();
                    anchored_end = true;
                    if self.peek() == Some(b'.') {
                        self.bump();
                    }
                    break;
                }
                Some(b'.') => {
                    self.bump();
                    break;
                }
                None => break,
                Some(other) => {
                    return Err(self.err(format!(
                        "expected '-', '>', '.' or end of pattern, found {:?}",
                        other as char
                    )))
                }
            }
        }
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after pattern terminator"));
        }
        Ok(PrositePattern {
            elements,
            anchored_start,
            anchored_end,
        })
    }

    fn parse_element(&mut self) -> Result<PrositeElement, AutomataError> {
        let class = match self.bump() {
            None => return Err(self.err("expected a pattern element")),
            Some(b'x') => self.alphabet.universe(),
            Some(b'[') => self.parse_group(b']', false)?,
            Some(b'{') => self.parse_group(b'}', true)?,
            Some(c) if c.is_ascii_uppercase() => {
                let sym = self
                    .alphabet
                    .encode(c)
                    .ok_or(AutomataError::SymbolNotInAlphabet(c as char))?;
                SymbolSet::singleton(sym)
            }
            Some(other) => {
                return Err(self.err(format!("unexpected character {:?}", other as char)))
            }
        };
        let (min, max) = if self.peek() == Some(b'(') {
            self.bump();
            let min = self.parse_number()?;
            let max = if self.peek() == Some(b',') {
                self.bump();
                self.parse_number()?
            } else {
                min
            };
            if self.bump() != Some(b')') {
                return Err(self.err("expected ')' after repetition"));
            }
            if max < min {
                return Err(AutomataError::BadRepetition { min, max });
            }
            (min, max)
        } else {
            (1, 1)
        };
        Ok(PrositeElement { class, min, max })
    }

    fn parse_group(&mut self, close: u8, negate: bool) -> Result<SymbolSet, AutomataError> {
        let mut set = SymbolSet::EMPTY;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated residue group")),
                Some(c) if c == close => break,
                // `>` inside `[..]` means "or C-terminus". The positional
                // anchor cannot be expressed in a pure residue class, so
                // the anchor alternative is dropped — a *narrowing*
                // approximation: sequences matched only via the
                // end-anchor alternative are missed. Documented known
                // limitation; the motifs in `sfa-workloads` that use it
                // are benchmarks, not annotation tools.
                Some(b'>') => continue,
                Some(c) if c.is_ascii_uppercase() => {
                    let sym = self
                        .alphabet
                        .encode(c)
                        .ok_or(AutomataError::SymbolNotInAlphabet(c as char))?;
                    set.insert(sym);
                }
                Some(other) => {
                    return Err(self.err(format!("unexpected {:?} in residue group", other as char)))
                }
            }
        }
        if set.is_empty() {
            return Err(self.err("empty residue group"));
        }
        Ok(if negate {
            set.complement(self.alphabet.len())
        } else {
            set
        })
    }

    fn parse_number(&mut self) -> Result<u32, AutomataError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse::<u32>()
            .map_err(|_| self.err("repetition bound too large"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::subset::determinize;

    fn dfa_for(pattern: &str) -> crate::dfa::Dfa {
        let alpha = Alphabet::amino_acids();
        let p = PrositePattern::parse(pattern).unwrap();
        let r = p.compile(&alpha);
        let nfa = Nfa::from_regex(&r, &alpha, None).unwrap();
        crate::minimize::minimize(&determinize(&nfa, None).unwrap())
    }

    #[test]
    fn parses_ps00001_n_glycosylation() {
        // N-{P}-[ST]-{P}.
        let p = PrositePattern::parse("N-{P}-[ST]-{P}.").unwrap();
        assert_eq!(p.elements.len(), 4);
        assert!(!p.anchored_start && !p.anchored_end);
        assert_eq!(p.elements[0].class.len(), 1);
        assert_eq!(p.elements[1].class.len(), 19); // {P}
        assert_eq!(p.elements[2].class.len(), 2); // [ST]
    }

    #[test]
    fn ps00001_matching_semantics() {
        let dfa = dfa_for("N-{P}-[ST]-{P}.");
        // N, non-P, S/T, non-P anywhere in the sequence.
        assert!(dfa.accepts_bytes(b"AANGSAAA").unwrap());
        assert!(dfa.accepts_bytes(b"NGTA").unwrap());
        assert!(!dfa.accepts_bytes(b"NPSA").unwrap()); // P at position 2
        assert!(!dfa.accepts_bytes(b"NGSP").unwrap()); // P at position 4
        assert!(!dfa.accepts_bytes(b"NGAA").unwrap()); // no S/T
    }

    #[test]
    fn parses_repetitions() {
        // PS00017 P-loop: [AG]-x(4)-G-K-[ST].
        let p = PrositePattern::parse("[AG]-x(4)-G-K-[ST].").unwrap();
        assert_eq!(p.elements.len(), 5);
        assert_eq!(p.elements[1].min, 4);
        assert_eq!(p.elements[1].max, 4);
        let dfa = dfa_for("[AG]-x(4)-G-K-[ST].");
        assert!(dfa.accepts_bytes(b"ACCCCGKS").unwrap());
        assert!(dfa.accepts_bytes(b"MMGAAAAGKTMM").unwrap());
        assert!(!dfa.accepts_bytes(b"ACCCGKS").unwrap()); // only x(3)
    }

    #[test]
    fn parses_variable_repetitions() {
        let p = PrositePattern::parse("C-x(2,4)-C.").unwrap();
        assert_eq!(p.elements[1].min, 2);
        assert_eq!(p.elements[1].max, 4);
        let dfa = dfa_for("C-x(2,4)-C.");
        assert!(dfa.accepts_bytes(b"CAAC").unwrap());
        assert!(dfa.accepts_bytes(b"CAAAAC").unwrap());
        assert!(!dfa.accepts_bytes(b"CAC").unwrap());
        // x(5) alone fails, but Σ* catenation means a longer gap can still
        // contain a valid C-x(2..4)-C window:
        assert!(!dfa.accepts_bytes(b"CAAAAAC").unwrap());
        assert!(dfa.accepts_bytes(b"CCAAAC").unwrap()); // window starts at 2nd C
    }

    #[test]
    fn anchors() {
        let p = PrositePattern::parse("<M-A.").unwrap();
        assert!(p.anchored_start && !p.anchored_end);
        let alpha = Alphabet::amino_acids();
        let r = p.compile(&alpha);
        let nfa = Nfa::from_regex(&r, &alpha, None).unwrap();
        let dfa = determinize(&nfa, None).unwrap();
        assert!(dfa.accepts_bytes(b"MACC").unwrap());
        assert!(!dfa.accepts_bytes(b"CMAC").unwrap()); // not at start

        let p = PrositePattern::parse("A-Y>").unwrap();
        assert!(!p.anchored_start && p.anchored_end);
        let r = p.compile(&alpha);
        let nfa = Nfa::from_regex(&r, &alpha, None).unwrap();
        let dfa = determinize(&nfa, None).unwrap();
        assert!(dfa.accepts_bytes(b"CCAY").unwrap());
        assert!(!dfa.accepts_bytes(b"AYCC").unwrap()); // not at end
    }

    #[test]
    fn group_with_end_anchor_alternative() {
        // PS00014-style ending: [KRHQSA]-[DENQ]-E-L>  has plain '>' at end;
        // some patterns use e.g. [G>] — anchor inside a group.
        let p = PrositePattern::parse("A-[G>].").unwrap();
        assert_eq!(p.elements.len(), 2);
        assert_eq!(p.elements[1].class.len(), 1);
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(PrositePattern::parse("").is_err());
        assert!(PrositePattern::parse("N-").is_err());
        assert!(PrositePattern::parse("N-[").is_err());
        assert!(PrositePattern::parse("N-{}").is_err());
        assert!(PrositePattern::parse("N-x(4,2)").is_err());
        assert!(PrositePattern::parse("N-x(").is_err());
        assert!(PrositePattern::parse("n").is_err()); // lowercase non-x
        assert!(PrositePattern::parse("N-Z").is_err()); // Z not amino acid
        assert!(PrositePattern::parse("N.x").is_err()); // trailing garbage
    }

    #[test]
    fn weight_sums_max_repetitions() {
        let p = PrositePattern::parse("C-x(2,4)-C-x(3)-H.").unwrap();
        assert_eq!(p.weight(), 1 + 4 + 1 + 3 + 1);
    }

    #[test]
    fn pattern_without_terminator_parses() {
        let p = PrositePattern::parse("N-{P}-[ST]-{P}").unwrap();
        assert_eq!(p.elements.len(), 4);
    }
}
