//! Flat u32 gather: `out[i] = table[rows[i]]`.
//!
//! The composition tree of the match runtime composes whole chunk
//! mappings: `h[q] = g[f[q]]` is exactly a gather of `g` at the indices
//! `f`. The transposition kernels in [`crate::transpose`] cannot help
//! here — they tile over `k` symbol columns, and a mapping is a k = 1
//! "table", which degenerates to their scalar remainder loops — so this
//! module provides a dedicated AVX2 `vpgatherdd` kernel (8 lanes per
//! iteration) with a portable scalar fallback, dispatched at runtime
//! like every other kernel in this crate.

use crate::CpuFeatures;

/// `out[i] = table[rows[i]]` for every `i`.
///
/// # Panics
///
/// If `out.len() != rows.len()` or any `rows[i]` is out of bounds for
/// `table` (checked up front — the kernels then run unchecked).
pub fn gather_u32(table: &[u32], rows: &[u32], out: &mut [u32]) {
    gather_u32_with(CpuFeatures::get(), table, rows, out)
}

/// [`gather_u32`] with an explicit feature set (tests force the scalar
/// path with [`CpuFeatures::SCALAR`]).
pub fn gather_u32_with(features: CpuFeatures, table: &[u32], rows: &[u32], out: &mut [u32]) {
    assert_eq!(
        rows.len(),
        out.len(),
        "gather output length must match the index count"
    );
    let n = table.len();
    assert!(
        rows.iter().all(|&r| (r as usize) < n),
        "gather index out of bounds ({n} table entries)"
    );
    #[cfg(target_arch = "x86_64")]
    if features.avx2 {
        // SAFETY: AVX2 confirmed by runtime detection; indices validated.
        unsafe { gather_u32_avx2(table, rows, out) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = features;
    gather_u32_scalar(table, rows, out);
}

fn gather_u32_scalar(table: &[u32], rows: &[u32], out: &mut [u32]) {
    for (slot, &r) in out.iter_mut().zip(rows) {
        *slot = table[r as usize];
    }
}

/// # Safety
///
/// Caller must ensure AVX2 is available and every index in `rows` is in
/// bounds for `table`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_u32_avx2(table: &[u32], rows: &[u32], out: &mut [u32]) {
    use std::arch::x86_64::*;
    let base = table.as_ptr() as *const i32;
    let mut i = 0;
    while i + 8 <= rows.len() {
        let idx = _mm256_loadu_si256(rows.as_ptr().add(i) as *const __m256i);
        // Scale 4: indices are element counts, the gather wants bytes.
        let got = _mm256_i32gather_epi32::<4>(base, idx);
        _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, got);
        i += 8;
    }
    for j in i..rows.len() {
        *out.get_unchecked_mut(j) = *table.get_unchecked(*rows.get_unchecked(j) as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn gather_matches_scalar_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        for len in [0usize, 1, 7, 8, 9, 31, 64, 1000] {
            let table: Vec<u32> = (0..257u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
            let rows: Vec<u32> = (0..len)
                .map(|_| rng.random_range(0..table.len() as u32))
                .collect();
            let mut fast = vec![0u32; len];
            let mut slow = vec![0u32; len];
            gather_u32(&table, &rows, &mut fast);
            gather_u32_with(CpuFeatures::SCALAR, &table, &rows, &mut slow);
            assert_eq!(fast, slow, "len {len}");
            for (i, &r) in rows.iter().enumerate() {
                assert_eq!(fast[i], table[r as usize]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        let mut out = vec![0u32; 1];
        gather_u32(&[1, 2, 3], &[3], &mut out);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_output_length_panics() {
        let mut out = vec![0u32; 2];
        gather_u32(&[1, 2, 3], &[0], &mut out);
    }
}
