//! Parameterized transposition kernels (paper §III-A, Fig. 3).
//!
//! Given the row-major transition table δ (`|Q|` rows × `k` symbols) and a
//! source SFA state — a vector `rows` of `n` DFA states — the derived SFA
//! states for *all* `k` symbols are produced at once:
//!
//! ```text
//! out[sym * n + i] = table[rows[i] * k + sym]      (0 ≤ sym < k, 0 ≤ i < n)
//! ```
//!
//! i.e. gather the table rows selected by the source state and transpose
//! them, so each gathered *column* (one symbol) becomes one new SFA state,
//! laid out contiguously for fingerprinting and comparison. The paper's
//! kernel set is reproduced exactly:
//!
//! | kernel      | element | ISA   | tile  |
//! |-------------|---------|-------|-------|
//! | `Sse8x8`    | u16     | SSE2  | 8×8   |
//! | `Sse8x4`    | u16     | SSE2  | 8×4   |
//! | `Avx16x16`  | u16     | AVX2  | 16×16 |
//! | `Avx8x8`    | u32     | AVX2  | 8×8   |
//! | `Scalar`    | both    | —     | —     |
//!
//! The paper found four 8×8 u16 kernels slightly faster than one 16×16
//! (§III-A); benchmark E9 reproduces that comparison.

use crate::CpuFeatures;

/// Kernel selector for the transposition routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Portable scalar loops.
    Scalar,
    /// 8 rows × 8 columns of u16 per tile (SSE2).
    Sse8x8,
    /// 8 rows × 4 columns of u16 per tile (SSE2).
    Sse8x4,
    /// 16 rows × 16 columns of u16 per tile (AVX2).
    Avx16x16,
    /// 8 rows × 8 columns of u32 per tile (AVX2).
    Avx8x8,
}

impl Kernel {
    /// Kernels applicable to u16 tables on this CPU.
    pub fn available_u16(f: CpuFeatures) -> Vec<Kernel> {
        let mut v = vec![Kernel::Scalar];
        if f.sse2 {
            v.push(Kernel::Sse8x4);
            v.push(Kernel::Sse8x8);
        }
        if f.avx2 {
            v.push(Kernel::Avx16x16);
        }
        v
    }

    /// Kernels applicable to u32 tables on this CPU.
    pub fn available_u32(f: CpuFeatures) -> Vec<Kernel> {
        let mut v = vec![Kernel::Scalar];
        if f.avx2 {
            v.push(Kernel::Avx8x8);
        }
        v
    }
}

fn validate<T>(table: &[T], k: usize, rows: &[u32], out_len: usize) {
    assert!(k > 0, "symbol count must be positive");
    assert_eq!(table.len() % k, 0, "table is not rectangular");
    let num_rows = table.len() / k;
    assert_eq!(out_len, k * rows.len(), "output must hold k × n elements");
    for &r in rows {
        assert!((r as usize) < num_rows, "row index {r} out of bounds");
    }
}

/// Gather + transpose for u16 tables, auto-selecting the best kernel.
///
/// Small SSE tiles beat the AVX2 16×16 kernel (the paper's finding, which
/// our E9 bench confirms), and when `k` is not a multiple of 8 the 8×4
/// tile avoids a scalar column remainder — decisive for the 20-symbol
/// amino-acid alphabet (five full 8×4 tiles vs two 8×8 tiles + 4 scalar
/// columns; measured ~1.6× faster).
pub fn transpose_gather_u16(table: &[u16], k: usize, rows: &[u32], out: &mut [u16]) {
    let f = CpuFeatures::get();
    let kernel = if !f.sse2 {
        Kernel::Scalar
    } else if !k.is_multiple_of(8) && k.is_multiple_of(4) {
        Kernel::Sse8x4
    } else {
        Kernel::Sse8x8
    };
    transpose_gather_u16_with(kernel, table, k, rows, out);
}

/// Gather + transpose for u16 tables with an explicit kernel.
///
/// # Panics
/// Panics on malformed shapes, out-of-bounds row indices, or a kernel that
/// does not apply to u16 data / is unsupported by the CPU.
pub fn transpose_gather_u16_with(
    kernel: Kernel,
    table: &[u16],
    k: usize,
    rows: &[u32],
    out: &mut [u16],
) {
    validate(table, k, rows, out.len());
    match kernel {
        Kernel::Scalar => scalar_u16(table, k, rows, out),
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse8x8 => {
            assert!(CpuFeatures::get().sse2, "SSE2 not available");
            // SAFETY: bounds validated above; SSE2 presence checked.
            unsafe { sse_u16_tiles::<8>(table, k, rows, out) }
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse8x4 => {
            assert!(CpuFeatures::get().sse2, "SSE2 not available");
            // SAFETY: bounds validated above; SSE2 presence checked.
            unsafe { sse_u16_tiles::<4>(table, k, rows, out) }
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx16x16 => {
            assert!(CpuFeatures::get().avx2, "AVX2 not available");
            // SAFETY: bounds validated above; AVX2 presence checked.
            unsafe { avx2_u16_16x16(table, k, rows, out) }
        }
        other => panic!("kernel {other:?} does not apply to u16 data on this target"),
    }
}

/// Gather + transpose for u32 tables, auto-selecting the best kernel.
pub fn transpose_gather_u32(table: &[u32], k: usize, rows: &[u32], out: &mut [u32]) {
    let f = CpuFeatures::get();
    let kernel = if f.avx2 {
        Kernel::Avx8x8
    } else {
        Kernel::Scalar
    };
    transpose_gather_u32_with(kernel, table, k, rows, out);
}

/// Gather + transpose for u32 tables with an explicit kernel.
///
/// # Panics
/// Same contract as [`transpose_gather_u16_with`].
pub fn transpose_gather_u32_with(
    kernel: Kernel,
    table: &[u32],
    k: usize,
    rows: &[u32],
    out: &mut [u32],
) {
    validate(table, k, rows, out.len());
    match kernel {
        Kernel::Scalar => scalar_u32(table, k, rows, out),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx8x8 => {
            assert!(CpuFeatures::get().avx2, "AVX2 not available");
            // SAFETY: bounds validated above; AVX2 presence checked.
            unsafe { avx2_u32_8x8(table, k, rows, out) }
        }
        other => panic!("kernel {other:?} does not apply to u32 data on this target"),
    }
}

// ----------------------------------------------------------------------
// Scalar references
// ----------------------------------------------------------------------

fn scalar_u16(table: &[u16], k: usize, rows: &[u32], out: &mut [u16]) {
    let n = rows.len();
    // Row-major walk over the *gathered* rows keeps table reads sequential
    // (the cache-locality argument of Fig. 3).
    for (i, &r) in rows.iter().enumerate() {
        let row = &table[r as usize * k..r as usize * k + k];
        for (sym, &succ) in row.iter().enumerate() {
            out[sym * n + i] = succ;
        }
    }
}

fn scalar_u32(table: &[u32], k: usize, rows: &[u32], out: &mut [u32]) {
    let n = rows.len();
    for (i, &r) in rows.iter().enumerate() {
        let row = &table[r as usize * k..r as usize * k + k];
        for (sym, &succ) in row.iter().enumerate() {
            out[sym * n + i] = succ;
        }
    }
}

// ----------------------------------------------------------------------
// SSE2 u16 kernels: 8 gathered rows × (8 or 4) symbols per tile
// ----------------------------------------------------------------------

/// Tiled driver for the SSE u16 kernels; `COLS` is 8 or 4.
///
/// # Safety
/// Caller guarantees SSE2 and validated bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
#[allow(clippy::needless_range_loop)] // index couples ptrs/rows/out slots
unsafe fn sse_u16_tiles<const COLS: usize>(table: &[u16], k: usize, rows: &[u32], out: &mut [u16]) {
    let n = rows.len();
    let row_tiles = n / 8;
    let col_tiles = k / COLS;
    for rt in 0..row_tiles {
        let i0 = rt * 8;
        // Base pointers of the 8 gathered rows.
        let mut ptrs = [std::ptr::null::<u16>(); 8];
        for (j, p) in ptrs.iter_mut().enumerate() {
            *p = table.as_ptr().add(rows[i0 + j] as usize * k);
        }
        for ct in 0..col_tiles {
            let c0 = ct * COLS;
            if COLS == 8 {
                sse_u16_8x8_tile(&ptrs, c0, out, n, i0);
            } else {
                sse_u16_8x4_tile(&ptrs, c0, out, n, i0);
            }
        }
        // Column remainder: scalar.
        for sym in col_tiles * COLS..k {
            for j in 0..8 {
                *out.get_unchecked_mut(sym * n + i0 + j) = *ptrs[j].add(sym);
            }
        }
    }
    // Row remainder: scalar.
    for i in row_tiles * 8..n {
        let base = rows[i] as usize * k;
        for sym in 0..k {
            *out.get_unchecked_mut(sym * n + i) = *table.get_unchecked(base + sym);
        }
    }
}

/// One 8×8 u16 tile: unpack network epi16 → epi32 → epi64.
///
/// # Safety
/// `ptrs[j] + c0 .. +8` must be in bounds; `out[(c0+s)*n + i0 .. +8]` valid.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn sse_u16_8x8_tile(
    ptrs: &[*const u16; 8],
    c0: usize,
    out: &mut [u16],
    n: usize,
    i0: usize,
) {
    use std::arch::x86_64::*;
    let load = |j: usize| _mm_loadu_si128(ptrs[j].add(c0) as *const __m128i);
    let (r0, r1, r2, r3) = (load(0), load(1), load(2), load(3));
    let (r4, r5, r6, r7) = (load(4), load(5), load(6), load(7));

    let t0 = _mm_unpacklo_epi16(r0, r1);
    let t1 = _mm_unpackhi_epi16(r0, r1);
    let t2 = _mm_unpacklo_epi16(r2, r3);
    let t3 = _mm_unpackhi_epi16(r2, r3);
    let t4 = _mm_unpacklo_epi16(r4, r5);
    let t5 = _mm_unpackhi_epi16(r4, r5);
    let t6 = _mm_unpacklo_epi16(r6, r7);
    let t7 = _mm_unpackhi_epi16(r6, r7);

    let u0 = _mm_unpacklo_epi32(t0, t2);
    let u1 = _mm_unpackhi_epi32(t0, t2);
    let u2 = _mm_unpacklo_epi32(t1, t3);
    let u3 = _mm_unpackhi_epi32(t1, t3);
    let u4 = _mm_unpacklo_epi32(t4, t6);
    let u5 = _mm_unpackhi_epi32(t4, t6);
    let u6 = _mm_unpacklo_epi32(t5, t7);
    let u7 = _mm_unpackhi_epi32(t5, t7);

    let o = [
        _mm_unpacklo_epi64(u0, u4),
        _mm_unpackhi_epi64(u0, u4),
        _mm_unpacklo_epi64(u1, u5),
        _mm_unpackhi_epi64(u1, u5),
        _mm_unpacklo_epi64(u2, u6),
        _mm_unpackhi_epi64(u2, u6),
        _mm_unpacklo_epi64(u3, u7),
        _mm_unpackhi_epi64(u3, u7),
    ];
    for (s, v) in o.into_iter().enumerate() {
        let dst = out.as_mut_ptr().add((c0 + s) * n + i0) as *mut __m128i;
        _mm_storeu_si128(dst, v);
    }
}

/// One 8×4 u16 tile: 64-bit row loads, then the 4-wide unpack network.
///
/// # Safety
/// `ptrs[j] + c0 .. +4` must be in bounds; `out[(c0+s)*n + i0 .. +8]` valid.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn sse_u16_8x4_tile(
    ptrs: &[*const u16; 8],
    c0: usize,
    out: &mut [u16],
    n: usize,
    i0: usize,
) {
    use std::arch::x86_64::*;
    let load = |j: usize| _mm_loadl_epi64(ptrs[j].add(c0) as *const __m128i);
    let (r0, r1, r2, r3) = (load(0), load(1), load(2), load(3));
    let (r4, r5, r6, r7) = (load(4), load(5), load(6), load(7));

    // a0 b0 a1 b1 a2 b2 a3 b3
    let t01 = _mm_unpacklo_epi16(r0, r1);
    let t23 = _mm_unpacklo_epi16(r2, r3);
    let t45 = _mm_unpacklo_epi16(r4, r5);
    let t67 = _mm_unpacklo_epi16(r6, r7);

    // a0 b0 c0 d0 a1 b1 c1 d1
    let u0 = _mm_unpacklo_epi32(t01, t23);
    let u1 = _mm_unpackhi_epi32(t01, t23);
    let u2 = _mm_unpacklo_epi32(t45, t67);
    let u3 = _mm_unpackhi_epi32(t45, t67);

    let o = [
        _mm_unpacklo_epi64(u0, u2), // col 0: a0 b0 c0 d0 e0 f0 g0 h0
        _mm_unpackhi_epi64(u0, u2), // col 1
        _mm_unpacklo_epi64(u1, u3), // col 2
        _mm_unpackhi_epi64(u1, u3), // col 3
    ];
    for (s, v) in o.into_iter().enumerate() {
        let dst = out.as_mut_ptr().add((c0 + s) * n + i0) as *mut __m128i;
        _mm_storeu_si128(dst, v);
    }
}

// ----------------------------------------------------------------------
// AVX2 u16 16×16 kernel
// ----------------------------------------------------------------------

/// Tiled driver for the AVX2 16×16 u16 kernel.
///
/// # Safety
/// Caller guarantees AVX2 and validated bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::needless_range_loop)] // index couples ptrs/rows/out slots
unsafe fn avx2_u16_16x16(table: &[u16], k: usize, rows: &[u32], out: &mut [u16]) {
    use std::arch::x86_64::*;
    let n = rows.len();
    let row_tiles = n / 16;
    let col_tiles = k / 16;
    for rt in 0..row_tiles {
        let i0 = rt * 16;
        let mut ptrs = [std::ptr::null::<u16>(); 16];
        for (j, p) in ptrs.iter_mut().enumerate() {
            *p = table.as_ptr().add(rows[i0 + j] as usize * k);
        }
        for ct in 0..col_tiles {
            let c0 = ct * 16;
            let mut r = [_mm256_setzero_si256(); 16];
            for (j, v) in r.iter_mut().enumerate() {
                *v = _mm256_loadu_si256(ptrs[j].add(c0) as *const __m256i);
            }
            // Stage 1: 16-bit interleave of row pairs (per 128-bit lane).
            let mut t = [_mm256_setzero_si256(); 16];
            for j in 0..8 {
                t[2 * j] = _mm256_unpacklo_epi16(r[2 * j], r[2 * j + 1]);
                t[2 * j + 1] = _mm256_unpackhi_epi16(r[2 * j], r[2 * j + 1]);
            }
            // Stage 2: 32-bit interleave (pairs of pairs).
            let mut u = [_mm256_setzero_si256(); 16];
            for g in 0..4 {
                let b = 4 * g;
                u[b] = _mm256_unpacklo_epi32(t[b], t[b + 2]);
                u[b + 1] = _mm256_unpackhi_epi32(t[b], t[b + 2]);
                u[b + 2] = _mm256_unpacklo_epi32(t[b + 1], t[b + 3]);
                u[b + 3] = _mm256_unpackhi_epi32(t[b + 1], t[b + 3]);
            }
            // Stage 3: 64-bit interleave → v[c] = col c rows 0-7 (lane0) /
            // col c+8 rows 0-7 (lane1); w likewise for rows 8-15.
            let mut v = [_mm256_setzero_si256(); 8];
            let mut w = [_mm256_setzero_si256(); 8];
            for half in 0..2 {
                let src = if half == 0 { 0 } else { 8 };
                let dst: &mut [__m256i; 8] = if half == 0 { &mut v } else { &mut w };
                dst[0] = _mm256_unpacklo_epi64(u[src], u[src + 4]);
                dst[1] = _mm256_unpackhi_epi64(u[src], u[src + 4]);
                dst[2] = _mm256_unpacklo_epi64(u[src + 1], u[src + 5]);
                dst[3] = _mm256_unpackhi_epi64(u[src + 1], u[src + 5]);
                dst[4] = _mm256_unpacklo_epi64(u[src + 2], u[src + 6]);
                dst[5] = _mm256_unpackhi_epi64(u[src + 2], u[src + 6]);
                dst[6] = _mm256_unpacklo_epi64(u[src + 3], u[src + 7]);
                dst[7] = _mm256_unpackhi_epi64(u[src + 3], u[src + 7]);
            }
            // Stage 4: stitch lanes — column c and column c+8.
            for c in 0..8 {
                let lo = _mm256_permute2x128_si256(v[c], w[c], 0x20);
                let hi = _mm256_permute2x128_si256(v[c], w[c], 0x31);
                let dst_lo = out.as_mut_ptr().add((c0 + c) * n + i0) as *mut __m256i;
                let dst_hi = out.as_mut_ptr().add((c0 + c + 8) * n + i0) as *mut __m256i;
                _mm256_storeu_si256(dst_lo, lo);
                _mm256_storeu_si256(dst_hi, hi);
            }
        }
        // Column remainder.
        for sym in col_tiles * 16..k {
            for j in 0..16 {
                *out.get_unchecked_mut(sym * n + i0 + j) = *ptrs[j].add(sym);
            }
        }
    }
    // Row remainder.
    for i in row_tiles * 16..n {
        let base = rows[i] as usize * k;
        for sym in 0..k {
            *out.get_unchecked_mut(sym * n + i) = *table.get_unchecked(base + sym);
        }
    }
}

// ----------------------------------------------------------------------
// AVX2 u32 8×8 kernel
// ----------------------------------------------------------------------

/// Tiled driver for the AVX2 8×8 u32 kernel.
///
/// # Safety
/// Caller guarantees AVX2 and validated bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::needless_range_loop)] // index couples ptrs/rows/out slots
unsafe fn avx2_u32_8x8(table: &[u32], k: usize, rows: &[u32], out: &mut [u32]) {
    use std::arch::x86_64::*;
    let n = rows.len();
    let row_tiles = n / 8;
    let col_tiles = k / 8;
    for rt in 0..row_tiles {
        let i0 = rt * 8;
        let mut ptrs = [std::ptr::null::<u32>(); 8];
        for (j, p) in ptrs.iter_mut().enumerate() {
            *p = table.as_ptr().add(rows[i0 + j] as usize * k);
        }
        for ct in 0..col_tiles {
            let c0 = ct * 8;
            let load = |j: usize| _mm256_loadu_si256(ptrs[j].add(c0) as *const __m256i);
            let (r0, r1, r2, r3) = (load(0), load(1), load(2), load(3));
            let (r4, r5, r6, r7) = (load(4), load(5), load(6), load(7));

            let t0 = _mm256_unpacklo_epi32(r0, r1);
            let t1 = _mm256_unpackhi_epi32(r0, r1);
            let t2 = _mm256_unpacklo_epi32(r2, r3);
            let t3 = _mm256_unpackhi_epi32(r2, r3);
            let t4 = _mm256_unpacklo_epi32(r4, r5);
            let t5 = _mm256_unpackhi_epi32(r4, r5);
            let t6 = _mm256_unpacklo_epi32(r6, r7);
            let t7 = _mm256_unpackhi_epi32(r6, r7);

            let u0 = _mm256_unpacklo_epi64(t0, t2);
            let u1 = _mm256_unpackhi_epi64(t0, t2);
            let u2 = _mm256_unpacklo_epi64(t1, t3);
            let u3 = _mm256_unpackhi_epi64(t1, t3);
            let u4 = _mm256_unpacklo_epi64(t4, t6);
            let u5 = _mm256_unpackhi_epi64(t4, t6);
            let u6 = _mm256_unpacklo_epi64(t5, t7);
            let u7 = _mm256_unpackhi_epi64(t5, t7);

            let o = [
                _mm256_permute2x128_si256(u0, u4, 0x20),
                _mm256_permute2x128_si256(u1, u5, 0x20),
                _mm256_permute2x128_si256(u2, u6, 0x20),
                _mm256_permute2x128_si256(u3, u7, 0x20),
                _mm256_permute2x128_si256(u0, u4, 0x31),
                _mm256_permute2x128_si256(u1, u5, 0x31),
                _mm256_permute2x128_si256(u2, u6, 0x31),
                _mm256_permute2x128_si256(u3, u7, 0x31),
            ];
            for (s, v) in o.into_iter().enumerate() {
                let dst = out.as_mut_ptr().add((c0 + s) * n + i0) as *mut __m256i;
                _mm256_storeu_si256(dst, v);
            }
        }
        for sym in col_tiles * 8..k {
            for j in 0..8 {
                *out.get_unchecked_mut(sym * n + i0 + j) = *ptrs[j].add(sym);
            }
        }
    }
    for i in row_tiles * 8..n {
        let base = rows[i] as usize * k;
        for sym in 0..k {
            *out.get_unchecked_mut(sym * n + i) = *table.get_unchecked(base + sym);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_table_u16(num_rows: usize, k: usize) -> Vec<u16> {
        (0..num_rows * k)
            .map(|i| (i as u32 % num_rows as u32) as u16 ^ (i as u16).rotate_left(3))
            .collect()
    }

    fn make_table_u32(num_rows: usize, k: usize) -> Vec<u32> {
        (0..num_rows * k)
            .map(|i| (i as u32).wrapping_mul(2654435761))
            .collect()
    }

    fn check_u16(kernel: Kernel, num_rows: usize, k: usize, n: usize) {
        let table = make_table_u16(num_rows, k);
        let rows: Vec<u32> = (0..n).map(|i| ((i * 7 + 3) % num_rows) as u32).collect();
        let mut expected = vec![0u16; k * n];
        scalar_u16(&table, k, &rows, &mut expected);
        let mut got = vec![0u16; k * n];
        transpose_gather_u16_with(kernel, &table, k, &rows, &mut got);
        assert_eq!(expected, got, "kernel {kernel:?} k={k} n={n}");
    }

    fn check_u32(kernel: Kernel, num_rows: usize, k: usize, n: usize) {
        let table = make_table_u32(num_rows, k);
        let rows: Vec<u32> = (0..n).map(|i| ((i * 13 + 1) % num_rows) as u32).collect();
        let mut expected = vec![0u32; k * n];
        scalar_u32(&table, k, &rows, &mut expected);
        let mut got = vec![0u32; k * n];
        transpose_gather_u32_with(kernel, &table, k, &rows, &mut got);
        assert_eq!(expected, got, "kernel {kernel:?} k={k} n={n}");
    }

    #[test]
    fn scalar_definition_spot_check() {
        // 2 rows × 3 symbols; gather rows [1, 0, 1].
        let table: Vec<u16> = vec![10, 11, 12, 20, 21, 22];
        let rows = vec![1u32, 0, 1];
        let mut out = vec![0u16; 9];
        scalar_u16(&table, 3, &rows, &mut out);
        assert_eq!(out, vec![20, 10, 20, 21, 11, 21, 22, 12, 22]);
    }

    #[test]
    fn sse_8x8_matches_scalar_on_many_shapes() {
        if !CpuFeatures::get().sse2 {
            return;
        }
        for (k, n) in [
            (8, 8),
            (16, 8),
            (8, 16),
            (20, 13),
            (7, 7),
            (64, 40),
            (21, 9),
        ] {
            check_u16(Kernel::Sse8x8, 30, k, n);
        }
    }

    #[test]
    fn sse_8x4_matches_scalar_on_many_shapes() {
        if !CpuFeatures::get().sse2 {
            return;
        }
        for (k, n) in [(4, 8), (8, 8), (20, 13), (3, 5), (64, 40), (13, 24)] {
            check_u16(Kernel::Sse8x4, 30, k, n);
        }
    }

    #[test]
    fn avx2_16x16_matches_scalar_on_many_shapes() {
        if !CpuFeatures::get().avx2 {
            return;
        }
        for (k, n) in [(16, 16), (32, 16), (16, 32), (20, 13), (48, 33), (17, 31)] {
            check_u16(Kernel::Avx16x16, 50, k, n);
        }
    }

    #[test]
    fn avx2_u32_8x8_matches_scalar_on_many_shapes() {
        if !CpuFeatures::get().avx2 {
            return;
        }
        for (k, n) in [(8, 8), (16, 8), (20, 13), (7, 7), (64, 40), (9, 17)] {
            check_u32(Kernel::Avx8x8, 30, k, n);
        }
    }

    #[test]
    fn auto_dispatch_matches_scalar() {
        let table = make_table_u16(100, 20);
        let rows: Vec<u32> = (0..37).map(|i| (i * 3 % 100) as u32).collect();
        let mut a = vec![0u16; 20 * 37];
        let mut b = vec![0u16; 20 * 37];
        scalar_u16(&table, 20, &rows, &mut a);
        transpose_gather_u16(&table, 20, &rows, &mut b);
        assert_eq!(a, b);

        let table = make_table_u32(100, 20);
        let mut a = vec![0u32; 20 * 37];
        let mut b = vec![0u32; 20 * 37];
        scalar_u32(&table, 20, &rows, &mut a);
        transpose_gather_u32(&table, 20, &rows, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_rows_are_allowed() {
        // SFA states routinely repeat DFA states (e.g. sink dominance).
        let table = make_table_u16(10, 20);
        let rows = vec![3u32; 40];
        let mut out = vec![0u16; 20 * 40];
        transpose_gather_u16(&table, 20, &rows, &mut out);
        for sym in 0..20 {
            for i in 0..40 {
                assert_eq!(out[sym * 40 + i], table[3 * 20 + sym]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "row index")]
    fn out_of_bounds_rows_panic() {
        let table = make_table_u16(4, 5);
        let rows = vec![4u32];
        let mut out = vec![0u16; 5];
        transpose_gather_u16(&table, 5, &rows, &mut out);
    }

    #[test]
    #[should_panic(expected = "output must hold")]
    fn wrong_output_size_panics() {
        let table = make_table_u16(4, 5);
        let rows = vec![0u32, 1];
        let mut out = vec![0u16; 3];
        transpose_gather_u16(&table, 5, &rows, &mut out);
    }

    #[test]
    fn empty_rows_is_a_noop() {
        let table = make_table_u16(4, 5);
        let rows: Vec<u32> = vec![];
        let mut out: Vec<u16> = vec![];
        transpose_gather_u16(&table, 5, &rows, &mut out);
    }

    #[test]
    fn kernel_availability_lists() {
        let all = CpuFeatures {
            sse2: true,
            sse41: true,
            avx2: true,
        };
        assert_eq!(
            Kernel::available_u16(all),
            vec![
                Kernel::Scalar,
                Kernel::Sse8x4,
                Kernel::Sse8x8,
                Kernel::Avx16x16
            ]
        );
        assert_eq!(
            Kernel::available_u32(all),
            vec![Kernel::Scalar, Kernel::Avx8x8]
        );
        assert_eq!(
            Kernel::available_u16(CpuFeatures::SCALAR),
            vec![Kernel::Scalar]
        );
    }
}
