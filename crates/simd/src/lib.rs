//! x86 SIMD kernels for SFA construction.
//!
//! Two data-parallel primitives dominate the optimized construction
//! algorithm of the paper:
//!
//! * **Parameterized transposition** (§III-A, Fig. 3): deriving all `|Σ|`
//!   successor SFA states of a source state at once. The source state
//!   `s₀ = ⟨q_a, q_b, …⟩` *parameterizes* which transition-table rows are
//!   gathered; transposing the gathered rows turns each *column* (symbol)
//!   into one new SFA state row. [`transpose`] provides the paper's kernel
//!   set — an 8×8 kernel for 32-bit data (AVX2), 8×8 and 8×4 kernels for
//!   16-bit data (SSE), and a 16×16 kernel for 16-bit data (AVX2) that the
//!   paper measured to be slightly slower than four 8×8 kernels — plus
//!   portable scalar fallbacks and runtime dispatch.
//! * **Exhaustive state comparison** ([`memeq`]): the byte-by-byte
//!   fallback on fingerprint equality, vectorized with AVX2/SSE2 compares.
//!
//! All `unsafe` is confined to `#[target_feature]` kernels guarded by
//! runtime feature detection; every kernel is property-tested against the
//! scalar reference.

pub mod gather;
pub mod memeq;
pub mod transpose;

pub use gather::{gather_u32, gather_u32_with};
pub use memeq::bytes_equal;
pub use transpose::{transpose_gather_u16, transpose_gather_u32, Kernel};

/// Which SIMD instruction sets the current CPU offers (runtime-detected,
/// cached).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    /// SSE2 (baseline on x86_64).
    pub sse2: bool,
    /// SSE4.1 (needed for some extracts).
    pub sse41: bool,
    /// AVX2 (256-bit integer ops).
    pub avx2: bool,
}

impl CpuFeatures {
    /// Detect the current CPU (cached after the first call).
    pub fn get() -> CpuFeatures {
        use std::sync::OnceLock;
        static FEATURES: OnceLock<CpuFeatures> = OnceLock::new();
        *FEATURES.get_or_init(|| {
            #[cfg(target_arch = "x86_64")]
            {
                CpuFeatures {
                    sse2: is_x86_feature_detected!("sse2"),
                    sse41: is_x86_feature_detected!("sse4.1"),
                    avx2: is_x86_feature_detected!("avx2"),
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                CpuFeatures {
                    sse2: false,
                    sse41: false,
                    avx2: false,
                }
            }
        })
    }

    /// A feature set with everything disabled (forces scalar paths).
    pub const SCALAR: CpuFeatures = CpuFeatures {
        sse2: false,
        sse41: false,
        avx2: false,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_detection_is_stable() {
        assert_eq!(CpuFeatures::get(), CpuFeatures::get());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn x86_64_always_has_sse2() {
        assert!(CpuFeatures::get().sse2);
    }
}
