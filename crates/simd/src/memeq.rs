//! Vectorized byte-equality for exhaustive SFA state comparison.
//!
//! When two SFA states share a fingerprint, the construction algorithm
//! must fall back to the full byte-by-byte comparison (§III-A). SFA states
//! are kilobytes for large DFAs, so this loop is worth vectorizing: 32
//! bytes per AVX2 compare, 16 per SSE2 compare, with an early-out on the
//! first differing block.

/// Compare two byte slices for equality, using the widest compare the CPU
/// offers. Slices of different lengths are unequal.
#[inline]
pub fn bytes_equal(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        let f = crate::CpuFeatures::get();
        if f.avx2 && a.len() >= 32 {
            // SAFETY: AVX2 checked; equal lengths checked.
            return unsafe { eq_avx2(a, b) };
        }
        if f.sse2 && a.len() >= 16 {
            // SAFETY: SSE2 checked; equal lengths checked.
            return unsafe { eq_sse2(a, b) };
        }
    }
    a == b
}

/// AVX2 32-bytes-at-a-time equality.
///
/// # Safety
/// Requires AVX2; `a.len() == b.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn eq_avx2(a: &[u8], b: &[u8]) -> bool {
    use std::arch::x86_64::*;
    let len = a.len();
    let mut i = 0usize;
    while i + 32 <= len {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        let eq = _mm256_cmpeq_epi8(va, vb);
        if _mm256_movemask_epi8(eq) != -1i32 {
            return false;
        }
        i += 32;
    }
    if i < len {
        // Overlapping tail load: len >= 32 is guaranteed by the caller.
        let va = _mm256_loadu_si256(a.as_ptr().add(len - 32) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(len - 32) as *const __m256i);
        let eq = _mm256_cmpeq_epi8(va, vb);
        return _mm256_movemask_epi8(eq) == -1i32;
    }
    true
}

/// SSE2 16-bytes-at-a-time equality.
///
/// # Safety
/// Requires SSE2; `a.len() == b.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn eq_sse2(a: &[u8], b: &[u8]) -> bool {
    use std::arch::x86_64::*;
    let len = a.len();
    let mut i = 0usize;
    while i + 16 <= len {
        let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
        let vb = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
        let eq = _mm_cmpeq_epi8(va, vb);
        if _mm_movemask_epi8(eq) != 0xffff {
            return false;
        }
        i += 16;
    }
    if i < len {
        let va = _mm_loadu_si128(a.as_ptr().add(len - 16) as *const __m128i);
        let vb = _mm_loadu_si128(b.as_ptr().add(len - 16) as *const __m128i);
        let eq = _mm_cmpeq_epi8(va, vb);
        return _mm_movemask_epi8(eq) == 0xffff;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices_of_all_sizes() {
        for len in 0..200usize {
            let a: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
            let b = a.clone();
            assert!(bytes_equal(&a, &b), "len {len}");
        }
    }

    #[test]
    fn single_byte_difference_at_every_position() {
        for len in [1usize, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100] {
            let a: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            for pos in 0..len {
                let mut b = a.clone();
                b[pos] ^= 0x40;
                assert!(!bytes_equal(&a, &b), "len {len} pos {pos}");
            }
        }
    }

    #[test]
    fn different_lengths_are_unequal() {
        assert!(!bytes_equal(b"abc", b"abcd"));
        assert!(!bytes_equal(b"", b"a"));
    }

    #[test]
    fn empty_slices_are_equal() {
        assert!(bytes_equal(b"", b""));
    }

    #[test]
    fn tail_block_differences_are_caught() {
        // Difference only in the overlapping tail region.
        for len in [33usize, 47, 63, 90] {
            let a = vec![7u8; len];
            let mut b = a.clone();
            b[len - 1] = 8;
            assert!(!bytes_equal(&a, &b), "len {len}");
        }
    }
}
