//! End-to-end tests of the `sfa` binary (spawned as a real process).

use std::process::{Command, Output};

fn sfa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sfa"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_lists_commands() {
    let out = sfa(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in [
        "compile",
        "build",
        "match",
        "survey",
        "verify",
        "workloads",
        "dot",
    ] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = sfa(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn compile_emits_grail() {
    let out = sfa(&["compile", "--regex", "RG"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("(START) |-"));
    assert!(text.contains("-| (FINAL)"));
}

#[test]
fn build_validates_and_reports() {
    let out = sfa(&["build", "--regex", "RG", "--threads", "2", "--validate"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("SFA states           6"));
    assert!(stderr(&out).contains("validation: ok"));
}

#[test]
fn build_json_is_parseable() {
    let out = sfa(&["build", "--regex", "RG", "--threads", "2", "--json"]);
    assert!(out.status.success());
    let v: sfa_json::Value = sfa_json::from_str(&stdout(&out)).expect("valid JSON");
    assert_eq!(v["sfa_states"], 6);
    assert_eq!(v["dfa_states"], 3);
}

#[test]
fn build_sequential_variants() {
    for variant in ["baseline", "hashing", "transposed"] {
        let out = sfa(&["build", "--regex", "RG", "--seq", variant]);
        assert!(out.status.success(), "variant {variant}");
        assert!(stdout(&out).contains("SFA states           6"));
    }
}

#[test]
fn match_with_planted_text() {
    let out = sfa(&[
        "match",
        "--regex",
        "RGD",
        "--text",
        "AAARGDAAA",
        "--threads",
        "2",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("match                true"));

    let out = sfa(&[
        "match",
        "--regex",
        "RGD",
        "--text",
        "AAAA",
        "--threads",
        "2",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("match                false"));
}

#[test]
fn lazy_match_reports_states() {
    let out = sfa(&["match", "--regex", "RGD", "--random", "50000", "--lazy"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("states discovered"));
}

#[test]
fn probabilistic_build() {
    let out = sfa(&["build", "--rn", "40", "--probabilistic", "--validate"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("validation: ok"));
}

#[test]
fn verify_cross_checks() {
    let out = sfa(&["verify", "--regex", "R[GA]N", "--threads", "3"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("ok:"));
}

#[test]
fn dot_renders() {
    let out = sfa(&["dot", "--regex", "RG"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with("digraph"));
    assert!(text.contains("doublecircle"));
}

#[test]
fn fasta_input_round_trip() {
    let dir = std::env::temp_dir().join("sfa_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("input.fasta");
    std::fs::write(&path, ">rec1\nMKVARGDAA\n>rec2\nKKKK\n").unwrap();
    let out = sfa(&["match", "--regex", "RGD", "--fasta", path.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("match                true"));
    assert!(stderr(&out).contains("2 FASTA records"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn grail_file_source() {
    let dir = std::env::temp_dir().join("sfa_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("auto.grail");
    std::fs::write(&path, "(START) |- 0\n0 a 1\n1 b 2\n2 -| (FINAL)\n").unwrap();
    let out = sfa(&["build", "--grail", path.to_str().unwrap(), "--validate"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    std::fs::remove_file(&path).ok();
}

#[test]
fn compression_flag_forces_compressed_build() {
    let out = sfa(&["build", "--rn", "60", "--compress", "1K", "--validate"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("compression ratio"));
}

#[test]
fn conflicting_pattern_sources_rejected() {
    let out = sfa(&["build", "--regex", "RG", "--rn", "10"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("exactly one"));
}

#[test]
fn bad_codec_rejected() {
    let out = sfa(&["build", "--rn", "20", "--codec", "zstd"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown codec"));
}
