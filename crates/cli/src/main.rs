//! `sfa` — command-line front end for the SFA construction library.
//!
//! ```text
//! sfa compile  --prosite 'N-{P}-[ST]-{P}.'            # pattern → Grail+ DFA
//! sfa build    --regex 'RG' --threads 4               # construct the SFA
//! sfa build    --rn 500 --threads 8 --compress 64M    # the paper's r500
//! sfa match    --prosite 'R-G-D.' --random 1000000    # parallel matching
//! sfa survey   --rn 200                               # codec survey (E6)
//! sfa verify   --regex 'R[GA]N'                       # seq vs par cross-check
//! sfa workloads                                       # embedded PROSITE list
//! ```
//!
//! Run `sfa help` for the full option list.

use sfa_automata::grail;
use sfa_automata::pipeline::Pipeline;
use sfa_automata::Alphabet;
use sfa_core::prelude::*;
use sfa_core::sfa::CodecChoice;
use std::process::ExitCode;

mod args;
mod commands;

use args::Parsed;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(command) = argv.first() else {
        print_help();
        return Ok(());
    };
    if command == "artifact" {
        // `sfa artifact <verb> …` carries a positional verb the generic
        // parser rejects; route it before parsing.
        return commands::artifact(&argv[1..]);
    }
    let parsed = Parsed::parse(&argv[1..])?;
    match command.as_str() {
        "compile" => commands::compile(&parsed),
        "build" => commands::build(&parsed),
        "match" => commands::do_match(&parsed),
        "serve" => commands::serve(&parsed),
        "survey" => commands::survey(&parsed),
        "verify" => commands::verify(&parsed),
        "workloads" => commands::workloads(&parsed),
        "metrics" => commands::metrics(&parsed),
        "dot" => commands::dot(&parsed),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `sfa help`")),
    }
}

fn print_help() {
    println!(
        "sfa — simultaneous finite automata toolkit

USAGE:
    sfa <COMMAND> [OPTIONS]

COMMANDS:
    compile     compile a pattern to a minimal DFA (Grail+ text on stdout)
    build       construct the SFA of a pattern; print statistics
    match       match text against a pattern via parallel SFA matching
    serve       run the multi-tenant match daemon (binary + HTTP faces)
    survey      run the codec survey over sampled SFA states
    verify      cross-check parallel vs sequential construction
    workloads   list the embedded PROSITE pattern sample
    metrics     display a Prometheus snapshot written by --metrics-out
    dot         render the pattern's DFA as a Graphviz digraph
    artifact    inspect persisted artifacts: `sfa artifact verify --file <p>`
    help        show this message

PATTERN SOURCES (exactly one):
    --regex <r>      regular expression over the amino-acid alphabet
    --prosite <p>    PROSITE-syntax pattern
    --rn <n>         synthetic exact-string pattern of length n (r500 family)
    --grail <file>   read a Grail+ DFA from a file

COMMON OPTIONS:
    --exact              do not wrap the pattern in Σ*·r·Σ*
    --threads <n>        worker threads for `build`/`match` (default 4)
    --seq <variant>      sequential engine: baseline | hashing | transposed
    --budget <n>         SFA state budget (default 4194304)
    --compress <bytes>   memory watermark for the compression phase
                         (accepts suffixes K/M/G; `always`/`never`)
    --codec <name>       deflate | lz77 | rle | store | hybrid (default deflate)
    --scheduler <name>   stealing | global | mpmc (default stealing)
    --blocks <n>         symbol blocks per work item (1 = coarse-grained)
    --probabilistic      fingerprint-only state identity (Rabin, dense
                         random modulus); big peak-memory saving
    --deadline-ms <n>    abort construction after n milliseconds (typed
                         error; `match` degrades down the tier ladder
                         lazy/speculative/sequential instead)
    --max-bytes <b>      cap stored mapping-payload bytes (suffixes K/M/G)
    --max-states <n>     cap constructed SFA state count
    --spill-dir <dir>    build: spill cold states to segment files in this
                         directory instead of failing on memory pressure;
                         the result is byte-identical to an uncapped build
    --memory-cap <b>     build: resident payload-byte watermark that drives
                         demotion (suffixes K/M/G; requires --spill-dir;
                         --max-bytes also folds into the cap when given)
    --out <path>         build: write the SFA as a checksummed artifact
    --checkpoint <path>  build: snapshot construction state to this artifact
                         (implies a sequential engine; default transposed)
    --checkpoint-every <n>  build: states between snapshots (default 1024)
    --resume             build: continue from the --checkpoint artifact if it
                         exists (byte-identical result; fresh build otherwise)
    --json               machine-readable output
    --lazy               match: construct SFA states on demand (lazy SFA)
    --tier <policy>      match: tier policy — auto | sequential |
                         speculative | require_full. `speculative` skips
                         SFA construction entirely: chunks run on the
                         raw DFA from predicted entry states with seam
                         verification (mispredicted suffixes re-run)
    --random <len>       match: generate protein-like text of this length
    --text <string>      match: literal text
    --text-file <path>   match: read text from a file
    --fasta <path>       match: read a FASTA protein file
    --stream <path>      match: stream a file in fixed-size blocks through
                         the pooled match runtime (whitespace skipped;
                         never materializes the whole input)
    --block-bytes <b>    match: streaming block size (suffixes K/M/G;
                         default 8M)
    --interleave <k>     match: chunk chains scanned per worker loop
                         (1 | 2 | 4 | 8; default 4)
    --oversubscribe <n>  match: chunk tasks per worker thread, so
                         stragglers rebalance on the pool (default 4)
    --metrics-out <path> build/match: scrape the process-global metrics
                         registry to a Prometheus text snapshot on exit
                         (display it with `sfa metrics --file <path>`)
    --file <path>        metrics: the snapshot to display

SERVE OPTIONS:
    --patterns-dir <d>   directory of <id>.pat pattern files (required);
                         compiled SFAs are cached in <d>/artifacts/
    --listen <addr>      bind address (default 127.0.0.1:7878; port 0
                         picks an ephemeral port)
    --tenants <list>     comma-separated name=<bytes|unlimited> quotas
                         (K/M/G suffixes; default: one unlimited tenant
                         named `default`)
    --workers <n>        event-loop workers (default: one per core)
    --state-budget <n>   SFA state cap per pattern; larger patterns
                         serve on the sequential tier (default 1048576)
    --match-threads <n>  match-pool threads (default: one per core)"
    );
}

/// Build the DFA from whichever pattern source was given.
pub(crate) fn dfa_from_args(parsed: &Parsed) -> Result<sfa_automata::Dfa, String> {
    let alpha = Alphabet::amino_acids();
    let pipeline = if parsed.flag("exact") {
        Pipeline::exact(alpha)
    } else {
        Pipeline::search(alpha)
    };
    let sources = [
        parsed.opt("regex").is_some(),
        parsed.opt("prosite").is_some(),
        parsed.opt("rn").is_some(),
        parsed.opt("grail").is_some(),
    ]
    .iter()
    .filter(|&&x| x)
    .count();
    if sources != 1 {
        return Err("give exactly one of --regex, --prosite, --rn, --grail".into());
    }
    if let Some(r) = parsed.opt("regex") {
        return pipeline.compile_str(r).map_err(|e| e.to_string());
    }
    if let Some(p) = parsed.opt("prosite") {
        return pipeline.compile_prosite(p).map_err(|e| e.to_string());
    }
    if let Some(n) = parsed.opt("rn") {
        let n: usize = n.parse().map_err(|_| "--rn expects a number")?;
        return Ok(sfa_automata::random::rn(n));
    }
    let path = parsed.opt("grail").unwrap();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    grail::read_dfa(&text, None).map_err(|e| e.to_string())
}

/// Assemble the construction [`Budget`] from `--deadline-ms`,
/// `--max-bytes` and `--max-states` (unlimited when none are given).
pub(crate) fn budget_from_args(parsed: &Parsed) -> Result<Budget, String> {
    let mut budget = Budget::unlimited();
    if let Some(ms) = parsed.opt("deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("--deadline-ms expects milliseconds, got {ms:?}"))?;
        budget = budget.with_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(b) = parsed.opt("max-bytes") {
        budget = budget.with_max_payload_bytes(args::parse_bytes(b)? as u64);
    }
    if let Some(n) = parsed.opt("max-states") {
        let n: u64 = n
            .parse()
            .map_err(|_| format!("--max-states expects a number, got {n:?}"))?;
        budget = budget.with_max_states(n);
    }
    Ok(budget)
}

pub(crate) fn parallel_options(parsed: &Parsed) -> Result<ParallelOptions, String> {
    let mut opts = ParallelOptions::with_threads(parsed.num("threads", 4)?);
    opts.state_budget = parsed.num("budget", 1 << 22)?;
    if let Some(c) = parsed.opt("compress") {
        opts.compression = match c {
            "never" => CompressionPolicy::Never,
            "always" => CompressionPolicy::FromStart,
            other => CompressionPolicy::WhenMemoryExceeds(args::parse_bytes(other)?),
        };
    }
    if let Some(c) = parsed.opt("codec") {
        opts.codec = match c {
            "deflate" => CodecChoice::Deflate,
            "lz77" => CodecChoice::Lz77,
            "rle" => CodecChoice::Rle,
            "store" => CodecChoice::Store,
            "hybrid" => CodecChoice::Hybrid,
            other => return Err(format!("unknown codec {other:?}")),
        };
    }
    opts.symbol_blocks = parsed.num("blocks", 1)?;
    if parsed.flag("probabilistic") {
        opts.probabilistic = true;
        opts.fingerprint = sfa_core::parallel::FingerprintAlgo::Rabin;
    }
    if let Some(s) = parsed.opt("scheduler") {
        opts.scheduler = match s {
            "stealing" => Scheduler::WorkStealing,
            "global" => Scheduler::GlobalOnly,
            "mpmc" => Scheduler::SharedMpmc,
            other => return Err(format!("unknown scheduler {other:?}")),
        };
    }
    Ok(opts)
}
