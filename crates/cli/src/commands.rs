//! Implementations of the `sfa` subcommands.

use crate::args::Parsed;
use crate::{dfa_from_args, parallel_options};
use sfa_automata::grail;
use sfa_automata::Alphabet;
use sfa_core::obs;
use sfa_core::prelude::*;
use sfa_core::stats::ConstructionStats;

/// `--metrics-out <path>` — scrape the process-global metrics registry
/// into a Prometheus text snapshot after the command's work is done.
/// Construction engines and the match runtime feed the global registry
/// automatically, so this needs no per-command wiring beyond the pool
/// gauges sampled here. A no-op (empty file) when the `obs` feature is
/// compiled out.
fn write_metrics_snapshot(parsed: &Parsed) -> Result<(), String> {
    let Some(path) = parsed.opt("metrics-out") else {
        return Ok(());
    };
    obs::record_shared_pool(obs::global());
    let text = obs::export::prometheus_text(&obs::global().snapshot());
    std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("# wrote metrics snapshot to {path}");
    Ok(())
}

/// Feed one CLI match into the process-global registry for the paths
/// (lazy, plain `ParallelMatcher`) that bypass [`MatchEngine`] and so
/// never hit its delivery hook.
fn record_cli_match(tier: MatchTier, bytes: usize, secs: f64) {
    let mut stats = MatchStats::default();
    stats.tier = tier;
    stats.blocks = 1;
    stats.bytes = bytes as u64;
    stats.elapsed = std::time::Duration::from_secs_f64(secs);
    obs::record_match(obs::global(), &stats);
}

/// `sfa metrics --file <path>` — re-parse and display a Prometheus
/// snapshot written by `--metrics-out` (validating it in the process);
/// `--json` renders the parsed samples as JSON instead.
pub fn metrics(parsed: &Parsed) -> Result<(), String> {
    let path = parsed
        .opt("file")
        .ok_or("usage: sfa metrics --file <path> [--json]")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let samples = obs::export::parse_prometheus(&text).map_err(|e| format!("{path}: {e}"))?;
    if parsed.flag("json") {
        use sfa_json::{ToJson, Value};
        let rows: Vec<Value> = samples
            .iter()
            .map(|s| {
                let labels = s
                    .labels
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_json()))
                    .collect();
                Value::Object(vec![
                    ("name".to_string(), s.name.to_json()),
                    ("labels".to_string(), Value::Object(labels)),
                    ("value".to_string(), s.value.to_json()),
                ])
            })
            .collect();
        println!(
            "{}",
            sfa_json::to_string_pretty(&Value::Object(vec![(
                "samples".to_string(),
                Value::Array(rows)
            )]))
        );
        return Ok(());
    }
    if samples.is_empty() {
        println!("(no samples — snapshot from an obs-disabled build?)");
        return Ok(());
    }
    for s in &samples {
        let labels = if s.labels.is_empty() {
            String::new()
        } else {
            let body: Vec<String> = s
                .labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{v}\""))
                .collect();
            format!("{{{}}}", body.join(","))
        };
        println!("{:<56} {}", format!("{}{labels}", s.name), s.value);
    }
    Ok(())
}

/// `sfa compile` — pattern → minimal DFA in Grail+ text.
pub fn compile(parsed: &Parsed) -> Result<(), String> {
    let dfa = dfa_from_args(parsed)?;
    eprintln!(
        "# {} states, {} symbols, {} accepting",
        dfa.num_states(),
        dfa.num_symbols(),
        dfa.accepting_states().len()
    );
    print!("{}", grail::write_dfa(&dfa));
    Ok(())
}

struct BuildReport {
    dfa_states: u32,
    sfa_states: u32,
    threads: usize,
    total_secs: f64,
    phase1_secs: f64,
    compression_secs: f64,
    phase3_secs: f64,
    compressed: bool,
    uncompressed_bytes: u64,
    stored_bytes: u64,
    compression_ratio: f64,
    resident_bytes: u64,
    spilled_bytes: u64,
    demotions: u64,
    promotions: u64,
    candidates: u64,
    duplicates: u64,
    exhaustive_compares: u64,
    fingerprint_collisions: u64,
    cas_failures: u64,
    steal_attempts: u64,
    steal_successes: u64,
}

sfa_json::impl_to_json!(BuildReport {
    dfa_states,
    sfa_states,
    threads,
    total_secs,
    phase1_secs,
    compression_secs,
    phase3_secs,
    compressed,
    uncompressed_bytes,
    stored_bytes,
    compression_ratio,
    resident_bytes,
    spilled_bytes,
    demotions,
    promotions,
    candidates,
    duplicates,
    exhaustive_compares,
    fingerprint_collisions,
    cas_failures,
    steal_attempts,
    steal_successes,
});

impl BuildReport {
    fn new(dfa_states: u32, sfa_states: u32, s: &ConstructionStats) -> Self {
        BuildReport {
            dfa_states,
            sfa_states,
            threads: s.threads,
            total_secs: s.total_secs,
            phase1_secs: s.phase1_secs,
            compression_secs: s.compression_secs,
            phase3_secs: s.phase3_secs,
            compressed: s.compressed,
            uncompressed_bytes: s.uncompressed_bytes,
            stored_bytes: s.stored_bytes,
            compression_ratio: s.compression_ratio(),
            resident_bytes: s.resident_bytes,
            spilled_bytes: s.spilled_bytes,
            demotions: s.demotions,
            promotions: s.promotions,
            candidates: s.candidates,
            duplicates: s.duplicates,
            exhaustive_compares: s.exhaustive_compares,
            fingerprint_collisions: s.fingerprint_collisions,
            cas_failures: s.contention.cas_failures,
            steal_attempts: s.contention.steal_attempts,
            steal_successes: s.contention.steal_successes,
        }
    }

    fn print_human(&self) {
        println!("DFA states           {}", self.dfa_states);
        println!("SFA states           {}", self.sfa_states);
        println!("threads              {}", self.threads);
        println!("total time           {:.3} s", self.total_secs);
        if self.compressed {
            println!("  phase 1 (raw)      {:.3} s", self.phase1_secs);
            println!("  compression        {:.3} s", self.compression_secs);
            println!("  phase 3 (compr.)   {:.3} s", self.phase3_secs);
            println!("compression ratio    {:.1}x", self.compression_ratio);
        }
        println!(
            "state memory         {} -> {} bytes",
            self.uncompressed_bytes, self.stored_bytes
        );
        if self.demotions > 0 || self.spilled_bytes > 0 {
            // Degraded mode: the build ran under memory pressure and
            // engaged the spill tier. Say how much left RAM and how
            // often states came back.
            println!(
                "spill tier           {} bytes on disk, {} resident",
                self.spilled_bytes, self.resident_bytes
            );
            println!(
                "  demotions          {} ({} promotions back)",
                self.demotions, self.promotions
            );
        }
        println!(
            "candidates           {} ({} duplicates)",
            self.candidates, self.duplicates
        );
        println!(
            "exhaustive compares  {} ({} fingerprint collisions)",
            self.exhaustive_compares, self.fingerprint_collisions
        );
        println!(
            "contention           {} CAS failures, {}/{} steals",
            self.cas_failures, self.steal_successes, self.steal_attempts
        );
    }
}

/// Structured report for a build the budget governor aborted.
fn budget_error_json(err: &SfaError) -> sfa_json::Value {
    use sfa_json::{ToJson, Value};
    let mut fields: Vec<(String, Value)> = vec![("error".to_string(), err.to_string().to_json())];
    let progress = match err {
        SfaError::BudgetExceeded { resource, progress } => {
            fields.push(("resource".to_string(), resource.to_string().to_json()));
            Some(progress)
        }
        SfaError::Cancelled { progress } => {
            fields.push(("resource".to_string(), "cancelled".to_json()));
            Some(progress)
        }
        _ => None,
    };
    if let Some(p) = progress {
        fields.push(("states".to_string(), p.states.to_json()));
        fields.push(("payload_bytes".to_string(), p.payload_bytes.to_json()));
        fields.push((
            "elapsed_secs".to_string(),
            p.elapsed.as_secs_f64().to_json(),
        ));
    }
    Value::Object(fields)
}

/// `sfa build` — construct the SFA, print statistics.
pub fn build(parsed: &Parsed) -> Result<(), String> {
    let dfa = dfa_from_args(parsed)?;
    let budget = crate::budget_from_args(parsed)?;
    let checkpoint = parsed.opt("checkpoint");
    if parsed.flag("resume") && checkpoint.is_none() {
        return Err("--resume requires --checkpoint <path>".into());
    }
    // Both engines produce canonically numbered (byte-identical)
    // automata, so `--checkpoint`/`--resume` compose with either; a
    // checkpoint written by one engine can be resumed by the other.
    let mut builder = if parsed.opt("seq").is_some() {
        let variant = match parsed.opt("seq").unwrap_or("transposed") {
            "baseline" => SequentialVariant::Baseline,
            "pointer-tree" => SequentialVariant::BaselinePointerTree,
            "hashing" => SequentialVariant::Hashing,
            "transposed" => SequentialVariant::Transposed,
            other => return Err(format!("unknown sequential variant {other:?}")),
        };
        Sfa::builder(&dfa).sequential(variant).budget(budget)
    } else {
        let opts = parallel_options(parsed)?;
        Sfa::builder(&dfa).options(&opts).budget(budget)
    };
    // `--spill-dir` enables the tiered state store: builds that would
    // abort on `--memory-cap` (or `--max-bytes`) instead demote cold
    // states — compressed, then to disk — and finish byte-identical.
    let memory_cap = match parsed.opt("memory-cap") {
        Some(v) => Some(crate::args::parse_bytes(v)? as u64),
        None => None,
    };
    match (parsed.opt("spill-dir"), memory_cap) {
        (Some(dir), cap) => builder = builder.spill(dir, cap.unwrap_or(u64::MAX)),
        (None, Some(_)) => return Err("--memory-cap requires --spill-dir <dir>".into()),
        (None, None) => {}
    }
    if let Some(path) = checkpoint {
        builder = builder.checkpoint(path, parsed.num("checkpoint-every", 1024u64)?.max(1));
        if parsed.flag("resume") {
            if std::path::Path::new(path).exists() {
                eprintln!("# resuming from checkpoint {path}");
                builder = builder.resume_from(path);
            } else {
                // Keeps `build … --resume` usable as a retry loop: a
                // run that died before its first snapshot (or that
                // finished and was cleaned up) just starts over.
                eprintln!("# no checkpoint at {path}; starting fresh");
            }
        }
    }
    let built = builder.build();
    let result = match built {
        Ok(r) => r,
        Err(err) if err.is_degradable() => {
            // Degraded-mode reporting: the governor stopped the build.
            // Surface which axis fired and how far construction got,
            // then exit non-zero.
            if parsed.flag("json") {
                println!("{}", sfa_json::to_string_pretty(&budget_error_json(&err)));
            }
            return Err(format!("construction aborted by budget: {err}"));
        }
        Err(err) => return Err(err.to_string()),
    };
    if parsed.flag("validate") {
        result.sfa.validate(&dfa)?;
        eprintln!("validation: ok");
    }
    if let Some(out) = parsed.opt("out") {
        sfa_core::artifact::write_sfa(std::path::Path::new(out), &result.sfa)
            .map_err(|e| format!("{out}: {e}"))?;
        eprintln!("# wrote SFA artifact to {out}");
    }
    let report = BuildReport::new(dfa.num_states(), result.sfa.num_states(), &result.stats);
    if parsed.flag("json") {
        println!("{}", sfa_json::to_string_pretty(&report));
    } else {
        report.print_human();
    }
    write_metrics_snapshot(parsed)
}

/// `sfa artifact <verb>` — inspect persisted artifacts. The only verb
/// so far is `verify`: parse the container, check every checksum, and
/// fully decode the payload, failing with a typed error otherwise.
pub fn artifact(argv: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: sfa artifact verify --file <path>";
    let Some(verb) = argv.first() else {
        return Err(USAGE.into());
    };
    let parsed = Parsed::parse(&argv[1..])?;
    match verb.as_str() {
        "verify" => {
            let path = parsed.opt("file").ok_or(USAGE)?;
            let info = sfa_core::artifact::verify(std::path::Path::new(path))
                .map_err(|e| format!("{path}: {e}"))?;
            let kind = match info.kind {
                ArtifactKind::Sfa => "sfa",
                ArtifactKind::Checkpoint => "checkpoint",
            };
            if parsed.flag("json") {
                use sfa_json::ToJson;
                let fields: Vec<(String, sfa_json::Value)> = vec![
                    ("kind".to_string(), kind.to_json()),
                    ("version".to_string(), (info.version as u64).to_json()),
                    ("total_bytes".to_string(), info.total_bytes.to_json()),
                    (
                        "sections".to_string(),
                        (info.sections.len() as u64).to_json(),
                    ),
                ];
                println!(
                    "{}",
                    sfa_json::to_string_pretty(&sfa_json::Value::Object(fields))
                );
            } else {
                println!("kind                 {kind}");
                println!("format version       {}", info.version);
                println!("total bytes          {}", info.total_bytes);
                for s in &info.sections {
                    println!("  section tag {:>3}    {} bytes", s.tag, s.len);
                }
                println!("checksums            ok");
            }
            Ok(())
        }
        other => Err(format!("unknown artifact verb {other:?}; {USAGE}")),
    }
}

/// `--tier <auto|sequential|speculative|require_full>` — explicit tier
/// policy for `sfa match`. `None` when absent (auto behavior).
fn tier_from_args(parsed: &Parsed) -> Result<Option<TierPolicy>, String> {
    match parsed.opt("tier") {
        None => Ok(None),
        Some(s) => TierPolicy::parse(s).map(Some).ok_or_else(|| {
            format!("--tier expects auto|sequential|speculative|require_full, got {s:?}")
        }),
    }
}

/// `--interleave` / `--oversubscribe` — explicit scan-engine knobs.
/// `None` when neither was given, so the engine defaults apply.
fn scan_options_from_args(parsed: &Parsed) -> Result<Option<ScanOptions>, String> {
    if parsed.opt("interleave").is_none() && parsed.opt("oversubscribe").is_none() {
        return Ok(None);
    }
    let defaults = ScanOptions::default();
    let opts = ScanOptions {
        interleave: parsed.num("interleave", defaults.interleave)?,
        oversubscribe: parsed.num("oversubscribe", defaults.oversubscribe)?,
        min_chunk_symbols: defaults.min_chunk_symbols,
    };
    opts.validate().map_err(|e| e.to_string())?;
    Ok(Some(opts))
}

/// `sfa match` — parallel SFA matching of a text.
pub fn do_match(parsed: &Parsed) -> Result<(), String> {
    if let Some(path) = parsed.opt("stream") {
        return do_match_stream(parsed, path);
    }
    let dfa = dfa_from_args(parsed)?;
    let alpha = Alphabet::amino_acids();
    let text: Vec<u8> = if let Some(len) = parsed.opt("random") {
        let len: usize = len.parse().map_err(|_| "--random expects a length")?;
        sfa_workloads::protein_text(len, 0xC0FFEE)
    } else if let Some(t) = parsed.opt("text") {
        alpha
            .encode_bytes(t.as_bytes())
            .map_err(|e| e.to_string())?
    } else if let Some(path) = parsed.opt("text-file") {
        let raw = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        let filtered: Vec<u8> = raw
            .into_iter()
            .filter(|b| !b.is_ascii_whitespace())
            .collect();
        alpha.encode_bytes(&filtered).map_err(|e| e.to_string())?
    } else if let Some(path) = parsed.opt("fasta") {
        let raw = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let records = sfa_workloads::fasta::parse_fasta(&raw).map_err(|e| e.to_string())?;
        eprintln!("# {} FASTA records", records.len());
        sfa_workloads::fasta::concat_sequences(&records)
    } else {
        return Err("give one of --random, --text, --text-file, --fasta".into());
    };

    let threads = parsed.num("threads", 4)?;
    let budget = crate::budget_from_args(parsed)?;
    let tier = tier_from_args(parsed)?;
    if matches!(
        tier,
        Some(TierPolicy::Sequential) | Some(TierPolicy::Speculative)
    ) {
        // These tiers run on the raw DFA — no SFA construction at all.
        // `--tier speculative` is the escape hatch for automata whose
        // SFA is infeasible: chunk-parallel matching from predicted (or
        // feasible-set-pruned) entry states with seam verification.
        let policy = tier.unwrap();
        let runtime = MatchRuntime::new(threads);
        let request = MatchRequest::symbols(text.clone())
            .with_budget(budget.clone())
            .with_tier(policy);
        let t0 = std::time::Instant::now();
        let outcome = runtime
            .run_dfa(&dfa, &request, None)
            .map_err(|e| e.to_string())?;
        let secs = t0.elapsed().as_secs_f64();
        if outcome.verdict != match_sequential(&dfa, &text) {
            return Err("tiered and sequential matchers disagree (bug)".into());
        }
        obs::record_match(obs::global(), &outcome.stats);
        println!("text length          {} residues", text.len());
        println!("match                {}", outcome.verdict);
        println!("engine tier          {}", outcome.tier);
        if outcome.stats.chunks > 1 {
            println!(
                "speculation          {} chunks, {} mispredicts, {} re-runs",
                outcome.stats.chunks, outcome.stats.mispredicts, outcome.stats.reruns
            );
        }
        println!("tier match ({threads} thr)  {secs:.4} s");
        return write_metrics_snapshot(parsed);
    }
    if !budget.is_unlimited() || tier.is_some() {
        // Budgeted matching goes through the self-degrading engine:
        // if full construction is not possible under the budget, a
        // lower tier serves the query instead of failing.
        let opts = parallel_options(parsed)?;
        let mut engine = MatchEngine::with_budget(&dfa, &opts, &budget, None);
        if let Some(scan) = scan_options_from_args(parsed)? {
            engine.set_scan_options(scan).map_err(|e| e.to_string())?;
        }
        // Feed per-query stats into the process-global registry so a
        // `--metrics-out` snapshot carries `sfa_match_*`.
        let mut engine = engine.metrics(obs::global());
        let request = MatchRequest::symbols(text.clone())
            .with_budget(budget.clone())
            .with_tier(tier.unwrap_or_default());
        let t0 = std::time::Instant::now();
        let outcome = match engine.run(&request) {
            Ok(outcome) => outcome,
            Err(err) => {
                // Governance stopped the governed tiers mid-query; the
                // caller still asked for a verdict, so answer on the
                // ungoverned oracle.
                eprintln!("# governed match aborted ({err}); answering sequentially");
                engine
                    .run(&MatchRequest::symbols(text.clone()).with_tier(TierPolicy::Sequential))
                    .map_err(|e| e.to_string())?
            }
        };
        let secs = t0.elapsed().as_secs_f64();
        if outcome.verdict != match_sequential(&dfa, &text) {
            return Err("engine and sequential matchers disagree (bug)".into());
        }
        println!("text length          {} residues", text.len());
        println!("match                {}", outcome.verdict);
        println!("engine tier          {}", outcome.tier);
        if let Some(reason) = &outcome.degraded {
            println!("degraded             {reason}");
        }
        println!("engine match         {secs:.4} s");
        return write_metrics_snapshot(parsed);
    }
    if parsed.flag("lazy") {
        let lazy = sfa_core::lazy::LazySfa::new(&dfa, parsed.num("budget", 1 << 22)?)
            .map_err(|e| e.to_string())?;
        let t0 = std::time::Instant::now();
        let hit = lazy.matches(&text, threads).map_err(|e| e.to_string())?;
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(hit, match_sequential_oracle(&dfa, &text));
        record_cli_match(MatchTier::LazySfa, text.len(), secs);
        println!("text length          {} residues", text.len());
        println!("match                {hit}");
        println!(
            "lazy SFA match       {secs:.4} s ({} states discovered)",
            lazy.states_built()
        );
        return write_metrics_snapshot(parsed);
    }
    let opts = parallel_options(parsed)?;
    let t0 = std::time::Instant::now();
    let result = Sfa::builder(&dfa)
        .options(&opts)
        .build()
        .map_err(|e| e.to_string())?;
    let build_secs = t0.elapsed().as_secs_f64();

    let matcher = match scan_options_from_args(parsed)? {
        Some(scan) => {
            ParallelMatcher::with_options(&result.sfa, &dfa, scan).map_err(|e| e.to_string())?
        }
        None => ParallelMatcher::new(&result.sfa, &dfa).map_err(|e| e.to_string())?,
    };
    let runtime = MatchRuntime::new(threads);
    let request = MatchRequest::symbols(text.clone());
    let t1 = std::time::Instant::now();
    let outcome = runtime.run(&matcher, &request).map_err(|e| e.to_string())?;
    let sfa_match = outcome.verdict;
    let sfa_secs = t1.elapsed().as_secs_f64();
    record_cli_match(MatchTier::FullSfa, text.len(), sfa_secs);

    let t2 = std::time::Instant::now();
    let seq_match = match_sequential(&dfa, &text);
    let seq_secs = t2.elapsed().as_secs_f64();

    if sfa_match != seq_match {
        return Err("SFA and sequential matchers disagree (bug)".into());
    }
    println!("text length          {} residues", text.len());
    println!("match                {}", sfa_match);
    println!(
        "SFA construction     {build_secs:.4} s ({} states)",
        result.sfa.num_states()
    );
    println!("SFA match ({threads} thr)   {sfa_secs:.4} s");
    println!("sequential match     {seq_secs:.4} s");
    write_metrics_snapshot(parsed)
}

fn match_sequential_oracle(dfa: &sfa_automata::Dfa, text: &[u8]) -> bool {
    sfa_core::matcher::match_sequential(dfa, text)
}

/// `sfa match --stream <path>` — stream a file through the pooled match
/// runtime in fixed-size blocks: byte→symbol classification is fused
/// into the parallel chunk scans, so the file is never materialized as
/// a symbol vector. ASCII whitespace is skipped (line-wrapped text
/// streams as-is); any other non-alphabet byte is a typed error.
fn do_match_stream(parsed: &Parsed, path: &str) -> Result<(), String> {
    let dfa = dfa_from_args(parsed)?;
    let block_bytes = match parsed.opt("block-bytes") {
        Some(s) => crate::args::parse_bytes(s)?,
        None => sfa_core::runtime::DEFAULT_BLOCK_BYTES,
    };
    let opts = parallel_options(parsed)?;
    let budget = crate::budget_from_args(parsed)?;
    let mut engine = MatchEngine::with_budget(&dfa, &opts, &budget, None);
    if let Some(scan) = scan_options_from_args(parsed)? {
        engine.set_scan_options(scan).map_err(|e| e.to_string())?;
    }
    let mut engine = engine.metrics(obs::global());
    // An explicit --threads gets its own pool of that size; otherwise the
    // process-shared pool (one worker per CPU).
    let runtime = match parsed.opt("threads") {
        Some(_) => MatchRuntime::new(parsed.num("threads", 4)?),
        None => MatchRuntime::shared(),
    };
    engine.set_runtime(runtime.with_block_bytes(block_bytes));
    let request = MatchRequest::file(path)
        .with_classifier(ClassifierMode::SkipWhitespace)
        .with_budget(budget.clone())
        .with_tier(tier_from_args(parsed)?.unwrap_or_default());
    let t0 = std::time::Instant::now();
    let outcome = engine.run(&request).map_err(|e| e.to_string())?;
    let secs = t0.elapsed().as_secs_f64();
    let stats = &outcome.stats;
    println!("stream               {path}");
    println!(
        "streamed             {} bytes in {} blocks of {} ({} chunk scans)",
        stats.bytes, stats.blocks, block_bytes, stats.chunks
    );
    println!("match                {}", outcome.verdict);
    println!("engine tier          {}", outcome.tier);
    if let Some(reason) = &outcome.degraded {
        println!("degraded             {reason}");
    }
    // Sub-resolution matches get a clamped-but-plausible rate from
    // `bytes_per_sec()`; flag them rather than printing it as measured.
    let untimed = if stats.untimed() { " [untimed]" } else { "" };
    println!(
        "throughput           {:.1} MiB/s{untimed} ({secs:.4} s, pool depth {})",
        stats.bytes_per_sec() / (1024.0 * 1024.0),
        stats.queue_depth
    );
    write_metrics_snapshot(parsed)
}

/// `sfa serve` — run the multi-tenant match daemon until SIGTERM or
/// SIGINT, then drain gracefully (in-flight requests complete).
pub fn serve(parsed: &Parsed) -> Result<(), String> {
    let patterns_dir = parsed.opt("patterns-dir").ok_or(
        "usage: sfa serve --patterns-dir <dir> [--listen <host:port>] \
         [--tenants name=<bytes|unlimited>,...] [--workers <n>] \
         [--state-budget <n>] [--match-threads <n>]",
    )?;
    let listen = parsed.opt("listen").unwrap_or("127.0.0.1:7878");
    let mut tenants = Vec::new();
    if let Some(list) = parsed.opt("tenants") {
        for item in list.split(',').filter(|s| !s.trim().is_empty()) {
            tenants.push(sfa_serve::tenant::TenantSpec::parse(item.trim())?);
        }
    }
    let config = sfa_serve::ServeConfig::new(listen, patterns_dir)
        .with_tenants(tenants)
        .with_workers(parsed.num("workers", 0)?)
        .with_state_budget(parsed.num("state-budget", 1u64 << 20)?)
        .with_match_threads(parsed.num("match-threads", 0)?);
    let handle = sfa_serve::server::start(&config)?;

    let state = handle.state().clone();
    eprintln!(
        "# sfa serve listening on {} ({} patterns: {} reloaded from artifacts, {} constructed, \
         {} deduped)",
        handle.addr(),
        state.registry.entries().len(),
        state.registry.reloaded(),
        state.registry.constructed(),
        state.registry.deduped(),
    );
    if !state.registry.orphans().is_empty() {
        eprintln!(
            "# artifact cache holds {} unreferenced .sfar file(s) (safe to delete): {}",
            state.registry.orphans().len(),
            state.registry.orphans().join(", "),
        );
    }
    for entry in state.registry.entries() {
        match entry.degraded_reason() {
            Some(reason) => eprintln!(
                "#   pattern {:<12} {}  tier {} ({reason})",
                entry.id,
                entry.hash,
                entry.tier()
            ),
            None => eprintln!(
                "#   pattern {:<12} {}  tier {}",
                entry.id,
                entry.hash,
                entry.tier()
            ),
        }
    }
    for tenant in state.tenants.iter() {
        match tenant.spec.max_bytes {
            Some(max) => eprintln!("#   tenant  {:<12} quota {max} bytes", tenant.spec.name),
            None => eprintln!("#   tenant  {:<12} unlimited", tenant.spec.name),
        }
    }

    wait_for_shutdown();
    eprintln!("# signal received; draining");
    handle.shutdown_and_join();
    eprintln!("# drained cleanly");
    write_metrics_snapshot(parsed)
}

/// Block until SIGTERM or SIGINT arrives.
#[cfg(unix)]
fn wait_for_shutdown() {
    sfa_serve::sys::install_shutdown_handler();
    while !sfa_serve::sys::shutdown_signalled() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
}

/// Off unix there are no signal hooks: park until stdin closes
/// (Ctrl-C still kills the process, skipping the graceful drain).
#[cfg(not(unix))]
fn wait_for_shutdown() {
    use std::io::BufRead;
    let stdin = std::io::stdin();
    let mut line = String::new();
    while stdin.lock().read_line(&mut line).map_or(false, |n| n > 0) {
        line.clear();
    }
}

/// `sfa survey` — codec survey over sampled SFA states (E6 methodology).
pub fn survey(parsed: &Parsed) -> Result<(), String> {
    let dfa = dfa_from_args(parsed)?;
    let opts = parallel_options(parsed)?;
    let result = Sfa::builder(&dfa)
        .options(&opts)
        .build()
        .map_err(|e| e.to_string())?;
    let sfa = result.sfa;

    // Sample 10 states from equidistant positions (§III-C methodology).
    let n_states = sfa.num_states() as usize;
    let samples: Vec<Vec<u8>> = (0..10)
        .map(|i| {
            let s = (i * n_states.max(1) / 10) as u32;
            let mapping = sfa.mapping_of(s.min(sfa.num_states().saturating_sub(1)));
            // Serialize like the store does (little-endian u16 when they fit).
            if sfa.dfa_states() <= u16::MAX as usize + 1 {
                mapping
                    .iter()
                    .flat_map(|&v| (v as u16).to_le_bytes())
                    .collect()
            } else {
                mapping.iter().flat_map(|&v| v.to_le_bytes()).collect()
            }
        })
        .collect();

    let rows = sfa_compress::survey::run_survey(&samples);
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "codec", "input B", "output B", "ratio", "comp MiB/s", "dec MiB/s"
    );
    for r in rows {
        println!(
            "{:<10} {:>12} {:>12} {:>7.1}x {:>12.1} {:>12.1}",
            r.codec,
            r.input_bytes,
            r.compressed_bytes,
            r.ratio(),
            r.compress_mib_s(),
            r.decompress_mib_s()
        );
    }
    Ok(())
}

/// `sfa verify` — cross-check parallel vs sequential construction.
pub fn verify(parsed: &Parsed) -> Result<(), String> {
    let dfa = dfa_from_args(parsed)?;
    let seq = Sfa::builder(&dfa)
        .sequential(SequentialVariant::Transposed)
        .build()
        .map_err(|e| e.to_string())?;
    seq.sfa.validate(&dfa)?;
    let opts = parallel_options(parsed)?;
    let par = Sfa::builder(&dfa)
        .options(&opts)
        .build()
        .map_err(|e| e.to_string())?;
    par.sfa.validate(&dfa)?;
    if seq.sfa.num_states() != par.sfa.num_states() {
        return Err(format!(
            "state count mismatch: sequential {} vs parallel {}",
            seq.sfa.num_states(),
            par.sfa.num_states()
        ));
    }
    println!(
        "ok: {} SFA states from {} DFA states; sequential {:.3}s, parallel {:.3}s ({} threads)",
        seq.sfa.num_states(),
        dfa.num_states(),
        seq.stats.total_secs,
        par.stats.total_secs,
        par.stats.threads,
    );
    Ok(())
}

/// `sfa dot` — Graphviz export of the pattern's DFA.
pub fn dot(parsed: &Parsed) -> Result<(), String> {
    let dfa = dfa_from_args(parsed)?;
    let opts = sfa_automata::dot::DotOptions {
        name: parsed.opt("name").unwrap_or("dfa").to_string(),
        ..Default::default()
    };
    print!("{}", sfa_automata::dot::dfa_to_dot(&dfa, &opts));
    Ok(())
}

/// `sfa workloads` — list the embedded PROSITE sample.
pub fn workloads(parsed: &Parsed) -> Result<(), String> {
    let budget = parsed.num("budget", 200_000usize)?;
    println!("{:<10} {:>10}  pattern", "id", "DFA");
    for p in sfa_workloads::embedded_patterns() {
        let size = sfa_automata::pipeline::Pipeline::search(Alphabet::amino_acids())
            .dfa_budget(budget)
            .compile_prosite(p.pattern)
            .map(|d| d.num_states().to_string())
            .unwrap_or_else(|_| format!(">{budget}"));
        println!("{:<10} {:>10}  {}", p.id, size, p.pattern);
    }
    Ok(())
}
