//! Minimal `--flag` / `--key value` argument parsing (no external deps).

use std::collections::BTreeMap;

/// Options that never take a value.
const FLAGS: &[&str] = &[
    "exact",
    "json",
    "validate",
    "probabilistic",
    "lazy",
    "resume",
];

/// Parsed command-line options.
#[derive(Debug, Default)]
pub struct Parsed {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Parsed {
    /// Parse `--key value` pairs and bare `--flag`s.
    pub fn parse(argv: &[String]) -> Result<Parsed, String> {
        let mut out = Parsed::default();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {arg:?}"));
            };
            if FLAGS.contains(&name) {
                out.flags.push(name.to_string());
                i += 1;
            } else {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} expects a value"))?;
                out.values.insert(name.to_string(), value.clone());
                i += 2;
            }
        }
        Ok(out)
    }

    /// Value of `--name`, if present.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// Was the bare flag `--name` given?
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Numeric option with default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.opt(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got {v:?}")),
        }
    }
}

/// Parse a byte size with optional K/M/G suffix ("64M" → 67108864).
///
/// Every malformed input is a typed usage error, never a panic or a
/// silent wrap: `20000000G` used to overflow-wrap in release builds and
/// hand a tiny cap to the budget; `0` and bare suffixes (`M`) were
/// accepted or reported confusingly.
pub fn parse_bytes(s: &str) -> Result<usize, String> {
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'K') | Some(b'k') => (&s[..s.len() - 1], 1usize << 10),
        Some(b'M') | Some(b'm') => (&s[..s.len() - 1], 1 << 20),
        Some(b'G') | Some(b'g') => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    if digits.is_empty() {
        return Err(format!(
            "bad byte size {s:?}: a suffix needs digits (e.g. \"64M\")"
        ));
    }
    let v = digits
        .parse::<usize>()
        .map_err(|_| format!("bad byte size {s:?}"))?;
    if v == 0 {
        return Err(format!("bad byte size {s:?}: must be positive"));
    }
    v.checked_mul(mult)
        .ok_or_else(|| format!("byte size {s:?} overflows the addressable range"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let p = Parsed::parse(&argv(&["--regex", "RG", "--json", "--threads", "8"])).unwrap();
        assert_eq!(p.opt("regex"), Some("RG"));
        assert!(p.flag("json"));
        assert_eq!(p.num("threads", 1).unwrap(), 8);
        assert_eq!(p.num("budget", 42).unwrap(), 42);
    }

    #[test]
    fn rejects_positional_and_dangling() {
        assert!(Parsed::parse(&argv(&["positional"])).is_err());
        assert!(Parsed::parse(&argv(&["--threads"])).is_err());
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(parse_bytes("123").unwrap(), 123);
        assert_eq!(parse_bytes("4K").unwrap(), 4096);
        assert_eq!(parse_bytes("2M").unwrap(), 2 << 20);
        assert_eq!(parse_bytes("1G").unwrap(), 1 << 30);
        assert!(parse_bytes("abc").is_err());
    }

    #[test]
    fn byte_size_rejects_overflow_zero_and_bare_suffix() {
        // Would wrap to a tiny cap via unchecked `v * mult` in release.
        let err = parse_bytes("20000000000000000G").unwrap_err();
        assert!(err.contains("overflow"), "got: {err}");
        // usize::MAX parses but cannot take any suffix.
        assert!(parse_bytes(&format!("{}K", usize::MAX)).is_err());
        // Zero is not a usable cap.
        let err = parse_bytes("0").unwrap_err();
        assert!(err.contains("positive"), "got: {err}");
        assert!(parse_bytes("0M").is_err());
        // A suffix with no digits is not a quantity.
        let err = parse_bytes("G").unwrap_err();
        assert!(err.contains("digits"), "got: {err}");
        assert!(parse_bytes("").is_err());
        // The boundary itself still parses.
        assert_eq!(parse_bytes(&usize::MAX.to_string()).unwrap(), usize::MAX);
    }
}
