//! Dependency-free JSON for experiment records and CLI output.
//!
//! The build environment cannot fetch serde, and nothing here needs
//! serde's generality: records are flat structs of numbers, strings and
//! options. This crate provides
//!
//! * [`Value`] — a JSON document tree with an [`Index`](std::ops::Index)
//!   impl (`v["field"]`) and literal comparisons (`v["n"] == 6`),
//! * [`from_str`] — a strict recursive-descent parser,
//! * [`ToJson`] + [`to_string_pretty`] — serialization,
//! * [`impl_to_json!`] — a one-line field-list replacement for
//!   `#[derive(Serialize)]` on plain structs.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers, kept as f64 (integers up to 2⁵³ round-trip).
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (records keep their field order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == *other as f64)
            }
        }
    )*};
}

impl_value_eq_num!(i32, i64, u32, u64, usize, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn from_str(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        let mut seen = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired —
                            // nothing this workspace writes emits them.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("bad number"))
    }
}

/// Serialization into a [`Value`].
pub trait ToJson {
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Value {
        Value::String((*self).to_string())
    }
}

macro_rules! impl_to_json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_to_json_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (*self).to_json()
    }
}

/// Implement [`ToJson`] for a struct by listing its fields — the
/// replacement for `#[derive(Serialize)]` on flat record structs.
///
/// ```
/// struct Row { name: String, count: u64 }
/// sfa_json::impl_to_json!(Row { name, count });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($field).to_string(),
                       $crate::ToJson::to_json(&self.$field)),)*
                ])
            }
        }
    };
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: f64) -> String {
    // JSON has no representation for NaN or ±infinity; `format!("{n}")`
    // would emit the literal `inf`/`NaN` and corrupt the document (e.g.
    // a degenerate `compression_ratio()` of +∞). Render non-finite
    // numbers as `null`, matching serde_json's behaviour.
    if !n.is_finite() {
        return "null".to_string();
    }
    // Integers print without a trailing ".0" so records look like the
    // serde_json output they replace.
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_value(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(*n)),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, item)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_value(item, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-print (2-space indent, serde_json-compatible layout).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_json(), 0, &mut out);
    out
}

/// Compact single-line form.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    fn compact(v: &Value, out: &mut String) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&number_to_string(*n)),
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    compact(item, out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, item)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    compact(item, out);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    compact(&value.to_json(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        name: String,
        count: u64,
        ratio: f64,
        maybe: Option<f64>,
    }

    impl_to_json!(Row {
        name,
        count,
        ratio,
        maybe
    });

    #[test]
    fn struct_round_trip() {
        let row = Row {
            name: "r500".into(),
            count: 124_543,
            ratio: 27.5,
            maybe: None,
        };
        let text = to_string_pretty(&row);
        let v = from_str(&text).unwrap();
        assert_eq!(v["name"], "r500");
        assert_eq!(v["count"], 124_543u64);
        assert_eq!(v["ratio"], 27.5);
        assert_eq!(v["maybe"], Value::Null);
    }

    #[test]
    fn vec_of_records_and_indexing() {
        let rows = vec![
            Row {
                name: "a".into(),
                count: 1,
                ratio: 1.0,
                maybe: Some(2.0),
            },
            Row {
                name: "b".into(),
                count: 2,
                ratio: 0.5,
                maybe: None,
            },
        ];
        let v = from_str(&to_string_pretty(&rows)).unwrap();
        assert_eq!(v[0]["name"], "a");
        assert_eq!(v[1]["count"], 2u64);
        assert_eq!(v[2], Value::Null);
    }

    /// Regression: non-finite f64s used to print as the literal
    /// `inf`/`NaN`, which is not valid JSON and broke re-parsing of any
    /// report containing a degenerate ratio.
    #[test]
    fn non_finite_numbers_render_as_null() {
        for bad in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let row = Row {
                name: "degenerate".into(),
                count: 0,
                ratio: bad,
                maybe: Some(bad),
            };
            let text = to_string_pretty(&row);
            let v = from_str(&text).unwrap_or_else(|e| panic!("invalid JSON for {bad}: {e:?}"));
            assert_eq!(v["ratio"], Value::Null);
            assert_eq!(v["maybe"], Value::Null);
            let compact = to_string(&row);
            assert!(from_str(&compact).is_ok());
            assert!(!compact.contains("inf") && !compact.contains("NaN"));
        }
    }

    #[test]
    fn parses_escapes_and_nesting() {
        let v = from_str(r#"{"s": "a\"b\\c\ndA", "arr": [1, -2.5, 1e3, true, null]}"#).unwrap();
        assert_eq!(v["s"], "a\"b\\c\ndA");
        assert_eq!(v["arr"][0], 1);
        assert_eq!(v["arr"][1], -2.5);
        assert_eq!(v["arr"][2], 1000.0);
        assert_eq!(v["arr"][3], true);
        assert_eq!(v["arr"][4], Value::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\":1} x").is_err());
        assert!(from_str("{\"a\":1,\"a\":2}").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn compact_and_pretty_agree() {
        let v = from_str("{\"a\": [1, 2], \"b\": {\"c\": true}}").unwrap();
        let compact = to_string(&v);
        assert_eq!(from_str(&compact).unwrap(), v);
        assert!(!compact.contains('\n'));
        let pretty = to_string_pretty(&v);
        assert_eq!(from_str(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"a\": ["));
    }

    #[test]
    fn escaped_string_round_trip() {
        let original = "tab\there \"quotes\" and \\ slash \u{1}";
        let text = to_string_pretty(&original);
        let v = from_str(&text).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }
}
