//! The wire protocol and request dispatch.
//!
//! One daemon port speaks two faces, distinguished by the first bytes
//! of the connection:
//!
//! * **Binary** — length-prefixed JSON frames: `"SFA1"` magic, a
//!   little-endian `u32` payload length (capped at [`MAX_FRAME_LEN`]),
//!   then that many bytes of JSON. Requests are envelopes
//!   `{"tenant": "...", "request": <MatchRequest JSON>}`; responses are
//!   `{"ok": true, "tenant", "pattern", "hash", "outcome"}` or
//!   `{"ok": false, "error": {"code", "http_status", "message"}}`.
//!   Multiple frames per connection are served in order.
//! * **HTTP/1.1** — `POST /match` takes the same envelope as a body
//!   and answers the same response JSON (status from the error code);
//!   `GET /patterns` lists the registry; `GET /metrics` is a
//!   Prometheus scrape of the global registry. Responses always carry
//!   `Content-Length` and `Connection: close`.
//!
//! Dispatch itself ([`ServeState::handle_envelope`]) is transport-blind
//! pure-ish code: admission, pattern resolution, one call into the
//! shared [`MatchRuntime`], and the typed-error mapping.

use crate::registry::{PatternBackend, PatternEntry, PatternRegistry};
use crate::tenant::TenantTable;
use crate::{ErrorCode, ServeError};
use sfa_core::prelude::*;
use sfa_core::request::InputSource;
use sfa_json::Value;
use std::sync::atomic::{AtomicBool, Ordering};

/// Magic prefix of every binary frame.
pub const FRAME_MAGIC: [u8; 4] = *b"SFA1";
/// Frame header size: magic + u32 length.
pub const FRAME_HEADER: usize = 8;
/// Maximum frame payload (64 MiB) — a bigger length is a protocol
/// error, not an allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;
/// Maximum HTTP head size before the connection is dropped.
const MAX_HTTP_HEAD: usize = 16 << 10;

/// Which face a connection speaks (sniffed from its first bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// `SFA1` length-prefixed frames.
    Binary,
    /// HTTP/1.1.
    Http,
}

/// Sniff the protocol; `None` until enough bytes arrived, `Err` when
/// the prefix matches neither face.
pub fn detect(buf: &[u8]) -> Result<Option<Protocol>, ServeError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    if buf[..4] == FRAME_MAGIC {
        return Ok(Some(Protocol::Binary));
    }
    for method in ["GET ", "POST", "PUT ", "HEAD", "DELE"] {
        if &buf[..4] == method.as_bytes() {
            return Ok(Some(Protocol::Http));
        }
    }
    Err(ServeError::new(
        ErrorCode::BadRequest,
        "unrecognized protocol preamble (expected SFA1 magic or an HTTP method)",
    ))
}

/// Encode one binary frame around a JSON value.
pub fn encode_frame(v: &Value) -> Vec<u8> {
    let payload = sfa_json::to_string(v);
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Pop one complete frame payload off the front of `buf`. `Ok(None)`
/// until a full frame arrived; `Err` on bad magic or an oversized
/// length (the connection must close — framing is lost).
pub fn try_extract_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, ServeError> {
    if buf.len() < FRAME_HEADER {
        return Ok(None);
    }
    if buf[..4] != FRAME_MAGIC {
        return Err(ServeError::new(
            ErrorCode::BadRequest,
            "bad frame magic (stream desynchronized)",
        ));
    }
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ServeError::new(
            ErrorCode::BadRequest,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    if buf.len() < FRAME_HEADER + len {
        return Ok(None);
    }
    let payload = buf[FRAME_HEADER..FRAME_HEADER + len].to_vec();
    buf.drain(..FRAME_HEADER + len);
    Ok(Some(payload))
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Upper-cased method.
    pub method: String,
    /// Request target, e.g. `/match`.
    pub path: String,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Pop one complete HTTP request off the front of `buf`. Same contract
/// as [`try_extract_frame`].
pub fn try_extract_http(buf: &mut Vec<u8>) -> Result<Option<HttpRequest>, ServeError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HTTP_HEAD {
            return Err(ServeError::new(
                ErrorCode::BadRequest,
                "HTTP request head too large",
            ));
        }
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ServeError::new(ErrorCode::BadRequest, "HTTP head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(ServeError::new(
            ErrorCode::BadRequest,
            format!("malformed HTTP request line {request_line:?}"),
        ));
    };
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ServeError::new(ErrorCode::BadRequest, "invalid Content-Length"))?;
            if content_length > MAX_FRAME_LEN {
                return Err(ServeError::new(
                    ErrorCode::BadRequest,
                    "HTTP body exceeds the frame cap",
                ));
            }
        }
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    let req = HttpRequest {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        body: buf[body_start..body_start + content_length].to_vec(),
    };
    buf.drain(..body_start + content_length);
    Ok(Some(req))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Render an HTTP/1.1 response (always `Connection: close`).
pub fn http_response(status: u16, content_type: &str, body: &str) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Everything a worker needs to answer a request; shared by `Arc`.
pub struct ServeState {
    /// The compiled pattern registry.
    pub registry: PatternRegistry,
    /// The tenant table.
    pub tenants: TenantTable,
    /// The shared match pool — every request runs here, inline.
    pub runtime: MatchRuntime,
    /// Load-shedding latch: while set, envelopes are answered with
    /// [`ErrorCode::ShuttingDown`]. The SIGTERM drain does *not* set it
    /// until the workers have finished (in-flight requests complete);
    /// an embedder may set it directly to shed load.
    pub draining: AtomicBool,
}

impl ServeState {
    /// Assemble from loaded parts; `match_threads == 0` uses the
    /// process-shared pool.
    pub fn new(
        registry: PatternRegistry,
        tenants: TenantTable,
        match_threads: usize,
    ) -> ServeState {
        let runtime = if match_threads == 0 {
            MatchRuntime::shared()
        } else {
            MatchRuntime::new(match_threads)
        };
        ServeState {
            registry,
            tenants,
            runtime,
            draining: AtomicBool::new(false),
        }
    }

    /// Is the daemon draining?
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Serve one envelope; always yields a response object (errors are
    /// data, not connection teardown).
    pub fn handle_envelope(&self, envelope: &Value) -> Value {
        crate::REQUESTS_TOTAL.inc();
        let timer = sfa_obs::registry::Stopwatch::start();
        let response = match self.dispatch(envelope) {
            Ok((tenant, entry_id, hash, outcome)) => Value::Object(vec![
                ("ok".into(), Value::Bool(true)),
                ("tenant".into(), Value::String(tenant)),
                ("pattern".into(), Value::String(entry_id)),
                ("hash".into(), Value::String(hash)),
                ("outcome".into(), outcome.to_json()),
            ]),
            Err(err) => {
                crate::REJECTIONS_TOTAL.inc();
                error_response(&err)
            }
        };
        timer.record(&crate::REQUEST_NANOS);
        response
    }

    fn dispatch(
        &self,
        envelope: &Value,
    ) -> Result<(String, String, String, MatchOutcome), ServeError> {
        if self.draining() {
            return Err(ServeError::new(
                ErrorCode::ShuttingDown,
                "the daemon is draining",
            ));
        }
        let tenant_name = envelope
            .get("tenant")
            .and_then(Value::as_str)
            .ok_or_else(|| {
                ServeError::new(ErrorCode::BadRequest, "envelope is missing \"tenant\"")
            })?;
        let request_v = envelope.get("request").ok_or_else(|| {
            ServeError::new(ErrorCode::BadRequest, "envelope is missing \"request\"")
        })?;
        let request = MatchRequest::from_json(request_v)
            .map_err(|msg| ServeError::new(ErrorCode::BadRequest, msg))?;

        let tenant = self.tenants.get(tenant_name).ok_or_else(|| {
            ServeError::new(
                ErrorCode::BadRequest,
                format!("unknown tenant {tenant_name:?}"),
            )
        })?;
        // A remote caller must not name server-side paths, and a file
        // has no length to charge the quota with.
        let Some(len) = request.input.len_hint() else {
            return Err(ServeError::new(
                ErrorCode::BadRequest,
                "file inputs are not accepted over the wire",
            ));
        };
        debug_assert!(!matches!(request.input, InputSource::File(_)));
        let pattern_key = request
            .pattern
            .as_deref()
            .ok_or_else(|| ServeError::new(ErrorCode::BadRequest, "request names no pattern"))?;
        let entry = self.registry.resolve(pattern_key).ok_or_else(|| {
            ServeError::new(
                ErrorCode::UnknownPattern,
                format!("no pattern with id or hash {pattern_key:?}"),
            )
        })?;
        tenant.admit(len)?;

        let outcome = self.run_entry(entry, &request)?;
        Ok((
            tenant_name.to_string(),
            entry.id.clone(),
            entry.hash.clone(),
            outcome,
        ))
    }

    fn run_entry(
        &self,
        entry: &PatternEntry,
        request: &MatchRequest,
    ) -> Result<MatchOutcome, ServeError> {
        match &entry.backend {
            PatternBackend::Full { sfa, scan } => {
                let matcher = ParallelMatcher::with_scan(sfa, entry.dfa, scan.clone());
                self.runtime.run(&matcher, request).map_err(map_match_error)
            }
            PatternBackend::Sequential { reason } => {
                if request.tier == TierPolicy::RequireFull {
                    return Err(ServeError::new(
                        ErrorCode::BadRequest,
                        format!(
                            "tier policy requires the full SFA tier, but pattern {:?} is degraded: {reason}",
                            entry.id
                        ),
                    ));
                }
                self.runtime
                    .run_dfa(entry.dfa, request, None)
                    .map(|outcome| match request.tier {
                        // The pattern could not be served on the full
                        // tier — that's a degradation only for callers
                        // who asked for the ladder. An explicit
                        // sequential/speculative request is service as
                        // ordered (same rule as `MatchEngine::run`).
                        TierPolicy::Auto => outcome.with_degraded(reason.clone()),
                        _ => outcome,
                    })
                    .map_err(map_match_error)
            }
        }
    }

    /// Serve one parsed HTTP request.
    pub fn handle_http(&self, req: &HttpRequest) -> Vec<u8> {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/match") => {
                let envelope = match std::str::from_utf8(&req.body)
                    .map_err(|_| "body is not UTF-8".to_string())
                    .and_then(|s| sfa_json::from_str(s).map_err(|e| e.to_string()))
                {
                    Ok(v) => v,
                    Err(msg) => {
                        crate::BAD_FRAMES_TOTAL.inc();
                        let err = ServeError::new(
                            ErrorCode::BadRequest,
                            format!("invalid JSON body: {msg}"),
                        );
                        return http_response(
                            400,
                            "application/json",
                            &sfa_json::to_string(&error_response(&err)),
                        );
                    }
                };
                let response = self.handle_envelope(&envelope);
                let status = response
                    .get("error")
                    .and_then(|e| e.get("http_status"))
                    .and_then(Value::as_f64)
                    .map(|s| s as u16)
                    .unwrap_or(200);
                http_response(status, "application/json", &sfa_json::to_string(&response))
            }
            ("GET", "/patterns") => {
                let patterns = self
                    .registry
                    .entries()
                    .iter()
                    .map(|e| {
                        Value::Object(vec![
                            ("id".into(), Value::String(e.id.clone())),
                            ("hash".into(), Value::String(e.hash.clone())),
                            ("pattern".into(), Value::String(e.pattern.clone())),
                            ("tier".into(), Value::String(e.tier().into())),
                            (
                                "degraded".into(),
                                match e.degraded_reason() {
                                    Some(r) => Value::String(r.to_string()),
                                    None => Value::Null,
                                },
                            ),
                        ])
                    })
                    .collect();
                let body = Value::Object(vec![("patterns".into(), Value::Array(patterns))]);
                http_response(200, "application/json", &sfa_json::to_string(&body))
            }
            ("GET", "/metrics") => {
                let text =
                    sfa_obs::export::prometheus_text(&sfa_obs::registry::global().snapshot());
                http_response(200, "text/plain; version=0.0.4", &text)
            }
            (method, path) => {
                let err =
                    ServeError::new(ErrorCode::BadRequest, format!("no route {method} {path}"));
                http_response(
                    404,
                    "application/json",
                    &sfa_json::to_string(&error_response(&err)),
                )
            }
        }
    }
}

/// The wire form of a typed rejection.
pub fn error_response(err: &ServeError) -> Value {
    Value::Object(vec![
        ("ok".into(), Value::Bool(false)),
        (
            "error".into(),
            Value::Object(vec![
                ("code".into(), Value::String(err.code.as_str().into())),
                (
                    "http_status".into(),
                    Value::Number(err.code.http_status() as f64),
                ),
                ("message".into(), Value::String(err.message.clone())),
            ]),
        ),
    ])
}

/// Map a match-time [`SfaError`] onto a wire code.
fn map_match_error(err: SfaError) -> ServeError {
    let code = match &err {
        SfaError::BudgetExceeded { .. } | SfaError::Cancelled { .. } => ErrorCode::BudgetExceeded,
        SfaError::InvalidByte { .. } | SfaError::InvalidOptions(_) => ErrorCode::BadRequest,
        _ => ErrorCode::Internal,
    };
    ServeError::new(code, err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip_and_partials() {
        let v = Value::Object(vec![("x".into(), Value::Number(3.0))]);
        let frame = encode_frame(&v);
        // Feed byte by byte: no frame until the last byte lands.
        let mut buf = Vec::new();
        for (i, b) in frame.iter().enumerate() {
            buf.push(*b);
            let got = try_extract_frame(&mut buf).unwrap();
            if i + 1 < frame.len() {
                assert!(got.is_none());
            } else {
                let payload = got.unwrap();
                assert_eq!(
                    sfa_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap(),
                    v
                );
            }
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn bad_magic_and_oversized_frames_are_errors() {
        let mut buf = b"nope0000".to_vec();
        assert!(try_extract_frame(&mut buf).is_err());
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC);
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(try_extract_frame(&mut buf).is_err());
    }

    #[test]
    fn protocol_detection() {
        assert_eq!(detect(b"SF").unwrap(), None);
        assert_eq!(detect(b"SFA1....").unwrap(), Some(Protocol::Binary));
        assert_eq!(detect(b"POST /match").unwrap(), Some(Protocol::Http));
        assert_eq!(detect(b"GET /met").unwrap(), Some(Protocol::Http));
        assert!(detect(b"\x00\x01\x02\x03").is_err());
    }

    #[test]
    fn http_parse_and_response() {
        let mut buf = b"POST /match HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody".to_vec();
        let req = try_extract_http(&mut buf).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/match");
        assert_eq!(req.body, b"body");
        assert!(buf.is_empty());

        let mut partial = b"GET /metrics HTTP/1.1\r\n".to_vec();
        assert!(try_extract_http(&mut partial).unwrap().is_none());

        let resp = http_response(404, "application/json", "{}");
        let text = String::from_utf8(resp).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
