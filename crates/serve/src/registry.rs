//! The pattern registry: compiled automata keyed by id and by
//! artifact hash.
//!
//! Patterns live as plain files: `<dir>/<id>.pat` holds the regex
//! source (over the amino-acid alphabet, the paper's domain). At
//! startup every pattern is compiled to a DFA and its SFA is either
//! **reloaded** from `<dir>/artifacts/<hash>.sfar` (hash = hex of
//! [`dfa_fingerprint`]) or **constructed** and written there — so a
//! restarted daemon pays deserialization, not reconstruction. A
//! pattern whose SFA construction blows the state budget is still
//! served, degraded to the sequential tier with the reason recorded.
//!
//! Registry entries leak their automata (`Box::leak`): the daemon
//! serves them for its whole lifetime from many worker threads, and a
//! `&'static` borrow is what lets [`ParallelMatcher`] instances be
//! built per-request without an `Arc` in every transition-table access.

use sfa_automata::alphabet::Alphabet;
use sfa_automata::dfa::Dfa;
use sfa_automata::pipeline::Pipeline;
use sfa_core::artifact::{self, dfa_fingerprint};
use sfa_core::budget::Budget;
use sfa_core::scan::ScanEngine;
use sfa_core::sfa::Sfa;
use sfa_core::SfaError;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// How a pattern's queries are served.
pub enum PatternBackend {
    /// Full chunk-parallel tier: the constructed SFA plus its shared
    /// pre-scaled scan tables.
    Full {
        /// The constructed simultaneous automaton.
        sfa: &'static Sfa,
        /// Shared compact scan tables (built once per pattern).
        scan: Arc<ScanEngine>,
    },
    /// Sequential-only: construction exceeded the state budget.
    Sequential {
        /// Why the full tier is unavailable.
        reason: String,
    },
}

/// One compiled pattern.
pub struct PatternEntry {
    /// Registry id (the `.pat` file stem).
    pub id: String,
    /// The pattern source text.
    pub pattern: String,
    /// Hex of [`dfa_fingerprint`] — the artifact key, also accepted as
    /// a request's `pattern` reference.
    pub hash: String,
    /// The compiled DFA.
    pub dfa: &'static Dfa,
    /// The serving backend.
    pub backend: PatternBackend,
}

impl PatternEntry {
    /// The tier this entry serves on, as a wire string.
    pub fn tier(&self) -> &'static str {
        match self.backend {
            PatternBackend::Full { .. } => "full",
            PatternBackend::Sequential { .. } => "sequential",
        }
    }

    /// The degradation reason, when sequential-only.
    pub fn degraded_reason(&self) -> Option<&str> {
        match &self.backend {
            PatternBackend::Full { .. } => None,
            PatternBackend::Sequential { reason } => Some(reason),
        }
    }
}

/// The immutable registry built at startup.
pub struct PatternRegistry {
    entries: Vec<PatternEntry>,
    by_key: BTreeMap<String, usize>,
    artifacts_dir: PathBuf,
    reloaded: usize,
    constructed: usize,
}

impl PatternRegistry {
    /// Load `<dir>/*.pat`, compiling each pattern and reusing cached
    /// `.sfar` artifacts where a valid one exists. `state_budget` caps
    /// each construction; `threads` is the construction parallelism.
    pub fn load(patterns_dir: &Path, state_budget: u64, threads: usize) -> Result<Self, String> {
        let artifacts_dir = patterns_dir.join("artifacts");
        std::fs::create_dir_all(&artifacts_dir)
            .map_err(|e| format!("create {}: {e}", artifacts_dir.display()))?;

        let mut pattern_files: Vec<(String, PathBuf)> = Vec::new();
        let dir = std::fs::read_dir(patterns_dir)
            .map_err(|e| format!("read {}: {e}", patterns_dir.display()))?;
        for entry in dir {
            let entry = entry.map_err(|e| e.to_string())?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("pat") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            pattern_files.push((stem.to_string(), path));
        }
        // Deterministic registry order regardless of readdir order.
        pattern_files.sort();
        if pattern_files.is_empty() {
            return Err(format!(
                "no *.pat pattern files in {}",
                patterns_dir.display()
            ));
        }

        let mut registry = PatternRegistry {
            entries: Vec::new(),
            by_key: BTreeMap::new(),
            artifacts_dir,
            reloaded: 0,
            constructed: 0,
        };
        for (id, path) in pattern_files {
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            let pattern = source.trim().to_string();
            registry.insert(id, pattern, state_budget, threads)?;
        }
        Ok(registry)
    }

    fn insert(
        &mut self,
        id: String,
        pattern: String,
        state_budget: u64,
        threads: usize,
    ) -> Result<(), String> {
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str(&pattern)
            .map_err(|e| format!("pattern {id:?} ({pattern:?}): {e}"))?;
        let dfa: &'static Dfa = Box::leak(Box::new(dfa));
        let hash = format!("{:016x}", dfa_fingerprint(dfa));
        let backend = self.obtain_sfa(dfa, &hash, state_budget, threads);
        let ix = self.entries.len();
        if self.by_key.insert(id.clone(), ix).is_some() {
            return Err(format!("duplicate pattern id {id:?}"));
        }
        // First pattern wins a hash collision (identical DFAs share an
        // artifact anyway; resolving by either id still works).
        self.by_key.entry(hash.clone()).or_insert(ix);
        self.entries.push(PatternEntry {
            id,
            pattern,
            hash,
            dfa,
            backend,
        });
        Ok(())
    }

    /// Reload the SFA from its cached artifact, or construct and cache
    /// it. Any artifact problem (missing, corrupt, stale) silently
    /// falls through to construction; any construction failure degrades
    /// the entry to the sequential tier.
    fn obtain_sfa(
        &mut self,
        dfa: &'static Dfa,
        hash: &str,
        state_budget: u64,
        threads: usize,
    ) -> PatternBackend {
        let artifact_path = self.artifacts_dir.join(format!("{hash}.sfar"));
        if let Ok(sfa) = artifact::read_sfa(&artifact_path) {
            if sfa.validate(dfa).is_ok() {
                self.reloaded += 1;
                return Self::full_backend(dfa, sfa);
            }
        }
        let built = Sfa::builder(dfa)
            .threads(threads.max(1))
            .budget(Budget::unlimited().with_max_states(state_budget))
            .build();
        match built {
            Ok(result) => {
                self.constructed += 1;
                // Cache for the next daemon start; serving works either way.
                let _ = artifact::write_sfa(&artifact_path, &result.sfa);
                Self::full_backend(dfa, result.sfa)
            }
            Err(err @ SfaError::StateBudgetExceeded { .. }) => PatternBackend::Sequential {
                reason: err.to_string(),
            },
            Err(other) => PatternBackend::Sequential {
                reason: format!("SFA construction failed: {other}"),
            },
        }
    }

    fn full_backend(dfa: &'static Dfa, sfa: Sfa) -> PatternBackend {
        let sfa: &'static Sfa = Box::leak(Box::new(sfa));
        PatternBackend::Full {
            sfa,
            scan: Arc::new(ScanEngine::new(sfa, dfa)),
        }
    }

    /// Resolve a request's `pattern` reference — an id or an artifact
    /// hash.
    pub fn resolve(&self, key: &str) -> Option<&PatternEntry> {
        self.by_key.get(key).map(|&ix| &self.entries[ix])
    }

    /// All entries, in id order.
    pub fn entries(&self) -> &[PatternEntry] {
        &self.entries
    }

    /// How many SFAs were reloaded from cached artifacts this start.
    pub fn reloaded(&self) -> usize {
        self.reloaded
    }

    /// How many SFAs were constructed (and cached) this start.
    pub fn constructed(&self) -> usize {
        self.constructed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sfa-serve-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn loads_caches_and_reloads() {
        let dir = temp_dir("reload");
        std::fs::write(dir.join("rg.pat"), "RG\n").unwrap();
        std::fs::write(dir.join("motif.pat"), "RGD").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a pattern").unwrap();

        let first = PatternRegistry::load(&dir, 1 << 20, 2).unwrap();
        assert_eq!(first.entries().len(), 2);
        assert_eq!(first.constructed(), 2);
        assert_eq!(first.reloaded(), 0);

        let rg = first.resolve("rg").unwrap();
        assert_eq!(rg.pattern, "RG");
        assert_eq!(rg.tier(), "full");
        assert_eq!(rg.hash.len(), 16);
        // Resolvable by artifact hash too.
        let by_hash = first.resolve(&rg.hash.clone()).unwrap();
        assert_eq!(by_hash.id, "rg");

        // A second start reloads both SFAs from the artifact cache.
        let second = PatternRegistry::load(&dir, 1 << 20, 2).unwrap();
        assert_eq!(second.reloaded(), 2);
        assert_eq!(second.constructed(), 0);
        assert_eq!(second.resolve("motif").unwrap().tier(), "full");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn state_budget_degrades_to_sequential() {
        let dir = temp_dir("degrade");
        // Bounded repetition explodes the SFA state count well past 2.
        std::fs::write(dir.join("hard.pat"), "RG").unwrap();
        let registry = PatternRegistry::load(&dir, 2, 2).unwrap();
        let hard = registry.resolve("hard").unwrap();
        assert_eq!(hard.tier(), "sequential");
        assert!(hard.degraded_reason().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_is_an_error() {
        let dir = temp_dir("empty");
        assert!(PatternRegistry::load(&dir, 1 << 20, 1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
