//! The pattern registry: compiled automata keyed by id and by
//! artifact hash, backed by a content-addressed artifact store.
//!
//! Patterns live as plain files: `<dir>/<id>.pat` holds the regex
//! source (over the amino-acid alphabet, the paper's domain). At
//! startup every pattern is compiled to a DFA and its SFA is either
//! **reloaded** from the artifact cache or **constructed** and cached —
//! so a restarted daemon pays deserialization, not reconstruction. A
//! pattern whose SFA construction blows the state budget is still
//! served, degraded to the sequential tier with the reason recorded.
//!
//! The cache under `<dir>/artifacts/` is **content-addressed**:
//! `<content>.sfar` is named by the CRC-64 of its own bytes
//! ([`artifact::content_hash`]), and the per-pattern sidecar
//! `<dfa_fp>.ref` (dfa_fp = hex of [`dfa_fingerprint`]) points at it.
//! Construction is deterministic — parallel builds are byte-identical
//! to sequential ones — so identical patterns hash identically and
//! restarts, rebuilds, and concurrent tenants **share one artifact**
//! instead of accumulating duplicates. `.sfar` files no ref points at
//! (including pre-content-addressing `<dfa_fp>.sfar` files, which are
//! re-homed on first load) are garbage-noted in the reload log, never
//! silently deleted.
//!
//! Registry entries leak their automata (`Box::leak`): the daemon
//! serves them for its whole lifetime from many worker threads, and a
//! `&'static` borrow is what lets [`ParallelMatcher`] instances be
//! built per-request without an `Arc` in every transition-table access.

use sfa_automata::alphabet::Alphabet;
use sfa_automata::dfa::Dfa;
use sfa_automata::pipeline::Pipeline;
use sfa_core::artifact::{self, dfa_fingerprint};
use sfa_core::budget::Budget;
use sfa_core::scan::ScanEngine;
use sfa_core::sfa::Sfa;
use sfa_core::SfaError;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// How a pattern's queries are served.
pub enum PatternBackend {
    /// Full chunk-parallel tier: the constructed SFA plus its shared
    /// pre-scaled scan tables.
    Full {
        /// The constructed simultaneous automaton.
        sfa: &'static Sfa,
        /// Shared compact scan tables (built once per pattern).
        scan: Arc<ScanEngine>,
    },
    /// Sequential-only: construction exceeded the state budget.
    Sequential {
        /// Why the full tier is unavailable.
        reason: String,
    },
}

/// One compiled pattern.
pub struct PatternEntry {
    /// Registry id (the `.pat` file stem).
    pub id: String,
    /// The pattern source text.
    pub pattern: String,
    /// Hex of [`dfa_fingerprint`] — the artifact key, also accepted as
    /// a request's `pattern` reference.
    pub hash: String,
    /// The compiled DFA.
    pub dfa: &'static Dfa,
    /// The serving backend.
    pub backend: PatternBackend,
}

impl PatternEntry {
    /// The tier this entry serves on, as a wire string.
    pub fn tier(&self) -> &'static str {
        match self.backend {
            PatternBackend::Full { .. } => "full",
            PatternBackend::Sequential { .. } => "sequential",
        }
    }

    /// The degradation reason, when sequential-only.
    pub fn degraded_reason(&self) -> Option<&str> {
        match &self.backend {
            PatternBackend::Full { .. } => None,
            PatternBackend::Sequential { reason } => Some(reason),
        }
    }
}

/// The immutable registry built at startup.
pub struct PatternRegistry {
    entries: Vec<PatternEntry>,
    by_key: BTreeMap<String, usize>,
    artifacts_dir: PathBuf,
    reloaded: usize,
    constructed: usize,
    deduped: usize,
    orphans: Vec<String>,
}

impl PatternRegistry {
    /// Load `<dir>/*.pat`, compiling each pattern and reusing cached
    /// `.sfar` artifacts where a valid one exists. `state_budget` caps
    /// each construction; `threads` is the construction parallelism.
    pub fn load(patterns_dir: &Path, state_budget: u64, threads: usize) -> Result<Self, String> {
        let artifacts_dir = patterns_dir.join("artifacts");
        std::fs::create_dir_all(&artifacts_dir)
            .map_err(|e| format!("create {}: {e}", artifacts_dir.display()))?;

        let mut pattern_files: Vec<(String, PathBuf)> = Vec::new();
        let dir = std::fs::read_dir(patterns_dir)
            .map_err(|e| format!("read {}: {e}", patterns_dir.display()))?;
        for entry in dir {
            let entry = entry.map_err(|e| e.to_string())?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("pat") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            pattern_files.push((stem.to_string(), path));
        }
        // Deterministic registry order regardless of readdir order.
        pattern_files.sort();
        if pattern_files.is_empty() {
            return Err(format!(
                "no *.pat pattern files in {}",
                patterns_dir.display()
            ));
        }

        let mut registry = PatternRegistry {
            entries: Vec::new(),
            by_key: BTreeMap::new(),
            artifacts_dir,
            reloaded: 0,
            constructed: 0,
            deduped: 0,
            orphans: Vec::new(),
        };
        for (id, path) in pattern_files {
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            let pattern = source.trim().to_string();
            registry.insert(id, pattern, state_budget, threads)?;
        }
        registry.note_orphans();
        Ok(registry)
    }

    /// Garbage-note every `.sfar` file no loaded pattern's `.ref` points
    /// at — stale duplicates from before content addressing, or
    /// artifacts of deleted patterns. Noted in the reload log for the
    /// operator; never silently deleted.
    fn note_orphans(&mut self) {
        let referenced: std::collections::BTreeSet<String> = self
            .entries
            .iter()
            .filter_map(|e| {
                let ref_path = self.artifacts_dir.join(format!("{}.ref", e.hash));
                std::fs::read_to_string(ref_path)
                    .ok()
                    .map(|c| format!("{}.sfar", c.trim()))
            })
            .collect();
        let Ok(dir) = std::fs::read_dir(&self.artifacts_dir) else {
            return;
        };
        for entry in dir.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("sfar") {
                continue;
            }
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if !referenced.contains(name) {
                self.orphans.push(name.to_string());
            }
        }
        self.orphans.sort();
    }

    fn insert(
        &mut self,
        id: String,
        pattern: String,
        state_budget: u64,
        threads: usize,
    ) -> Result<(), String> {
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str(&pattern)
            .map_err(|e| format!("pattern {id:?} ({pattern:?}): {e}"))?;
        let dfa: &'static Dfa = Box::leak(Box::new(dfa));
        let hash = format!("{:016x}", dfa_fingerprint(dfa));
        let backend = self.obtain_sfa(dfa, &hash, state_budget, threads);
        let ix = self.entries.len();
        if self.by_key.insert(id.clone(), ix).is_some() {
            return Err(format!("duplicate pattern id {id:?}"));
        }
        // First pattern wins a hash collision (identical DFAs share an
        // artifact anyway; resolving by either id still works).
        self.by_key.entry(hash.clone()).or_insert(ix);
        self.entries.push(PatternEntry {
            id,
            pattern,
            hash,
            dfa,
            backend,
        });
        Ok(())
    }

    /// Reload the SFA from the content-addressed cache, or construct
    /// and cache it. Any artifact problem (missing, corrupt, stale)
    /// silently falls through to construction; any construction failure
    /// degrades the entry to the sequential tier.
    fn obtain_sfa(
        &mut self,
        dfa: &'static Dfa,
        hash: &str,
        state_budget: u64,
        threads: usize,
    ) -> PatternBackend {
        if let Some(sfa) = self.reload(dfa, hash) {
            self.reloaded += 1;
            return Self::full_backend(dfa, sfa);
        }
        let built = Sfa::builder(dfa)
            .threads(threads.max(1))
            .budget(Budget::unlimited().with_max_states(state_budget))
            .build();
        match built {
            Ok(result) => {
                self.constructed += 1;
                // Cache for the next daemon start; serving works either way.
                self.store(hash, &artifact::sfa_to_bytes(&result.sfa));
                Self::full_backend(dfa, result.sfa)
            }
            Err(err @ SfaError::StateBudgetExceeded { .. }) => PatternBackend::Sequential {
                reason: err.to_string(),
            },
            Err(other) => PatternBackend::Sequential {
                reason: format!("SFA construction failed: {other}"),
            },
        }
    }

    /// Follow this pattern's `.ref` sidecar into the content-addressed
    /// store, verifying the artifact's name against its own bytes. Falls
    /// back to the pre-content-addressing `<dfa_fp>.sfar` layout, whose
    /// artifacts are re-homed under their content hash so the next start
    /// takes the fast path (the legacy file itself gets orphan-noted).
    fn reload(&mut self, dfa: &'static Dfa, hash: &str) -> Option<Sfa> {
        let ref_path = self.artifacts_dir.join(format!("{hash}.ref"));
        if let Ok(content) = std::fs::read_to_string(&ref_path) {
            let content = content.trim();
            if content.len() == 16 && content.bytes().all(|b| b.is_ascii_hexdigit()) {
                let path = self.artifacts_dir.join(format!("{content}.sfar"));
                if let Ok(bytes) = std::fs::read(&path) {
                    // The name IS the checksum claim: a mismatch means a
                    // torn or mislabeled file, never to be trusted.
                    if format!("{:016x}", artifact::content_hash(&bytes)) == content {
                        if let Ok(sfa) = artifact::sfa_from_bytes(&bytes) {
                            if sfa.validate(dfa).is_ok() {
                                return Some(sfa);
                            }
                        }
                    }
                }
            }
        }
        let legacy = self.artifacts_dir.join(format!("{hash}.sfar"));
        let bytes = std::fs::read(&legacy).ok()?;
        let sfa = artifact::sfa_from_bytes(&bytes).ok()?;
        if sfa.validate(dfa).is_err() {
            return None;
        }
        self.store(hash, &bytes);
        Some(sfa)
    }

    /// Write artifact bytes under their content hash and point this
    /// pattern's `.ref` sidecar at them. A file that already exists
    /// under that hash holds the same bytes (the name is their CRC-64),
    /// so it is shared, not rewritten — that's the dedup: two builds of
    /// the same pattern, on any thread counts, land on one artifact.
    fn store(&mut self, hash: &str, bytes: &[u8]) {
        let content = format!("{:016x}", artifact::content_hash(bytes));
        let path = self.artifacts_dir.join(format!("{content}.sfar"));
        if path.exists() {
            self.deduped += 1;
        } else {
            let _ = sfa_core::io::atomic_write(&path, bytes);
        }
        let ref_path = self.artifacts_dir.join(format!("{hash}.ref"));
        let _ = sfa_core::io::atomic_write(&ref_path, content.as_bytes());
    }

    fn full_backend(dfa: &'static Dfa, sfa: Sfa) -> PatternBackend {
        let sfa: &'static Sfa = Box::leak(Box::new(sfa));
        PatternBackend::Full {
            sfa,
            scan: Arc::new(ScanEngine::new(sfa, dfa)),
        }
    }

    /// Resolve a request's `pattern` reference — an id or an artifact
    /// hash.
    pub fn resolve(&self, key: &str) -> Option<&PatternEntry> {
        self.by_key.get(key).map(|&ix| &self.entries[ix])
    }

    /// All entries, in id order.
    pub fn entries(&self) -> &[PatternEntry] {
        &self.entries
    }

    /// How many SFAs were reloaded from cached artifacts this start.
    pub fn reloaded(&self) -> usize {
        self.reloaded
    }

    /// How many SFAs were constructed (and cached) this start.
    pub fn constructed(&self) -> usize {
        self.constructed
    }

    /// How many store operations landed on an artifact that already
    /// existed under the same content hash (shared, not rewritten).
    pub fn deduped(&self) -> usize {
        self.deduped
    }

    /// `.sfar` files in the artifact directory that no loaded pattern
    /// references — garbage-noted for the operator, never deleted.
    pub fn orphans(&self) -> &[String] {
        &self.orphans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sfa-serve-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn loads_caches_and_reloads() {
        let dir = temp_dir("reload");
        std::fs::write(dir.join("rg.pat"), "RG\n").unwrap();
        std::fs::write(dir.join("motif.pat"), "RGD").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a pattern").unwrap();

        let first = PatternRegistry::load(&dir, 1 << 20, 2).unwrap();
        assert_eq!(first.entries().len(), 2);
        assert_eq!(first.constructed(), 2);
        assert_eq!(first.reloaded(), 0);

        let rg = first.resolve("rg").unwrap();
        assert_eq!(rg.pattern, "RG");
        assert_eq!(rg.tier(), "full");
        assert_eq!(rg.hash.len(), 16);
        // Resolvable by artifact hash too.
        let by_hash = first.resolve(&rg.hash.clone()).unwrap();
        assert_eq!(by_hash.id, "rg");

        // A second start reloads both SFAs from the artifact cache.
        let second = PatternRegistry::load(&dir, 1 << 20, 2).unwrap();
        assert_eq!(second.reloaded(), 2);
        assert_eq!(second.constructed(), 0);
        assert_eq!(second.resolve("motif").unwrap().tier(), "full");

        let _ = std::fs::remove_dir_all(&dir);
    }

    fn sfar_files(dir: &Path) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(dir.join("artifacts"))
            .unwrap()
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".sfar"))
            .collect();
        names.sort();
        names
    }

    #[test]
    fn restart_keeps_one_artifact_per_pattern() {
        let dir = temp_dir("dedup-restart");
        std::fs::write(dir.join("a.pat"), "RGD").unwrap();

        let first = PatternRegistry::load(&dir, 1 << 20, 2).unwrap();
        assert_eq!(first.constructed(), 1);
        assert_eq!(sfar_files(&dir).len(), 1, "one artifact per pattern");
        // The artifact's name is the CRC of its own bytes.
        let name = sfar_files(&dir).remove(0);
        let bytes = std::fs::read(dir.join("artifacts").join(&name)).unwrap();
        assert_eq!(
            format!("{:016x}.sfar", artifact::content_hash(&bytes)),
            name
        );

        // Restarts reload and never accumulate duplicates — the old
        // failure mode was a second `.sfar` per rebuild.
        for _ in 0..3 {
            let again = PatternRegistry::load(&dir, 1 << 20, 4).unwrap();
            assert_eq!(again.reloaded(), 1);
            assert_eq!(again.constructed(), 0);
            assert_eq!(sfar_files(&dir).len(), 1);
            assert!(again.orphans().is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_patterns_share_one_artifact() {
        let dir = temp_dir("dedup-tenants");
        // Two tenants registering the same pattern under different ids
        // compile to the same DFA, so the second follows the first's
        // ref sidecar: one construction, one artifact.
        std::fs::write(dir.join("tenant-a.pat"), "RGD").unwrap();
        std::fs::write(dir.join("tenant-b.pat"), "RGD\n").unwrap();

        let registry = PatternRegistry::load(&dir, 1 << 20, 2).unwrap();
        assert_eq!(registry.constructed(), 1);
        assert_eq!(registry.reloaded(), 1);
        assert_eq!(sfar_files(&dir).len(), 1, "identical patterns share");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuild_dedups_onto_existing_artifact() {
        let dir = temp_dir("dedup-rebuild");
        std::fs::write(dir.join("rg.pat"), "RG").unwrap();

        let first = PatternRegistry::load(&dir, 1 << 20, 1).unwrap();
        assert_eq!(first.constructed(), 1);
        let fp = first.resolve("rg").unwrap().hash.clone();

        // Lose the ref sidecar (crash between artifact and ref writes,
        // say): the next start must reconstruct — and, construction
        // being deterministic, land on byte-identical content and share
        // the existing artifact instead of writing a second one.
        std::fs::remove_file(dir.join("artifacts").join(format!("{fp}.ref"))).unwrap();
        let second = PatternRegistry::load(&dir, 1 << 20, 4).unwrap();
        assert_eq!(second.constructed(), 1);
        assert_eq!(second.deduped(), 1);
        assert_eq!(sfar_files(&dir).len(), 1, "rebuild must not duplicate");
        assert!(second.orphans().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_artifacts_are_rehomed_and_orphan_noted() {
        let dir = temp_dir("legacy");
        std::fs::write(dir.join("rg.pat"), "RG").unwrap();
        let artifacts = dir.join("artifacts");
        std::fs::create_dir_all(&artifacts).unwrap();

        // Simulate a pre-content-addressing cache: `<dfa_fp>.sfar`.
        let dfa = Pipeline::search(Alphabet::amino_acids())
            .compile_str("RG")
            .unwrap();
        let fp = format!("{:016x}", dfa_fingerprint(&dfa));
        let built = Sfa::builder(&dfa).build().unwrap();
        sfa_core::artifact::write_sfa(&artifacts.join(format!("{fp}.sfar")), &built.sfa).unwrap();

        let registry = PatternRegistry::load(&dir, 1 << 20, 2).unwrap();
        // Reloaded (not reconstructed) from the legacy file, which is
        // re-homed under its content hash and garbage-noted.
        assert_eq!(registry.reloaded(), 1);
        assert_eq!(registry.constructed(), 0);
        assert_eq!(registry.orphans(), &[format!("{fp}.sfar")]);
        assert_eq!(sfar_files(&dir).len(), 2, "legacy + re-homed copy");

        // The next start follows the ref and sees the same orphan.
        let second = PatternRegistry::load(&dir, 1 << 20, 2).unwrap();
        assert_eq!(second.reloaded(), 1);
        assert_eq!(second.orphans(), &[format!("{fp}.sfar")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn state_budget_degrades_to_sequential() {
        let dir = temp_dir("degrade");
        // Bounded repetition explodes the SFA state count well past 2.
        std::fs::write(dir.join("hard.pat"), "RG").unwrap();
        let registry = PatternRegistry::load(&dir, 2, 2).unwrap();
        let hard = registry.resolve("hard").unwrap();
        assert_eq!(hard.tier(), "sequential");
        assert!(hard.degraded_reason().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_is_an_error() {
        let dir = temp_dir("empty");
        assert!(PatternRegistry::load(&dir, 1 << 20, 1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
