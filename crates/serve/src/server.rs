//! The daemon event loop.
//!
//! Linux builds run one worker thread per core, each owning a private
//! epoll instance ([`crate::sys`]): worker 0 also owns the nonblocking
//! listener and deals accepted connections round-robin into per-worker
//! inboxes (a mutexed vector plus an eventfd kick). Tokens 0 and 1 are
//! the worker's eventfd and the listener; connections get tokens from 2
//! upward. Requests are served **inline** on the worker that read them
//! — the match itself parallelizes on the shared
//! [`MatchRuntime`](sfa_core::MatchRuntime) pool, so an event-loop
//! thread is never the bottleneck for a single large query.
//!
//! Graceful drain: [`ServerHandle::shutdown`] flips the stop flag; each
//! worker stops accepting, performs one final read pass per connection
//! (so a request fully sent before the signal is still answered),
//! flushes every pending response, and closes. In-flight requests
//! complete naturally because they run inline.
//!
//! Non-Linux hosts get a thread-per-connection fallback with the same
//! observable behaviour (same protocol, same drain semantics).

use crate::proto::{self, Protocol, ServeState};
use crate::registry::PatternRegistry;
use crate::tenant::TenantTable;
use crate::{ErrorCode, ServeConfig, ServeError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Poll interval of every blocking wait — the latency bound on
/// observing the stop flag.
const POLL_MS: u64 = 100;

/// A running daemon.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    stop: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared dispatch state (registry, tenants, runtime).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Begin a graceful drain: stop accepting, answer every request
    /// that has already arrived (in-flight work completes — requests
    /// run inline on the workers), flush, close. Idempotent; returns
    /// immediately. Deliberately does **not** flip
    /// [`ServeState::draining`]: a request received before the signal
    /// must be served, not shed.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Wait for every worker to finish draining. Afterwards the shared
    /// state is marked draining, so an embedder still holding it gets
    /// [`crate::ErrorCode::ShuttingDown`] for any further dispatch.
    pub fn join(self) {
        for worker in self.workers {
            let _ = worker.join();
        }
        self.state.draining.store(true, Ordering::Relaxed);
    }

    /// [`Self::shutdown`] then [`Self::join`].
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

/// Load the registry and tenant table, bind, and start the workers.
pub fn start(config: &ServeConfig) -> Result<ServerHandle, String> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = if config.workers == 0 {
        cores
    } else {
        config.workers
    };
    let construct_threads = cores.min(8);
    let registry =
        PatternRegistry::load(&config.patterns_dir, config.state_budget, construct_threads)?;
    let tenants = TenantTable::new(config.tenants.clone())?;
    let state = Arc::new(ServeState::new(registry, tenants, config.match_threads));

    let listener =
        TcpListener::bind(&config.listen).map_err(|e| format!("bind {}: {e}", config.listen))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let stop = Arc::new(AtomicBool::new(false));

    let threads = spawn_workers(listener, workers, state.clone(), stop.clone())?;
    Ok(ServerHandle {
        addr,
        state,
        stop,
        workers: threads,
    })
}

/// Per-connection buffers and protocol state (shared by both loops).
struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    protocol: Option<Protocol>,
    /// Close once `outbuf` drains (HTTP, or a fatal protocol error).
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        sfa_obs::registry::global()
            .gauge(crate::CONNECTIONS_GAUGE)
            .add(1);
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            protocol: None,
            close_after_flush: false,
        }
    }

    /// Parse and serve everything complete in `inbuf`. Returns `false`
    /// when the connection must close immediately (unrecoverable
    /// framing error with nothing to flush is still flushed first).
    fn process(&mut self, state: &ServeState) {
        loop {
            if self.close_after_flush {
                return;
            }
            if self.protocol.is_none() {
                match proto::detect(&self.inbuf) {
                    Ok(Some(p)) => self.protocol = Some(p),
                    Ok(None) => return,
                    Err(err) => {
                        self.fail(&err);
                        return;
                    }
                }
            }
            match self.protocol {
                Some(Protocol::Binary) => match proto::try_extract_frame(&mut self.inbuf) {
                    Ok(Some(payload)) => {
                        let response = match std::str::from_utf8(&payload)
                            .map_err(|_| "frame is not UTF-8".to_string())
                            .and_then(|s| sfa_json::from_str(s).map_err(|e| e.to_string()))
                        {
                            Ok(envelope) => state.handle_envelope(&envelope),
                            Err(msg) => {
                                crate::BAD_FRAMES_TOTAL.inc();
                                proto::error_response(&ServeError::new(
                                    ErrorCode::BadRequest,
                                    format!("invalid JSON payload: {msg}"),
                                ))
                            }
                        };
                        self.outbuf
                            .extend_from_slice(&proto::encode_frame(&response));
                    }
                    Ok(None) => return,
                    Err(err) => {
                        self.fail(&err);
                        return;
                    }
                },
                Some(Protocol::Http) => match proto::try_extract_http(&mut self.inbuf) {
                    Ok(Some(request)) => {
                        let response = state.handle_http(&request);
                        self.outbuf.extend_from_slice(&response);
                        self.close_after_flush = true;
                    }
                    Ok(None) => return,
                    Err(err) => {
                        crate::BAD_FRAMES_TOTAL.inc();
                        let body = sfa_json::to_string(&proto::error_response(&err));
                        self.outbuf.extend_from_slice(&proto::http_response(
                            err.code.http_status(),
                            "application/json",
                            &body,
                        ));
                        self.close_after_flush = true;
                    }
                },
                None => return,
            }
        }
    }

    /// Unrecoverable binary-protocol error: answer it in one last
    /// frame, then close (framing is lost, the stream cannot recover).
    fn fail(&mut self, err: &ServeError) {
        crate::BAD_FRAMES_TOTAL.inc();
        self.outbuf
            .extend_from_slice(&proto::encode_frame(&proto::error_response(err)));
        self.close_after_flush = true;
    }

    /// Nonblocking read into `inbuf`. Returns `false` on EOF or error.
    fn read_available(&mut self) -> bool {
        let mut chunk = [0u8; 16 << 10];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return false,
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }

    /// Nonblocking write from `outbuf`. Returns `false` on error.
    fn write_pending(&mut self) -> bool {
        while !self.outbuf.is_empty() {
            match self.stream.write(&self.outbuf) {
                Ok(0) => return false,
                Ok(n) => {
                    self.outbuf.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        true
    }

    /// Should this connection close now?
    fn done(&self) -> bool {
        self.close_after_flush && self.outbuf.is_empty()
    }

    /// Final drain pass: pick up bytes that were already in the socket
    /// buffer when shutdown arrived, answer them, and flush with a
    /// short blocking timeout so a slow reader cannot wedge the drain.
    fn drain_and_close(mut self, state: &ServeState) {
        if !self.close_after_flush {
            self.read_available();
            self.process(state);
        }
        let _ = self.stream.set_nonblocking(false);
        let _ = self.stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = self.stream.write_all(&self.outbuf);
        let _ = self.stream.flush();
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        sfa_obs::registry::global()
            .gauge(crate::CONNECTIONS_GAUGE)
            .add(-1);
    }
}

#[cfg(target_os = "linux")]
use linux_loop::spawn_workers;

#[cfg(not(target_os = "linux"))]
use fallback_loop::spawn_workers;

#[cfg(target_os = "linux")]
mod linux_loop {
    use super::*;
    use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
    use std::collections::HashMap;
    use std::os::unix::io::AsRawFd;

    const TOKEN_WAKE: u64 = 0;
    const TOKEN_LISTENER: u64 = 1;
    const TOKEN_FIRST_CONN: u64 = 2;

    /// A worker's mailbox: connections dealt to it plus the eventfd
    /// that kicks its epoll.
    struct Inbox {
        pending: Mutex<Vec<TcpStream>>,
        wake: EventFd,
    }

    pub(super) fn spawn_workers(
        listener: TcpListener,
        workers: usize,
        state: Arc<ServeState>,
        stop: Arc<AtomicBool>,
    ) -> Result<Vec<std::thread::JoinHandle<()>>, String> {
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("listener nonblocking: {e}"))?;
        let inboxes: Vec<Arc<Inbox>> = (0..workers)
            .map(|_| {
                Ok(Arc::new(Inbox {
                    pending: Mutex::new(Vec::new()),
                    wake: EventFd::new().map_err(|e| format!("eventfd: {e}"))?,
                }))
            })
            .collect::<Result<_, String>>()?;

        let mut threads = Vec::with_capacity(workers);
        let mut listener = Some(listener);
        for ix in 0..workers {
            let state = state.clone();
            let stop = stop.clone();
            let inbox = inboxes[ix].clone();
            let all_inboxes: Vec<Arc<Inbox>> = inboxes.clone();
            let listener = if ix == 0 { listener.take() } else { None };
            let handle = std::thread::Builder::new()
                .name(format!("sfa-serve-{ix}"))
                .spawn(move || worker_loop(ix, listener, inbox, all_inboxes, state, stop))
                .map_err(|e| format!("spawn worker {ix}: {e}"))?;
            threads.push(handle);
        }
        Ok(threads)
    }

    fn worker_loop(
        _ix: usize,
        listener: Option<TcpListener>,
        inbox: Arc<Inbox>,
        all_inboxes: Vec<Arc<Inbox>>,
        state: Arc<ServeState>,
        stop: Arc<AtomicBool>,
    ) {
        let Ok(epoll) = Epoll::new() else { return };
        if epoll.add(inbox.wake.fd(), EPOLLIN, TOKEN_WAKE).is_err() {
            return;
        }
        if let Some(l) = &listener {
            let _ = epoll.add(l.as_raw_fd(), EPOLLIN, TOKEN_LISTENER);
        }

        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_token = TOKEN_FIRST_CONN;
        let mut next_worker = 0usize;
        let mut events = [EpollEvent::empty(); 64];

        loop {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let n = match epoll.wait(&mut events, POLL_MS as i32) {
                Ok(n) => n,
                Err(_) => break,
            };
            for ev in &events[..n] {
                let token = ev.token();
                let ready = ev.events();
                if token == TOKEN_WAKE {
                    inbox.wake.drain();
                    adopt_pending(&epoll, &inbox, &mut conns, &mut next_token);
                } else if token == TOKEN_LISTENER {
                    accept_ready(
                        listener.as_ref().expect("listener token on owning worker"),
                        &all_inboxes,
                        &mut next_worker,
                    );
                } else if let Some(conn) = conns.get_mut(&token) {
                    let mut alive = ready & (EPOLLERR | EPOLLHUP) == 0;
                    if alive && ready & EPOLLIN != 0 {
                        alive = conn.read_available();
                        conn.process(&state);
                    }
                    if alive {
                        alive = conn.write_pending();
                    }
                    if !alive || conn.done() {
                        let conn = conns.remove(&token).expect("known token");
                        let _ = epoll.delete(conn.stream.as_raw_fd());
                    } else {
                        // Re-arm with write interest only while output
                        // is actually pending.
                        let mut interest = EPOLLIN;
                        if !conn.outbuf.is_empty() {
                            interest |= EPOLLOUT;
                        }
                        let _ = epoll.modify(conn.stream.as_raw_fd(), interest, token);
                    }
                }
            }
        }

        // Drain: adopt anything still in the inbox so it gets a clean
        // close, then give every connection its final pass.
        adopt_pending(&epoll, &inbox, &mut conns, &mut next_token);
        for (_, conn) in conns.drain() {
            let _ = epoll.delete(conn.stream.as_raw_fd());
            conn.drain_and_close(&state);
        }
    }

    fn adopt_pending(
        epoll: &Epoll,
        inbox: &Inbox,
        conns: &mut HashMap<u64, Conn>,
        next_token: &mut u64,
    ) {
        let pending = std::mem::take(&mut *inbox.pending.lock().unwrap_or_else(|p| p.into_inner()));
        for stream in pending {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let token = *next_token;
            *next_token += 1;
            if epoll.add(stream.as_raw_fd(), EPOLLIN, token).is_ok() {
                conns.insert(token, Conn::new(stream));
            }
        }
    }

    fn accept_ready(listener: &TcpListener, inboxes: &[Arc<Inbox>], next_worker: &mut usize) {
        loop {
            // Transient-fault site for the resilience tests: a fired
            // fault skips this accept pass; the listener stays armed
            // and the next readiness event retries.
            if sfa_core::fault_point!("serve/accept").is_err() {
                return;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let ix = *next_worker % inboxes.len();
                    *next_worker = next_worker.wrapping_add(1);
                    {
                        let mut pending = inboxes[ix]
                            .pending
                            .lock()
                            .unwrap_or_else(|p| p.into_inner());
                        pending.push(stream);
                    }
                    inboxes[ix].wake.wake();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod fallback_loop {
    use super::*;

    /// Portable fallback: an accept thread plus one thread per
    /// connection, all polling the stop flag on a read timeout.
    pub(super) fn spawn_workers(
        listener: TcpListener,
        _workers: usize,
        state: Arc<ServeState>,
        stop: Arc<AtomicBool>,
    ) -> Result<Vec<std::thread::JoinHandle<()>>, String> {
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("listener nonblocking: {e}"))?;
        let conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let conn_threads_acceptor = conn_threads.clone();
        let acceptor = std::thread::Builder::new()
            .name("sfa-serve-accept".into())
            .spawn(move || {
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if sfa_core::fault_point!("serve/accept").is_err() {
                                continue;
                            }
                            let state = state.clone();
                            let stop = stop.clone();
                            if let Ok(h) = std::thread::Builder::new()
                                .name("sfa-serve-conn".into())
                                .spawn(move || conn_loop(stream, state, stop))
                            {
                                conn_threads_acceptor
                                    .lock()
                                    .unwrap_or_else(|p| p.into_inner())
                                    .push(h);
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(POLL_MS));
                        }
                        Err(_) => break,
                    }
                }
                let threads = std::mem::take(
                    &mut *conn_threads_acceptor
                        .lock()
                        .unwrap_or_else(|p| p.into_inner()),
                );
                for t in threads {
                    let _ = t.join();
                }
            })
            .map_err(|e| format!("spawn acceptor: {e}"))?;
        Ok(vec![acceptor])
    }

    fn conn_loop(stream: TcpStream, state: Arc<ServeState>, stop: Arc<AtomicBool>) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(POLL_MS)));
        let mut conn = Conn::new(stream);
        loop {
            if stop.load(Ordering::Relaxed) {
                conn.drain_and_close(&state);
                return;
            }
            let mut chunk = [0u8; 16 << 10];
            match conn.stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    conn.process(&state);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
            if !conn.write_pending() || conn.done() {
                break;
            }
        }
        let _ = conn.stream.write_all(&conn.outbuf.split_off(0));
    }
}
