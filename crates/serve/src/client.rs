//! A small blocking client for the binary protocol.
//!
//! Used by the `reproduce serve-load` generator, the CI smoke test,
//! and the integration tests; handy for scripting too. One instance is
//! one connection; requests are answered in order.

use crate::proto::{FRAME_HEADER, FRAME_MAGIC, MAX_FRAME_LEN};
use sfa_core::{MatchOutcome, MatchRequest};
use sfa_json::Value;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// The server's answer to one request.
#[derive(Debug, Clone)]
pub enum ServeReply {
    /// The match ran; here is its outcome.
    Ok {
        /// Pattern id the request resolved to.
        pattern: String,
        /// Artifact hash of the pattern.
        hash: String,
        /// The match outcome.
        outcome: MatchOutcome,
    },
    /// A typed rejection.
    Rejected {
        /// Wire error code, e.g. `TENANT_OVER_QUOTA`.
        code: String,
        /// The HTTP status the code maps to (429, 404, …).
        http_status: u16,
        /// Human-readable detail.
        message: String,
    },
}

impl ServeReply {
    /// The outcome, when the request was served.
    pub fn outcome(&self) -> Option<&MatchOutcome> {
        match self {
            ServeReply::Ok { outcome, .. } => Some(outcome),
            ServeReply::Rejected { .. } => None,
        }
    }

    /// The rejection code, when the request was rejected.
    pub fn rejection_code(&self) -> Option<&str> {
        match self {
            ServeReply::Ok { .. } => None,
            ServeReply::Rejected { code, .. } => Some(code),
        }
    }
}

/// One binary-protocol connection.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connect to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(ServeClient { stream })
    }

    /// Bound every read so a wedged server cannot hang the caller.
    pub fn set_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))
    }

    /// Send one request under `tenant` and wait for its reply.
    pub fn request(&mut self, tenant: &str, request: &MatchRequest) -> Result<ServeReply, String> {
        let envelope = Value::Object(vec![
            ("tenant".into(), Value::String(tenant.into())),
            ("request".into(), request.to_json()),
        ]);
        self.send_raw(&envelope)?;
        self.read_reply()
    }

    /// Send an arbitrary envelope (malformed-input tests).
    pub fn send_raw(&mut self, envelope: &Value) -> Result<(), String> {
        let frame = crate::proto::encode_frame(envelope);
        self.stream
            .write_all(&frame)
            .map_err(|e| format!("send: {e}"))
    }

    /// Read one reply frame.
    pub fn read_reply(&mut self) -> Result<ServeReply, String> {
        let mut header = [0u8; FRAME_HEADER];
        self.stream
            .read_exact(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        if header[..4] != FRAME_MAGIC {
            return Err("bad reply magic".into());
        }
        let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(format!("oversized reply of {len} bytes"));
        }
        let mut payload = vec![0u8; len];
        self.stream
            .read_exact(&mut payload)
            .map_err(|e| format!("read payload: {e}"))?;
        let text = std::str::from_utf8(&payload).map_err(|_| "reply is not UTF-8".to_string())?;
        let v = sfa_json::from_str(text).map_err(|e| format!("reply JSON: {e}"))?;
        Self::parse_reply(&v)
    }

    fn parse_reply(v: &Value) -> Result<ServeReply, String> {
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => {
                let outcome_v = v.get("outcome").ok_or("reply is missing \"outcome\"")?;
                Ok(ServeReply::Ok {
                    pattern: v
                        .get("pattern")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    hash: v
                        .get("hash")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    outcome: MatchOutcome::from_json(outcome_v)?,
                })
            }
            Some(false) => {
                let err = v.get("error").ok_or("reply is missing \"error\"")?;
                Ok(ServeReply::Rejected {
                    code: err
                        .get("code")
                        .and_then(Value::as_str)
                        .unwrap_or("INTERNAL")
                        .to_string(),
                    http_status: err
                        .get("http_status")
                        .and_then(Value::as_f64)
                        .unwrap_or(500.0) as u16,
                    message: err
                        .get("message")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string(),
                })
            }
            None => Err("reply is missing \"ok\"".into()),
        }
    }
}
