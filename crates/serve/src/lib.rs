//! `sfa serve` — a long-running multi-tenant match daemon.
//!
//! The library behind the CLI's `serve` subcommand and the
//! `reproduce serve-load` generator:
//!
//! * [`registry`] — patterns loaded from a directory of `<id>.pat`
//!   files, compiled once and keyed by the hex of
//!   [`sfa_core::artifact::dfa_fingerprint`]; constructed SFAs are
//!   cached as `.sfar` artifacts next to the patterns, so a restarted
//!   daemon reloads instead of rebuilding.
//! * [`tenant`] — per-tenant admission: a byte quota enforced through a
//!   stateless [`sfa_core::budget::Governor`] over a monotonically
//!   accumulated scanned-bytes counter.
//! * [`proto`] — the wire: `SFA1`-magic length-prefixed JSON frames for
//!   the binary protocol, plus a minimal HTTP/1.1 face (`POST /match`,
//!   `GET /patterns`, `GET /metrics`). Both speak the same
//!   [`MatchRequest`](sfa_core::MatchRequest) /
//!   [`MatchOutcome`](sfa_core::MatchOutcome) JSON as the rest of the
//!   workspace.
//! * [`server`] — the event loop: one worker per core, each with its
//!   own epoll instance (raw syscalls, no external crates); worker 0
//!   owns the listener and deals accepted connections round-robin.
//!   Non-Linux hosts fall back to a thread-per-connection loop with the
//!   same observable behaviour.
//! * [`client`] — a small blocking client for the binary protocol,
//!   used by the load generator and the integration tests.
//!
//! Requests never spawn threads: every match runs on the server's one
//! shared [`MatchRuntime`](sfa_core::MatchRuntime) pool, inline on the
//! worker that read the frame — which is what makes graceful drain
//! trivial (a worker observing shutdown finishes the request it is
//! serving, flushes, and closes).

pub mod client;
pub mod proto;
pub mod registry;
pub mod server;
pub mod tenant;

#[cfg(unix)]
pub mod sys;

use sfa_obs::registry::{LazyCounter, LazyHistogram};
use std::path::PathBuf;

/// Total requests received (binary frames + HTTP `POST /match`).
pub(crate) static REQUESTS_TOTAL: LazyCounter = LazyCounter::new("sfa_serve_requests_total");
/// Requests rejected with a typed error (quota, unknown pattern, …).
pub(crate) static REJECTIONS_TOTAL: LazyCounter = LazyCounter::new("sfa_serve_rejections_total");
/// Frames that failed to decode (bad magic, oversized, invalid JSON).
pub(crate) static BAD_FRAMES_TOTAL: LazyCounter = LazyCounter::new("sfa_serve_bad_frames_total");
/// End-to-end service time of one request, nanoseconds.
pub(crate) static REQUEST_NANOS: LazyHistogram = LazyHistogram::new("sfa_serve_request_nanos");

/// Name of the connections-open gauge (needs `add`, which the lazy
/// handle does not expose, so call sites fetch it from the registry).
pub(crate) const CONNECTIONS_GAUGE: &str = "sfa_serve_connections_open";

/// Daemon configuration, assembled by the CLI or a test harness.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral port).
    pub listen: String,
    /// Directory of `<id>.pat` pattern files; compiled artifacts are
    /// cached in an `artifacts/` subdirectory.
    pub patterns_dir: PathBuf,
    /// Tenant quotas. Empty means a single `default` unlimited tenant.
    pub tenants: Vec<tenant::TenantSpec>,
    /// Event-loop workers; `0` means one per available core.
    pub workers: usize,
    /// SFA construction state cap per pattern: a pattern whose SFA
    /// exceeds it degrades to the sequential tier instead of failing.
    pub state_budget: u64,
    /// Threads of the shared match pool; `0` means one per core.
    pub match_threads: usize,
}

impl ServeConfig {
    /// A config with the defaults described on each field.
    pub fn new(listen: impl Into<String>, patterns_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            listen: listen.into(),
            patterns_dir: patterns_dir.into(),
            tenants: Vec::new(),
            workers: 0,
            state_budget: 1 << 20,
            match_threads: 0,
        }
    }

    /// Set the tenant table.
    pub fn with_tenants(mut self, tenants: Vec<tenant::TenantSpec>) -> ServeConfig {
        self.tenants = tenants;
        self
    }

    /// Set the worker count.
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers;
        self
    }

    /// Set the per-pattern construction state budget.
    pub fn with_state_budget(mut self, states: u64) -> ServeConfig {
        self.state_budget = states;
        self
    }

    /// Set the match-pool thread count.
    pub fn with_match_threads(mut self, threads: usize) -> ServeConfig {
        self.match_threads = threads;
        self
    }
}

/// Typed rejection categories carried on the wire (`error.code`) and
/// mapped onto HTTP statuses for the `POST /match` face.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The tenant's cumulative byte quota is exhausted (HTTP 429).
    TenantOverQuota,
    /// The per-request budget fired mid-match (HTTP 429).
    BudgetExceeded,
    /// No pattern under the given id or artifact hash (HTTP 404).
    UnknownPattern,
    /// Malformed envelope/request, unknown tenant, or a `file` input
    /// from the wire (HTTP 400).
    BadRequest,
    /// The daemon is draining after SIGTERM (HTTP 503).
    ShuttingDown,
    /// Unexpected server-side failure (HTTP 500).
    Internal,
}

impl ErrorCode {
    /// Stable wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::TenantOverQuota => "TENANT_OVER_QUOTA",
            ErrorCode::BudgetExceeded => "BUDGET_EXCEEDED",
            ErrorCode::UnknownPattern => "UNKNOWN_PATTERN",
            ErrorCode::BadRequest => "BAD_REQUEST",
            ErrorCode::ShuttingDown => "SHUTTING_DOWN",
            ErrorCode::Internal => "INTERNAL",
        }
    }

    /// The HTTP status the `POST /match` face answers with.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::TenantOverQuota | ErrorCode::BudgetExceeded => 429,
            ErrorCode::UnknownPattern => 404,
            ErrorCode::BadRequest => 400,
            ErrorCode::ShuttingDown => 503,
            ErrorCode::Internal => 500,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed rejection: the wire `error` object in Rust form.
#[derive(Debug, Clone)]
pub struct ServeError {
    /// The category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ServeError {
    /// Construct from a code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ServeError {
        ServeError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_map_to_http_statuses() {
        assert_eq!(ErrorCode::TenantOverQuota.http_status(), 429);
        assert_eq!(ErrorCode::UnknownPattern.http_status(), 404);
        assert_eq!(ErrorCode::BadRequest.http_status(), 400);
        assert_eq!(ErrorCode::ShuttingDown.http_status(), 503);
        assert_eq!(ErrorCode::Internal.http_status(), 500);
        assert_eq!(ErrorCode::TenantOverQuota.as_str(), "TENANT_OVER_QUOTA");
    }

    #[test]
    fn config_builders() {
        let cfg = ServeConfig::new("127.0.0.1:0", "/tmp/patterns")
            .with_workers(2)
            .with_state_budget(4096)
            .with_match_threads(3);
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.state_budget, 4096);
        assert_eq!(cfg.match_threads, 3);
        assert!(cfg.tenants.is_empty());
    }
}
