//! Thin raw-syscall layer: epoll, eventfd, and signal hooks.
//!
//! The build environment has no `libc` crate, but `std` already links
//! the platform C library, so the handful of symbols the event loop
//! needs are declared here directly. Everything is wrapped in RAII
//! types that translate errors through `std::io::Error::last_os_error`.
//!
//! Only the signal half is portable POSIX; the epoll half is gated to
//! Linux (the server falls back to thread-per-connection elsewhere).

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide "a termination signal arrived" latch. Signal handlers
/// may only touch async-signal-safe state; a relaxed store into a
/// static atomic qualifies.
static SHUTDOWN_SIGNAL: AtomicBool = AtomicBool::new(false);

extern "C" fn on_terminate(_sig: i32) {
    SHUTDOWN_SIGNAL.store(true, Ordering::Relaxed);
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Install SIGTERM/SIGINT handlers that set the shutdown latch, and
/// return the latch. Idempotent; the CLI polls the returned flag and
/// starts a graceful drain when it flips.
pub fn install_shutdown_handler() -> &'static AtomicBool {
    unsafe {
        signal(SIGTERM, on_terminate);
        signal(SIGINT, on_terminate);
    }
    &SHUTDOWN_SIGNAL
}

/// Has a termination signal arrived? (Readable without installing the
/// handler — stays `false` forever in that case.)
pub fn shutdown_signalled() -> bool {
    SHUTDOWN_SIGNAL.load(Ordering::Relaxed)
}

#[cfg(target_os = "linux")]
pub use linux::*;

#[cfg(target_os = "linux")]
mod linux {
    use std::io;
    use std::os::unix::io::RawFd;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// Kernel epoll event record. x86-64 is the one ABI where the
    /// kernel struct is packed (no padding between `events` and `data`);
    /// elsewhere natural `repr(C)` layout matches.
    #[derive(Clone, Copy)]
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    pub struct EpollEvent {
        events: u32,
        data: u64,
    }

    impl EpollEvent {
        /// Zeroed slot for the wait buffer.
        pub fn empty() -> EpollEvent {
            EpollEvent { events: 0, data: 0 }
        }

        /// Ready-event mask (copied out — the struct may be packed).
        pub fn events(&self) -> u32 {
            self.events
        }

        /// The token registered with [`Epoll::add`].
        pub fn token(&self) -> u64 {
            self.data
        }
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An owned epoll instance.
    #[derive(Debug)]
    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        /// `epoll_create1(EPOLL_CLOEXEC)`.
        pub fn new() -> io::Result<Epoll> {
            let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
        }

        /// Register `fd` under `token` for `events`.
        pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        /// Re-arm `fd` with a new event mask.
        pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        /// Deregister `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            // The event pointer is ignored for DEL on every kernel this
            // targets (>= 2.6.9), but must be non-null for portability.
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Wait up to `timeout_ms` for ready events; returns how many
        /// slots of `events` were filled. `EINTR` is reported as zero
        /// events rather than an error (the caller re-loops anyway).
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            Ok(n as usize)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    /// A nonblocking eventfd used to kick a worker out of `epoll_wait`
    /// when another thread queues work for it.
    #[derive(Debug)]
    pub struct EventFd {
        fd: RawFd,
    }

    impl EventFd {
        /// `eventfd(0, EFD_NONBLOCK)`.
        pub fn new() -> io::Result<EventFd> {
            let fd = cvt(unsafe { eventfd(0, EFD_NONBLOCK) })?;
            Ok(EventFd { fd })
        }

        /// The fd to register with epoll.
        pub fn fd(&self) -> RawFd {
            self.fd
        }

        /// Add 1 to the counter, waking a waiter. Best-effort: a full
        /// counter (pending wakes) already guarantees a wake-up.
        pub fn wake(&self) {
            let one: u64 = 1;
            unsafe { write(self.fd, one.to_ne_bytes().as_ptr(), 8) };
        }

        /// Reset the counter so the next `wake` edge-triggers again.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn eventfd_wakes_epoll() {
            let ep = Epoll::new().unwrap();
            let ev = EventFd::new().unwrap();
            ep.add(ev.fd(), EPOLLIN, 7).unwrap();

            let mut buf = [EpollEvent::empty(); 4];
            // Nothing pending: times out empty.
            assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0);

            ev.wake();
            let n = ep.wait(&mut buf, 1000).unwrap();
            assert_eq!(n, 1);
            assert_eq!(buf[0].token(), 7);
            assert_ne!(buf[0].events() & EPOLLIN, 0);

            // Drained, the level-triggered readiness clears.
            ev.drain();
            assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0);

            ep.delete(ev.fd()).unwrap();
        }
    }
}
