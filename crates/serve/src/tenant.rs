//! Multi-tenant admission control.
//!
//! A tenant is a named byte quota: the cumulative input bytes it may
//! submit over the daemon's lifetime. Admission reuses the core
//! [`Governor`] — it is stateless over caller-tracked progress, so each
//! tenant pairs one immutable governor with one atomic accumulator and
//! admission is a `fetch_add` followed by a check, with no lock and no
//! rollback (once a tenant crosses its quota it stays over quota, which
//! is exactly the semantics a cumulative cap wants).

use crate::{ErrorCode, ServeError};
use sfa_core::budget::{Budget, Governor};
use sfa_core::SfaError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A parsed `--tenants` entry: `name=<bytes>` or `name=unlimited`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant name, sent in the request envelope.
    pub name: String,
    /// Lifetime byte quota; `None` is unlimited.
    pub max_bytes: Option<u64>,
}

impl TenantSpec {
    /// An unlimited tenant.
    pub fn unlimited(name: impl Into<String>) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            max_bytes: None,
        }
    }

    /// A tenant capped at `max_bytes` cumulative input bytes.
    pub fn limited(name: impl Into<String>, max_bytes: u64) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            max_bytes: Some(max_bytes),
        }
    }

    /// Parse one `name=<bytes|unlimited>` spec (the `--tenants` list
    /// item format; bytes accept K/M/G suffixes).
    pub fn parse(s: &str) -> Result<TenantSpec, String> {
        let (name, quota) = s
            .split_once('=')
            .ok_or_else(|| format!("tenant spec {s:?} must be name=<bytes|unlimited>"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("tenant spec {s:?} has an empty name"));
        }
        let quota = quota.trim();
        if quota.eq_ignore_ascii_case("unlimited") {
            return Ok(TenantSpec::unlimited(name));
        }
        let bytes = parse_bytes(quota)?;
        Ok(TenantSpec::limited(name, bytes))
    }
}

/// Parse a byte size with optional K/M/G suffix.
fn parse_bytes(s: &str) -> Result<u64, String> {
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'K') | Some(b'k') => (&s[..s.len() - 1], 1u64 << 10),
        Some(b'M') | Some(b'm') => (&s[..s.len() - 1], 1 << 20),
        Some(b'G') | Some(b'g') => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .map(|v| v.saturating_mul(mult))
        .map_err(|_| format!("bad byte quota {s:?}"))
}

/// One tenant's live admission state.
#[derive(Debug)]
pub struct TenantState {
    /// The spec this state was built from.
    pub spec: TenantSpec,
    governor: Governor,
    scanned: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

impl TenantState {
    fn new(spec: TenantSpec) -> TenantState {
        let governor = match spec.max_bytes {
            Some(max) => Governor::new(&Budget::unlimited().with_max_payload_bytes(max), None),
            None => Governor::unlimited(),
        };
        TenantState {
            spec,
            governor,
            scanned: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Admit a request of `len` input bytes, charging them to the
    /// quota. Over-quota is a typed [`ErrorCode::TenantOverQuota`]
    /// rejection; the charge is not rolled back (the quota is a
    /// lifetime cumulative cap, and keeping the accumulator monotonic
    /// is what makes concurrent admission race-free).
    pub fn admit(&self, len: u64) -> Result<(), ServeError> {
        let total = self
            .scanned
            .fetch_add(len, Ordering::Relaxed)
            .wrapping_add(len);
        match self.governor.check(0, total) {
            Ok(()) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(SfaError::BudgetExceeded { .. }) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::new(
                    ErrorCode::TenantOverQuota,
                    format!(
                        "tenant {:?} exhausted its quota of {} bytes ({} scanned)",
                        self.spec.name,
                        self.spec.max_bytes.unwrap_or(u64::MAX),
                        total,
                    ),
                ))
            }
            Err(other) => Err(ServeError::new(ErrorCode::Internal, other.to_string())),
        }
    }

    /// Cumulative bytes charged so far.
    pub fn scanned(&self) -> u64 {
        self.scanned.load(Ordering::Relaxed)
    }

    /// Requests admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests rejected over quota.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

/// The immutable tenant table built at startup.
#[derive(Debug)]
pub struct TenantTable {
    tenants: BTreeMap<String, TenantState>,
}

impl TenantTable {
    /// Build from specs; an empty list yields one unlimited `default`
    /// tenant so single-tenant deployments need no flags.
    pub fn new(specs: Vec<TenantSpec>) -> Result<TenantTable, String> {
        let specs = if specs.is_empty() {
            vec![TenantSpec::unlimited("default")]
        } else {
            specs
        };
        let mut tenants = BTreeMap::new();
        for spec in specs {
            let name = spec.name.clone();
            if tenants
                .insert(name.clone(), TenantState::new(spec))
                .is_some()
            {
                return Err(format!("duplicate tenant {name:?}"));
            }
        }
        Ok(TenantTable { tenants })
    }

    /// Look up a tenant by name.
    pub fn get(&self, name: &str) -> Option<&TenantState> {
        self.tenants.get(name)
    }

    /// All tenants, in name order.
    pub fn iter(&self) -> impl Iterator<Item = &TenantState> {
        self.tenants.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing() {
        assert_eq!(
            TenantSpec::parse("alpha=unlimited").unwrap(),
            TenantSpec::unlimited("alpha")
        );
        assert_eq!(
            TenantSpec::parse("bravo=4K").unwrap(),
            TenantSpec::limited("bravo", 4096)
        );
        assert_eq!(
            TenantSpec::parse("c=123").unwrap(),
            TenantSpec::limited("c", 123)
        );
        assert!(TenantSpec::parse("no-equals").is_err());
        assert!(TenantSpec::parse("=5").is_err());
        assert!(TenantSpec::parse("x=notbytes").is_err());
    }

    #[test]
    fn quota_is_cumulative_and_sticky() {
        let table = TenantTable::new(vec![
            TenantSpec::limited("small", 100),
            TenantSpec::unlimited("big"),
        ])
        .unwrap();
        let small = table.get("small").unwrap();
        // Governor fires strictly above the cap: two 50-byte requests
        // land exactly on it and pass, the third crosses it.
        small.admit(50).unwrap();
        small.admit(50).unwrap();
        let err = small.admit(1).unwrap_err();
        assert_eq!(err.code, ErrorCode::TenantOverQuota);
        // Sticky: even a zero-length request stays rejected.
        assert!(small.admit(0).is_err());
        assert_eq!(small.admitted(), 2);
        assert!(small.rejected() >= 2);

        // The other tenant is unaffected.
        let big = table.get("big").unwrap();
        big.admit(u64::from(u32::MAX)).unwrap();
        assert!(table.get("missing").is_none());
    }

    #[test]
    fn empty_table_gets_default_tenant() {
        let table = TenantTable::new(Vec::new()).unwrap();
        assert!(table.get("default").unwrap().admit(1 << 30).is_ok());
        assert!(TenantTable::new(vec![
            TenantSpec::unlimited("dup"),
            TenantSpec::limited("dup", 1),
        ])
        .is_err());
    }
}
