//! Period-aware run-length coding.
//!
//! The paper notes that for sink-dominated SFAs (the r500 family) "run-
//! length encoding will be able to produce similar results" to deflate
//! (§III-C). SFA state vectors are arrays of u16/u32 ids, so a run of the
//! sink id is a repeating 2- or 4-byte *pattern*, not a single repeated
//! byte — this codec therefore detects runs with period 1, 2 or 4.
//!
//! Format: token byte `T`, then payload —
//!
//! * `T & 0xC0 == 0x00`: literal run; copy the next `(T & 0x3F) + 1`
//!   bytes verbatim (1..=64 literals per token),
//! * `T & 0xC0 == 0x40/0x80/0xC0`: pattern run with period 1/2/4; a
//!   varint repetition count `r` (`r ≥ MIN_REPS`) follows, then the
//!   pattern bytes; expands to `r` copies of the pattern.

const MIN_REPS: usize = 3;
const MAX_LIT: usize = 64;

use crate::codec::CodecError;
use crate::varint;

#[inline]
fn repetitions(input: &[u8], i: usize, period: usize) -> usize {
    if i + period > input.len() {
        return 0;
    }
    let pattern = &input[i..i + period];
    let mut r = 1usize;
    let mut j = i + period;
    while j + period <= input.len() && &input[j..j + period] == pattern {
        r += 1;
        j += period;
    }
    r
}

/// Compress `input` into `out`.
pub fn compress(input: &[u8], out: &mut Vec<u8>) {
    let mut i = 0usize;
    let mut lit_start = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut s = from;
        while s < to {
            let n = (to - s).min(MAX_LIT);
            out.push((n - 1) as u8);
            out.extend_from_slice(&input[s..s + n]);
            s += n;
        }
    };

    while i < input.len() {
        // Pick the period with the best payoff at this position.
        let mut best: Option<(usize, usize, usize)> = None; // (saved, period, reps)
        for (tag_period, period) in [(1usize, 1usize), (2, 2), (3, 4)] {
            let _ = tag_period;
            let r = repetitions(input, i, period);
            if r >= MIN_REPS {
                let covered = r * period;
                // cost ≈ 1 token + ≤3 varint bytes + period pattern bytes
                let cost = 1 + 3 + period;
                if covered > cost {
                    let saved = covered - cost;
                    if best.is_none_or(|(s, _, _)| saved > s) {
                        best = Some((saved, period, r));
                    }
                }
            }
        }
        if let Some((_, period, reps)) = best {
            flush_literals(out, lit_start, i, input);
            let tag = match period {
                1 => 0x40,
                2 => 0x80,
                _ => 0xC0,
            };
            out.push(tag);
            varint::write_u64(out, reps as u64);
            out.extend_from_slice(&input[i..i + period]);
            i += reps * period;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(out, lit_start, input.len(), input);
}

/// Decompress `input` into `out`.
pub fn decompress(input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    let mut pos = 0usize;
    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        let kind = token & 0xC0;
        if kind == 0 {
            let n = (token & 0x3F) as usize + 1;
            let chunk = input.get(pos..pos + n).ok_or(CodecError::Truncated)?;
            out.extend_from_slice(chunk);
            pos += n;
        } else {
            let period = match kind {
                0x40 => 1usize,
                0x80 => 2,
                _ => 4,
            };
            if token & 0x3F != 0 {
                return Err(CodecError::Corrupt("reserved token bits set"));
            }
            let reps = varint::read_u64(input, &mut pos)? as usize;
            if reps < MIN_REPS {
                return Err(CodecError::Corrupt("run shorter than minimum"));
            }
            let pattern = input.get(pos..pos + period).ok_or(CodecError::Truncated)?;
            // Guard absurd expansion requests from corrupt counts (no
            // declared-total header in this format, so use a hard cap).
            if reps.saturating_mul(period) > (1usize << 28) {
                return Err(CodecError::Corrupt("run too long"));
            }
            let pattern = pattern.to_vec();
            pos += period;
            for _ in 0..reps {
                out.extend_from_slice(&pattern);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let mut c = Vec::new();
        compress(input, &mut c);
        let mut d = Vec::new();
        decompress(&c, &mut d).unwrap();
        d
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(round_trip(b""), b"");
        assert_eq!(round_trip(b"a"), b"a");
        assert_eq!(round_trip(b"ab"), b"ab");
        assert_eq!(round_trip(b"aaa"), b"aaa");
    }

    #[test]
    fn long_byte_runs_compress_well() {
        let input = vec![7u8; 100_000];
        let mut c = Vec::new();
        compress(&input, &mut c);
        assert!(c.len() < 16, "rle got {} bytes", c.len());
        assert_eq!(round_trip(&input), input);
    }

    #[test]
    fn u16_id_runs_compress_well() {
        // Sink-dominated SFA state vector: alternating LE bytes of id 501.
        let mut input = Vec::new();
        for _ in 0..50_000 {
            input.extend_from_slice(&501u16.to_le_bytes());
        }
        let mut c = Vec::new();
        compress(&input, &mut c);
        assert!(c.len() < 16, "period-2 run got {} bytes", c.len());
        assert_eq!(round_trip(&input), input);
    }

    #[test]
    fn u32_id_runs_compress_well() {
        let mut input = Vec::new();
        for _ in 0..25_000 {
            input.extend_from_slice(&70_001u32.to_le_bytes());
        }
        let mut c = Vec::new();
        compress(&input, &mut c);
        assert!(c.len() < 16, "period-4 run got {} bytes", c.len());
        assert_eq!(round_trip(&input), input);
    }

    #[test]
    fn mixed_sfa_like_vector() {
        let mut input = Vec::new();
        for i in 0..30_000u32 {
            let id: u16 = if i % 251 == 0 { (i % 499) as u16 } else { 501 };
            input.extend_from_slice(&id.to_le_bytes());
        }
        let mut c = Vec::new();
        compress(&input, &mut c);
        let ratio = input.len() as f64 / c.len() as f64;
        assert!(ratio > 20.0, "rle ratio only {ratio:.1}");
        assert_eq!(round_trip(&input), input);
    }

    #[test]
    fn incompressible_data_grows_bounded() {
        let input: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let mut c = Vec::new();
        compress(&input, &mut c);
        // Worst case: one token byte per 64 literals.
        assert!(c.len() <= input.len() + input.len() / 64 + 2);
        assert_eq!(round_trip(&input), input);
    }

    #[test]
    fn mixed_content() {
        let mut input = Vec::new();
        input.extend_from_slice(b"header");
        input.extend(std::iter::repeat_n(0u8, 500));
        input.extend_from_slice(b"trailer");
        assert_eq!(round_trip(&input), input);
    }

    #[test]
    fn truncated_inputs_error() {
        let mut c = Vec::new();
        compress(&[5u8; 50], &mut c);
        for cut in 1..c.len() {
            let mut d = Vec::new();
            let _ = decompress(&c[..cut], &mut d); // must not panic
        }
        let mut d = Vec::new();
        assert_eq!(
            decompress(&[0x40, 0x03], &mut d),
            Err(CodecError::Truncated)
        );
        assert_eq!(
            decompress(&[0x02, 1, 2], &mut d),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn corrupt_run_counts_rejected() {
        let mut d = Vec::new();
        // Run with count below minimum.
        assert!(matches!(
            decompress(&[0x40, 0x01, 9], &mut d),
            Err(CodecError::Corrupt(_))
        ));
        // Reserved bits set.
        assert!(matches!(
            decompress(&[0x41, 0x03, 9], &mut d),
            Err(CodecError::Corrupt(_))
        ));
    }

    proptest! {
        #[test]
        fn prop_round_trip(input in proptest::collection::vec(any::<u8>(), 0..2000)) {
            prop_assert_eq!(round_trip(&input), input);
        }

        #[test]
        fn prop_round_trip_u16_ids(
            seed in any::<u64>(),
            n in 0usize..2000,
            sink_bias in 2u64..40,
        ) {
            let mut input = Vec::with_capacity(n * 2);
            let mut s = seed;
            for _ in 0..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let id: u16 = if (s >> 33).is_multiple_of(sink_bias) {
                    ((s >> 17) % 500) as u16
                } else {
                    501
                };
                input.extend_from_slice(&id.to_le_bytes());
            }
            prop_assert_eq!(round_trip(&input), input);
        }
    }
}
