//! LZSS dictionary stage with deflate geometry.
//!
//! Hash-chain match finder over a 32 KiB sliding window, minimum match 4,
//! maximum match 258 — the shape of deflate's LZ77 stage, which the paper
//! found most effective on SFA states (§III-C: "We found LZ77-based
//! codecs, in particular the deflate codec, to achieve the highest
//! compression ratios").
//!
//! Token format (self-delimiting, varint-based):
//!
//! ```text
//! header := varint(total_uncompressed_len)
//! op     := varint(v)
//!           v even → literal run of v >> 1 bytes; raw bytes follow
//!           v odd  → match of length v >> 1; varint(distance) follows
//! ```
//!
//! (The length header lets decompressors pre-allocate and detect
//! truncation precisely.)

use crate::codec::CodecError;
use crate::varint;

/// Sliding-window size (deflate: 32 KiB).
pub const WINDOW: usize = 32 * 1024;
/// Minimum useful match length.
pub const MIN_MATCH: usize = 4;
/// Maximum match length (deflate: 258).
pub const MAX_MATCH: usize = 258;

const HASH_BITS: usize = 15;
/// Limit on chain walks per position (compression effort knob).
const MAX_CHAIN: usize = 64;

#[inline]
fn hash4(data: &[u8], shift: u32) -> usize {
    let v = u32::from_le_bytes(data[..4].try_into().unwrap());
    (v.wrapping_mul(2654435761) >> shift) as usize
}

/// One LZSS operation (exposed for the deflate stage and for tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Copy literal bytes from the source.
    Literals { start: usize, len: usize },
    /// Copy `len` bytes from `dist` bytes back in the output.
    Match { len: usize, dist: usize },
}

/// Run the match finder, producing the op sequence for `input`.
pub fn tokenize(input: &[u8]) -> Vec<Op> {
    let mut ops = Vec::new();
    let n = input.len();
    // Size the chain tables to the input: zeroing the full 32 Ki-entry
    // tables would dominate when compressing sub-kilobyte SFA states.
    let hash_bits =
        (usize::BITS - n.next_power_of_two().leading_zeros()).clamp(6, HASH_BITS as u32) as usize;
    let hash_size = 1usize << hash_bits;
    let hash_shift = 32 - hash_bits as u32;
    let ring = n.next_power_of_two().min(WINDOW);
    let ring_mask = ring - 1;
    // head[h] = most recent position with hash h (+1; 0 = none)
    let mut head = vec![0u32; hash_size];
    // prev[i & ring_mask] = previous position with the same hash as i (+1)
    let mut prev = vec![0u32; ring];

    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + MIN_MATCH <= n {
        let h = hash4(&input[i..], hash_shift);
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut cand = head[h] as usize;
        let mut chain = 0usize;
        while cand > 0 && chain < MAX_CHAIN {
            let pos = cand - 1;
            if i - pos > WINDOW {
                break;
            }
            // Extend the match.
            let limit = (n - i).min(MAX_MATCH);
            let mut len = 0usize;
            while len < limit && input[pos + len] == input[i + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_dist = i - pos;
                if len >= limit {
                    break;
                }
            }
            cand = prev[pos & ring_mask] as usize;
            chain += 1;
        }

        // Insert current position into the chains.
        prev[i & ring_mask] = head[h];
        head[h] = (i + 1) as u32;

        if best_len >= MIN_MATCH {
            if lit_start < i {
                ops.push(Op::Literals {
                    start: lit_start,
                    len: i - lit_start,
                });
            }
            ops.push(Op::Match {
                len: best_len,
                dist: best_dist,
            });
            // Insert the skipped positions (lazily: every position keeps
            // the chains dense enough for the next searches).
            let end = i + best_len;
            i += 1;
            while i < end && i + MIN_MATCH <= n {
                let h = hash4(&input[i..], hash_shift);
                prev[i & ring_mask] = head[h];
                head[h] = (i + 1) as u32;
                i += 1;
            }
            i = end;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    if lit_start < n {
        ops.push(Op::Literals {
            start: lit_start,
            len: n - lit_start,
        });
    }
    ops
}

/// Serialize ops into the raw LZSS byte format.
pub fn emit(input: &[u8], ops: &[Op], out: &mut Vec<u8>) {
    varint::write_u64(out, input.len() as u64);
    for op in ops {
        match *op {
            Op::Literals { start, len } => {
                varint::write_u64(out, (len as u64) << 1);
                out.extend_from_slice(&input[start..start + len]);
            }
            Op::Match { len, dist } => {
                varint::write_u64(out, ((len as u64) << 1) | 1);
                varint::write_u32(out, dist as u32);
            }
        }
    }
}

/// Compress = tokenize + emit.
pub fn compress(input: &[u8], out: &mut Vec<u8>) {
    let ops = tokenize(input);
    emit(input, &ops, out);
}

/// Decompress the raw LZSS format.
pub fn decompress(input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    let mut pos = 0usize;
    let total = varint::read_u64(input, &mut pos)? as usize;
    let base = out.len();
    while out.len() - base < total {
        let v = varint::read_u64(input, &mut pos)?;
        let len = (v >> 1) as usize;
        if len == 0 {
            return Err(CodecError::Corrupt("zero-length op"));
        }
        // Reject before executing: a corrupt op length must not drive a
        // giant allocation/copy only to fail the post-check afterwards.
        if len > total - (out.len() - base) {
            return Err(CodecError::Corrupt("op overruns declared length"));
        }
        if v & 1 == 0 {
            let chunk = input.get(pos..pos + len).ok_or(CodecError::Truncated)?;
            out.extend_from_slice(chunk);
            pos += len;
        } else {
            let dist = varint::read_u32(input, &mut pos)? as usize;
            if dist == 0 || dist > out.len() - base {
                return Err(CodecError::Corrupt("match distance out of range"));
            }
            // Overlapping copies are the point (dist < len repeats) — a
            // slice memcpy would be wrong here.
            let mut src = out.len() - dist;
            #[allow(clippy::explicit_counter_loop)]
            for _ in 0..len {
                let b = out[src];
                out.push(b);
                src += 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let mut c = Vec::new();
        compress(input, &mut c);
        let mut d = Vec::new();
        decompress(&c, &mut d).unwrap();
        d
    }

    #[test]
    fn empty_and_small() {
        assert_eq!(round_trip(b""), b"");
        assert_eq!(round_trip(b"abc"), b"abc");
        assert_eq!(round_trip(b"aaaa"), b"aaaa");
    }

    #[test]
    fn repeated_pattern_compresses() {
        let input: Vec<u8> = b"ABCDEFGH".iter().copied().cycle().take(64_000).collect();
        let mut c = Vec::new();
        compress(&input, &mut c);
        assert!(c.len() < input.len() / 50, "lz77 got {} bytes", c.len());
        assert_eq!(round_trip(&input), input);
    }

    #[test]
    fn overlapping_match_run() {
        // "aaaa..." forces dist=1 overlapping copies.
        let input = vec![b'a'; 10_000];
        let mut c = Vec::new();
        compress(&input, &mut c);
        assert!(c.len() < 400, "lz77 got {} bytes", c.len()); // ~40 ops at MAX_MATCH=258
        assert_eq!(round_trip(&input), input);
    }

    #[test]
    fn long_range_matches_within_window() {
        let mut input = Vec::new();
        let block: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
        input.extend_from_slice(&block);
        input.extend(std::iter::repeat_n(b'x', 20_000));
        input.extend_from_slice(&block); // 21 KB back-reference, inside window
        assert_eq!(round_trip(&input), input);
        let mut c = Vec::new();
        compress(&input, &mut c);
        assert!(c.len() < input.len() / 5);
    }

    #[test]
    fn matches_beyond_window_are_not_used() {
        let mut input = Vec::new();
        let block: Vec<u8> = (0..500u32).map(|i| (i.wrapping_mul(97)) as u8).collect();
        input.extend_from_slice(&block);
        input.extend((0..WINDOW + 100).map(|i| (i as u32).wrapping_mul(2654435761) as u8));
        input.extend_from_slice(&block); // > 32 KiB back: must still round-trip
        assert_eq!(round_trip(&input), input);
    }

    #[test]
    fn corrupt_distance_detected() {
        let mut c = Vec::new();
        varint::write_u64(&mut c, 8); // claim 8 bytes
        varint::write_u64(&mut c, (4 << 1) | 1); // match len 4
        varint::write_u32(&mut c, 9); // distance beyond output
        let mut d = Vec::new();
        assert!(matches!(
            decompress(&c, &mut d),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn truncation_detected() {
        let input: Vec<u8> = b"hello hello hello hello".to_vec();
        let mut c = Vec::new();
        compress(&input, &mut c);
        for cut in 0..c.len() {
            let mut d = Vec::new();
            assert!(
                decompress(&c[..cut], &mut d).is_err(),
                "cut at {cut} silently succeeded"
            );
        }
    }

    #[test]
    fn tokenize_covers_input_exactly() {
        let input: Vec<u8> = b"the quick brown fox the quick brown fox".to_vec();
        let ops = tokenize(&input);
        let mut covered = 0usize;
        for op in &ops {
            match op {
                Op::Literals { len, .. } => covered += len,
                Op::Match { len, .. } => covered += len,
            }
        }
        assert_eq!(covered, input.len());
    }

    proptest! {
        #[test]
        fn prop_round_trip_random(input in proptest::collection::vec(any::<u8>(), 0..4000)) {
            prop_assert_eq!(round_trip(&input), input);
        }

        #[test]
        fn prop_round_trip_low_entropy(
            seed in any::<u64>(),
            n in 0usize..6000,
            alphabet in 1u8..5,
        ) {
            let mut input = Vec::with_capacity(n);
            let mut s = seed;
            for _ in 0..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                input.push(((s >> 33) as u8) % alphabet);
            }
            prop_assert_eq!(round_trip(&input), input);
        }
    }
}
