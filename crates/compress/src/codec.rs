//! Codec interface and registry.

use std::fmt;

/// Errors produced while decompressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended mid-token.
    Truncated,
    /// Structurally invalid input.
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed input is truncated"),
            CodecError::Corrupt(msg) => write!(f, "compressed input is corrupt: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A lossless byte codec.
pub trait Codec: Send + Sync {
    /// Short identifier used in reports ("deflate", "rle", …).
    fn name(&self) -> &'static str;

    /// Compress `input`, appending to `out`.
    fn compress(&self, input: &[u8], out: &mut Vec<u8>);

    /// Decompress `input`, appending to `out`.
    fn decompress(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError>;

    /// Convenience: compress into a fresh vector.
    fn compress_to_vec(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 4 + 16);
        self.compress(input, &mut out);
        out
    }

    /// Convenience: decompress into a fresh vector.
    fn decompress_to_vec(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::with_capacity(input.len() * 4 + 16);
        self.decompress(input, &mut out)?;
        Ok(out)
    }
}

/// Identity codec (baseline: a "plain memory copy operation", which the
/// paper measures deflate to be one order of magnitude slower than).
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreCodec;

impl Codec for StoreCodec {
    fn name(&self) -> &'static str {
        "store"
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(input);
    }

    fn decompress(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        out.extend_from_slice(input);
        Ok(())
    }
}

/// Run-length codec (see [`crate::rle`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct RleCodec;

impl Codec for RleCodec {
    fn name(&self) -> &'static str {
        "rle"
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        crate::rle::compress(input, out);
    }

    fn decompress(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        crate::rle::decompress(input, out)
    }
}

/// LZSS dictionary codec without the entropy stage (see [`crate::lz77`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Lz77Codec;

impl Codec for Lz77Codec {
    fn name(&self) -> &'static str {
        "lz77"
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        crate::lz77::compress(input, out);
    }

    fn decompress(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        crate::lz77::decompress(input, out)
    }
}

/// Deflate-class codec: LZSS + canonical Huffman (see [`crate::deflate`]).
/// The construction algorithm's default (§III-C).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeflateCodec;

impl Codec for DeflateCodec {
    fn name(&self) -> &'static str {
        "deflate"
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        crate::deflate::compress(input, out);
    }

    fn decompress(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        crate::deflate::decompress(input, out)
    }
}

/// Adaptive codec: compresses with both RLE and deflate and keeps the
/// smaller output (1-byte tag). Motivated by the E6 measurement that RLE
/// wins on sink-dominated rN states while deflate wins on PROSITE states
/// — a per-state decision gets the best of both, exactly like deflate's
/// own stored/fixed/dynamic block choice one level up.
#[derive(Debug, Clone, Copy, Default)]
pub struct HybridCodec;

const HYBRID_RLE: u8 = 0;
const HYBRID_DEFLATE: u8 = 1;

impl Codec for HybridCodec {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        let mut rle = Vec::with_capacity(input.len() / 4 + 8);
        crate::rle::compress(input, &mut rle);
        // Heuristic shortcut: a tiny RLE output means the input is one or
        // two pure runs (the r500-class shape) — deflate cannot beat it
        // by more than a handful of bytes, so skip its cost.
        if rle.len() <= 16 {
            out.push(HYBRID_RLE);
            out.extend_from_slice(&rle);
            return;
        }
        let mut defl = Vec::with_capacity(input.len() / 4 + 8);
        crate::deflate::compress(input, &mut defl);
        if rle.len() <= defl.len() {
            out.push(HYBRID_RLE);
            out.extend_from_slice(&rle);
        } else {
            out.push(HYBRID_DEFLATE);
            out.extend_from_slice(&defl);
        }
    }

    fn decompress(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        let (&tag, body) = input.split_first().ok_or(CodecError::Truncated)?;
        match tag {
            HYBRID_RLE => crate::rle::decompress(body, out),
            HYBRID_DEFLATE => crate::deflate::decompress(body, out),
            _ => Err(CodecError::Corrupt("unknown hybrid tag")),
        }
    }
}

/// All codecs, for the E6 survey (mirrors the paper's use of the Squash
/// benchmark collection).
pub fn all_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(StoreCodec),
        Box::new(RleCodec),
        Box::new(Lz77Codec),
        Box::new(DeflateCodec),
        Box::new(HybridCodec),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_inputs() -> Vec<Vec<u8>> {
        vec![
            vec![],
            b"a".to_vec(),
            b"hello world hello world hello world".to_vec(),
            vec![0u8; 10_000],
            (0..=255u8).cycle().take(5_000).collect(),
            {
                // SFA-state-like: long runs of one u16 id + scattered others.
                let mut v = Vec::new();
                for i in 0..3_000u32 {
                    if i % 97 == 0 {
                        v.extend_from_slice(&(i as u16).to_le_bytes());
                    } else {
                        v.extend_from_slice(&501u16.to_le_bytes());
                    }
                }
                v
            },
        ]
    }

    #[test]
    fn every_codec_round_trips_every_sample() {
        for codec in all_codecs() {
            for input in sample_inputs() {
                let compressed = codec.compress_to_vec(&input);
                let restored = codec.decompress_to_vec(&compressed).unwrap_or_else(|e| {
                    panic!("{} failed on len {}: {e}", codec.name(), input.len())
                });
                assert_eq!(restored, input, "{} corrupted data", codec.name());
            }
        }
    }

    #[test]
    fn hybrid_is_never_much_worse_than_either_component() {
        for input in sample_inputs() {
            let h = HybridCodec.compress_to_vec(&input).len();
            let r = RleCodec.compress_to_vec(&input).len();
            let d = DeflateCodec.compress_to_vec(&input).len();
            assert!(
                h <= r.min(d) + 1,
                "hybrid {h} vs rle {r} / deflate {d} on len {}",
                input.len()
            );
        }
    }

    #[test]
    fn compressors_beat_store_on_redundant_data() {
        let sink_dominated: Vec<u8> = {
            let mut v = Vec::new();
            for i in 0..5_000u32 {
                let id: u16 = if i % 251 == 0 { (i % 500) as u16 } else { 501 };
                v.extend_from_slice(&id.to_le_bytes());
            }
            v
        };
        let store = StoreCodec.compress_to_vec(&sink_dominated).len();
        for codec in [&RleCodec as &dyn Codec, &Lz77Codec, &DeflateCodec] {
            let c = codec.compress_to_vec(&sink_dominated).len();
            assert!(
                c * 4 < store,
                "{} only reached {store}/{c} on sink-dominated data",
                codec.name()
            );
        }
    }

    #[test]
    fn deflate_beats_rle_on_patterned_data() {
        // Repeating 8-byte pattern: dictionary codecs collapse it, RLE
        // cannot (no single-byte runs).
        let patterned: Vec<u8> = b"ABCDEFGH".iter().copied().cycle().take(8_000).collect();
        let rle = RleCodec.compress_to_vec(&patterned).len();
        let deflate = DeflateCodec.compress_to_vec(&patterned).len();
        assert!(
            deflate * 2 < rle,
            "deflate {deflate} not clearly better than rle {rle}"
        );
    }

    #[test]
    fn decompress_rejects_garbage_gracefully() {
        let garbage: Vec<u8> = (0..100u8).map(|i| i.wrapping_mul(171)).collect();
        for codec in all_codecs() {
            if codec.name() == "store" {
                continue;
            }
            // Must not panic; error or (for self-delimiting formats that
            // happen to parse) produce *some* output.
            let _ = codec.decompress_to_vec(&garbage);
        }
    }

    #[test]
    fn error_display() {
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::Corrupt("x").to_string().contains("x"));
    }
}
