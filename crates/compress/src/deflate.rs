//! Deflate-class codec: LZSS dictionary stage + Huffman entropy stage.
//!
//! This is the codec the paper's three-phase construction algorithm
//! applies to SFA states (§III-C). The LZSS stage (deflate window/match
//! geometry) collapses the long repeated id runs typical of SFA state
//! vectors; the Huffman stage then squeezes the residual token stream.
//! On sink-dominated states this reaches two orders of magnitude, matching
//! the paper's 95× observation for r500.

use crate::codec::CodecError;
use crate::{huffman, lz77};

/// Block-mode marker: LZSS tokens entropy-coded with Huffman.
const MODE_HUFFMAN: u8 = 0;
/// Block-mode marker: raw LZSS tokens (chosen when the Huffman stage
/// would not pay for its header — deflate's "stored block" decision,
/// which matters for sub-kilobyte SFA states).
const MODE_RAW: u8 = 1;

/// Compress `input` into `out`.
pub fn compress(input: &[u8], out: &mut Vec<u8>) {
    // Stage 1: LZSS to a scratch buffer.
    let mut lz = Vec::with_capacity(input.len() / 2 + 16);
    lz77::compress(input, &mut lz);
    // Stage 2: Huffman over the token bytes — kept only if it wins.
    // Below ~160 token bytes the ≥33-byte table header cannot pay off
    // even at maximal skew, so skip the attempt outright.
    if lz.len() >= 160 {
        let mut huff = Vec::with_capacity(lz.len());
        huffman::encode(&lz, &mut huff);
        if huff.len() < lz.len() {
            out.push(MODE_HUFFMAN);
            out.extend_from_slice(&huff);
            return;
        }
    }
    out.push(MODE_RAW);
    out.extend_from_slice(&lz);
}

/// Decompress `input` into `out`.
pub fn decompress(input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    let (&mode, body) = input.split_first().ok_or(CodecError::Truncated)?;
    match mode {
        MODE_HUFFMAN => {
            let mut lz = Vec::with_capacity(body.len() * 2 + 16);
            huffman::decode(body, &mut lz)?;
            lz77::decompress(&lz, out)
        }
        MODE_RAW => lz77::decompress(body, out),
        _ => Err(CodecError::Corrupt("unknown deflate block mode")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let mut c = Vec::new();
        compress(input, &mut c);
        let mut d = Vec::new();
        decompress(&c, &mut d).unwrap();
        d
    }

    #[test]
    fn basic_round_trips() {
        assert_eq!(round_trip(b""), b"");
        assert_eq!(round_trip(b"a"), b"a");
        assert_eq!(
            round_trip(b"deflate test deflate test"),
            b"deflate test deflate test"
        );
    }

    #[test]
    fn sfa_like_state_reaches_high_ratio() {
        // Synthetic sink-dominated SFA state vector: 20k u16 entries,
        // ~99.6% of them the sink id — the r500 shape.
        let mut input = Vec::new();
        for i in 0..20_000u32 {
            let id: u16 = if i % 251 == 0 { (i % 500) as u16 } else { 501 };
            input.extend_from_slice(&id.to_le_bytes());
        }
        let mut c = Vec::new();
        compress(&input, &mut c);
        let ratio = input.len() as f64 / c.len() as f64;
        assert!(ratio > 40.0, "deflate-class ratio only {ratio:.1}x");
        assert_eq!(round_trip(&input), input);
    }

    #[test]
    fn text_like_data_reaches_modest_ratio() {
        let text = b"It is a truth universally acknowledged, that a single man in \
                     possession of a good fortune, must be in want of a wife. "
            .repeat(40);
        let mut c = Vec::new();
        compress(&text, &mut c);
        let ratio = text.len() as f64 / c.len() as f64;
        // The paper cites ≤5x as typical for English corpora; repeated
        // paragraphs do better, but we only require the sane range.
        assert!(ratio > 3.0, "ratio {ratio:.1}");
        assert_eq!(round_trip(&text), text);
    }

    #[test]
    fn incompressible_data_survives() {
        let input: Vec<u8> = (0..50_000u64)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 56) as u8)
            .collect();
        assert_eq!(round_trip(&input), input);
    }

    #[test]
    fn corrupt_and_truncated_inputs_error() {
        let input = b"compress me ".repeat(100);
        let mut c = Vec::new();
        compress(&input, &mut c);
        let mut d = Vec::new();
        assert!(decompress(&c[..c.len() / 2], &mut d).is_err());
        let mut bad = c.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        let mut d = Vec::new();
        // Either an explicit error or (rarely) a wrong-but-bounded result;
        // never a panic. If it decodes, it must not equal the original.
        match decompress(&bad, &mut d) {
            Err(_) => {}
            Ok(()) => assert_ne!(d, input),
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(input in proptest::collection::vec(any::<u8>(), 0..4000)) {
            prop_assert_eq!(round_trip(&input), input);
        }

        #[test]
        fn prop_round_trip_state_like(
            seed in any::<u64>(),
            n in 1usize..4000,
            sink_bias in 2u64..40,
        ) {
            // u16 id vectors with a dominant sink id.
            let mut input = Vec::with_capacity(n * 2);
            let mut s = seed;
            for _ in 0..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let id: u16 = if (s >> 33).is_multiple_of(sink_bias) {
                    ((s >> 17) % 500) as u16
                } else {
                    501
                };
                input.extend_from_slice(&id.to_le_bytes());
            }
            prop_assert_eq!(round_trip(&input), input);
        }
    }
}
