//! LEB128 variable-length integers (shared by the codec formats).

use crate::codec::CodecError;

/// Append `value` as LEB128.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a `u32` as LEB128.
#[inline]
pub fn write_u32(out: &mut Vec<u8>, value: u32) {
    write_u64(out, value as u64);
}

/// Decode a LEB128 integer starting at `input[*pos]`, advancing `pos`.
#[inline]
pub fn read_u64(input: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::Corrupt("varint overflow"));
        }
        // The 10th byte may only contribute one bit.
        if shift == 63 && (byte & 0x7e) != 0 {
            return Err(CodecError::Corrupt("varint overflow"));
        }
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Decode a `u32` (errors if the value exceeds `u32::MAX`).
#[inline]
pub fn read_u32(input: &[u8], pos: &mut usize) -> Result<u32, CodecError> {
    let v = read_u64(input, pos)?;
    u32::try_from(v).map_err(|_| CodecError::Corrupt("u32 varint out of range"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_representative_values() {
        let values = [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn encoding_lengths() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 0);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 128);
        assert_eq!(buf.len(), 2);
        buf.clear();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1_000_000);
        let mut pos = 0;
        assert!(matches!(
            read_u64(&buf[..buf.len() - 1], &mut pos),
            Err(CodecError::Truncated)
        ));
    }

    #[test]
    fn overlong_encodings_rejected() {
        // 11 continuation bytes cannot be a valid u64.
        let buf = vec![0x80u8; 10];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn u32_range_check() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u32::MAX as u64 + 1);
        let mut pos = 0;
        assert!(read_u32(&buf, &mut pos).is_err());
    }
}
