//! Squash-style codec survey (experiment E6).
//!
//! The paper selected its codec by running the Squash benchmark's 43
//! codecs over sampled SFA states (§III-C). This module reproduces that
//! methodology over this crate's codec registry: feed state samples,
//! measure compression ratio and throughput per codec, rank by ratio.

use crate::codec::{all_codecs, Codec};
use std::time::Instant;

/// Per-codec survey result.
#[derive(Debug, Clone)]
pub struct SurveyRow {
    /// Codec name.
    pub codec: &'static str,
    /// Total input bytes across all samples.
    pub input_bytes: usize,
    /// Total compressed bytes.
    pub compressed_bytes: usize,
    /// Compression wall time in seconds.
    pub compress_secs: f64,
    /// Decompression wall time in seconds.
    pub decompress_secs: f64,
}

impl SurveyRow {
    /// Compression ratio (input / compressed), the paper's metric.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            0.0
        } else {
            self.input_bytes as f64 / self.compressed_bytes as f64
        }
    }

    /// Compression throughput in MiB/s.
    pub fn compress_mib_s(&self) -> f64 {
        if self.compress_secs == 0.0 {
            f64::INFINITY
        } else {
            self.input_bytes as f64 / (1024.0 * 1024.0) / self.compress_secs
        }
    }

    /// Decompression throughput in MiB/s.
    pub fn decompress_mib_s(&self) -> f64 {
        if self.decompress_secs == 0.0 {
            f64::INFINITY
        } else {
            self.input_bytes as f64 / (1024.0 * 1024.0) / self.decompress_secs
        }
    }
}

/// Run every registered codec over `samples`; verify round-trips; return
/// rows sorted by descending ratio.
pub fn run_survey(samples: &[Vec<u8>]) -> Vec<SurveyRow> {
    let mut rows = Vec::new();
    for codec in all_codecs() {
        rows.push(survey_codec(codec.as_ref(), samples));
    }
    rows.sort_by(|a, b| b.ratio().partial_cmp(&a.ratio()).unwrap());
    rows
}

/// Survey one codec.
pub fn survey_codec(codec: &dyn Codec, samples: &[Vec<u8>]) -> SurveyRow {
    let mut input_bytes = 0usize;
    let mut compressed_bytes = 0usize;
    let mut compress_secs = 0.0f64;
    let mut decompress_secs = 0.0f64;
    for sample in samples {
        input_bytes += sample.len();
        let t0 = Instant::now();
        let compressed = codec.compress_to_vec(sample);
        compress_secs += t0.elapsed().as_secs_f64();
        compressed_bytes += compressed.len();
        let t1 = Instant::now();
        let restored = codec
            .decompress_to_vec(&compressed)
            .expect("survey codec failed round trip");
        decompress_secs += t1.elapsed().as_secs_f64();
        assert_eq!(&restored, sample, "{} corrupted a sample", codec.name());
    }
    SurveyRow {
        codec: codec.name(),
        input_bytes,
        compressed_bytes,
        compress_secs,
        decompress_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink_dominated_sample(n_entries: usize, sink: u16, period: usize) -> Vec<u8> {
        let mut v = Vec::with_capacity(n_entries * 2);
        for i in 0..n_entries {
            let id = if i % period == 0 {
                (i % 499) as u16
            } else {
                sink
            };
            v.extend_from_slice(&id.to_le_bytes());
        }
        v
    }

    #[test]
    fn survey_ranks_dictionary_codecs_first_on_sfa_states() {
        let samples: Vec<Vec<u8>> = (0..10)
            .map(|i| sink_dominated_sample(10_000, 501, 100 + i * 13))
            .collect();
        let rows = run_survey(&samples);
        assert_eq!(rows.len(), crate::all_codecs().len());
        // Paper finding: LZ77-class (deflate/lz77) beat RLE beat store.
        let pos = |name: &str| rows.iter().position(|r| r.codec == name).unwrap();
        assert!(pos("deflate") < pos("store"));
        assert!(pos("lz77") < pos("store"));
        assert!(pos("rle") < pos("store"));
        assert!(pos("deflate") < pos("rle"));
        // Deflate-class ratio must be in the "high" regime.
        let deflate = &rows[pos("deflate")];
        assert!(deflate.ratio() > 17.0, "ratio {}", deflate.ratio());
        // Store is exactly 1.0.
        let store = &rows[pos("store")];
        assert!((store.ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_fields_are_populated() {
        let samples = vec![sink_dominated_sample(50_000, 501, 97)];
        let rows = run_survey(&samples);
        for r in rows {
            assert!(r.compress_mib_s() > 0.0);
            assert!(r.decompress_mib_s() > 0.0);
            assert_eq!(r.input_bytes, 100_000);
        }
    }

    #[test]
    fn empty_samples() {
        let rows = run_survey(&[]);
        for r in rows {
            assert_eq!(r.input_bytes, 0);
            assert_eq!(r.ratio(), 0.0);
        }
    }
}
